//! Determinism smoke test: the whole stack — Feitelson workload
//! generation, the Slurm scheduler, the Algorithm-1 policy, the
//! discrete-event driver — must be a pure function of (config, seed).
//! Two runs with identical inputs yield an identical
//! [`dmr::metrics::WorkloadSummary`] and identical per-job outcomes.

use dmr::core::{run_experiment, ExperimentConfig, ExperimentResult, SimJob};
use dmr::workload::{WorkloadConfig, WorkloadGenerator};

fn run_once(cfg: &ExperimentConfig, jobs: u32, seed: u64) -> ExperimentResult {
    let specs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(jobs), seed).generate();
    run_experiment(cfg, &SimJob::from_specs(specs))
}

fn assert_identical(a: &ExperimentResult, b: &ExperimentResult) {
    // Summary: exact equality, including float fields — determinism means
    // bit-identical arithmetic, not approximate agreement.
    assert_eq!(a.summary.jobs, b.summary.jobs);
    assert_eq!(a.summary.makespan_s, b.summary.makespan_s);
    assert_eq!(a.summary.utilization, b.summary.utilization);
    assert_eq!(a.summary.avg_waiting_s, b.summary.avg_waiting_s);
    assert_eq!(a.summary.avg_execution_s, b.summary.avg_execution_s);
    assert_eq!(a.summary.avg_completion_s, b.summary.avg_completion_s);
    assert_eq!(a.summary.reconfigurations, b.summary.reconfigurations);
    // Per-job outcomes, in order.
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.submit, y.submit);
        assert_eq!(x.start, y.start);
        assert_eq!(x.end, y.end);
        assert_eq!(x.reconfigurations, y.reconfigurations);
    }
    // The event streams themselves must match, not just their aggregates.
    assert_eq!(a.events, b.events);
}

#[test]
fn same_config_same_seed_is_bit_identical() {
    let cfg = ExperimentConfig::preliminary();
    for seed in [0u64, 1, 20170814] {
        let a = run_once(&cfg, 25, seed);
        let b = run_once(&cfg, 25, seed);
        assert_identical(&a, &b);
    }
}

#[test]
fn asynchronous_mode_is_deterministic_too() {
    let cfg = ExperimentConfig::preliminary().asynchronous();
    let a = run_once(&cfg, 20, 9);
    let b = run_once(&cfg, 20, 9);
    assert_identical(&a, &b);
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a trivially-constant pipeline faking the test above.
    let cfg = ExperimentConfig::preliminary();
    let a = run_once(&cfg, 25, 1);
    let b = run_once(&cfg, 25, 2);
    assert_ne!(a.summary.makespan_s, b.summary.makespan_s);
}
