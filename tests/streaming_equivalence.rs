//! The streaming telemetry acceptance bar: an online (bounded-memory)
//! run must report **bit-identical** summaries — including the P50/P95/
//! P99 percentile columns — to the buffered run of the same workload,
//! across every workload family, scheduling mode and policy, while
//! retaining no per-job buffers.

use dmr::core::{run_experiment_streaming, ExperimentConfig, PolicyKind, WorkloadKind};
use dmr::metrics::{MetricsSink, OnlineAccumulator};
use dmr::workload::{SwfMapping, SwfTrace};

fn assert_summaries_identical(
    label: &str,
    cfg: &ExperimentConfig,
    mut mk: impl FnMut() -> Box<dyn dmr::workload::WorkloadSource>,
) {
    let full = run_experiment_streaming(cfg, mk().as_mut());
    let online = run_experiment_streaming(&cfg.online(), mk().as_mut());
    let (a, b) = (&full.summary, &online.summary);
    assert_eq!(a.jobs, b.jobs, "{label}: job counts");
    assert_eq!(
        a.makespan_s.to_bits(),
        b.makespan_s.to_bits(),
        "{label}: makespan"
    );
    assert_eq!(
        a.utilization.to_bits(),
        b.utilization.to_bits(),
        "{label}: utilization"
    );
    assert_eq!(
        a.avg_waiting_s.to_bits(),
        b.avg_waiting_s.to_bits(),
        "{label}: avg wait"
    );
    assert_eq!(
        a.avg_execution_s.to_bits(),
        b.avg_execution_s.to_bits(),
        "{label}: avg exec"
    );
    assert_eq!(
        a.avg_completion_s.to_bits(),
        b.avg_completion_s.to_bits(),
        "{label}: avg compl"
    );
    assert_eq!(a.waiting_q, b.waiting_q, "{label}: waiting percentiles");
    assert_eq!(
        a.execution_q, b.execution_q,
        "{label}: execution percentiles"
    );
    assert_eq!(
        a.completion_q, b.completion_q,
        "{label}: completion percentiles"
    );
    assert_eq!(
        a.reconfigurations, b.reconfigurations,
        "{label}: reconfigurations"
    );
    assert_eq!(
        full.events, online.events,
        "{label}: event counts (same schedule)"
    );
    assert_eq!(full.end_time, online.end_time, "{label}: end instants");
    // The online run kept no buffers.
    assert!(online.outcomes.is_empty(), "{label}: outcomes buffered");
    assert!(online.allocation.is_empty(), "{label}: series buffered");
    assert!(!full.outcomes.is_empty(), "{label}: buffered run sanity");
}

#[test]
fn online_summaries_match_buffered_across_sources_and_modes() {
    let kinds = [
        WorkloadKind::FsPreliminary,
        WorkloadKind::burst(),
        WorkloadKind::diurnal(),
    ];
    for kind in kinds {
        for cfg in [
            ExperimentConfig::preliminary(),
            ExperimentConfig::preliminary().asynchronous(),
            ExperimentConfig::preliminary().as_fixed(),
            ExperimentConfig::preliminary().with_policy(PolicyKind::fair_share()),
        ] {
            let label = format!("{kind:?}/{:?}/{:?}", cfg.mode, cfg.policy);
            assert_summaries_identical(&label, &cfg, || kind.build(60, 7));
        }
    }
}

#[test]
fn online_summaries_match_buffered_on_offset_trace_replay() {
    // An SWF replay with arrivals NOT rebased to zero: the first job
    // submits at its raw trace offset, exercising the corrected
    // `[first_submit, last_end]` accounting window on both paths.
    const TRACE: &str = include_str!("fixtures/tiny.swf");
    let mapping = SwfMapping {
        normalize_arrivals: false,
        ..SwfMapping::default()
    };
    let cfg = ExperimentConfig::preliminary();
    assert_summaries_identical("swf-offset", &cfg, || {
        Box::new(SwfTrace::from_static(TRACE, mapping))
    });
}

#[test]
fn large_streaming_run_records_percentiles_with_no_job_buffers() {
    // A multi-thousand-job streaming run through the public sink API:
    // the accumulator sees every job exactly once and its summary carries
    // populated percentile columns — with nothing job-sized retained
    // anywhere (the sink is the only telemetry storage, and it is O(1)).
    let mut source = WorkloadKind::diurnal().build(800, 3);
    let mut sink = OnlineAccumulator::new();
    let cfg = ExperimentConfig::preliminary().online();
    let stats = dmr::core::run_experiment_with_sink(&cfg, source.as_mut(), &mut sink);
    assert_eq!(sink.jobs(), 800);
    assert_eq!(sink.completion().count(), 800);
    assert_eq!(sink.completed().value(), 800.0);
    assert!(sink.running().max_value() >= 1.0);
    let summary = sink.summary(cfg.nodes);
    assert_eq!(summary.jobs, 800);
    assert!(summary.completion_q.p50_s > 0.0);
    assert!(summary.completion_q.p50_s <= summary.completion_q.p95_s);
    assert!(summary.completion_q.p95_s <= summary.completion_q.p99_s);
    assert!(summary.completion_q.p99_s <= summary.makespan_s);
    assert_eq!(stats.past_schedules, 0);
    assert!(stats.end_time.as_secs_f64() >= summary.makespan_s);
}

#[test]
fn custom_sink_sees_every_sample_and_job() {
    // The README "adding a sink" contract: samples arrive in
    // non-decreasing time order — one per handled event, plus (under the
    // batching arena path) one per deferred scheduling-pass flush so the
    // end-of-instant state is always the last word at its instant — and
    // one outcome arrives per job with its submission sequence number.
    #[derive(Default)]
    struct CountingSink {
        samples: u64,
        jobs: Vec<u64>,
        last_t: dmr::sim::SimTime,
        monotone: bool,
    }
    impl CountingSink {
        fn new() -> Self {
            CountingSink {
                monotone: true,
                ..CountingSink::default()
            }
        }
    }
    impl MetricsSink for CountingSink {
        fn on_sample(&mut self, now: dmr::sim::SimTime, _a: f64, _r: f64, _c: f64) {
            self.monotone &= now >= self.last_t;
            self.last_t = now;
            self.samples += 1;
        }
        fn on_job(&mut self, seq: u64, _outcome: dmr::metrics::JobOutcome) {
            self.jobs.push(seq);
        }
    }
    let run = |cfg: &ExperimentConfig| {
        let mut source = WorkloadKind::burst().build(25, 5);
        let mut sink = CountingSink::new();
        let stats = dmr::core::run_experiment_with_sink(cfg, source.as_mut(), &mut sink);
        assert!(sink.monotone, "samples arrive in time order");
        assert_eq!(sink.jobs.len(), 25, "one outcome per job");
        let mut seqs = sink.jobs.clone();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 25, "sequence numbers are unique");
        assert_eq!(*seqs.last().unwrap(), 24, "seqs are the arrival indices");
        (sink.samples, stats.events)
    };
    // The unbatched reference path samples exactly once per event; the
    // arena path adds one sample per deferred-pass flush on top.
    let cfg = ExperimentConfig::preliminary();
    let (scan_samples, scan_events) = run(&cfg.scan_reference());
    assert_eq!(scan_samples, scan_events, "one sample per handled event");
    let (arena_samples, arena_events) = run(&cfg);
    assert_eq!(arena_events, scan_events, "same schedule, same events");
    assert!(
        arena_samples >= arena_events,
        "batching must not drop samples: {arena_samples} < {arena_events}"
    );
}
