//! Property test: slot-set `Easy { reservations: 1 }` backfill is
//! bit-identical to the legacy single-reservation oracle.
//!
//! The slot-set PR replaced the per-pass running-index reservation walk
//! with a free-resource timeline (`dmr_slurm::slotset`): EASY-k holds up
//! to `k` reservations found by O(log) hole queries, conservative plans
//! every blocked job in its window. The pre-slot-set walk survives as
//! [`dmr::slurm::BackfillFamily::LegacyReference`] — the same oracle
//! pattern as `SchedIndex::ScanReference` — and this suite drives *full
//! experiments* (every workload family × resize policy × fixed/flexible ×
//! sync/async, under every scheduler hot path) through both families,
//! requiring bit-identical results down to the raw f64 bits of every
//! summary field and the exact bytes of the sweep CSV row. Deeper
//! families cannot be pinned to the oracle (they schedule differently by
//! design), so they are checked for lawfulness instead: every job runs
//! exactly once, nothing schedules in the past, and the timeline's
//! occupancy invariants hold through a direct scheduler drive.
//!
//! Slot-set structural invariants (sorted, disjoint, conservation) are
//! covered by the brute-force model tests in `dmr_slurm::slotset`; here
//! the whole scheduler sits between the property and the structure.

use dmr::core::{
    run_experiment_streaming, BackfillFamily, ExperimentConfig, ExperimentResult, PolicyKind,
    WorkloadKind,
};
use dmr::sim::{SimTime, Span};
use dmr::slurm::{JobRequest, Slurm, SlurmConfig};
use dmr_bench::sweep::SweepCell;
use dmr_cluster::Cluster;
use proptest::prelude::*;

fn kind_for(kind: u8) -> WorkloadKind {
    match kind % 5 {
        0 => WorkloadKind::FsPreliminary,
        1 => WorkloadKind::FsMicroSteps,
        2 => WorkloadKind::RealMix,
        3 => WorkloadKind::burst(),
        _ => WorkloadKind::diurnal(),
    }
}

fn policy_for(policy: u8) -> PolicyKind {
    match policy % 3 {
        0 => PolicyKind::Algorithm1,
        1 => PolicyKind::utilization_target(),
        _ => PolicyKind::fair_share(),
    }
}

/// One sweep-style CSV row for a result (fixed labels: only the numbers
/// — i.e. the scheduling outcome — can differ between the two families).
fn csv_row(kind: WorkloadKind, cfg: &ExperimentConfig, seed: u64, r: &ExperimentResult) -> String {
    SweepCell {
        scenario: "backfill-equivalence".into(),
        workload: kind.name(),
        policy: cfg.policy.label(),
        mode: "sync",
        backfill: "easy1-vs-legacy",
        machine_mix: cfg.machine_mix.name(),
        faults: cfg.faults.name(),
        seed,
        nodes: cfg.nodes,
        summary: r.summary.clone(),
        events: r.events,
        past_schedules: r.past_schedules,
    }
    .csv_row()
}

fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), String> {
    let sa = &a.summary;
    let sb = &b.summary;
    prop_assert_eq!(sa.jobs, sb.jobs);
    prop_assert_eq!(sa.reconfigurations, sb.reconfigurations);
    // Raw-bit float comparison: even sub-rounding divergence fails.
    for (x, y, what) in [
        (sa.makespan_s, sb.makespan_s, "makespan"),
        (sa.utilization, sb.utilization, "utilization"),
        (sa.avg_waiting_s, sb.avg_waiting_s, "avg_wait"),
        (sa.avg_execution_s, sb.avg_execution_s, "avg_exec"),
        (sa.avg_completion_s, sb.avg_completion_s, "avg_compl"),
        (sa.waiting_q.p50_s, sb.waiting_q.p50_s, "p50_wait"),
        (sa.waiting_q.p99_s, sb.waiting_q.p99_s, "p99_wait"),
        (sa.execution_q.p95_s, sb.execution_q.p95_s, "p95_exec"),
        (sa.completion_q.p99_s, sb.completion_q.p99_s, "p99_compl"),
    ] {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverged: {} vs {}",
            what,
            x,
            y
        );
    }
    prop_assert_eq!(a.events, b.events, "event streams diverged");
    prop_assert_eq!(a.past_schedules, b.past_schedules);
    prop_assert_eq!(a.end_time, b.end_time);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn easy1_experiments_match_the_legacy_oracle_bit_for_bit(
        seed in 0u64..10_000,
        jobs in 1u32..26,
        kind in 0u8..5,
        policy in 0u8..3,
        asynchronous in 0u8..2,
        fixed in 0u8..2,
        hot_path in 0u8..3,
        incremental in 0u8..2,
    ) {
        let kind = kind_for(kind);
        let mut cfg = ExperimentConfig::preliminary()
            .with_policy(policy_for(policy))
            .online();
        if asynchronous == 1 {
            cfg = cfg.asynchronous();
        }
        if fixed == 1 {
            cfg = cfg.as_fixed();
        }
        // The family equivalence must hold under every scheduler hot
        // path and with incremental pass elision both on and off (the
        // oracle axes are orthogonal).
        cfg = match hot_path {
            0 => cfg,
            1 => cfg.indexed_reference(),
            _ => cfg.scan_reference(),
        };
        if incremental == 1 {
            cfg = cfg.incremental_off();
        }
        let easy1 = run_experiment_streaming(
            &cfg.with_backfill_family(BackfillFamily::easy(1)),
            kind.build(jobs, seed).as_mut(),
        );
        let legacy = run_experiment_streaming(
            &cfg.legacy_backfill_reference(),
            kind.build(jobs, seed).as_mut(),
        );
        assert_bit_identical(&easy1, &legacy)?;
        // The derived sweep CSV rows must be byte-identical too.
        prop_assert_eq!(
            csv_row(kind, &cfg, seed, &easy1),
            csv_row(kind, &cfg, seed, &legacy)
        );
    }
}

// The buffered (Full-telemetry) path pins per-job outcomes as well.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn easy1_outcomes_match_the_legacy_oracle(seed in 0u64..1000, jobs in 1u32..20) {
        let cfg = ExperimentConfig::preliminary();
        let kind = WorkloadKind::FsPreliminary;
        let easy1 = run_experiment_streaming(
            &cfg.with_backfill_family(BackfillFamily::easy(1)),
            kind.build(jobs, seed).as_mut(),
        );
        let legacy = run_experiment_streaming(
            &cfg.legacy_backfill_reference(),
            kind.build(jobs, seed).as_mut(),
        );
        prop_assert_eq!(easy1.outcomes.len(), legacy.outcomes.len());
        for (x, y) in easy1.outcomes.iter().zip(&legacy.outcomes) {
            prop_assert_eq!(x.submit, y.submit);
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
            prop_assert_eq!(x.reconfigurations, y.reconfigurations);
        }
        assert_bit_identical(&easy1, &legacy)?;
    }
}

// Deeper families are not oracle-pinned (they schedule differently by
// design) but must stay lawful on the same experiment matrix.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn deep_families_run_lawful_experiments(
        seed in 0u64..10_000,
        jobs in 1u32..22,
        kind in 0u8..5,
        policy in 0u8..3,
        family in 0u8..3,
    ) {
        let kind = kind_for(kind);
        let family = match family {
            0 => BackfillFamily::easy(8),
            1 => BackfillFamily::easy(64),
            _ => BackfillFamily::Conservative,
        };
        let cfg = ExperimentConfig::preliminary()
            .with_policy(policy_for(policy))
            .with_backfill_family(family);
        let r = run_experiment_streaming(&cfg, kind.build(jobs, seed).as_mut());
        prop_assert_eq!(r.summary.jobs as u32, jobs, "every job must complete");
        prop_assert_eq!(r.past_schedules, 0, "scheduled in the past");
        prop_assert!(r.summary.makespan_s.is_finite() && r.summary.makespan_s >= 0.0);
        prop_assert!(r.summary.utilization >= 0.0 && r.summary.utilization <= 1.0 + 1e-9);
        // Not oracle-pinned, but the incremental elision contract still
        // holds for the deep families: off must reproduce on exactly.
        let off = run_experiment_streaming(
            &cfg.incremental_off(),
            kind.build(jobs, seed).as_mut(),
        );
        assert_bit_identical(&r, &off)?;
    }
}

// A direct scheduler drive under each family, with the timeline/index
// invariants checked after every mutation batch — the whole-scheduler
// counterpart of the slot-set model tests.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn scheduler_invariants_hold_under_every_family(
        seed in 0u64..10_000,
        family in 0u8..4,
    ) {
        let family = match family {
            0 => BackfillFamily::easy(1),
            1 => BackfillFamily::easy(3),
            2 => BackfillFamily::Conservative,
            _ => BackfillFamily::LegacyReference,
        };
        let mut cfg = SlurmConfig::for_cluster(24);
        cfg.backfill_family = family;
        let mut s = Slurm::new(Cluster::new(24, 16), cfg);
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut live: Vec<dmr::slurm::JobId> = Vec::new();
        for round in 0..40u64 {
            let now = SimTime::from_secs(round * 5);
            match step() % 4 {
                0 | 1 => {
                    let nodes = 1 + (step() % 12) as u32;
                    let dur = 30 + step() % 600;
                    let id = s.submit(
                        JobRequest::rigid(format!("j{round}"), nodes)
                            .with_expected_runtime(Span::from_secs(dur)),
                        now,
                    );
                    live.push(id);
                }
                2 => {
                    for start in s.schedule(now) {
                        let _ = start;
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let id = live.remove((step() % live.len() as u64) as usize);
                        // Complete if running, cancel if still pending;
                        // both paths must keep the timeline in sync.
                        match s.job(id).map(|j| j.state) {
                            Some(dmr::slurm::JobState::Running) => s.complete(id, now),
                            Some(dmr::slurm::JobState::Pending) => s.cancel(id, now),
                            _ => {}
                        }
                    }
                }
            }
            s.backfill_pass(now);
            let inv = s.check_invariants();
            prop_assert!(
                inv.is_ok(),
                "round {} under {:?}: {:?}",
                round,
                family,
                inv
            );
        }
    }
}
