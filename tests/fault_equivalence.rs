//! Fault-injection contracts: the zero-fault oracle, scripted-trace
//! determinism, the failed-while-allocated return path, and the
//! failure/elision interaction.
//!
//! The fault-injection PR threads node failures through every layer, but
//! its first acceptance bar is *absence*: under [`FaultLoad::None`] no
//! fault process is even constructed, so every experiment must be
//! bit-identical to pre-fault behaviour — raw f64 summary bits, per-job
//! outcomes, and sweep-CSV bytes — across the full workload × policy ×
//! fixed/flexible × sync/async × `SchedIndex` matrix, regardless of the
//! fault seed or a configured checkpoint interval. On top of that:
//! scripted [`FaultTrace`]s replay deterministically (same script ⇒
//! identical outcomes, run after run and across sweep thread counts),
//! the PR 5 drained-while-allocated fix holds for *failures* on all
//! three hot paths and on per-class clusters, and twin schedulers pin
//! that an elided pass never masks a failure invalidation.

use dmr::cluster::{Cluster, FailOutcome, NodeId, NodeState};
use dmr::core::{
    run_experiment_streaming, run_experiment_streaming_with_faults, ExperimentConfig,
    ExperimentResult, FaultLoad, FaultTrace, MachineMix, PolicyKind, WorkloadKind,
};
use dmr::sim::{SimTime, Span};
use dmr::slurm::{JobId, JobRequest, JobState, SchedIncremental, Slurm, SlurmConfig};
use dmr_bench::scenario::fault_axis;
use dmr_bench::sweep::{csv_report, run_sweep, SweepCell};
use proptest::prelude::*;

fn kind_for(kind: u8) -> WorkloadKind {
    match kind % 5 {
        0 => WorkloadKind::FsPreliminary,
        1 => WorkloadKind::FsMicroSteps,
        2 => WorkloadKind::RealMix,
        3 => WorkloadKind::burst(),
        _ => WorkloadKind::diurnal(),
    }
}

fn policy_for(policy: u8) -> PolicyKind {
    match policy % 3 {
        0 => PolicyKind::Algorithm1,
        1 => PolicyKind::utilization_target(),
        _ => PolicyKind::fair_share(),
    }
}

fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), String> {
    let sa = &a.summary;
    let sb = &b.summary;
    prop_assert_eq!(sa.jobs, sb.jobs);
    prop_assert_eq!(sa.reconfigurations, sb.reconfigurations);
    prop_assert_eq!(sa.failures, sb.failures);
    prop_assert_eq!(sa.requeues, sb.requeues);
    // Raw-bit float comparison: even sub-rounding divergence fails.
    for (x, y, what) in [
        (sa.makespan_s, sb.makespan_s, "makespan"),
        (sa.utilization, sb.utilization, "utilization"),
        (sa.avg_waiting_s, sb.avg_waiting_s, "avg_wait"),
        (sa.avg_execution_s, sb.avg_execution_s, "avg_exec"),
        (sa.avg_completion_s, sb.avg_completion_s, "avg_compl"),
        (sa.waiting_q.p50_s, sb.waiting_q.p50_s, "p50_wait"),
        (sa.waiting_q.p99_s, sb.waiting_q.p99_s, "p99_wait"),
        (sa.execution_q.p95_s, sb.execution_q.p95_s, "p95_exec"),
        (sa.completion_q.p99_s, sb.completion_q.p99_s, "p99_compl"),
        (sa.lost_work_s, sb.lost_work_s, "lost_work"),
        (sa.goodput_ratio, sb.goodput_ratio, "goodput"),
        (sa.restart_p95_s, sb.restart_p95_s, "restart_p95"),
    ] {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverged: {} vs {}",
            what,
            x,
            y
        );
    }
    prop_assert_eq!(a.events, b.events, "event streams diverged");
    prop_assert_eq!(a.past_schedules, b.past_schedules);
    prop_assert_eq!(a.end_time, b.end_time);
    Ok(())
}

/// One sweep-style CSV row for a result — the byte-level oracle.
fn csv_row(kind: WorkloadKind, cfg: &ExperimentConfig, seed: u64, r: &ExperimentResult) -> String {
    SweepCell {
        scenario: "fault-equivalence".into(),
        workload: kind.name(),
        policy: cfg.policy.label(),
        mode: "sync",
        backfill: cfg.backfill_family.label(),
        machine_mix: cfg.machine_mix.name(),
        faults: cfg.faults.name(),
        seed,
        nodes: cfg.nodes,
        summary: r.summary.clone(),
        events: r.events,
        past_schedules: r.past_schedules,
    }
    .csv_row()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The zero-fault oracle: `FaultLoad::None` is inert. Varying the
    /// fault seed, or configuring a checkpoint interval, must leave
    /// every path of the matrix bit-identical — including the fault
    /// columns of the CSV row, which stay at their identity values.
    #[test]
    fn zero_fault_load_is_bit_identical_across_the_matrix(
        seed in 0u64..10_000,
        fault_seed in 1u64..10_000,
        jobs in 1u32..26,
        kind in 0u8..5,
        policy in 0u8..3,
        asynchronous in 0u8..2,
        fixed in 0u8..2,
    ) {
        let kind = kind_for(kind);
        let mut cfg = ExperimentConfig::preliminary()
            .with_policy(policy_for(policy))
            .online();
        if asynchronous == 1 {
            cfg = cfg.asynchronous();
        }
        if fixed == 1 {
            cfg = cfg.as_fixed();
        }
        let base = run_experiment_streaming(&cfg, kind.build(jobs, seed).as_mut());
        // A different fault seed is unobservable when no process runs,
        // and an armed checkpoint interval is unobservable with nothing
        // to recover from — on every hot path.
        for cfg2 in [
            cfg.with_faults(FaultLoad::None).with_fault_seed(fault_seed),
            cfg.with_ckpt_interval(600.0),
            cfg.indexed_reference().with_fault_seed(fault_seed),
            cfg.scan_reference().with_fault_seed(fault_seed),
        ] {
            let r = run_experiment_streaming(&cfg2, kind.build(jobs, seed).as_mut());
            assert_bit_identical(&base, &r)?;
        }
        let s = &base.summary;
        prop_assert_eq!(s.failures, 0);
        prop_assert_eq!(s.requeues, 0);
        prop_assert_eq!(s.lost_work_s.to_bits(), 0.0f64.to_bits());
        prop_assert_eq!(s.goodput_ratio.to_bits(), 1.0f64.to_bits());
        prop_assert_eq!(s.restart_p95_s.to_bits(), 0.0f64.to_bits());
        let row = csv_row(kind, &cfg, seed, &base);
        let with_seed = cfg.with_fault_seed(fault_seed);
        let r = run_experiment_streaming(&with_seed, kind.build(jobs, seed).as_mut());
        prop_assert_eq!(&row, &csv_row(kind, &with_seed, seed, &r));
    }

    /// Scripted faultloads are deterministic: replaying the same
    /// [`FaultTrace`] over the same workload gives bit-identical results,
    /// run after run, on every hot path.
    #[test]
    fn scripted_fault_traces_replay_deterministically(
        seed in 0u64..10_000,
        jobs in 4u32..26,
        kind in 0u8..5,
        events in proptest::collection::vec((1u64..5_000, 0u32..20, proptest::bool::ANY), 1..12),
    ) {
        let kind = kind_for(kind);
        let cfg = ExperimentConfig::preliminary().online();
        // Build a well-formed script: nondecreasing instants, fail or
        // repair drawn per event (repairs of never-failed nodes are
        // legal no-ops at the cluster layer).
        let mut t = 0u64;
        let mut script = String::new();
        for &(dt, node, repair) in &events {
            t += dt;
            let verb = if repair { "repair" } else { "fail" };
            script.push_str(&format!("{t} {verb} {node}\n"));
        }
        let trace = || FaultTrace::parse(&script).expect("generated script parses");
        let a = run_experiment_streaming_with_faults(&cfg, kind.build(jobs, seed).as_mut(), trace());
        let b = run_experiment_streaming_with_faults(&cfg, kind.build(jobs, seed).as_mut(), trace());
        assert_bit_identical(&a, &b)?;
        let idx = cfg.indexed_reference();
        let c = run_experiment_streaming_with_faults(&idx, kind.build(jobs, seed).as_mut(), trace());
        let d = run_experiment_streaming_with_faults(&idx, kind.build(jobs, seed).as_mut(), trace());
        assert_bit_identical(&c, &d)?;
    }

    /// The PR 5 fix, extended to failures: a node that fails *while
    /// allocated* returns to the unavailable pool when its job's nodes
    /// release — never to a free set — on all three `SchedIndex` paths
    /// and on a per-class (three-FreeSet) cluster alike. Repair is the
    /// only transition that makes it placeable again.
    #[test]
    fn failed_while_allocated_nodes_return_unavailable(
        seed in 0u64..100_000,
        nodes in 8u32..33,
        hetero in proptest::bool::ANY,
        path in 0u8..3,
        rounds in 10u64..40,
    ) {
        let mut cfg = SlurmConfig::for_cluster(nodes);
        cfg.sched_index = match path {
            0 => dmr::slurm::SchedIndex::Arena,
            1 => dmr::slurm::SchedIndex::Indexed,
            _ => dmr::slurm::SchedIndex::ScanReference,
        };
        let cluster = if hetero {
            Cluster::with_classes(MachineMix::Hetero3.table(nodes, 16))
        } else {
            Cluster::new(nodes, 16)
        };
        let mut s = Slurm::new(cluster, cfg);
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut running: Vec<JobId> = Vec::new();
        let mut down: Vec<NodeId> = Vec::new();
        for round in 0..rounds {
            let now = SimTime::from_secs(round * 11);
            match step() % 4 {
                0 | 1 => {
                    let need = 1 + (step() % u64::from(nodes.min(8))) as u32;
                    let id = s.submit(
                        JobRequest::rigid(format!("j{round}"), need)
                            .with_expected_runtime(Span::from_secs(120 + step() % 600)),
                        now,
                    );
                    let _ = id;
                }
                2 => {
                    let node = NodeId((step() % u64::from(nodes)) as u32);
                    match s.fail_node(node) {
                        FailOutcome::Busy(owner) => {
                            let victim = JobId(owner);
                            running.retain(|&id| id != victim);
                            // The kill releases the victim's nodes; the
                            // failed one must land unavailable, the rest
                            // free.
                            prop_assert!(s.requeue_failed(victim, now).is_some());
                            prop_assert_eq!(s.cluster().node_state(node), NodeState::Down);
                            prop_assert_eq!(s.cluster().owner_of(node), None);
                            down.push(node);
                        }
                        FailOutcome::Idle => {
                            prop_assert_eq!(s.cluster().node_state(node), NodeState::Down);
                            down.push(node);
                        }
                        FailOutcome::Skipped => {}
                    }
                }
                _ => {
                    if !down.is_empty() {
                        let node = down.remove((step() % down.len() as u64) as usize);
                        s.repair_node(node);
                        prop_assert_eq!(s.cluster().node_state(node), NodeState::Up);
                    } else if let Some(id) = running.pop() {
                        s.complete(id, now);
                    }
                }
            }
            for start in s.schedule(now) {
                running.push(start.id);
            }
            // The maintained free sets — per-class included — must agree
            // with first principles after every mutation; in particular
            // no Down node may ever sit in a free set.
            prop_assert!(s.check_invariants().is_ok(), "round {}", round);
            for &node in &down {
                prop_assert_eq!(s.cluster().node_state(node), NodeState::Down);
            }
        }
    }

    /// Twin schedulers (incremental on vs off) driven through churn with
    /// injected failures and repairs: every pass must agree, and
    /// whenever the incremental twin elides a pass the baseline must
    /// have started nothing — i.e. no elided pass ever masks a failure
    /// or repair invalidation.
    #[test]
    fn elision_never_masks_a_failure_invalidation(
        seed in 0u64..100_000,
        nodes in 8u32..25,
    ) {
        let mk = |incremental: SchedIncremental| {
            let mut cfg = SlurmConfig::for_cluster(nodes);
            cfg.sched_incremental = incremental;
            Slurm::new(Cluster::new(nodes, 16), cfg)
        };
        let mut on = mk(SchedIncremental::On);
        let mut off = mk(SchedIncremental::Off);
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut down: Vec<NodeId> = Vec::new();
        for round in 0..50u64 {
            let now = SimTime::from_secs(round * 7);
            match step() % 6 {
                0..=2 => {
                    let need = 1 + (step() % u64::from(nodes)) as u32;
                    let dur = 30 + step() % 900;
                    let req = || {
                        JobRequest::rigid(format!("j{round}"), need)
                            .with_expected_runtime(Span::from_secs(dur))
                    };
                    let a = on.submit(req(), now);
                    let b = off.submit(req(), now);
                    prop_assert_eq!(a, b, "ids diverged at submit");
                }
                3 => {
                    let node = NodeId((step() % u64::from(nodes)) as u32);
                    let a = on.fail_node(node);
                    let b = off.fail_node(node);
                    prop_assert_eq!(a, b, "fail outcomes diverged at round {}", round);
                    match a {
                        FailOutcome::Busy(owner) => {
                            let x = on.requeue_failed(JobId(owner), now);
                            let y = off.requeue_failed(JobId(owner), now);
                            prop_assert_eq!(x, y, "requeue diverged at round {}", round);
                            down.push(node);
                        }
                        FailOutcome::Idle => down.push(node),
                        FailOutcome::Skipped => {}
                    }
                }
                4 if !down.is_empty() => {
                    let node = down.remove((step() % down.len() as u64) as usize);
                    prop_assert_eq!(on.repair_node(node), off.repair_node(node));
                }
                _ => {}
            }
            let before = on.incremental_stats();
            let a = on.schedule(now);
            let b = off.schedule(now);
            prop_assert_eq!(&a, &b, "schedule diverged at round {}", round);
            let mid = on.incremental_stats();
            if mid.sched_passes_elided > before.sched_passes_elided {
                prop_assert!(
                    b.is_empty(),
                    "elided schedule pass at round {} masked starts {:?}",
                    round,
                    b
                );
            }
            let a = on.backfill_pass(now);
            let b = off.backfill_pass(now);
            prop_assert_eq!(&a, &b, "backfill diverged at round {}", round);
            let after = on.incremental_stats();
            if after.backfill_passes_elided > mid.backfill_passes_elided {
                prop_assert!(
                    b.is_empty(),
                    "elided backfill pass at round {} masked starts {:?}",
                    round,
                    b
                );
            }
            prop_assert!(on.check_invariants().is_ok());
            prop_assert!(off.check_invariants().is_ok());
            prop_assert_eq!(
                on.cluster().free_nodes(),
                off.cluster().free_nodes(),
                "occupancy diverged at round {}",
                round
            );
        }
        // Sanity on the twins' state accounting at the end of the storm.
        let live: Vec<JobId> = on
            .jobs()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        prop_assert_eq!(live.len(), on.running_count());
    }
}

/// A harsh preset faultload sweeps deterministically: the fault-axis
/// scenario cells produce byte-identical CSV whatever the thread count —
/// the `--threads` half of the determinism acceptance bar.
#[test]
fn fault_axis_sweep_is_byte_identical_across_thread_counts() {
    let scenarios = fault_axis(10);
    let seeds = [dmr_bench::SEED, 7];
    let serial = csv_report(&run_sweep(&scenarios, &seeds, 1));
    let parallel = csv_report(&run_sweep(&scenarios, &seeds, 8));
    assert_eq!(serial, parallel, "fault sweep depends on thread count");
    let wide = csv_report(&run_sweep(&scenarios, &seeds, 3));
    assert_eq!(serial, wide);
    assert!(
        serial.contains("harsh"),
        "harsh cells missing from the axis"
    );
}
