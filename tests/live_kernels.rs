//! Real kernels under the live Slurm policy: the full stack —
//! `dmr-mpi` (spawn) + `dmr-runtime` (DMR API, redistribution) +
//! `dmr-slurm` (Algorithm 1 + §III protocol) — in one process.

use std::sync::Arc;

use parking_lot::Mutex;

use dmr::apps::cg::{cg_sequential, CgApp};
use dmr::apps::jacobi::{jacobi_sequential, JacobiApp};
use dmr::apps::malleable::run_malleable_with;
use dmr::apps::nbody::{nbody_sequential, NbodyApp};
use dmr::bridge::SlurmRms;
use dmr::cluster::Cluster;
use dmr::runtime::dmr::DmrSpec;
use dmr::sim::SimTime;
use dmr::slurm::{JobRequest, ResizeEnvelope, Slurm};

fn launch(
    cluster_nodes: u32,
    job_nodes: u32,
    env: ResizeEnvelope,
) -> (Arc<Mutex<Slurm>>, dmr::slurm::JobId) {
    let mut s = Slurm::with_cluster(Cluster::new(cluster_nodes, 16));
    let id = s.submit(JobRequest::flexible("live", job_nodes, env), SimTime::ZERO);
    let started = s.schedule(SimTime::ZERO);
    assert_eq!(started.len(), 1);
    (Arc::new(Mutex::new(s)), id)
}

fn envelope(min: u32, max: u32) -> ResizeEnvelope {
    ResizeEnvelope {
        min,
        max,
        preferred: None,
        factor: 2,
    }
}

/// A lone CG job on an idle cluster expands to its envelope maximum and
/// still produces the sequential answer.
#[test]
fn cg_expands_under_live_policy_and_stays_correct() {
    let (slurm, job) = launch(16, 2, envelope(1, 8));
    let rms = SlurmRms::connect(Arc::clone(&slurm), job);
    let (n, iters) = (96, 25);
    let out = run_malleable_with(
        Arc::new(CgApp::new(n, iters)),
        2,
        DmrSpec::new(1, 8),
        Arc::new(Mutex::new(rms)),
    );
    assert!(out.resizes >= 1, "lone job must expand");
    assert_eq!(out.final_procs, 8, "expansion reaches the envelope max");
    assert_eq!(slurm.lock().nodes_of(job), 8, "scheduler agrees");
    let (x_ref, _) = cg_sequential(n, iters);
    for (a, b) in out.final_state[0].iter().zip(&x_ref) {
        assert!((a - b).abs() < 1e-9);
    }
}

/// A Jacobi job shrinks when a rigid job needs its nodes; the rigid job
/// gets to run and the numerics stay bit-identical.
#[test]
fn jacobi_shrinks_for_queued_job_under_live_policy() {
    let (slurm, job) = launch(8, 8, envelope(1, 8));
    {
        let mut s = slurm.lock();
        s.submit(JobRequest::rigid("rival", 4), SimTime::ZERO);
    }
    let rms = SlurmRms::connect(Arc::clone(&slurm), job);
    let (n, iters) = (64, 20);
    let out = run_malleable_with(
        Arc::new(JacobiApp::new(n, iters)),
        8,
        DmrSpec::new(1, 8),
        Arc::new(Mutex::new(rms)),
    );
    assert!(out.resizes >= 1, "the job must shrink for the rival");
    assert!(out.final_procs < 8);
    assert_eq!(out.final_state[0], jacobi_sequential(n, iters));
    // The rival really started.
    assert_eq!(slurm.lock().running_count(), 2);
}

/// N-body through the bridge: expansion happens and physics is
/// bit-identical to the sequential run.
#[test]
fn nbody_resizes_under_live_policy() {
    let (slurm, job) = launch(8, 1, envelope(1, 4));
    let rms = SlurmRms::connect(Arc::clone(&slurm), job);
    let (seed, n, steps, dt) = (3u64, 24usize, 6u32, 1e-3);
    let out = run_malleable_with(
        Arc::new(NbodyApp::new(seed, n, steps, dt)),
        1,
        DmrSpec::new(1, 4),
        Arc::new(Mutex::new(rms)),
    );
    assert!(out.resizes >= 1);
    assert_eq!(out.final_state, nbody_sequential(seed, n, steps, dt));
    assert_eq!(slurm.lock().nodes_of(job) as usize, out.final_procs);
}
