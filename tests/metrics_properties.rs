//! Property tests for the measurement layer: the summaries that back
//! every reported number must be internally consistent, and the
//! streaming (bounded-memory) recorders must agree with the buffered
//! ones — bit-for-bit where the design promises it.

use proptest::prelude::*;

use dmr::metrics::{JobOutcome, LogHistogram, OnlineSeries, StepSeries, WorkloadSummary};
use dmr::sim::{SimTime, Span};

proptest! {
    /// The step-series integral equals the piecewise sum for any set of
    /// change points, and splitting the window never changes the total.
    #[test]
    fn integral_is_additive(
        mut points in proptest::collection::vec((0u64..10_000, 0u32..100), 1..50),
        split in 0u64..10_000,
    ) {
        points.sort();
        let mut s = StepSeries::new();
        let mut last_t = None;
        for &(t, v) in &points {
            if last_t == Some(t) {
                continue;
            }
            s.record(SimTime::from_secs(t), v as f64);
            last_t = Some(t);
        }
        let end = SimTime::from_secs(10_000);
        let whole = s.integral(SimTime::ZERO, end);
        let split_t = SimTime::from_secs(split);
        let parts = s.integral(SimTime::ZERO, split_t) + s.integral(split_t, end);
        prop_assert!((whole - parts).abs() < 1e-6, "{whole} vs {parts}");
        // Mean is bounded by the recorded extremes.
        let max = s.max_value();
        prop_assert!(s.mean(SimTime::ZERO, end) <= max + 1e-9);
    }

    /// Summary averages are means of the per-job quantities and the
    /// makespan covers every end time.
    #[test]
    fn summary_matches_manual_averages(
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..1000), 1..40)
    ) {
        let outcomes: Vec<JobOutcome> = raw
            .iter()
            .map(|&(submit, wait, run)| {
                JobOutcome::new(
                    SimTime::from_secs(submit),
                    SimTime::from_secs(submit + wait),
                    SimTime::from_secs(submit + wait + run),
                    0,
                )
            })
            .collect();
        let mut alloc = StepSeries::new();
        alloc.record(SimTime::ZERO, 1.0);
        let s = WorkloadSummary::compute(&outcomes, &alloc, 10);
        let n = outcomes.len() as f64;
        let wait: f64 = raw.iter().map(|&(_, w, _)| w as f64).sum::<f64>() / n;
        let run: f64 = raw.iter().map(|&(_, _, r)| r as f64).sum::<f64>() / n;
        prop_assert!((s.avg_waiting_s - wait).abs() < 1e-9);
        prop_assert!((s.avg_execution_s - run).abs() < 1e-9);
        prop_assert!((s.avg_completion_s - (wait + run)).abs() < 1e-9);
        // Makespan spans first submission to last completion: every
        // completion lands inside `[first_submit, first_submit + makespan]`.
        let first_submit = outcomes.iter().map(|o| o.submit).fold(f64::INFINITY, f64::min);
        let last_end = outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
        prop_assert!((s.makespan_s - (last_end - first_submit)).abs() < 1e-9);
        for o in &outcomes {
            prop_assert!(o.end <= first_submit + s.makespan_s + 1e-9);
        }
    }

    /// The online accumulator's integral / mean / max / change count match
    /// the buffered [`StepSeries`] **bit-for-bit** over arbitrary record
    /// sequences — including same-instant overwrites and value repeats,
    /// which both sides must coalesce identically.
    #[test]
    fn online_series_matches_buffered_bit_for_bit(
        mut points in proptest::collection::vec((0u64..5_000, 0u32..60), 1..80),
        tail in 0u64..1_000,
    ) {
        points.sort_by_key(|&(t, _)| t);
        let mut buffered = StepSeries::new();
        let mut online = OnlineSeries::new();
        for &(t, v) in &points {
            buffered.record(SimTime::from_secs(t), v as f64);
            online.record(SimTime::from_secs(t), v as f64);
        }
        let last_t = points.last().expect("non-empty").0;
        let end = SimTime::from_secs(last_t + tail);
        let b = buffered.integral(SimTime::ZERO, end);
        let o = online.integral_to(end);
        prop_assert_eq!(b.to_bits(), o.to_bits(), "integral {} vs {}", b, o);
        let (bm, om) = (buffered.mean(SimTime::ZERO, end), online.mean_to(end));
        prop_assert_eq!(bm.to_bits(), om.to_bits(), "mean {} vs {}", bm, om);
        prop_assert_eq!(
            buffered.max_value().to_bits(),
            online.max_value().to_bits(),
            "max {} vs {}", buffered.max_value(), online.max_value()
        );
        prop_assert_eq!(buffered.len(), online.changes(), "change counts");
    }

    /// Histogram percentiles bound the exact sorted-vector order
    /// statistics from above, within one bin width.
    #[test]
    fn histogram_percentiles_bound_exact_order_statistics(
        micros in proptest::collection::vec(0u64..2_000_000_000, 1..120),
        q_raw in 0u32..101,
    ) {
        let mut hist = LogHistogram::new();
        let mut sorted = micros.clone();
        sorted.sort_unstable();
        for &us in &micros {
            hist.record(Span(us));
        }
        let q = q_raw as f64;
        let n = sorted.len() as u64;
        let rank = ((q / 100.0 * n as f64).ceil() as u64).clamp(1, n);
        let exact_us = sorted[(rank - 1) as usize];
        let exact_s = exact_us as f64 / 1e6;
        let p = hist.percentile_s(q);
        let width_s = LogHistogram::bin_width_us(exact_us) as f64 / 1e6;
        prop_assert!(
            p >= exact_s,
            "percentile {} undershoots exact {} at q={}", p, exact_s, q
        );
        prop_assert!(
            p <= exact_s + width_s,
            "percentile {} overshoots exact {} by more than bin width {} at q={}",
            p, exact_s, width_s, q
        );
        // Exact scalar quantities.
        prop_assert_eq!(hist.count(), n);
        prop_assert!((hist.max_s() - *sorted.last().unwrap() as f64 / 1e6).abs() == 0.0);
        prop_assert!((hist.min_s() - sorted[0] as f64 / 1e6).abs() == 0.0);
        let mean_exact = sorted.iter().map(|&v| v as u128).sum::<u128>() as f64
            / n as f64
            / 1e6;
        prop_assert!((hist.mean_s() - mean_exact).abs() < 1e-9);
    }
}
