//! Property tests for the measurement layer: the summaries that back
//! every reported number must be internally consistent.

use proptest::prelude::*;

use dmr::metrics::{JobOutcome, StepSeries, WorkloadSummary};
use dmr::sim::SimTime;

proptest! {
    /// The step-series integral equals the piecewise sum for any set of
    /// change points, and splitting the window never changes the total.
    #[test]
    fn integral_is_additive(
        mut points in proptest::collection::vec((0u64..10_000, 0u32..100), 1..50),
        split in 0u64..10_000,
    ) {
        points.sort();
        let mut s = StepSeries::new();
        let mut last_t = None;
        for &(t, v) in &points {
            if last_t == Some(t) {
                continue;
            }
            s.record(SimTime::from_secs(t), v as f64);
            last_t = Some(t);
        }
        let end = SimTime::from_secs(10_000);
        let whole = s.integral(SimTime::ZERO, end);
        let split_t = SimTime::from_secs(split);
        let parts = s.integral(SimTime::ZERO, split_t) + s.integral(split_t, end);
        prop_assert!((whole - parts).abs() < 1e-6, "{whole} vs {parts}");
        // Mean is bounded by the recorded extremes.
        let max = s.max_value();
        prop_assert!(s.mean(SimTime::ZERO, end) <= max + 1e-9);
    }

    /// Summary averages are means of the per-job quantities and the
    /// makespan covers every end time.
    #[test]
    fn summary_matches_manual_averages(
        raw in proptest::collection::vec((0u64..1000, 0u64..1000, 0u64..1000), 1..40)
    ) {
        let outcomes: Vec<JobOutcome> = raw
            .iter()
            .map(|&(submit, wait, run)| {
                JobOutcome::new(
                    SimTime::from_secs(submit),
                    SimTime::from_secs(submit + wait),
                    SimTime::from_secs(submit + wait + run),
                    0,
                )
            })
            .collect();
        let mut alloc = StepSeries::new();
        alloc.record(SimTime::ZERO, 1.0);
        let s = WorkloadSummary::compute(&outcomes, &alloc, 10);
        let n = outcomes.len() as f64;
        let wait: f64 = raw.iter().map(|&(_, w, _)| w as f64).sum::<f64>() / n;
        let run: f64 = raw.iter().map(|&(_, _, r)| r as f64).sum::<f64>() / n;
        prop_assert!((s.avg_waiting_s - wait).abs() < 1e-9);
        prop_assert!((s.avg_execution_s - run).abs() < 1e-9);
        prop_assert!((s.avg_completion_s - (wait + run)).abs() < 1e-9);
        for o in &outcomes {
            prop_assert!(o.end <= s.makespan_s + 1e-9);
        }
    }
}
