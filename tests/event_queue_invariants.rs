//! Property tests for [`dmr::sim::EventQueue`]: time-ordered pops, FIFO
//! among same-instant events, and cancellation that never resurrects or
//! leaks entries — the invariants the whole discrete-event driver (and
//! therefore sweep determinism) rests on. Every invariant runs against
//! *both* backends (the binary heap and the hierarchical timer wheel),
//! and a dedicated cross-backend property drives one random op sequence
//! — pushes in both event classes, tombstone cancellations, interleaved
//! pops that trigger compaction — through both queues and requires the
//! full pop traces to be identical.

use dmr::sim::queue::{EventQueue, QueueKind, CLASS_EARLY, CLASS_NORMAL};
use dmr::sim::SimTime;
use proptest::prelude::*;

const KINDS: [QueueKind; 2] = [QueueKind::BinaryHeap, QueueKind::TimerWheel];

/// Replays a random schedule: `ops` is a list of (time, cancel_hint)
/// pairs; every pair pushes an event, and `cancel_hint` (mod pushed so
/// far) optionally cancels an earlier one.
fn replay(kind: QueueKind, ops: &[(u64, u64, bool)]) -> (Vec<(SimTime, usize)>, usize) {
    let mut q: EventQueue<usize> = EventQueue::with_kind(kind);
    let mut keys = Vec::new();
    let mut cancelled = std::collections::HashSet::new();
    for (seq, &(time, hint, do_cancel)) in ops.iter().enumerate() {
        keys.push(q.push(SimTime(time), seq));
        if do_cancel {
            let victim = (hint as usize) % keys.len();
            if q.cancel(keys[victim]).is_some() {
                cancelled.insert(victim);
            }
        }
    }
    let mut popped = Vec::new();
    while let Some((t, e)) = q.pop() {
        popped.push((t, e));
    }
    (popped, ops.len() - cancelled.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pops_are_time_ordered_and_fifo_within_ties(
        ops in proptest::collection::vec((0u64..50, 0u64..100, proptest::bool::ANY), 1..60),
    ) {
        for kind in KINDS {
            let (popped, live) = replay(kind, &ops);
            // Every live event pops exactly once; cancelled ones never do.
            prop_assert_eq!(popped.len(), live, "{:?}", kind);
            for win in popped.windows(2) {
                let (t0, e0) = win[0];
                let (t1, e1) = win[1];
                // Non-decreasing time.
                prop_assert!(t0 <= t1, "{:?} went backwards: {:?} then {:?}", kind, t0, t1);
                // FIFO among equal instants: insertion sequence must rise.
                if t0 == t1 {
                    prop_assert!(e0 < e1, "{:?} tie at {:?} popped {} before {}", kind, t0, e0, e1);
                }
            }
            // Each popped event carries the time it was pushed with.
            for &(t, e) in &popped {
                prop_assert_eq!(t, SimTime(ops[e].0));
            }
        }
    }

    #[test]
    fn compaction_bounds_storage_and_preserves_pop_order(
        ops in proptest::collection::vec(
            (0u64..50, 0u64..100, proptest::bool::ANY, proptest::bool::ANY),
            1..120,
        ),
    ) {
        for kind in KINDS {
            // Reference model: a plain list of (time, seq, alive) entries
            // that never compacts — pops take the minimum (time, seq)
            // alive entry, exactly the queue's CLASS_NORMAL contract.
            let mut model: Vec<(u64, usize, bool)> = Vec::new();
            let model_pop = |model: &mut Vec<(u64, usize, bool)>| -> Option<(SimTime, usize)> {
                let best = model
                    .iter()
                    .enumerate()
                    .filter(|(_, &(_, _, alive))| alive)
                    .min_by_key(|(_, &(time, seq, _))| (time, seq))
                    .map(|(i, _)| i)?;
                model[best].2 = false;
                Some((SimTime(model[best].0), model[best].1))
            };

            let mut q: EventQueue<usize> = EventQueue::with_kind(kind);
            let mut keys = Vec::new();
            for (seq, &(time, hint, do_cancel, do_pop)) in ops.iter().enumerate() {
                keys.push(q.push(SimTime(time), seq));
                model.push((time, seq, true));
                if do_cancel {
                    let victim = (hint as usize) % keys.len();
                    if q.cancel(keys[victim]).is_some() {
                        model[victim].2 = false;
                    }
                }
                if do_pop {
                    prop_assert_eq!(q.pop(), model_pop(&mut model));
                }
                // The compaction bound: dead stored entries never
                // outnumber live ones, after every single operation.
                prop_assert!(
                    q.heap_len() <= 2 * q.len(),
                    "{:?} stored {} exceeds 2x live {} after op {}",
                    kind,
                    q.heap_len(),
                    q.len(),
                    seq
                );
            }
            // Drain both to the end: order identical to the
            // never-compacting reference, bound maintained throughout.
            loop {
                let got = q.pop();
                prop_assert_eq!(got, model_pop(&mut model));
                prop_assert!(q.heap_len() <= 2 * q.len());
                if got.is_none() {
                    break;
                }
            }
            prop_assert_eq!(q.heap_len(), 0, "drained {:?} retains tombstones", kind);
        }
    }

    #[test]
    fn len_tracks_live_entries_through_cancellation(
        ops in proptest::collection::vec((0u64..20, 0u64..100, proptest::bool::ANY), 1..40),
    ) {
        for kind in KINDS {
            let mut q: EventQueue<usize> = EventQueue::with_kind(kind);
            let mut keys = Vec::new();
            let mut live = 0usize;
            for (seq, &(time, hint, do_cancel)) in ops.iter().enumerate() {
                keys.push(q.push(SimTime(time), seq));
                live += 1;
                if do_cancel {
                    let victim = (hint as usize) % keys.len();
                    if q.cancel(keys[victim]).is_some() {
                        live -= 1;
                    }
                    // Double cancellation is a no-op.
                    prop_assert!(q.cancel(keys[victim]).is_none());
                }
                prop_assert_eq!(q.len(), live);
                prop_assert_eq!(q.is_empty(), live == 0);
            }
        }
    }

    /// The timer wheel is a drop-in replacement for the binary heap: one
    /// random op sequence — both event classes, far-future times that
    /// exercise cascading across wheel levels, tombstone cancellations
    /// interleaved with pops (which trigger compaction on either side) —
    /// produces byte-identical pop traces and head peeks on both.
    #[test]
    fn wheel_and_heap_pop_identical_traces(
        ops in proptest::collection::vec(
            (0u64..1 << 40, proptest::bool::ANY, 0u64..100, 0u8..4),
            1..150,
        ),
    ) {
        let mut heap: EventQueue<usize> = EventQueue::with_kind(QueueKind::BinaryHeap);
        let mut wheel: EventQueue<usize> = EventQueue::with_kind(QueueKind::TimerWheel);
        let mut heap_keys = Vec::new();
        let mut wheel_keys = Vec::new();
        let mut trace_h = Vec::new();
        let mut trace_w = Vec::new();
        for (seq, &(time, early, hint, action)) in ops.iter().enumerate() {
            let class = if early { CLASS_EARLY } else { CLASS_NORMAL };
            heap_keys.push(heap.push_with_class(SimTime(time), class, seq));
            wheel_keys.push(wheel.push_with_class(SimTime(time), class, seq));
            match action {
                // Cancel the same victim in both queues.
                0 => {
                    let victim = (hint as usize) % heap_keys.len();
                    prop_assert_eq!(
                        heap.cancel(heap_keys[victim]),
                        wheel.cancel(wheel_keys[victim])
                    );
                }
                // Pop one event from each and compare immediately.
                1 => {
                    trace_h.extend(heap.pop());
                    trace_w.extend(wheel.pop());
                }
                // Peek must agree without disturbing either queue.
                2 => prop_assert_eq!(heap.peek_head(), wheel.peek_head()),
                _ => {}
            }
            prop_assert_eq!(heap.len(), wheel.len(), "live counts diverged at op {}", seq);
        }
        while let Some(ev) = heap.pop() {
            trace_h.push(ev);
        }
        while let Some(ev) = wheel.pop() {
            trace_w.push(ev);
        }
        prop_assert_eq!(trace_h, trace_w, "pop traces diverged");
        prop_assert!(wheel.is_empty() && heap.is_empty());
    }
}

/// Regression for the kill-and-requeue stale-event path: when a node
/// failure kills a running job, the driver cancels the dead
/// incarnation's pending completion *and* the timeout of any resizer it
/// was waiting on, then schedules the requeued incarnation's events.
/// Neither tombstone may ever fire, cancel a second time, or disturb
/// the surviving events — on either backend.
#[test]
fn killed_jobs_stale_events_never_fire() {
    for kind in KINDS {
        let mut q: EventQueue<&'static str> = EventQueue::with_kind(kind);
        // The doomed incarnation: a completion far out and a resize
        // timeout before it; an unrelated job's completion in between.
        let completion = q.push(SimTime(900), "victim-completion");
        let resize = q.push(SimTime(300), "victim-resize-timeout");
        let other = q.push(SimTime(500), "other-completion");
        // The failure lands at t=100: cancel both victim events.
        assert_eq!(q.cancel(completion), Some("victim-completion"), "{kind:?}");
        assert_eq!(q.cancel(resize), Some("victim-resize-timeout"), "{kind:?}");
        // Double-cancel is inert; the tombstoned keys stay dead.
        assert!(q.cancel(completion).is_none(), "{kind:?}");
        assert!(q.cancel(resize).is_none(), "{kind:?}");
        // The requeued incarnation schedules a fresh completion.
        let requeued = q.push(SimTime(1200), "requeue-completion");
        // Only live events pop, in time order — no stale firing.
        assert_eq!(
            q.pop(),
            Some((SimTime(500), "other-completion")),
            "{kind:?}"
        );
        assert_eq!(
            q.pop(),
            Some((SimTime(1200), "requeue-completion")),
            "{kind:?}"
        );
        assert_eq!(q.pop(), None, "{kind:?}");
        // Cancelling an already-popped key is a no-op that cannot
        // resurrect or corrupt anything.
        assert!(q.cancel(requeued).is_none(), "{kind:?}");
        assert!(q.cancel(other).is_none(), "{kind:?}");
        assert!(q.is_empty(), "{kind:?}");
        assert_eq!(q.heap_len(), 0, "{kind:?} retains tombstones after drain");
    }
}
