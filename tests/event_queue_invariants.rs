//! Property tests for [`dmr::sim::EventQueue`]: time-ordered pops, FIFO
//! among same-instant events, and cancellation that never resurrects or
//! leaks entries — the invariants the whole discrete-event driver (and
//! therefore sweep determinism) rests on.

use dmr::sim::queue::EventQueue;
use dmr::sim::SimTime;
use proptest::prelude::*;

/// Replays a random schedule: `ops` is a list of (time, cancel_hint)
/// pairs; every pair pushes an event, and `cancel_hint` (mod pushed so
/// far) optionally cancels an earlier one.
fn replay(ops: &[(u64, u64, bool)]) -> (Vec<(SimTime, usize)>, usize) {
    let mut q: EventQueue<usize> = EventQueue::new();
    let mut keys = Vec::new();
    let mut cancelled = std::collections::HashSet::new();
    for (seq, &(time, hint, do_cancel)) in ops.iter().enumerate() {
        keys.push(q.push(SimTime(time), seq));
        if do_cancel {
            let victim = (hint as usize) % keys.len();
            if q.cancel(keys[victim]).is_some() {
                cancelled.insert(victim);
            }
        }
    }
    let mut popped = Vec::new();
    while let Some((t, e)) = q.pop() {
        popped.push((t, e));
    }
    (popped, ops.len() - cancelled.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pops_are_time_ordered_and_fifo_within_ties(
        ops in proptest::collection::vec((0u64..50, 0u64..100, proptest::bool::ANY), 1..60),
    ) {
        let (popped, live) = replay(&ops);
        // Every live event pops exactly once; cancelled ones never do.
        prop_assert_eq!(popped.len(), live);
        for win in popped.windows(2) {
            let (t0, e0) = win[0];
            let (t1, e1) = win[1];
            // Non-decreasing time.
            prop_assert!(t0 <= t1, "queue went backwards: {:?} then {:?}", t0, t1);
            // FIFO among equal instants: insertion sequence must rise.
            if t0 == t1 {
                prop_assert!(e0 < e1, "tie at {:?} popped {} before {}", t0, e0, e1);
            }
        }
        // Each popped event carries the time it was pushed with.
        for &(t, e) in &popped {
            prop_assert_eq!(t, SimTime(ops[e].0));
        }
    }

    #[test]
    fn compaction_bounds_heap_and_preserves_pop_order(
        ops in proptest::collection::vec(
            (0u64..50, 0u64..100, proptest::bool::ANY, proptest::bool::ANY),
            1..120,
        ),
    ) {
        // Reference model: a plain list of (time, seq, alive) entries
        // that never compacts — pops take the minimum (time, seq) alive
        // entry, exactly the queue's CLASS_NORMAL contract.
        let mut model: Vec<(u64, usize, bool)> = Vec::new();
        let model_pop = |model: &mut Vec<(u64, usize, bool)>| -> Option<(SimTime, usize)> {
            let best = model
                .iter()
                .enumerate()
                .filter(|(_, &(_, _, alive))| alive)
                .min_by_key(|(_, &(time, seq, _))| (time, seq))
                .map(|(i, _)| i)?;
            model[best].2 = false;
            Some((SimTime(model[best].0), model[best].1))
        };

        let mut q: EventQueue<usize> = EventQueue::new();
        let mut keys = Vec::new();
        for (seq, &(time, hint, do_cancel, do_pop)) in ops.iter().enumerate() {
            keys.push(q.push(SimTime(time), seq));
            model.push((time, seq, true));
            if do_cancel {
                let victim = (hint as usize) % keys.len();
                if q.cancel(keys[victim]).is_some() {
                    model[victim].2 = false;
                }
            }
            if do_pop {
                prop_assert_eq!(q.pop(), model_pop(&mut model));
            }
            // The compaction bound: dead heap entries never outnumber
            // live ones, after every single operation.
            prop_assert!(
                q.heap_len() <= 2 * q.len(),
                "heap {} exceeds 2x live {} after op {}",
                q.heap_len(),
                q.len(),
                seq
            );
        }
        // Drain both to the end: order identical to the never-compacting
        // reference, bound maintained throughout.
        loop {
            let got = q.pop();
            prop_assert_eq!(got, model_pop(&mut model));
            prop_assert!(q.heap_len() <= 2 * q.len());
            if got.is_none() {
                break;
            }
        }
        prop_assert_eq!(q.heap_len(), 0, "drained queue retains tombstones");
    }

    #[test]
    fn len_tracks_live_entries_through_cancellation(
        ops in proptest::collection::vec((0u64..20, 0u64..100, proptest::bool::ANY), 1..40),
    ) {
        let mut q: EventQueue<usize> = EventQueue::new();
        let mut keys = Vec::new();
        let mut live = 0usize;
        for (seq, &(time, hint, do_cancel)) in ops.iter().enumerate() {
            keys.push(q.push(SimTime(time), seq));
            live += 1;
            if do_cancel {
                let victim = (hint as usize) % keys.len();
                if q.cancel(keys[victim]).is_some() {
                    live -= 1;
                }
                // Double cancellation is a no-op.
                prop_assert!(q.cancel(keys[victim]).is_none());
            }
            prop_assert_eq!(q.len(), live);
            prop_assert_eq!(q.is_empty(), live == 0);
        }
    }
}
