//! Property test: [`dmr::slurm::Algorithm1`] behind the [`ResizePolicy`]
//! trait is decision-identical to the pre-refactor inline implementation.
//!
//! `reference_decide` below is a faithful transcription of the original
//! `Slurm::decide_resize` body (the inline Algorithm 1 that lived in
//! `crates/slurm/src/policy.rs` before the mechanism/policy split),
//! expressed over the scheduler's public read API. The property drives
//! randomized queue/cluster states and checks that the trait-object path
//! returns exactly the same verdict for every running job.

use dmr::sim::SimTime;
use dmr::slurm::{JobId, JobRequest, JobState, ResizeAction, ResizeEnvelope, Slurm};
use dmr_cluster::Cluster;
use proptest::prelude::*;

/// The pre-refactor Algorithm 1, verbatim (minus the boost side effect,
/// which the mechanism applies after the decision in both versions).
fn reference_decide(s: &Slurm, id: JobId, now: SimTime) -> ResizeAction {
    let Some(job) = s.job(id) else {
        return ResizeAction::NoAction;
    };
    if job.state != JobState::Running {
        return ResizeAction::NoAction;
    }
    let Some(env) = job.resize else {
        return ResizeAction::NoAction;
    };
    let current = s.nodes_of(id);
    let free = s.cluster().free_nodes();
    let pending = s.pending_queue(now);

    if let Some(pref) = env.preferred {
        if pending.is_empty() && s.running_count() == 1 {
            match env.max_procs_to(current, env.max, free) {
                Some(t) => ResizeAction::Expand { to: t },
                None => ResizeAction::NoAction,
            }
        } else if pref == current {
            ResizeAction::NoAction
        } else if pref > current {
            match env.max_procs_to(current, pref, free) {
                Some(t) => ResizeAction::Expand { to: t },
                None => reference_wide(s, current, free, &pending, env),
            }
        } else if env.can_shrink_to(current, pref) {
            ResizeAction::Shrink {
                to: pref,
                beneficiary: None,
            }
        } else {
            reference_wide(s, current, free, &pending, env)
        }
    } else {
        reference_wide(s, current, free, &pending, env)
    }
}

fn reference_wide(
    s: &Slurm,
    current: u32,
    free: u32,
    pending: &[JobId],
    env: ResizeEnvelope,
) -> ResizeAction {
    if !pending.is_empty() {
        for &cand in pending {
            let req = s.job(cand).map(|j| j.requested_nodes).unwrap_or(0);
            let missing = req.saturating_sub(free);
            if missing == 0 {
                continue;
            }
            if let Some(to) = env
                .shrink_chain(current)
                .into_iter()
                .find(|to| current - to >= missing)
            {
                return ResizeAction::Shrink {
                    to,
                    beneficiary: Some(cand),
                };
            }
        }
        match env.max_procs_to(current, env.max, free) {
            Some(t) => ResizeAction::Expand { to: t },
            None => ResizeAction::NoAction,
        }
    } else {
        match env.max_procs_to(current, env.max, free) {
            Some(t) => ResizeAction::Expand { to: t },
            None => ResizeAction::NoAction,
        }
    }
}

/// Builds a randomized scheduler state: `nodes`-node cluster, a batch of
/// jobs of mixed rigidity/sizes/preferences submitted over staggered
/// instants with scheduling cycles in between, so some run, some queue.
fn build_state(nodes: u32, jobs: &[(u32, bool, u32, u32, bool)]) -> (Slurm, SimTime) {
    let mut s = Slurm::with_cluster(Cluster::new(nodes, 16));
    let mut now = SimTime::ZERO;
    for (i, &(size, flexible, min, max, prefer)) in jobs.iter().enumerate() {
        let size = size.clamp(1, nodes);
        let req = if flexible {
            let min = min.clamp(1, size);
            let max = max.clamp(size, nodes.max(size));
            JobRequest::flexible(
                format!("j{i}"),
                size,
                ResizeEnvelope {
                    min,
                    max,
                    preferred: prefer.then_some(min.midpoint(max)),
                    factor: 2,
                },
            )
        } else {
            JobRequest::rigid(format!("j{i}"), size)
        };
        now = SimTime::from_secs(i as u64 * 3);
        s.submit(req, now);
        s.schedule(now);
    }
    let decision_time = now + dmr::sim::Span::from_secs(5);
    (s, decision_time)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn algorithm1_trait_matches_inline_reference(
        nodes in 4u32..66,
        jobs in proptest::collection::vec(
            (1u32..20, proptest::bool::ANY, 1u32..8, 4u32..33, proptest::bool::ANY),
            1..12,
        ),
    ) {
        let (mut s, now) = build_state(nodes, &jobs);
        let ids: Vec<JobId> = s
            .jobs()
            .filter(|j| j.state == JobState::Running)
            .map(|j| j.id)
            .collect();
        for id in ids {
            // Reference first (pure read), then the trait path; the boost
            // side effect lands after both saw the same state.
            let expected = reference_decide(&s, id, now);
            let actual = s.decide_resize(id, now);
            prop_assert_eq!(
                actual,
                expected,
                "job {:?} on {} nodes with workload {:?}",
                id,
                nodes,
                &jobs
            );
        }
    }

    #[test]
    fn non_running_and_rigid_jobs_always_no_action(
        nodes in 4u32..33,
        jobs in proptest::collection::vec(
            (1u32..20, proptest::bool::ANY, 1u32..8, 4u32..33, proptest::bool::ANY),
            1..10,
        ),
    ) {
        let (mut s, now) = build_state(nodes, &jobs);
        let ids: Vec<(JobId, bool, bool)> = s
            .jobs()
            .map(|j| (j.id, j.state == JobState::Running, j.resize.is_some()))
            .collect();
        for (id, running, flexible) in ids {
            if !running || !flexible {
                prop_assert_eq!(s.decide_resize(id, now), ResizeAction::NoAction);
            }
        }
    }
}
