//! Property test: every scheduler hot path is bit-identical to the
//! pre-index scan reference.
//!
//! PR "index the scheduler hot path" replaced every per-pass scan with an
//! incremental structure: the pending queue became an ordered index keyed
//! by `(boosted, submit, seq)` (exact because the multifactor age term
//! grows uniformly), backfill reservations walk a running-jobs end-time
//! index, dead resizers are reaped through a reverse-dependency map, and
//! node selection takes the lowest run of a sorted free set. The arena PR
//! stacked a third path on top: slab job storage keyed by generation-
//! checked dense ids, a hierarchical timer-wheel event queue, and
//! same-instant scheduling-pass batching in the driver. The old
//! implementations survive behind [`dmr::slurm::SchedIndex::ScanReference`]
//! as the oracle (with the PR 5 structures as `SchedIndex::Indexed`);
//! this suite drives *full experiments* — every workload family × every
//! resize policy × fixed/flexible × sync/async — through all three paths
//! and requires pairwise bit-identical results, down to the raw f64 bits
//! of every summary field and the exact bytes of the sweep CSV row.

use dmr::core::{
    run_experiment_streaming, ExperimentConfig, ExperimentResult, PolicyKind, WorkloadKind,
};
use dmr_bench::scenario::{smoke_registry, Scenario};
use dmr_bench::sweep::SweepCell;
use proptest::prelude::*;

fn kind_for(kind: u8) -> WorkloadKind {
    match kind % 5 {
        0 => WorkloadKind::FsPreliminary,
        1 => WorkloadKind::FsMicroSteps,
        2 => WorkloadKind::RealMix,
        3 => WorkloadKind::burst(),
        _ => WorkloadKind::diurnal(),
    }
}

fn policy_for(policy: u8) -> PolicyKind {
    match policy % 3 {
        0 => PolicyKind::Algorithm1,
        1 => PolicyKind::utilization_target(),
        _ => PolicyKind::fair_share(),
    }
}

/// One sweep-style CSV row for a result (fixed labels: only the numbers
/// — i.e. the scheduling outcome — can differ between the two paths).
fn csv_row(kind: WorkloadKind, cfg: &ExperimentConfig, seed: u64, r: &ExperimentResult) -> String {
    SweepCell {
        scenario: "equivalence".into(),
        workload: kind.name(),
        policy: cfg.policy.label(),
        mode: "sync",
        backfill: cfg.backfill_family.label(),
        machine_mix: cfg.machine_mix.name(),
        faults: cfg.faults.name(),
        seed,
        nodes: cfg.nodes,
        summary: r.summary.clone(),
        events: r.events,
        past_schedules: r.past_schedules,
    }
    .csv_row()
}

fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), String> {
    let sa = &a.summary;
    let sb = &b.summary;
    prop_assert_eq!(sa.jobs, sb.jobs);
    prop_assert_eq!(sa.reconfigurations, sb.reconfigurations);
    // Raw-bit float comparison: even sub-rounding divergence fails.
    for (x, y, what) in [
        (sa.makespan_s, sb.makespan_s, "makespan"),
        (sa.utilization, sb.utilization, "utilization"),
        (sa.avg_waiting_s, sb.avg_waiting_s, "avg_wait"),
        (sa.avg_execution_s, sb.avg_execution_s, "avg_exec"),
        (sa.avg_completion_s, sb.avg_completion_s, "avg_compl"),
        (sa.waiting_q.p50_s, sb.waiting_q.p50_s, "p50_wait"),
        (sa.waiting_q.p99_s, sb.waiting_q.p99_s, "p99_wait"),
        (sa.execution_q.p95_s, sb.execution_q.p95_s, "p95_exec"),
        (sa.completion_q.p99_s, sb.completion_q.p99_s, "p99_compl"),
    ] {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverged: {} vs {}",
            what,
            x,
            y
        );
    }
    prop_assert_eq!(a.events, b.events, "event streams diverged");
    prop_assert_eq!(a.past_schedules, b.past_schedules);
    prop_assert_eq!(a.end_time, b.end_time);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn indexed_experiments_match_scan_reference_bit_for_bit(
        seed in 0u64..10_000,
        jobs in 1u32..26,
        kind in 0u8..5,
        policy in 0u8..3,
        asynchronous in 0u8..2,
        fixed in 0u8..2,
    ) {
        let kind = kind_for(kind);
        let mut cfg = ExperimentConfig::preliminary()
            .with_policy(policy_for(policy))
            .online();
        if asynchronous == 1 {
            cfg = cfg.asynchronous();
        }
        if fixed == 1 {
            cfg = cfg.as_fixed();
        }
        let arena = run_experiment_streaming(&cfg, kind.build(jobs, seed).as_mut());
        let indexed = run_experiment_streaming(
            &cfg.indexed_reference(),
            kind.build(jobs, seed).as_mut(),
        );
        let scan = run_experiment_streaming(
            &cfg.scan_reference(),
            kind.build(jobs, seed).as_mut(),
        );
        assert_bit_identical(&arena, &indexed)?;
        assert_bit_identical(&indexed, &scan)?;
        // Incremental scheduling off (the costed baseline) must be
        // bit-identical on both hot paths that elide passes.
        let arena_off = run_experiment_streaming(
            &cfg.incremental_off(),
            kind.build(jobs, seed).as_mut(),
        );
        let indexed_off = run_experiment_streaming(
            &cfg.indexed_reference().incremental_off(),
            kind.build(jobs, seed).as_mut(),
        );
        assert_bit_identical(&arena, &arena_off)?;
        assert_bit_identical(&indexed, &indexed_off)?;
        // The derived sweep CSV rows must be byte-identical too.
        let row = csv_row(kind, &cfg, seed, &arena);
        prop_assert_eq!(&row, &csv_row(kind, &cfg, seed, &indexed));
        prop_assert_eq!(&row, &csv_row(kind, &cfg, seed, &scan));
        prop_assert_eq!(&row, &csv_row(kind, &cfg, seed, &arena_off));
    }
}

// The buffered (Full-telemetry) path pins per-job outcomes as well.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn indexed_outcomes_match_scan_reference(seed in 0u64..1000, jobs in 1u32..20) {
        let cfg = ExperimentConfig::preliminary();
        let kind = WorkloadKind::FsPreliminary;
        let arena = run_experiment_streaming(&cfg, kind.build(jobs, seed).as_mut());
        let indexed = run_experiment_streaming(
            &cfg.indexed_reference(),
            kind.build(jobs, seed).as_mut(),
        );
        let scan = run_experiment_streaming(
            &cfg.scan_reference(),
            kind.build(jobs, seed).as_mut(),
        );
        prop_assert_eq!(arena.outcomes.len(), scan.outcomes.len());
        prop_assert_eq!(indexed.outcomes.len(), scan.outcomes.len());
        for ((x, y), z) in arena.outcomes.iter().zip(&indexed.outcomes).zip(&scan.outcomes) {
            prop_assert_eq!(x.submit, z.submit);
            prop_assert_eq!(x.start, z.start);
            prop_assert_eq!(x.end, z.end);
            prop_assert_eq!(x.reconfigurations, z.reconfigurations);
            prop_assert_eq!(y.submit, z.submit);
            prop_assert_eq!(y.start, z.start);
            prop_assert_eq!(y.end, z.end);
            prop_assert_eq!(y.reconfigurations, z.reconfigurations);
        }
        assert_bit_identical(&arena, &indexed)?;
        assert_bit_identical(&indexed, &scan)?;
    }
}

/// Every cell of the CI scenario grid — all workload families × policies
/// × modes — produces byte-identical sweep CSV rows under both hot
/// paths.
#[test]
fn smoke_registry_sweep_rows_are_byte_identical_across_hot_paths() {
    let seed = dmr_bench::SEED;
    for sc in smoke_registry() {
        let row = |cfg: &ExperimentConfig| {
            let mut source = sc.source(seed);
            let r = run_experiment_streaming(cfg, source.as_mut());
            let sc_row = SweepCell {
                scenario: Scenario::name(&sc),
                workload: sc.workload.name(),
                policy: sc.policy.label(),
                mode: "grid",
                backfill: sc.backfill.name(),
                machine_mix: sc.mix.name(),
                faults: sc.faults.name(),
                seed,
                nodes: sc.nodes,
                summary: r.summary,
                events: r.events,
                past_schedules: r.past_schedules,
            };
            sc_row.csv_row()
        };
        let cfg = sc.config();
        let arena_row = row(&cfg);
        assert_eq!(
            arena_row,
            row(&cfg.indexed_reference()),
            "scenario {} diverged between arena and indexed paths",
            sc.name()
        );
        assert_eq!(
            arena_row,
            row(&cfg.scan_reference()),
            "scenario {} diverged between arena and scan paths",
            sc.name()
        );
        assert_eq!(
            arena_row,
            row(&cfg.incremental_off()),
            "scenario {} diverged between incremental on and off",
            sc.name()
        );
    }
}
