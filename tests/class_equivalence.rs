//! Heterogeneous-machine equivalence suite.
//!
//! PR "machine classes + energy model" refactored the uniform-node
//! assumption out of every layer: the cluster grew a [`ClassTable`] with
//! per-class free sets and a power meter, the scheduler grew per-class
//! slot-set timelines and class-constrained passes, and the driver grew
//! class-aware placement, speed scaling and power management. The
//! uniform single-class configuration is the equivalence oracle: a
//! cluster built through [`MachineMix::SingleClass`] (the general
//! multi-class construction path with exactly one standard class) must
//! reproduce the legacy [`MachineMix::Uniform`] results **bit-for-bit**
//! — raw f64 bits of every summary field, per-job outcomes, and the
//! exact bytes of the sweep CSV row — across the whole workload × policy
//! × mode × backfill matrix.
//!
//! The suite also pins the two behavior knobs the PR added:
//! [`ExperimentConfig::hole_guard`] must be invisible to Algorithm 1
//! (which never consults the timeline before growing), and the per-class
//! free-set allocator must agree with a brute-force model under
//! randomized allocate/release/power sequences that cross class
//! boundaries.

use dmr::cluster::{ClassConstraint, ClassTable, Cluster, MachineClass, NodeState};
use dmr::core::{
    run_experiment_streaming, ExperimentConfig, ExperimentResult, MachineMix, PolicyKind,
};
use dmr_bench::scenario::smoke_registry;
use dmr_bench::sweep::SweepCell;
use proptest::prelude::*;

fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult, what: &str) {
    let sa = &a.summary;
    let sb = &b.summary;
    assert_eq!(sa.jobs, sb.jobs, "{what}: job counts diverged");
    assert_eq!(sa.reconfigurations, sb.reconfigurations, "{what}");
    // Raw-bit float comparison: even sub-rounding divergence fails.
    for (x, y, field) in [
        (sa.makespan_s, sb.makespan_s, "makespan"),
        (sa.utilization, sb.utilization, "utilization"),
        (sa.avg_waiting_s, sb.avg_waiting_s, "avg_wait"),
        (sa.avg_execution_s, sb.avg_execution_s, "avg_exec"),
        (sa.avg_completion_s, sb.avg_completion_s, "avg_compl"),
        (sa.waiting_q.p50_s, sb.waiting_q.p50_s, "p50_wait"),
        (sa.waiting_q.p95_s, sb.waiting_q.p95_s, "p95_wait"),
        (sa.waiting_q.p99_s, sb.waiting_q.p99_s, "p99_wait"),
        (sa.execution_q.p95_s, sb.execution_q.p95_s, "p95_exec"),
        (sa.completion_q.p99_s, sb.completion_q.p99_s, "p99_compl"),
        (sa.energy_to_solution_j, sb.energy_to_solution_j, "energy_j"),
        (sa.avg_watts, sb.avg_watts, "avg_watts"),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: {field} diverged ({x} vs {y})"
        );
    }
    assert_eq!(a.events, b.events, "{what}: event streams diverged");
    assert_eq!(a.past_schedules, b.past_schedules, "{what}");
    assert_eq!(a.end_time, b.end_time, "{what}");
    // Per-job outcomes (empty under online telemetry, full otherwise —
    // either way they must agree).
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{what}");
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.submit.to_bits(), y.submit.to_bits(), "{what}");
        assert_eq!(x.start.to_bits(), y.start.to_bits(), "{what}");
        assert_eq!(x.end.to_bits(), y.end.to_bits(), "{what}");
        assert_eq!(x.reconfigurations, y.reconfigurations, "{what}");
    }
}

/// The sweep CSV row for a result under fixed labels, so the byte-level
/// comparison covers exactly the numeric columns.
fn csv_row(cfg: &ExperimentConfig, r: &ExperimentResult) -> String {
    SweepCell {
        scenario: "class-equivalence".into(),
        workload: "grid",
        policy: cfg.policy.label(),
        mode: "grid",
        backfill: cfg.backfill_family.label(),
        machine_mix: "oracle",
        faults: cfg.faults.name(),
        seed: dmr_bench::SEED,
        nodes: cfg.nodes,
        summary: r.summary.clone(),
        events: r.events,
        past_schedules: r.past_schedules,
    }
    .csv_row()
}

/// Every uniform cell of the CI grid — all workload families × all four
/// policies × both modes × every backfill selection — is bit-identical
/// when the cluster is built through the general multi-class path with
/// one class.
#[test]
fn single_class_matches_uniform_bit_for_bit_across_the_grid() {
    for sc in smoke_registry() {
        if sc.mix != MachineMix::Uniform {
            continue;
        }
        let cfg_uniform = sc.config();
        let cfg_single = cfg_uniform.with_machine_mix(MachineMix::SingleClass);
        let uniform = run_experiment_streaming(&cfg_uniform, sc.source(dmr_bench::SEED).as_mut());
        let single = run_experiment_streaming(&cfg_single, sc.source(dmr_bench::SEED).as_mut());
        assert_bit_identical(&uniform, &single, &sc.name());
        assert_eq!(
            csv_row(&cfg_uniform, &uniform),
            csv_row(&cfg_single, &single),
            "{}: CSV bytes diverged",
            sc.name()
        );
    }
}

/// Full (buffered) telemetry pins the complete per-job outcome lists on
/// a representative slice of the matrix.
#[test]
fn single_class_matches_uniform_outcomes_under_full_telemetry() {
    for sc in smoke_registry().iter().step_by(17) {
        if sc.mix != MachineMix::Uniform {
            continue;
        }
        let mut cfg_uniform = sc.config();
        cfg_uniform.telemetry = dmr::core::Telemetry::Full;
        let cfg_single = cfg_uniform.with_machine_mix(MachineMix::SingleClass);
        let uniform = run_experiment_streaming(&cfg_uniform, sc.source(dmr_bench::SEED).as_mut());
        let single = run_experiment_streaming(&cfg_single, sc.source(dmr_bench::SEED).as_mut());
        assert!(!uniform.outcomes.is_empty(), "{}", sc.name());
        assert_bit_identical(&uniform, &single, &sc.name());
    }
}

/// Algorithm 1 never consults the backfill timeline before growing, so
/// the hole guard must be invisible to it — on every machine mix.
#[test]
fn hole_guard_flag_is_invisible_to_algorithm1() {
    for sc in smoke_registry() {
        if sc.policy != PolicyKind::Algorithm1 {
            continue;
        }
        let cfg_on = sc.config();
        let cfg_off = cfg_on.hole_guard_off();
        assert!(cfg_on.hole_guard && !cfg_off.hole_guard);
        let on = run_experiment_streaming(&cfg_on, sc.source(dmr_bench::SEED).as_mut());
        let off = run_experiment_streaming(&cfg_off, sc.source(dmr_bench::SEED).as_mut());
        assert_bit_identical(&on, &off, &sc.name());
    }
}

/// A brute-force model of the per-class allocator: each node carries its
/// class, owner and power state; every query is answered by a full scan.
struct ModelCluster {
    class_of: Vec<usize>,
    owner: Vec<Option<u64>>,
    off: Vec<bool>,
}

impl ModelCluster {
    fn new(table: &ClassTable) -> Self {
        let class_of = (0..table.total_nodes())
            .map(|n| table.class_of(n))
            .collect();
        let n = table.total_nodes() as usize;
        ModelCluster {
            class_of,
            owner: vec![None; n],
            off: vec![false; n],
        }
    }

    fn free_in(&self, table: &ClassTable, constraint: ClassConstraint) -> u32 {
        (0..self.owner.len())
            .filter(|&n| {
                self.owner[n].is_none()
                    && !self.off[n]
                    && constraint.allows(self.class_of[n], table.class(self.class_of[n]))
            })
            .count() as u32
    }

    /// Lowest-id-first allocation within the eligible classes — the
    /// production allocator's contract.
    fn allocate_in(
        &mut self,
        table: &ClassTable,
        n: u32,
        owner: u64,
        constraint: ClassConstraint,
    ) -> Option<Vec<u32>> {
        if self.free_in(table, constraint) < n {
            return None;
        }
        let picked: Vec<u32> = (0..self.owner.len())
            .filter(|&i| {
                self.owner[i].is_none()
                    && !self.off[i]
                    && constraint.allows(self.class_of[i], table.class(self.class_of[i]))
            })
            .take(n as usize)
            .map(|i| i as u32)
            .collect();
        for &i in &picked {
            self.owner[i as usize] = Some(owner);
        }
        Some(picked)
    }

    fn release_all(&mut self, owner: u64) {
        for slot in &mut self.owner {
            if *slot == Some(owner) {
                *slot = None;
            }
        }
    }

    fn release_tail(&mut self, owner: u64, n: u32) {
        let held: Vec<usize> = (0..self.owner.len())
            .filter(|&i| self.owner[i] == Some(owner))
            .collect();
        for &i in held.iter().rev().take(n as usize) {
            self.owner[i] = None;
        }
    }

    /// Highest-id-first suspension of free nodes — the production
    /// power-down order.
    fn power_down(&mut self, n: u32) -> u32 {
        let free: Vec<usize> = (0..self.owner.len())
            .filter(|&i| self.owner[i].is_none() && !self.off[i])
            .collect();
        let mut downed = 0;
        for &i in free.iter().rev().take(n as usize) {
            self.off[i] = true;
            downed += 1;
        }
        downed
    }

    fn wake_all(&mut self) -> u32 {
        let woke = self.off.iter().filter(|&&o| o).count() as u32;
        self.off.iter_mut().for_each(|o| *o = false);
        woke
    }
}

fn three_class_table(standard: u32, big: u32, gpu: u32) -> ClassTable {
    let mut gpu_class = MachineClass::standard(8);
    gpu_class.gpu = true;
    ClassTable::new(&[
        (MachineClass::standard(8), standard),
        (MachineClass::standard(8), big),
        (gpu_class, gpu),
    ])
}

fn constraint_for(sel: u8) -> ClassConstraint {
    match sel % 4 {
        0 | 1 => ClassConstraint::Any,
        2 => ClassConstraint::Class((sel as usize / 4) % 3),
        _ => ClassConstraint::GpuRequired,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    /// Randomized allocate/release/power sequences over a three-class
    /// machine: the per-class free-set cluster must agree with the
    /// brute-force model on every allocation (the exact node ids, not
    /// just the count), on every per-class free count, and keep its
    /// internal invariants after every operation.
    #[test]
    fn per_class_free_sets_match_the_brute_force_model(
        standard in 1u32..12,
        big in 1u32..8,
        gpu in 1u32..6,
        ops in proptest::collection::vec((0u8..5, 0u8..16, 1u32..10), 1..40),
    ) {
        let table = three_class_table(standard, big, gpu);
        let mut cluster = Cluster::with_classes(table.clone());
        let mut model = ModelCluster::new(&table);
        let mut next_owner = 1u64;
        let mut live: Vec<u64> = Vec::new();

        for (op, sel, n) in ops {
            match op {
                0 => {
                    let constraint = constraint_for(sel);
                    let got = cluster
                        .allocate_in(n, next_owner, constraint)
                        .ok()
                        .map(|v| v.into_iter().map(|node| node.0).collect::<Vec<u32>>());
                    let want = model.allocate_in(&table, n, next_owner, constraint);
                    let granted = got.is_some();
                    prop_assert_eq!(got, want, "allocate_in({}, {:?}) diverged", n, constraint);
                    if granted {
                        live.push(next_owner);
                        next_owner += 1;
                    }
                }
                1 => {
                    if let Some(&owner) = live.get(sel as usize % live.len().max(1)) {
                        let _ = cluster.release_all(owner);
                        model.release_all(owner);
                        live.retain(|&o| o != owner);
                    }
                }
                2 => {
                    if let Some(&owner) = live.get(sel as usize % live.len().max(1)) {
                        let held = cluster.held_by(owner);
                        // Tail releases must leave at least one node.
                        let k = n.min(held.saturating_sub(1));
                        if k > 0 {
                            let _ = cluster.release_tail(owner, k);
                            model.release_tail(owner, k);
                        }
                    }
                }
                3 => {
                    let downed = cluster.power_down(n).len() as u32;
                    prop_assert_eq!(downed, model.power_down(n), "power_down diverged");
                }
                _ => {
                    prop_assert_eq!(cluster.wake_all(), model.wake_all(), "wake_all diverged");
                }
            }
            for constraint in [
                ClassConstraint::Any,
                ClassConstraint::Class(0),
                ClassConstraint::Class(1),
                ClassConstraint::Class(2),
                ClassConstraint::GpuRequired,
            ] {
                prop_assert_eq!(
                    cluster.free_nodes_in(constraint),
                    model.free_in(&table, constraint),
                    "free count diverged under {:?}",
                    constraint
                );
            }
            cluster.check_invariants()?;
        }
    }

    /// On a single-class machine, the constrained entry points collapse
    /// to the legacy ones: `allocate_in(Any)` picks exactly the nodes
    /// `allocate` picks.
    #[test]
    fn any_constraint_is_identity_on_uniform_clusters(
        nodes in 1u32..64,
        n in 1u32..16,
    ) {
        let mut legacy = Cluster::new(nodes, 8);
        let mut constrained = Cluster::new(nodes, 8);
        let a = legacy.allocate(n.min(nodes), 7).expect("fits");
        let b = constrained
            .allocate_in(n.min(nodes), 7, ClassConstraint::Any)
            .expect("fits");
        prop_assert_eq!(a, b);
    }

    /// Power state transitions keep the node-state invariant the class
    /// refactor added to `check_invariants`: off nodes are never free,
    /// never owned, and come back when woken.
    #[test]
    fn power_transitions_preserve_invariants(
        nodes in 2u32..32,
        down in 1u32..8,
    ) {
        let mut cluster = Cluster::with_classes(three_class_table(nodes, nodes / 2 + 1, 2));
        let total = cluster.total_nodes();
        let downed = cluster.power_down(down).len() as u32;
        prop_assert!(downed <= down);
        prop_assert_eq!(cluster.off_nodes(), downed);
        prop_assert_eq!(cluster.free_nodes() + downed, total);
        cluster.check_invariants()?;
        prop_assert_eq!(cluster.wake_all(), downed);
        prop_assert_eq!(cluster.free_nodes(), total);
        cluster.check_invariants()?;
    }
}

/// `set_state` keeps the per-class busy/off tallies the power meter
/// samples in sync with the ground truth.
#[test]
fn busy_and_off_tallies_follow_state_changes() {
    let mut cluster = Cluster::with_classes(three_class_table(4, 2, 2));
    assert_eq!(cluster.busy_by_class(), &[0, 0, 0]);
    cluster
        .allocate_in(2, 1, ClassConstraint::GpuRequired)
        .expect("gpu nodes free");
    assert_eq!(cluster.busy_by_class(), &[0, 0, 2]);
    cluster
        .allocate_in(3, 2, ClassConstraint::Any)
        .expect("fits");
    assert_eq!(cluster.busy_by_class(), &[3, 0, 2]);
    let _ = cluster.release_all(1);
    assert_eq!(cluster.busy_by_class(), &[3, 0, 0]);
    // Highest free ids suspend first: the lone power-down hits node 7
    // (the top of the GPU class).
    let downed = cluster.power_down(1).len();
    assert_eq!(downed, 1);
    assert_eq!(cluster.off_by_class().iter().sum::<u32>() as usize, downed);
    cluster.check_invariants().unwrap();
    // An administrative override pulls a powered-down node straight out
    // of the off pool; draining a free node removes it from placement
    // without touching the off tallies.
    let off_node = dmr::cluster::NodeId(7);
    assert_eq!(cluster.table().class_of_node(off_node), 2);
    cluster.set_state(off_node, NodeState::Up);
    assert_eq!(cluster.off_by_class()[2], 0, "override leaves the off pool");
    cluster.check_invariants().unwrap();
    cluster.wake_all();
    let _ = cluster.release_all(2);
    let before_off: u32 = cluster.off_by_class().iter().sum();
    cluster.set_state(dmr::cluster::NodeId(0), NodeState::Drained);
    assert_eq!(cluster.off_by_class().iter().sum::<u32>(), before_off);
    cluster.set_state(dmr::cluster::NodeId(0), NodeState::Up);
    cluster.check_invariants().unwrap();
}
