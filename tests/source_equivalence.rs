//! Property test: the streaming [`dmr::workload::Feitelson`] source run
//! through [`dmr::core::run_experiment_streaming`] yields an
//! [`ExperimentResult`] identical to the pre-refactor materialized path
//! (generate the whole workload, hand the driver a `&[SimJob]`) across
//! seeds, workload shapes, scheduling modes and resize policies.
//!
//! This is the contract that let the workload layer move to streaming
//! arrivals: the driver schedules one arrival at a time (in the engine's
//! early tie-break class) instead of pre-scheduling all of them, and
//! nothing about the simulation may change — not the aggregate summary,
//! not per-job outcomes, not even the number of processed events.

use dmr::core::{
    run_experiment, run_experiment_streaming, ExperimentConfig, ExperimentResult, PolicyKind,
    SimJob,
};
use dmr::workload::{Feitelson, WorkloadConfig, WorkloadGenerator, WorkloadSource};
use proptest::prelude::*;

fn config_for(policy: u8, asynchronous: bool) -> ExperimentConfig {
    let cfg = match policy % 3 {
        0 => ExperimentConfig::preliminary(),
        1 => ExperimentConfig::preliminary().with_policy(PolicyKind::utilization_target()),
        _ => ExperimentConfig::preliminary().with_policy(PolicyKind::fair_share()),
    };
    if asynchronous {
        cfg.asynchronous()
    } else {
        cfg
    }
}

fn workload_for(shape: u8, jobs: u32) -> WorkloadConfig {
    match shape % 3 {
        0 => WorkloadConfig::fs_preliminary(jobs),
        1 => WorkloadConfig::fs_micro_steps(jobs),
        _ => WorkloadConfig::real_mix(jobs),
    }
}

fn assert_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), String> {
    prop_assert_eq!(a.summary.jobs, b.summary.jobs);
    prop_assert_eq!(a.summary.makespan_s, b.summary.makespan_s);
    prop_assert_eq!(a.summary.utilization, b.summary.utilization);
    prop_assert_eq!(a.summary.avg_waiting_s, b.summary.avg_waiting_s);
    prop_assert_eq!(a.summary.avg_execution_s, b.summary.avg_execution_s);
    prop_assert_eq!(a.summary.avg_completion_s, b.summary.avg_completion_s);
    prop_assert_eq!(a.summary.reconfigurations, b.summary.reconfigurations);
    prop_assert_eq!(a.events, b.events, "event streams diverged");
    prop_assert_eq!(a.past_schedules, b.past_schedules);
    prop_assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        prop_assert_eq!(x.submit, y.submit);
        prop_assert_eq!(x.start, y.start);
        prop_assert_eq!(x.end, y.end);
        prop_assert_eq!(x.reconfigurations, y.reconfigurations);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn streaming_feitelson_matches_materialized_bit_for_bit(
        seed in 0u64..10_000,
        jobs in 1u32..28,
        shape in 0u8..3,
        policy in 0u8..3,
        asynchronous in 0u8..2,
    ) {
        let cfg = config_for(policy, asynchronous == 1);
        let wcfg = workload_for(shape, jobs);

        // Pre-refactor path: materialize the whole workload, then run.
        let specs = WorkloadGenerator::new(wcfg.clone(), seed).generate();
        let materialized = run_experiment(&cfg, &SimJob::from_specs(specs));

        // Streaming path: the driver pulls one job at a time.
        let mut source = Feitelson::new(wcfg, seed);
        let streamed = run_experiment_streaming(&cfg, &mut source);

        assert_identical(&materialized, &streamed)?;
        prop_assert!(source.next_job().is_none(), "source fully drained");
    }
}

// The rigid ("fixed") configuration shares the arrival machinery; pin it
// too so `compare_fixed_flexible` rests on the same guarantee.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn streaming_matches_materialized_under_fixed_runs(seed in 0u64..1000, jobs in 1u32..20) {
        let cfg = ExperimentConfig::preliminary().as_fixed();
        let wcfg = WorkloadConfig::fs_preliminary(jobs);
        let specs = WorkloadGenerator::new(wcfg.clone(), seed).generate();
        let materialized = run_experiment(&cfg, &SimJob::from_specs(specs));
        let mut source = Feitelson::new(wcfg, seed);
        let streamed = run_experiment_streaming(&cfg, &mut source);
        assert_identical(&materialized, &streamed)?;
    }
}
