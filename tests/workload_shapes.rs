//! End-to-end shape tests: the qualitative claims of the paper's
//! evaluation must hold on freshly simulated workloads.

use dmr::core::{compare_fixed_flexible, ExperimentConfig, SimJob};
use dmr::workload::{WorkloadConfig, WorkloadGenerator};

fn production_pair(
    jobs: u32,
    seed: u64,
) -> (dmr::core::ExperimentResult, dmr::core::ExperimentResult) {
    let specs = WorkloadGenerator::new(WorkloadConfig::real_mix(jobs), seed).generate();
    compare_fixed_flexible(&ExperimentConfig::production(), &SimJob::from_specs(specs))
}

/// Figure 10: flexible workloads cut the makespan by tens of percent.
#[test]
fn production_flexible_cuts_makespan_substantially() {
    let (fixed, flexible) = production_pair(50, 1);
    let gain = (fixed.summary.makespan_s - flexible.summary.makespan_s) / fixed.summary.makespan_s;
    assert!(
        gain > 0.20,
        "expected >20% gain, got {:.1}% (fixed {}, flexible {})",
        gain * 100.0,
        fixed.summary.makespan_s,
        flexible.summary.makespan_s
    );
}

/// Table II row 1: flexible runs allocate substantially fewer node-hours.
#[test]
fn production_flexible_reduces_allocation_rate() {
    let (fixed, flexible) = production_pair(50, 2);
    assert!(
        fixed.summary.utilization > 0.85,
        "{}",
        fixed.summary.utilization
    );
    assert!(
        flexible.summary.utilization < fixed.summary.utilization - 0.15,
        "fixed {} vs flexible {}",
        fixed.summary.utilization,
        flexible.summary.utilization
    );
}

/// Table II rows 2-4: waiting time collapses, execution time grows, and
/// completion time still wins.
#[test]
fn production_wait_drops_exec_rises_completion_wins() {
    let (fixed, flexible) = production_pair(50, 3);
    assert!(
        flexible.summary.avg_waiting_s < fixed.summary.avg_waiting_s * 0.6,
        "wait: fixed {} flexible {}",
        fixed.summary.avg_waiting_s,
        flexible.summary.avg_waiting_s
    );
    assert!(
        flexible.summary.avg_execution_s > fixed.summary.avg_execution_s * 1.1,
        "exec: fixed {} flexible {}",
        fixed.summary.avg_execution_s,
        flexible.summary.avg_execution_s
    );
    assert!(
        flexible.summary.avg_completion_s < fixed.summary.avg_completion_s,
        "completion: fixed {} flexible {}",
        fixed.summary.avg_completion_s,
        flexible.summary.avg_completion_s
    );
}

/// Figure 3 shape: the FS preliminary study favours flexible for small
/// and medium workloads.
#[test]
fn preliminary_fs_workloads_gain() {
    for (jobs, seed) in [(10u32, 4u64), (25, 4)] {
        let specs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(jobs), seed).generate();
        let (fixed, flexible) =
            compare_fixed_flexible(&ExperimentConfig::preliminary(), &SimJob::from_specs(specs));
        assert!(
            flexible.summary.makespan_s < fixed.summary.makespan_s,
            "{jobs} jobs: flexible {} !< fixed {}",
            flexible.summary.makespan_s,
            fixed.summary.makespan_s
        );
    }
}

/// §VIII-C: synchronous scheduling is at least as good as asynchronous
/// (the paper concludes "there is no need of using an asynchronous
/// scheduling").
#[test]
fn synchronous_beats_asynchronous_overall() {
    let specs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(25), 7).generate();
    let jobs = SimJob::from_specs(specs);
    let sync = dmr::core::run_experiment(&ExperimentConfig::preliminary(), &jobs);
    let asynchronous =
        dmr::core::run_experiment(&ExperimentConfig::preliminary().asynchronous(), &jobs);
    assert!(
        sync.summary.makespan_s <= asynchronous.summary.makespan_s * 1.02,
        "sync {} vs async {}",
        sync.summary.makespan_s,
        asynchronous.summary.makespan_s
    );
}

/// Determinism across identical configurations, divergence across seeds.
#[test]
fn simulation_is_deterministic_per_seed() {
    let (f1, x1) = production_pair(30, 11);
    let (f2, x2) = production_pair(30, 11);
    assert_eq!(f1.summary.makespan_s, f2.summary.makespan_s);
    assert_eq!(x1.summary.makespan_s, x2.summary.makespan_s);
    assert_eq!(x1.events, x2.events);
    let (_, x3) = production_pair(30, 12);
    assert_ne!(
        x1.summary.makespan_s, x3.summary.makespan_s,
        "different seeds should differ"
    );
}

/// The backfill ablation: disabling backfill must not help the fixed
/// workload (it is one of the design choices DESIGN.md calls out).
#[test]
fn backfill_ablation_does_not_help_fixed() {
    let specs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(25), 9).generate();
    let jobs = SimJob::from_specs(specs);
    let mut cfg = ExperimentConfig::preliminary().as_fixed();
    let with_bf = dmr::core::run_experiment(&cfg, &jobs);
    cfg.backfill = false;
    let without_bf = dmr::core::run_experiment(&cfg, &jobs);
    assert!(
        with_bf.summary.makespan_s <= without_bf.summary.makespan_s,
        "backfill on {} vs off {}",
        with_bf.summary.makespan_s,
        without_bf.summary.makespan_s
    );
}
