//! Property test: incremental scheduling is bit-identical to the costed
//! from-scratch baseline, and every elided pass equals the pass it
//! elided.
//!
//! The incremental-scheduling PR made the scheduler stateful *between*
//! passes: fruitless scheduling and backfill passes leave a memo (the
//! blocked head's need, the minimum need over the pass's non-fitting
//! refusals, the retained EASY reservations / conservative plan), and a
//! later pass whose trigger provably cannot change any decision returns
//! in O(1) instead of re-walking the queue. Every mutation — submit,
//! start, boost, complete, cancel, shrink, expand, estimate refresh —
//! either invalidates the memos or tightens them (a submission below the
//! live watermark lowers it). `SchedIncremental::Off` keeps the
//! re-derive-everything behaviour as the oracle.
//!
//! Two properties pin the contract:
//!
//! 1. **Full-experiment equivalence** — every workload family × resize
//!    policy × backfill family × hot path, run with incremental
//!    scheduling on and off, must agree down to the raw f64 bits of
//!    every summary field.
//! 2. **The shadow check** — twin schedulers driven through the same
//!    random operation sequence must start the same jobs at every pass,
//!    and whenever the incremental twin elides a pass, the baseline twin
//!    (identical state, pass actually executed) must have started
//!    nothing — an elided pass *is* the pass it elided.

use dmr::core::{
    run_experiment_streaming, BackfillFamily, ExperimentConfig, ExperimentResult, PolicyKind,
    WorkloadKind,
};
use dmr::sim::{SimTime, Span};
use dmr::slurm::{JobRequest, JobState, SchedIncremental, Slurm, SlurmConfig};
use dmr_cluster::Cluster;
use proptest::prelude::*;

fn kind_for(kind: u8) -> WorkloadKind {
    match kind % 5 {
        0 => WorkloadKind::FsPreliminary,
        1 => WorkloadKind::FsMicroSteps,
        2 => WorkloadKind::RealMix,
        3 => WorkloadKind::burst(),
        _ => WorkloadKind::diurnal(),
    }
}

fn policy_for(policy: u8) -> PolicyKind {
    match policy % 3 {
        0 => PolicyKind::Algorithm1,
        1 => PolicyKind::utilization_target(),
        _ => PolicyKind::fair_share(),
    }
}

fn family_for(family: u8) -> BackfillFamily {
    match family % 4 {
        0 => BackfillFamily::easy(1),
        1 => BackfillFamily::easy(8),
        2 => BackfillFamily::Conservative,
        _ => BackfillFamily::LegacyReference,
    }
}

fn assert_bit_identical(a: &ExperimentResult, b: &ExperimentResult) -> Result<(), String> {
    let sa = &a.summary;
    let sb = &b.summary;
    prop_assert_eq!(sa.jobs, sb.jobs);
    prop_assert_eq!(sa.reconfigurations, sb.reconfigurations);
    // Raw-bit float comparison: even sub-rounding divergence fails.
    for (x, y, what) in [
        (sa.makespan_s, sb.makespan_s, "makespan"),
        (sa.utilization, sb.utilization, "utilization"),
        (sa.avg_waiting_s, sb.avg_waiting_s, "avg_wait"),
        (sa.avg_execution_s, sb.avg_execution_s, "avg_exec"),
        (sa.avg_completion_s, sb.avg_completion_s, "avg_compl"),
        (sa.waiting_q.p50_s, sb.waiting_q.p50_s, "p50_wait"),
        (sa.waiting_q.p99_s, sb.waiting_q.p99_s, "p99_wait"),
        (sa.execution_q.p95_s, sb.execution_q.p95_s, "p95_exec"),
        (sa.completion_q.p99_s, sb.completion_q.p99_s, "p99_compl"),
    ] {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{} diverged: {} vs {}",
            what,
            x,
            y
        );
    }
    prop_assert_eq!(a.events, b.events, "event streams diverged");
    prop_assert_eq!(a.past_schedules, b.past_schedules);
    prop_assert_eq!(a.end_time, b.end_time);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn incremental_experiments_match_the_costed_baseline_bit_for_bit(
        seed in 0u64..10_000,
        jobs in 1u32..26,
        kind in 0u8..5,
        policy in 0u8..3,
        family in 0u8..4,
        asynchronous in 0u8..2,
        fixed in 0u8..2,
        hot_path in 0u8..2,
    ) {
        let kind = kind_for(kind);
        let mut cfg = ExperimentConfig::preliminary()
            .with_policy(policy_for(policy))
            .with_backfill_family(family_for(family))
            .online();
        if asynchronous == 1 {
            cfg = cfg.asynchronous();
        }
        if fixed == 1 {
            cfg = cfg.as_fixed();
        }
        // Elision exists on both order-indexed hot paths; the scan
        // reference never elides and is covered by index_equivalence.
        if hot_path == 1 {
            cfg = cfg.indexed_reference();
        }
        let on = run_experiment_streaming(&cfg, kind.build(jobs, seed).as_mut());
        let off = run_experiment_streaming(
            &cfg.incremental_off(),
            kind.build(jobs, seed).as_mut(),
        );
        assert_bit_identical(&on, &off)?;
    }
}

// The buffered (Full-telemetry) path pins per-job outcomes as well.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn incremental_outcomes_match_the_costed_baseline(
        seed in 0u64..1000,
        jobs in 1u32..20,
        family in 0u8..4,
    ) {
        let cfg = ExperimentConfig::preliminary()
            .with_backfill_family(family_for(family));
        let kind = WorkloadKind::FsPreliminary;
        let on = run_experiment_streaming(&cfg, kind.build(jobs, seed).as_mut());
        let off = run_experiment_streaming(
            &cfg.incremental_off(),
            kind.build(jobs, seed).as_mut(),
        );
        prop_assert_eq!(on.outcomes.len(), off.outcomes.len());
        for (x, y) in on.outcomes.iter().zip(&off.outcomes) {
            prop_assert_eq!(x.submit, y.submit);
            prop_assert_eq!(x.start, y.start);
            prop_assert_eq!(x.end, y.end);
            prop_assert_eq!(x.reconfigurations, y.reconfigurations);
        }
        assert_bit_identical(&on, &off)?;
    }
}

/// One row of [`job_table`]: name, state, start, end, requested nodes.
type JobRow = (String, JobState, Option<SimTime>, Option<SimTime>, u32);

/// Per-job view used to compare the twins' whole job tables: everything
/// the scheduler ever decided about a job.
fn job_table(s: &Slurm) -> Vec<JobRow> {
    s.jobs()
        .map(|j| {
            (
                j.name.clone(),
                j.state,
                j.start_time,
                j.end_time,
                j.requested_nodes,
            )
        })
        .collect()
}

// The shadow check, institutionalised: twin schedulers — incremental on
// vs off — driven in lockstep through random submit / complete / cancel
// / boost / estimate-refresh sequences. Both twins see identical state
// before every pass, so comparing the started sets checks precisely
// that each elided pass equals the executed pass it stands in for; the
// elision counters prove the incremental twin actually took the O(1)
// path while the baseline walked the queue.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn elided_passes_equal_the_passes_they_elide(
        seed in 0u64..100_000,
        family in 0u8..4,
        nodes in 8u32..33,
    ) {
        let family = family_for(family);
        let mk = |incremental: SchedIncremental| {
            let mut cfg = SlurmConfig::for_cluster(nodes);
            cfg.backfill_family = family;
            cfg.sched_incremental = incremental;
            Slurm::new(Cluster::new(nodes, 16), cfg)
        };
        let mut on = mk(SchedIncremental::On);
        let mut off = mk(SchedIncremental::Off);
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut step = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut live: Vec<dmr::slurm::JobId> = Vec::new();
        for round in 0..60u64 {
            let now = SimTime::from_secs(round * 7);
            match step() % 8 {
                0..=2 => {
                    let need = 1 + (step() % u64::from(nodes)) as u32;
                    let dur = 30 + step() % 900;
                    let req = || {
                        JobRequest::rigid(format!("j{round}"), need)
                            .with_expected_runtime(Span::from_secs(dur))
                    };
                    let a = on.submit(req(), now);
                    let b = off.submit(req(), now);
                    prop_assert_eq!(a, b, "ids diverged at submit");
                    live.push(a);
                }
                3 if !live.is_empty() => {
                    let id = live.remove((step() % live.len() as u64) as usize);
                    match on.job(id).map(|j| j.state) {
                        Some(JobState::Running) => {
                            on.complete(id, now);
                            off.complete(id, now);
                        }
                        Some(JobState::Pending) => {
                            on.cancel(id, now);
                            off.cancel(id, now);
                        }
                        _ => {}
                    }
                }
                4 if !live.is_empty() => {
                    let id = live[(step() % live.len() as u64) as usize];
                    if on.job(id).is_some_and(|j| j.state == JobState::Pending) {
                        on.boost(id);
                        off.boost(id);
                    }
                }
                5 if !live.is_empty() => {
                    let id = live[(step() % live.len() as u64) as usize];
                    if on.job(id).is_some_and(|j| j.state == JobState::Running) {
                        let est = Span::from_secs(30 + step() % 900);
                        on.set_expected_runtime(id, est);
                        off.set_expected_runtime(id, est);
                    }
                }
                _ => {}
            }
            let before = on.incremental_stats();
            let a = on.schedule(now);
            let b = off.schedule(now);
            prop_assert_eq!(&a, &b, "schedule diverged at round {}", round);
            let mid = on.incremental_stats();
            if mid.sched_passes_elided > before.sched_passes_elided {
                prop_assert!(
                    b.is_empty(),
                    "elided schedule pass at round {} but the baseline started {:?}",
                    round,
                    b
                );
            }
            let a = on.backfill_pass(now);
            let b = off.backfill_pass(now);
            prop_assert_eq!(&a, &b, "backfill diverged at round {}", round);
            let after = on.incremental_stats();
            if after.backfill_passes_elided > mid.backfill_passes_elided {
                prop_assert!(
                    b.is_empty(),
                    "elided backfill pass at round {} but the baseline started {:?}",
                    round,
                    b
                );
            }
            // The retained plans are only ever a snapshot of a fruitless
            // pass on the current state; invariants (timeline occupancy
            // vs running set among them) must hold on both twins.
            prop_assert!(on.check_invariants().is_ok());
            prop_assert!(off.check_invariants().is_ok());
            prop_assert_eq!(
                on.cluster().free_nodes(),
                off.cluster().free_nodes(),
                "occupancy diverged at round {}",
                round
            );
        }
        prop_assert_eq!(job_table(&on), job_table(&off));
        let stats = off.incremental_stats();
        prop_assert_eq!(stats.sched_passes_elided, 0, "Off must never elide");
        prop_assert_eq!(stats.backfill_passes_elided, 0, "Off must never elide");
    }
}
