//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;

use dmr::cluster::Cluster;
use dmr::runtime::dist::BlockDist;
use dmr::sim::{EventQueue, SimTime};
use dmr::workload::{SizeModel, WorkloadConfig, WorkloadGenerator};

proptest! {
    /// Redistribution plans move every element exactly once, for any pair
    /// of process counts and any global size.
    #[test]
    fn block_plans_cover_exactly_once(
        n in 0usize..500,
        from in 1usize..17,
        to in 1usize..17,
    ) {
        let a = BlockDist::new(n, from);
        let b = BlockDist::new(n, to);
        let mut seen = vec![0u32; n];
        for t in a.plan_to(&b) {
            let src_global = a.start(t.src_rank) + t.src_offset;
            let dst_global = b.start(t.dst_rank) + t.dst_offset;
            prop_assert_eq!(src_global, dst_global);
            for c in &mut seen[src_global..src_global + t.len] {
                *c += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Block distributions tile the index space: ranges are disjoint,
    /// ordered, and cover 0..n.
    #[test]
    fn block_ranges_tile(n in 0usize..1000, parts in 1usize..33) {
        let d = BlockDist::new(n, parts);
        let mut cursor = 0usize;
        for r in 0..parts {
            let range = d.range(r);
            prop_assert_eq!(range.start, cursor);
            cursor = range.end;
        }
        prop_assert_eq!(cursor, n);
    }

    /// The event queue dequeues in nondecreasing time order regardless of
    /// insertion order and cancellations.
    #[test]
    fn event_queue_is_time_ordered(
        ops in proptest::collection::vec((0u64..10_000, proptest::bool::ANY), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut keys = Vec::new();
        for (i, &(t, cancel)) in ops.iter().enumerate() {
            let k = q.push(SimTime(t), i);
            if cancel {
                q.cancel(k);
            } else {
                keys.push(k);
            }
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0usize;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, keys.len());
    }

    /// Cluster allocation bookkeeping never corrupts under arbitrary
    /// allocate / release-all / release-tail sequences.
    #[test]
    fn cluster_invariants_hold(
        nodes in 1u32..64,
        ops in proptest::collection::vec((0u8..3, 1u32..16, 0u64..8), 1..60)
    ) {
        let mut c = Cluster::new(nodes, 16);
        for &(op, count, owner) in &ops {
            match op {
                0 => { let _ = c.allocate(count.min(nodes), owner); }
                1 => { let _ = c.release_all(owner); }
                _ => { let _ = c.release_tail(owner, count); }
            }
            prop_assert!(c.check_invariants().is_ok(), "{:?}", c.check_invariants());
            prop_assert!(c.free_nodes() <= nodes);
        }
    }

    /// The Feitelson size model only produces sizes within bounds, and
    /// the generated workloads respect their envelopes.
    #[test]
    fn workload_respects_bounds(jobs in 1u32..60, seed in 0u64..1000) {
        let cfg = WorkloadConfig::fs_preliminary(jobs);
        let max = cfg.max_size;
        let specs = WorkloadGenerator::new(cfg, seed).generate();
        prop_assert_eq!(specs.len(), jobs as usize);
        let mut last_arrival = 0.0f64;
        for s in &specs {
            prop_assert!(s.submit_procs >= 1 && s.submit_procs <= max);
            prop_assert!(s.step_s > 0.0);
            prop_assert!(s.walltime_s >= s.step_s);
            prop_assert!(s.arrival_s >= last_arrival);
            last_arrival = s.arrival_s;
        }
    }

    /// Size-model sampling and pmf agree on support.
    #[test]
    fn size_model_support(max in 1u32..64, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let m = SizeModel::new(max);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let s = m.sample(&mut rng);
            prop_assert!(s >= 1 && s <= max);
            prop_assert!(m.pmf(s) > 0.0);
        }
    }
}

// Small deterministic run of the full simulator inside a property: any
// seed must produce a consistent accounting (no negative waits, makespan
// covers every completion).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn simulator_accounting_is_consistent(seed in 0u64..50) {
        use dmr::core::{run_experiment, ExperimentConfig, SimJob};
        let specs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(12), seed).generate();
        let r = run_experiment(&ExperimentConfig::preliminary(), &SimJob::from_specs(specs));
        prop_assert_eq!(r.summary.jobs, 12);
        for o in &r.outcomes {
            prop_assert!(o.start >= o.submit);
            prop_assert!(o.end >= o.start);
            prop_assert!(o.end <= r.summary.makespan_s + 1e-6);
        }
        prop_assert!(r.summary.utilization > 0.0 && r.summary.utilization <= 1.0);
        prop_assert!(r.allocation.max_value() <= 20.0);
    }
}
