//! The production use-case (§IX): a mixed CG/Jacobi/N-body workload on
//! the full 65-node simulated cluster.
//!
//! ```text
//! cargo run --release --example workload_sim [jobs] [seed]
//! ```
//!
//! Prints a Table-II-style summary for the fixed and flexible runs of the
//! same workload.

use dmr::core::{compare_fixed_flexible, ExperimentConfig, SimJob};
use dmr::metrics::csv::write_summaries;
use dmr::metrics::gain_pct;
use dmr::workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs: u32 = args.first().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20170814);

    let specs = WorkloadGenerator::new(WorkloadConfig::real_mix(jobs), seed).generate();
    let mix: Vec<&str> = specs.iter().map(|s| s.app.name()).collect();
    println!(
        "workload: {jobs} jobs (CG {} / Jacobi {} / N-body {}), seed {seed}",
        mix.iter().filter(|n| **n == "CG").count(),
        mix.iter().filter(|n| **n == "Jacobi").count(),
        mix.iter().filter(|n| **n == "N-body").count(),
    );

    let cfg = ExperimentConfig::production();
    let (fixed, flexible) = compare_fixed_flexible(&cfg, &SimJob::from_specs(specs));

    let mut out = Vec::new();
    write_summaries(
        &mut out,
        &[("fixed", &fixed.summary), ("flexible", &flexible.summary)],
    )
    .expect("write summaries");
    print!("{}", String::from_utf8(out).expect("utf8"));

    println!(
        "\nmakespan gain {:+.2} %, waiting-time gain {:+.2} %, execution-time change {:+.2} %",
        gain_pct(fixed.summary.makespan_s, flexible.summary.makespan_s),
        gain_pct(fixed.summary.avg_waiting_s, flexible.summary.avg_waiting_s),
        -gain_pct(
            fixed.summary.avg_execution_s,
            flexible.summary.avg_execution_s
        ),
    );
}
