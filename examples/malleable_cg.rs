//! A real Conjugate Gradient solve that expands and shrinks mid-flight
//! under the *live* Slurm Algorithm-1 policy.
//!
//! ```text
//! cargo run --release --example malleable_cg
//! ```
//!
//! The job starts on 2 ranks of a 16-node cluster. Being alone in the
//! system, the policy expands it to its envelope maximum through the
//! four-step resizer-job protocol; when a rigid job arrives in the queue,
//! the next reconfiguring point shrinks the solve to make room. Data
//! (x, r, p) is redistributed over the thread-backed MPI substrate on
//! every resize, and the final result is checked against the sequential
//! solver.

use std::sync::Arc;

use parking_lot::Mutex;

use dmr::apps::cg::{cg_sequential, CgApp};
use dmr::apps::malleable::run_malleable_with;
use dmr::bridge::SlurmRms;
use dmr::cluster::Cluster;
use dmr::runtime::dmr::DmrSpec;
use dmr::sim::SimTime;
use dmr::slurm::{JobRequest, ResizeEnvelope, Slurm};

fn main() {
    let (n, iters, start_procs) = (512, 60, 2usize);

    // A 16-node cluster with one malleable job: ours.
    let mut slurm = Slurm::with_cluster(Cluster::new(16, 16));
    let job = slurm.submit(
        JobRequest::flexible(
            "malleable-cg",
            start_procs as u32,
            ResizeEnvelope {
                min: 1,
                max: 8,
                preferred: None,
                factor: 2,
            },
        ),
        SimTime::ZERO,
    );
    let started = slurm.schedule(SimTime::ZERO);
    assert_eq!(started.len(), 1, "the job starts immediately");
    let slurm = Arc::new(Mutex::new(slurm));

    // Midway pressure: enqueue a rigid 12-node job so the policy shrinks
    // ours at a later reconfiguring point.
    {
        let mut s = slurm.lock();
        s.submit(JobRequest::rigid("queued-rival", 12), SimTime::ZERO);
    }

    let rms = SlurmRms::connect(Arc::clone(&slurm), job);
    let outcome = run_malleable_with(
        Arc::new(CgApp::new(n, iters)),
        start_procs,
        DmrSpec::new(1, 8),
        Arc::new(Mutex::new(rms)),
    );

    let (x_ref, res_ref) = cg_sequential(n, iters);
    let max_err = outcome.final_state[0]
        .iter()
        .zip(&x_ref)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("CG on n={n}, {iters} iterations");
    println!(
        "  started on {start_procs} ranks, finished on {} ranks",
        outcome.final_procs
    );
    println!("  reconfigurations: {}", outcome.resizes);
    println!(
        "  scheduler accounts {} nodes for the job",
        slurm.lock().nodes_of(job)
    );
    println!("  max |x - x_seq| = {max_err:.3e} (sequential residual {res_ref:.3e})");
    assert!(max_err < 1e-8, "resizing must not change the numerics");
    assert!(
        outcome.resizes >= 1,
        "the policy should have resized at least once"
    );
    println!("OK: malleable solve matches the sequential reference.");
}
