//! Figure 1 on real executions: reconfigure a data-carrying job via
//! Checkpoint/Restart and via the DMR path, and time the difference.
//!
//! ```text
//! cargo run --release --example cr_vs_dmr
//! ```
//!
//! The paper's Figure 1 isolates the *non-solving* stages of an N-body
//! resize, so this example uses the data-heavy/compute-light Flexible
//! Sleep application (a large distributed array, trivial steps): what is
//! being timed is almost entirely the reconfiguration machinery. Both
//! paths run the identical trajectory (4 ranks for the first 2 steps,
//! 2 ranks for the rest) and must end with identical state:
//!
//! * **C/R** serializes every rank's blocks to files (with fsync), tears
//!   the whole universe down, relaunches at the new size, and reads the
//!   blocks back — the paper's "need to save data to disk to be later
//!   reloaded".
//! * **DMR** spawns the new process set in-flight and streams the blocks
//!   across the spawn inter-communicator.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dmr::apps::fs::FsApp;
use dmr::apps::malleable::run_malleable;
use dmr::checkpoint::{run_with_checkpoint_restart, CrSchedule, DirStore};
use dmr::runtime::dmr::{DmrAction, DmrSpec};

fn main() {
    // 6M doubles = 48 MB of application state; 6 near-zero-cost steps.
    let n = 6_000_000usize;
    let steps = 6u32;
    let app = || Arc::new(FsApp::new(n, steps, Duration::from_millis(2)));

    // C/R path: two incarnations through the filesystem.
    let store = Arc::new(DirStore::temp().expect("temp checkpoint dir"));
    let t0 = Instant::now();
    let cr = run_with_checkpoint_restart(
        app(),
        &CrSchedule {
            phases: vec![(4, 2), (2, steps - 2)],
        },
        store,
        "fs-fig1",
    );
    let cr_time = t0.elapsed();

    // DMR path: the same trajectory. Reconfiguring points precede each
    // step; the shrink verdict arrives at the boundary entering step 2.
    let script = vec![
        DmrAction::NoAction,
        DmrAction::NoAction,
        DmrAction::Shrink { to: 2 },
    ];
    let t0 = Instant::now();
    let dmr = run_malleable(app(), 4, DmrSpec::new(1, 8), script);
    let dmr_time = t0.elapsed();

    assert_eq!(cr.final_state, dmr.final_state, "identical final data");
    assert_eq!(dmr.resizes, 1);
    assert_eq!(cr.resizes, 1);

    println!(
        "FS, {} MB of state, {steps} steps, resize 4 -> 2:",
        n * 8 / (1 << 20)
    );
    println!("  C/R path: {cr_time:?}");
    println!("  DMR path: {dmr_time:?}");
    println!(
        "  C/R / DMR wall-clock ratio: {:.2}x",
        cr_time.as_secs_f64() / dmr_time.as_secs_f64().max(1e-9)
    );
    println!("(Figure 1 reports 31-77x for the spawning stage on a production");
    println!(" machine with a shared parallel FS; at laptop scale the gap is");
    println!(" smaller but C/R must lose. Model-level ratios: `repro fig1`.)");
}
