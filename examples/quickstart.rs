//! Quickstart: simulate a small malleable workload, fixed vs flexible.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a 25-job Flexible-Sleep workload with the Feitelson model,
//! runs it twice on a simulated 20-node cluster — once rigid, once
//! malleable under the Algorithm-1 policy — and prints the comparison the
//! paper's Figure 3 is made of.

use dmr::core::{compare_fixed_flexible, ExperimentConfig, SimJob};
use dmr::metrics::{csv::sparkline, gain_pct};
use dmr::workload::{WorkloadConfig, WorkloadGenerator};

fn main() {
    // 1. A workload: 25 FS jobs, sizes and runtimes from Feitelson '96.
    let specs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(25), 42).generate();
    let jobs = SimJob::from_specs(specs);

    // 2. The testbed: 20 nodes, synchronous DMR checks (§VIII defaults).
    let cfg = ExperimentConfig::preliminary();

    // 3. Run both variants.
    let (fixed, flexible) = compare_fixed_flexible(&cfg, &jobs);

    println!(
        "fixed    : makespan {:8.1} s  utilization {:5.1} %  avg wait {:7.1} s",
        fixed.summary.makespan_s,
        fixed.summary.utilization * 100.0,
        fixed.summary.avg_waiting_s
    );
    println!("flexible : makespan {:8.1} s  utilization {:5.1} %  avg wait {:7.1} s  ({} reconfigurations)",
        flexible.summary.makespan_s,
        flexible.summary.utilization * 100.0,
        flexible.summary.avg_waiting_s,
        flexible.summary.reconfigurations);
    println!(
        "gain     : {:+.2} % makespan, {:+.2} % waiting time",
        gain_pct(fixed.summary.makespan_s, flexible.summary.makespan_s),
        gain_pct(fixed.summary.avg_waiting_s, flexible.summary.avg_waiting_s)
    );
    println!();
    println!("allocated nodes over time:");
    println!(
        "  fixed    |{}|",
        sparkline(&fixed.allocation, fixed.end_time, 64)
    );
    println!(
        "  flexible |{}|",
        sparkline(&flexible.allocation, flexible.end_time, 64)
    );
}
