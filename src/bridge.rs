//! The runtime ↔ RMS bridge: a live [`RmsClient`] backed by a real
//! [`Slurm`] instance.
//!
//! This is the paper's §III communication layer in miniature: the
//! application (through `dmr-runtime`'s DMR API) asks; whichever
//! [`dmr_slurm::ResizePolicy`] the scheduler has installed (Algorithm 1
//! by default, selected by [`dmr_slurm::PolicyKind`] in the scheduler
//! config) decides; and on a positive verdict the bridge drives the §III
//! protocol — the four-step resizer job for expansions, the
//! node-releasing update for shrinks — so the scheduler's allocation
//! state tracks the application's actual size. The bridge itself is
//! policy-agnostic: it only sees [`ResizeAction`] verdicts. It is also
//! workload-agnostic: jobs reach the scheduler through
//! [`dmr_slurm::Slurm::submit`] no matter which
//! [`dmr_workload::WorkloadSource`] produced them, so live kernels and
//! replayed traces share one negotiation path. Policies consulted here
//! read the pending queue through the scheduler's per-instant priority
//! cache — repeated `negotiate` calls at one instant do not re-sort it.

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use dmr_core::DmrError;
use dmr_metrics::LogHistogram;
use dmr_runtime::dmr::{DmrAction, DmrSpec};
use dmr_runtime::rms::RmsClient;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{JobId, ResizeAction, Slurm};

/// A live RMS connection for one job.
pub struct SlurmRms {
    slurm: Arc<Mutex<Slurm>>,
    job: JobId,
    epoch: Instant,
    /// Wall-clock time spent inside each `negotiate` round trip — the
    /// live-path counterpart of the simulated check overhead, recorded
    /// into the same streaming histogram type the driver's telemetry
    /// uses (O(1) memory over arbitrarily many negotiations).
    negotiate_latency: LogHistogram,
}

impl SlurmRms {
    /// Connects job `job` (which must be running in `slurm`) to the
    /// runtime. Wall-clock time since this call maps to scheduler time.
    pub fn connect(slurm: Arc<Mutex<Slurm>>, job: JobId) -> Self {
        SlurmRms {
            slurm,
            job,
            epoch: Instant::now(),
            negotiate_latency: LogHistogram::new(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_secs_f64(self.epoch.elapsed().as_secs_f64())
    }

    /// The distribution of wall-clock `negotiate` round-trip times for
    /// this connection (count, mean, P50/P95/P99 via
    /// [`LogHistogram::percentile_s`]).
    pub fn negotiate_latency(&self) -> &LogHistogram {
        &self.negotiate_latency
    }
}

impl RmsClient for SlurmRms {
    fn negotiate(&mut self, _current: u32, _spec: &DmrSpec) -> DmrAction {
        let round_trip = Instant::now();
        let now = self.now();
        let mut slurm = self.slurm.lock();
        // Scheduler housekeeping first: anything startable starts, so the
        // policy never reasons about jobs that were only pending because
        // no scheduling cycle had run (Slurm's event loop does the same).
        let _ = slurm.schedule(now);
        // The envelope was registered at submission; Algorithm 1 reads it
        // from the job record together with the global system state.
        let verdict = match slurm.decide_resize(self.job, now) {
            ResizeAction::NoAction => DmrAction::NoAction,
            ResizeAction::Expand { to } => {
                match slurm
                    .expand_protocol(self.job, to, now)
                    .map_err(DmrError::from)
                {
                    Ok(_) => DmrAction::Expand { to },
                    Err(e) => {
                        // Deferral means the resizer job is queued: abort
                        // it, as the synchronous path does (§V-B1's
                        // zero-wait degenerate). Everything else is a
                        // plain refusal.
                        if let Some(resizer) = e.queued_resizer() {
                            slurm.abort_expand(resizer, now);
                        }
                        DmrAction::NoAction
                    }
                }
            }
            ResizeAction::Shrink { to, .. } => {
                if slurm.shrink_protocol(self.job, to, now).is_ok() {
                    DmrAction::Shrink { to }
                } else {
                    DmrAction::NoAction
                }
            }
        };
        // A shrink frees nodes for its beneficiary right away.
        if matches!(verdict, DmrAction::Shrink { .. }) {
            let _ = slurm.schedule(now);
        }
        drop(slurm);
        self.negotiate_latency
            .record(Span::from_secs_f64(round_trip.elapsed().as_secs_f64()));
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_cluster::Cluster;
    use dmr_slurm::{JobRequest, ResizeEnvelope};

    fn slurm_with_running_job(
        nodes: u32,
        job_nodes: u32,
        env: ResizeEnvelope,
    ) -> (Arc<Mutex<Slurm>>, JobId) {
        let mut s = Slurm::with_cluster(Cluster::new(nodes, 16));
        let id = s.submit(
            JobRequest::flexible("bridged", job_nodes, env),
            SimTime::ZERO,
        );
        let started = s.schedule(SimTime::ZERO);
        assert_eq!(started.len(), 1);
        (Arc::new(Mutex::new(s)), id)
    }

    #[test]
    fn lone_job_expands_through_the_bridge() {
        let env = ResizeEnvelope {
            min: 1,
            max: 8,
            preferred: None,
            factor: 2,
        };
        let (slurm, job) = slurm_with_running_job(16, 2, env);
        let mut rms = SlurmRms::connect(Arc::clone(&slurm), job);
        let action = rms.negotiate(2, &DmrSpec::new(1, 8));
        assert_eq!(action, DmrAction::Expand { to: 8 });
        // The protocol really ran: the scheduler now accounts 8 nodes.
        assert_eq!(slurm.lock().nodes_of(job), 8);
        // And the round trip landed in the latency telemetry.
        assert_eq!(rms.negotiate_latency().count(), 1);
        assert!(rms.negotiate_latency().max_s() < 60.0);
    }

    #[test]
    fn shrink_for_queued_job_through_the_bridge() {
        let env = ResizeEnvelope {
            min: 1,
            max: 16,
            preferred: None,
            factor: 2,
        };
        let (slurm, job) = slurm_with_running_job(16, 16, env);
        // A queued rigid job needing 8 nodes triggers the wide-
        // optimization shrink.
        {
            let mut s = slurm.lock();
            s.submit(JobRequest::rigid("queued", 8), SimTime::ZERO);
        }
        let mut rms = SlurmRms::connect(Arc::clone(&slurm), job);
        let action = rms.negotiate(16, &DmrSpec::new(1, 16));
        assert_eq!(action, DmrAction::Shrink { to: 8 });
        assert_eq!(slurm.lock().nodes_of(job), 8);
        // The bridge already ran the post-shrink cycle: the beneficiary
        // is running.
        assert_eq!(slurm.lock().running_count(), 2);
    }

    #[test]
    fn saturated_job_gets_no_action() {
        let env = ResizeEnvelope {
            min: 1,
            max: 4,
            preferred: None,
            factor: 2,
        };
        let (slurm, job) = slurm_with_running_job(16, 4, env);
        let mut rms = SlurmRms::connect(slurm, job);
        assert_eq!(rms.negotiate(4, &DmrSpec::new(1, 4)), DmrAction::NoAction);
    }

    #[test]
    fn bridge_honours_a_non_default_policy() {
        use dmr_slurm::{PolicyKind, SlurmConfig};
        let env = ResizeEnvelope {
            min: 1,
            max: 8,
            preferred: None,
            factor: 2,
        };
        // A utilization-band scheduler: 4/10 allocated sits below the
        // 0.55 floor, so the band policy expands; at 8/10 the cluster is
        // inside the band and the policy holds steady.
        let mut cfg = SlurmConfig::for_cluster(10);
        cfg.policy = PolicyKind::utilization_target();
        let mut s = Slurm::new(dmr_cluster::Cluster::new(10, 16), cfg);
        let id = s.submit(JobRequest::flexible("banded", 4, env), SimTime::ZERO);
        s.schedule(SimTime::ZERO);
        let slurm = Arc::new(Mutex::new(s));
        let mut rms = SlurmRms::connect(Arc::clone(&slurm), id);
        assert_eq!(
            rms.negotiate(4, &DmrSpec::new(1, 8)),
            DmrAction::Expand { to: 8 }
        );
        // 8/10 = 0.8 is inside [0.55, 0.85]: the band policy holds steady.
        assert_eq!(rms.negotiate(8, &DmrSpec::new(1, 8)), DmrAction::NoAction);
        assert_eq!(slurm.lock().policy_name(), "utilization-target");
    }
}
