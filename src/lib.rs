//! # dmr — umbrella crate
//!
//! Re-exports the whole DMR (Dynamic Management of Resources) stack, the
//! Rust reproduction of Iserte et al., "Efficient Scalable Computing
//! through Flexible Applications and Adaptive Workloads" (ICPP 2017), and
//! provides [`bridge::SlurmRms`] — the live connection between the
//! programming-model runtime and the `dmr-slurm` scheduler (the paper's
//! Nanos++ ↔ Slurm channel), so the real kernels can run under the real
//! Algorithm-1 policy.
//!
//! Substrate layers: [`sim`] (discrete events), [`cluster`] (hardware
//! model), [`workload`] (Feitelson model), [`slurm`] (workload manager),
//! [`mpi`] (thread-backed MPI), [`runtime`] (DMR API + offload),
//! [`core`] (workload simulation driver), [`apps`] (FS/CG/Jacobi/N-body),
//! [`checkpoint`] (C/R baseline), [`metrics`] (measurements).

pub mod bridge;

pub use dmr_apps as apps;
pub use dmr_checkpoint as checkpoint;
pub use dmr_cluster as cluster;
pub use dmr_core as core;
pub use dmr_metrics as metrics;
pub use dmr_mpi as mpi;
pub use dmr_runtime as runtime;
pub use dmr_sim as sim;
pub use dmr_slurm as slurm;
pub use dmr_workload as workload;
