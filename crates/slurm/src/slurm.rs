//! The scheduler core: queue, EASY backfill, and the malleability
//! protocol of §III.

use std::cell::RefCell;
use std::sync::Arc;

use dmr_cluster::{ClassConstraint, Cluster, FailOutcome, NodeId};
use dmr_sim::{SimTime, Span};

use crate::arena::JobArena;
use crate::index::{PendingIndex, PendingKey, ResizerIndex, RunningIndex};
use crate::job::{Dependency, Job, JobId, JobRequest, JobState};
use crate::policy::{PolicyKind, ResizePolicy};
use crate::priority::MultifactorConfig;
use crate::slotset::{BackfillFamily, SlotSet, SlotSetCheckpoint};

/// Which hot-path implementation the scheduler runs on.
///
/// [`SchedIndex::Arena`] (the default) adds, on top of the incremental
/// indices, slab-arena job storage ([`crate::arena::JobArena`]), a
/// cursor walk of the pending index in [`Slurm::schedule`] (O(starts)
/// instead of O(pending) per pass) and precise queue-cache invalidation
/// (a completion that removes nothing from the pending set keeps the
/// memoized order alive). [`SchedIndex::Indexed`] is the previous
/// index-served hot path, kept costed exactly as before so benchmarks
/// can measure the arena win against it. [`SchedIndex::ScanReference`]
/// keeps the pre-index full-scan implementations alive as the
/// *equivalence oracle*: all modes produce bit-identical scheduling
/// decisions (pinned by `tests/index_equivalence.rs`); only the cost
/// differs. Benchmarks run all of them to measure each step's win.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedIndex {
    /// Slab job storage + pending-index cursor walk + precise cache
    /// invalidation (the fastest path).
    #[default]
    Arena,
    /// Incremental indices with per-pass order materialisation (the
    /// previous hot path, kept as the benchmark baseline).
    Indexed,
    /// Pre-index scans and sorts on every pass (reference / oracle).
    ScanReference,
}

/// Whether the scheduler carries state *across* passes: watermark pass
/// elision, the persistent (tombstoned, appendable) pending-order cache,
/// retained backfill reservations / conservative plans, and the
/// per-instant resizer-reap memo.
///
/// [`SchedIncremental::On`] (the default) makes a scheduling or backfill
/// pass whose trigger provably cannot change any decision return in O(1)
/// — the *elision contract*: an elided pass is bit-for-bit identical to
/// an executed one (same empty start list, same observable state), which
/// `tests/incremental_equivalence.rs` pins by forking states and running
/// both paths. [`SchedIncremental::Off`] keeps every pass paying full
/// cost — the costed baseline the `BENCH_sched.json` incremental axis
/// measures the win against. The knob never changes decisions; only when
/// work is (provably redundantly) repeated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedIncremental {
    /// Elide provably-identical passes and persist order / reservation /
    /// plan state across passes (the fast path).
    #[default]
    On,
    /// Recompute every pass from scratch (the costed baseline).
    Off,
}

/// Scheduler-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlurmConfig {
    /// Enable EASY backfill (the paper's `sched/backfill`); disabling it
    /// degrades to strict priority-FIFO — kept as an ablation knob.
    pub backfill: bool,
    /// Which backfill algorithm [`Slurm::backfill_pass`] runs (EASY-k /
    /// conservative / the legacy single-reservation oracle). Only
    /// consulted while [`SlurmConfig::backfill`] is on.
    pub backfill_family: BackfillFamily,
    /// Cap on blocked jobs the conservative pass examines (and therefore
    /// plans) per invocation — Slurm's `bf_max_job_test`, which defaults
    /// to 500 on real installations precisely because planning an
    /// unbounded queue is quadratic in queue depth no matter how cheap
    /// each hole query is. Jobs past the window stay pending for a later
    /// pass. The EASY families ignore it: their planning depth is already
    /// bounded by `reservations`.
    pub bf_max_job_test: u32,
    pub multifactor: MultifactorConfig,
    /// Backfill estimate for jobs that did not provide one.
    pub default_expected_runtime: Span,
    /// How long the runtime waits for a queued resizer job before aborting
    /// the expansion (§V-B1).
    pub resizer_timeout: Span,
    /// Grant maximum priority to the queued job a shrink benefits
    /// (Algorithm 1 line 18). Ablation knob; the paper always boosts.
    pub shrink_boost: bool,
    /// Which reconfiguration decision procedure to install (§IV plug-in).
    pub policy: PolicyKind,
    /// Keep terminal (completed / cancelled) job records in the jobs
    /// table. `true` (the default) preserves the accounting API
    /// ([`Slurm::job`] on finished jobs); `false` drops each record the
    /// moment it turns terminal, so arbitrarily long workloads hold only
    /// the *active* job set — the setting the streaming driver uses.
    /// Scheduling decisions never read terminal records (pending-queue
    /// priority, backfill reservations and resize policies all filter on
    /// live states), so the two settings schedule identically.
    pub retain_completed: bool,
    /// Hot-path implementation selector (see [`SchedIndex`]). Kept in the
    /// config so experiments and benchmarks can pit the indexed path
    /// against the scan oracle without code changes.
    pub sched_index: SchedIndex,
    /// Cross-pass state selector (see [`SchedIncremental`]): pass
    /// elision, the persistent pending-order cache, retained backfill
    /// artifacts and the per-instant reap memo. Never consulted under
    /// [`SchedIndex::ScanReference`] (the oracle always pays full cost).
    pub sched_incremental: SchedIncremental,
    /// Let grow-happy policies ([`PolicyKind::UtilizationTarget`],
    /// [`PolicyKind::EnergyAware`]) consult the backfill timeline before
    /// expanding ([`Slurm::grow_steals_backfill_hole`]) and refuse grows
    /// that would steal the planned hole of the first blocked job.
    /// Default on; `false` restores the timeline-blind behaviour
    /// (equivalence-tested — `Algorithm1` never consults the guard
    /// either way).
    pub hole_guard: bool,
}

impl SlurmConfig {
    pub fn for_cluster(total_nodes: u32) -> Self {
        SlurmConfig {
            backfill: true,
            backfill_family: BackfillFamily::default(),
            bf_max_job_test: 512,
            multifactor: MultifactorConfig::with_total_nodes(total_nodes),
            default_expected_runtime: Span::from_secs(600),
            resizer_timeout: Span::from_secs(30),
            shrink_boost: true,
            policy: PolicyKind::Algorithm1,
            retain_completed: true,
            sched_index: SchedIndex::Arena,
            sched_incremental: SchedIncremental::On,
            hole_guard: true,
        }
    }
}

/// A job the scheduler just started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStart {
    pub id: JobId,
    pub nodes: Vec<NodeId>,
    /// `Some(original)` when the started job is a resizer for `original`;
    /// the driver must then complete the expansion with
    /// [`Slurm::finish_expand`].
    pub resizer_for: Option<JobId>,
}

/// Failures of the expansion protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpandError {
    UnknownJob(JobId),
    NotRunning(JobId),
    /// `to` is not strictly larger than the current allocation.
    InvalidTarget {
        current: u32,
        to: u32,
    },
    /// The resizer job could not start immediately; it stays pending with
    /// maximum priority. The caller should either wait for it to start (it
    /// will appear in a later [`Slurm::schedule`] result) or abort with
    /// [`Slurm::abort_expand`] after [`SlurmConfig::resizer_timeout`].
    Queued {
        resizer: JobId,
    },
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::UnknownJob(j) => write!(f, "{j:?} does not exist"),
            ExpandError::NotRunning(j) => write!(f, "{j:?} is not running"),
            ExpandError::InvalidTarget { current, to } => {
                write!(f, "expand target {to} <= current {current}")
            }
            ExpandError::Queued { resizer } => {
                write!(f, "resizer {resizer:?} queued, expansion deferred")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// The workload manager.
pub struct Slurm {
    cluster: Cluster,
    /// Job records in a generation-checked slab ([`JobArena`]): O(1)
    /// lookups on the submit/start/complete path, slots recycled once a
    /// record is pruned. (The detach mark of expand-protocol step 2
    /// lives on the record itself, [`Job::detached_nodes`].)
    jobs: JobArena,
    /// Next submission sequence number ([`Job::seq`]).
    next_seq: u64,
    pub config: SlurmConfig,
    /// The installed reconfiguration decision procedure (§IV plug-in).
    /// `None` only transiently, while the policy is consulted.
    policy: Option<Box<dyn ResizePolicy>>,
    /// Memoized pending-queue priority order.
    ///
    /// A scheduling cycle needs the pending order — and then every policy
    /// consultation in the same cycle needs it again through
    /// [`Slurm::pending_queue`]. The order is a pure function of
    /// `(pending set, job attributes, now)`, so it is cached and
    /// invalidated on any mutation that can change it (submit, start,
    /// completion, cancellation, boost). Orders served straight from the
    /// [`PendingIndex`] are additionally time-invariant between
    /// mutations, so those cache entries survive across instants.
    /// `RefCell`: the recompute happens behind `&self` accessors. The
    /// orders are `Arc<[JobId]>` so cache hits are allocation-free.
    queue_cache: RefCell<Option<QueueCache>>,
    /// Ordered pending index (see [`crate::index`]).
    pending_index: PendingIndex,
    /// Running jobs ordered by `(expected_end, nodes, id)` for backfill.
    running_index: RunningIndex,
    /// Parent → resizer reverse-dependency map for O(affected) reaping.
    resizer_index: ResizerIndex,
    /// The slot-set free-resource timeline the EASY-k / conservative
    /// backfill families query (see [`crate::slotset`]). `RefCell`: the
    /// deferred deltas are flushed behind `&self` in
    /// [`Slurm::check_invariants`].
    timeline: RefCell<Timeline>,
    /// One timeline per machine class, populated only when the cluster
    /// spans more than one class (empty on uniform inventories, so the
    /// single-class hot path pays nothing — the bit-identity oracle).
    /// Class-constrained jobs find their backfill holes here instead of
    /// in the over-optimistic aggregate.
    class_timelines: RefCell<Vec<Timeline>>,
    /// Per-class held-node counts of each running job at its last plan
    /// (multi-class only): the exact counts the matching unplan must
    /// mirror, whatever the allocation looks like by then.
    class_counts: std::collections::BTreeMap<JobId, Vec<u32>>,
    /// Per-class totals of held nodes across running jobs (multi-class
    /// only) — the per-class analogue of `RunningIndex::total_held`.
    class_held: Vec<u32>,
    /// Whether the per-class timelines are live. They sit dormant — no
    /// treap maintenance at all — until the first class-constrained
    /// submission ([`Slurm::activate_class_timelines`]), because they are
    /// only ever queried on behalf of a job with a sole eligible class,
    /// and such a job must have been submitted first. Unconstrained
    /// workloads on heterogeneous clusters therefore never pay the
    /// per-class plan/sync/checkpoint costs.
    class_tl_live: bool,
    /// Cross-pass incremental state ([`SchedIncremental`] layer).
    incr: IncrState,
}

/// One deferred timeline mutation: a running job's node commitment over
/// `[horizon, end)`, to add (`plan`) or remove. Queued O(1) at the index
/// mutation sites; applied (O(log slots) each) the next time the timeline
/// is consulted, so the scheduling hot paths never pay tree costs.
/// Applying from the *current* horizon is exact: occupancy behind the
/// horizon is clipped on both plan and unplan, and [`SlotSet::advance`]
/// prunes whatever a plan wrote behind the clock before any query runs.
#[derive(Debug, Clone, Copy)]
struct TimelineDelta {
    end: SimTime,
    nodes: u32,
    plan: bool,
}

/// The timeline plus its deferred-delta queue (see [`TimelineDelta`]).
#[derive(Debug)]
struct Timeline {
    slots: SlotSet,
    queued: Vec<TimelineDelta>,
    /// Checkpoint buffer for [`Timeline::save`], retained so steady-state
    /// saves are allocation-free memcpys.
    ckpt: SlotSetCheckpoint,
    /// Real (non-plan) deltas flushed while a checkpoint is active — the
    /// mid-pass starts whose commitments must survive the restore.
    recorded: Vec<TimelineDelta>,
    /// Whether a [`Timeline::save`] checkpoint is awaiting restore.
    recording: bool,
}

impl Timeline {
    fn new() -> Self {
        Timeline {
            slots: SlotSet::new(SimTime::ZERO),
            queued: Vec::new(),
            ckpt: SlotSetCheckpoint::default(),
            recorded: Vec::new(),
            recording: false,
        }
    }

    /// Applies every queued delta (without moving the horizon).
    fn flush(&mut self) {
        for d in self.queued.drain(..) {
            let h = self.slots.horizon();
            if d.plan {
                self.slots.plan(h, d.end, d.nodes);
            } else {
                self.slots.unplan(h, d.end, d.nodes);
            }
            if self.recording {
                self.recorded.push(d);
            }
        }
    }

    /// Brings the timeline up to date with the simulation clock: applies
    /// queued deltas, then garbage-collects everything behind `now`.
    fn sync(&mut self, now: SimTime) {
        self.flush();
        self.slots.advance(now);
    }

    /// Checkpoints the timeline so a pass can commit temporary plans
    /// directly ([`SlotSet::plan`], no journal) and drop them all with
    /// one [`Timeline::restore`]. Real deltas flushed in between (jobs
    /// the pass *started*) are recorded and survive the restore — they
    /// are replayed on top of the checkpoint. The queue must be empty
    /// (call [`Timeline::sync`] first) so the checkpoint is exact.
    fn save(&mut self) {
        debug_assert!(self.queued.is_empty(), "checkpoint with queued deltas");
        self.slots.save(&mut self.ckpt);
        self.recorded.clear();
        self.recording = true;
    }

    /// Reverts to the last [`Timeline::save`], then replays the real
    /// deltas recorded since. The horizon did not move while recording
    /// (passes run at one instant), so replaying from the restored
    /// horizon is exact — the same clipping [`Timeline::flush`] applied.
    fn restore(&mut self) {
        debug_assert!(self.recording, "restore without a checkpoint");
        self.recording = false;
        self.slots.restore(&self.ckpt);
        let h = self.slots.horizon();
        for d in self.recorded.drain(..) {
            if d.plan {
                self.slots.plan(h, d.end, d.nodes);
            } else {
                self.slots.unplan(h, d.end, d.nodes);
            }
        }
    }
}

/// One memoized pending order (see [`Slurm::pending_queue`]).
struct QueueCache {
    /// Instant the order was computed at.
    at: SimTime,
    /// Whether it came from the index (then it is valid at *any* instant
    /// while the index stays exact, not just at `at`).
    from_index: bool,
    /// Pending ids in index key order. Under the persistent regime
    /// (`SchedIncremental::On` + arena + exact index) entries may be
    /// *tombstones* — ids whose job has since started, been cancelled or
    /// been pruned. Readers filter them against the generation-checked
    /// arena, so the order survives starts/cancellations (a removal never
    /// reorders the survivors) and submissions append in O(1) (a fresh
    /// non-boosted job sorts strictly last under the exact index key).
    /// Empty placeholder unless `persistent`.
    order: Arc<Vec<JobId>>,
    /// Whether `order` is populated and may be appended to / tombstoned
    /// (entries created in the persistent regime). Guards against a
    /// mid-run [`SchedIncremental`] flip trusting a placeholder order.
    persistent: bool,
    /// Number of tombstones currently in `order`.
    stale: usize,
    /// Memoized tombstone-free materialisation, built lazily for the
    /// public accessors ([`Slurm::pending_queue`] and friends).
    shared: Option<Arc<[JobId]>>,
    /// The resizer-free view, built lazily on the first
    /// [`Slurm::pending_queue`] call of the cycle.
    no_resizers: Option<Arc<[JobId]>>,
}

/// A pass's borrowed walk order: either the clean shared slice (the
/// non-persistent regimes) or the persistent possibly-tombstoned order.
enum PassOrder {
    Shared(Arc<[JobId]>),
    Persistent(Arc<Vec<JobId>>),
}

impl PassOrder {
    fn ids(&self) -> &[JobId] {
        match self {
            PassOrder::Shared(s) => s,
            PassOrder::Persistent(v) => v,
        }
    }
}

/// Memo of a backfill pass that started nothing, snapshotting everything
/// its decisions depended on. While it stays valid (see the invalidation
/// wiring in [`Slurm`]'s mutators) a repeat pass is provably identical —
/// it would again start nothing and leave no observable state — and is
/// elided in O(1). The retained reservation / plan artifacts double as
/// the cross-pass caches exposed by [`Slurm::easy_reservations`] and
/// [`Slurm::conservative_plan`].
#[derive(Debug)]
struct BfMemo {
    /// Instant of the memoized pass. Refusals are monotone in time (the
    /// running-jobs occupancy profile only falls as `now` advances), so
    /// the memo holds at every `now >= at` until a mutation clears it.
    at: SimTime,
    /// Smallest `requested_nodes` among the jobs the pass refused for
    /// lack of free nodes (`u32::MAX` when nothing was). A
    /// capacity-increasing event invalidates the memo only when the new
    /// free count reaches this watermark: below it, every refusal
    /// provably repeats (a start requires `free >= requested`).
    watermark: u32,
    /// Whether the pass refused a *fitting* job (EASY harmless check /
    /// conservative hole not at `now`). Those refusals are **not**
    /// monotone in time — planned occupancy decays as running jobs
    /// overrun their estimates, so a hole can open with no mutation at
    /// all — and they depend on the running set. A memo carrying one is
    /// only reused at the exact memoized instant and dies at any
    /// capacity-increasing event.
    fitting_refused: bool,
    /// Config snapshot: the memo holds only while the pass would run the
    /// same algorithm with the same knobs.
    family: BackfillFamily,
    backfill_on: bool,
    window: u32,
    /// EASY-k `(shadow, spare)` reservations retained from the memoized
    /// pass — reused (by elision) while the blocking set is unchanged.
    easy_reservations: Vec<(SimTime, u32)>,
    /// Conservative planned slots `(job, planned start)` retained from
    /// the memoized pass.
    conservative_plan: Vec<(JobId, SimTime)>,
}

/// Cross-pass incremental-scheduling state (all of it soundness-gated:
/// every mutator either keeps a memo provably valid or clears it).
#[derive(Debug, Default)]
struct IncrState {
    /// `Some(need)` after a [`Slurm::schedule`] pass that started nothing
    /// and broke at a dependency-satisfied head requesting `need` nodes.
    /// While free nodes stay below `need` (and the pending order static),
    /// a repeat pass is provably identical and is elided.
    sched_block: Option<u32>,
    /// Memo of the last fruitless backfill pass (see [`BfMemo`]).
    bf_memo: Option<BfMemo>,
    /// Instant [`Slurm::reap_dead_resizers`] last ran to completion with
    /// no dependency-relevant mutation since — dedupes the
    /// schedule-then-backfill double reap at one instant.
    reaped_at: Option<SimTime>,
    sched_runs: u64,
    sched_elided: u64,
    bf_runs: u64,
    bf_elided: u64,
}

/// Pass counters of the incremental layer (see
/// [`Slurm::incremental_stats`]): how many scheduling / backfill passes
/// executed versus how many were elided as provable no-ops. Elision never
/// changes decisions, so these make the incremental win attributable —
/// benchmarks report them per cell instead of inferring the effect from
/// throughput alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// [`Slurm::schedule`] passes that ran the walk.
    pub sched_passes_run: u64,
    /// [`Slurm::schedule`] passes elided via the blocked-head watermark.
    pub sched_passes_elided: u64,
    /// [`Slurm::backfill_pass`] invocations that executed.
    pub backfill_passes_run: u64,
    /// [`Slurm::backfill_pass`] invocations elided via the pass memo.
    pub backfill_passes_elided: u64,
}

impl Slurm {
    pub fn new(mut cluster: Cluster, config: SlurmConfig) -> Self {
        cluster.use_scan_selection(config.sched_index == SchedIndex::ScanReference);
        let nclasses = cluster.table().num_classes();
        let per_class = if nclasses > 1 { nclasses } else { 0 };
        Slurm {
            cluster,
            jobs: JobArena::new(),
            next_seq: 0,
            policy: Some(config.policy.build()),
            config,
            queue_cache: RefCell::new(None),
            pending_index: PendingIndex::default(),
            running_index: RunningIndex::default(),
            resizer_index: ResizerIndex::default(),
            timeline: RefCell::new(Timeline::new()),
            class_timelines: RefCell::new((0..per_class).map(|_| Timeline::new()).collect()),
            class_counts: std::collections::BTreeMap::new(),
            class_held: vec![0; per_class],
            class_tl_live: false,
            incr: IncrState::default(),
        }
    }

    /// Convenience constructor with defaults sized to the cluster.
    pub fn with_cluster(cluster: Cluster) -> Self {
        let cfg = SlurmConfig::for_cluster(cluster.total_nodes());
        Slurm::new(cluster, cfg)
    }

    /// Replaces the installed reconfiguration policy.
    ///
    /// `config.policy` is a construction-time selector only and is *not*
    /// updated here (a custom trait object need not correspond to any
    /// [`PolicyKind`]); after this call, [`Slurm::policy_name`] is the
    /// source of truth for what is installed.
    pub fn set_policy(&mut self, policy: Box<dyn ResizePolicy>) {
        self.policy = Some(policy);
    }

    /// Name of the installed policy (sweep CSV labelling).
    pub fn policy_name(&self) -> &'static str {
        self.policy
            .as_deref()
            .map_or("<consulting>", ResizePolicy::name)
    }

    /// Detaches the policy so [`crate::policy`] can pass `&Slurm` to it.
    pub(crate) fn take_policy(&mut self) -> Box<dyn ResizePolicy> {
        self.policy.take().expect("resize policy installed")
    }

    pub(crate) fn restore_policy(&mut self, policy: Box<dyn ResizePolicy>) {
        self.policy = Some(policy);
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Powers down up to `n` free nodes (S5 suspend) through the cluster
    /// (see [`Cluster::power_down`]), returning how many were actually
    /// suspended. Free capacity shrank, so every cross-pass memo is
    /// invalidated — the catch-all rule, as for any capacity mutation the
    /// elision proofs don't cover.
    pub fn power_down_idle(&mut self, n: u32) -> u32 {
        if n == 0 {
            return 0;
        }
        let off = self.cluster.power_down(n).len() as u32;
        if off > 0 {
            self.incr_clear();
        }
        off
    }

    /// Wakes every powered-down node (the caller models the wake-up
    /// latency by delaying this call), returning how many woke. Capacity
    /// grew, so this runs the same invalidation as a completion.
    pub fn wake_all(&mut self) -> u32 {
        let woke = self.cluster.wake_all();
        if woke > 0 {
            self.incr_capacity_freed();
        }
        woke
    }

    /// An injected failure takes `node` down (see
    /// [`Cluster::fail_node`]). Any non-skipped failure is a capacity
    /// mutation no elision proof covers — an elided pass must never mask
    /// a failure — so every cross-pass memo drops, exactly as for
    /// [`Slurm::power_down_idle`]. The caller inspects the outcome: a
    /// [`FailOutcome::Busy`] victim owner needs [`Slurm::requeue_failed`].
    pub fn fail_node(&mut self, node: NodeId) -> FailOutcome {
        let outcome = self.cluster.fail_node(node);
        if outcome != FailOutcome::Skipped {
            self.incr_clear();
        }
        outcome
    }

    /// A failed node comes back up (see [`Cluster::repair_node`]),
    /// returning whether capacity actually grew. A repair that restores
    /// placeable capacity runs the same watermark invalidation as a
    /// completion.
    pub fn repair_node(&mut self, node: NodeId) -> bool {
        let placeable = self.cluster.repair_node(node);
        if placeable {
            self.incr_capacity_freed();
        }
        placeable
    }

    /// Kill-and-requeue after a node failure: the running victim is
    /// cancelled — its nodes release through the drained-while-allocated
    /// path, parking the failed node in the unavailable pool — and an
    /// equivalent request is resubmitted at the victim's current size
    /// with a fresh `seq` and maximum priority. The boosted resubmission
    /// preserves `seq`-based ordering determinism while putting the
    /// victim first in line for the next free slot. Returns the new job
    /// id, or `None` if `id` is not a running non-resizer job.
    pub fn requeue_failed(&mut self, id: JobId, now: SimTime) -> Option<JobId> {
        let job = self.jobs.get(id)?;
        if job.state != JobState::Running || job.is_resizer() {
            return None;
        }
        let req = JobRequest {
            name: job.name.clone(),
            nodes: job.requested_nodes,
            time_limit: job.time_limit,
            expected_runtime: Some(job.expected_runtime),
            dependency: None,
            base_priority: job.base_priority,
            resize: job.resize,
            constraint: job.constraint,
        };
        // The kill shares the cancellation path: stale completion events
        // are tombstoned by the caller, pending resizers of the victim
        // are orphaned (and reaped as dead candidates), and the queue
        // cache / incremental memos invalidate.
        self.cancel(id, now);
        let new = self.submit(req, now);
        self.boost(new);
        Some(new)
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id)
    }

    /// All job records, in arena storage order (equal to submission
    /// order while no record has been pruned — in particular always
    /// under [`SlurmConfig::retain_completed`]). Order-sensitive callers
    /// should sort by [`Job::seq`].
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Number of running jobs. O(1): served from the running index,
    /// which tracks the `Running` state exactly.
    pub fn running_count(&self) -> usize {
        self.running_index.len()
    }

    /// Number of pending jobs. O(1): served from the pending index.
    pub fn pending_count(&self) -> usize {
        self.pending_index.len()
    }

    /// Nodes currently attached to any job (including detached resizer
    /// nodes mid-protocol).
    pub fn allocated_nodes(&self) -> u32 {
        self.cluster.allocated_nodes()
    }

    /// Current node count of a job.
    pub fn nodes_of(&self, id: JobId) -> u32 {
        self.cluster.held_by(id.owner_tag())
    }

    /// Submits a job; it becomes eligible at the next [`Slurm::schedule`].
    pub fn submit(&mut self, req: JobRequest, now: SimTime) -> JobId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let default_runtime = self.config.default_expected_runtime;
        let parent_running = match req.dependency {
            Some(Dependency::ExpandOf(parent)) => self
                .jobs
                .get(parent)
                .is_some_and(|p| p.state == JobState::Running),
            None => false,
        };
        let dependency = req.dependency;
        let id = self.jobs.insert_with(|id| Job {
            id,
            seq,
            detached_nodes: 0,
            name: req.name,
            state: JobState::Pending,
            requested_nodes: req.nodes,
            time_limit: req.time_limit,
            expected_runtime: req.expected_runtime.unwrap_or(default_runtime),
            dependency: req.dependency,
            base_priority: req.base_priority,
            boosted: false,
            resize: req.resize,
            constraint: req.constraint,
            submit_time: now,
            start_time: None,
            end_time: None,
            reconfigurations: 0,
        });
        self.pending_index.insert(&self.jobs[id]);
        if let Some(Dependency::ExpandOf(parent)) = dependency {
            self.resizer_index.register(parent, id, parent_running);
        }
        // A new registration may be a dead-resizer candidate.
        self.incr.reaped_at = None;
        if self.incr_on() && self.index_is_exact() {
            // The fresh non-boosted job sorts strictly last: append to
            // the persistent order instead of dropping it. The sched
            // memo survives (the blocked head still blocks first, and
            // the priority-FIFO walk never looks past it). The backfill
            // memo survives only if the new job itself cannot start —
            // and the job's request must then join the watermark, so a
            // later capacity event that could fit *it* (even below the
            // old watermark) invalidates the memo.
            self.queue_cache_append(id);
            if let Some(m) = self.incr.bf_memo.as_mut() {
                let need = self.jobs[id].requested_nodes;
                let constraint = self.jobs[id].constraint;
                if need <= self.cluster.free_nodes_in(constraint) {
                    self.incr.bf_memo = None;
                } else {
                    m.watermark = m.watermark.min(need);
                }
            }
        } else {
            self.invalidate_queue_cache();
            self.incr_clear();
        }
        if self.jobs[id].constraint != ClassConstraint::Any {
            self.activate_class_timelines(now);
        }
        id
    }

    /// Grants a pending job maximum priority (§IV-3: the queued job a
    /// shrink benefits "will be assigned the maximum priority in order to
    /// foster its execution").
    pub fn boost(&mut self, id: JobId) {
        if let Some(j) = self.jobs.get_mut(id) {
            let reindex = j.state == JobState::Pending && !j.boosted;
            j.boosted = true;
            let (submit, seq, jid) = (j.submit_time, j.seq, j.id);
            if reindex {
                self.pending_index.reboost(submit, seq, jid);
            }
            self.invalidate_queue_cache();
            // A reorder invalidates both watermark memos (the blocked
            // head may change).
            self.incr_clear();
        }
    }

    /// Updates the backfill runtime estimate of a job (the simulation
    /// driver refreshes it after reconfigurations).
    pub fn set_expected_runtime(&mut self, id: JobId, estimate: Span) {
        let Some(j) = self.jobs.get_mut(id) else {
            return;
        };
        j.expected_runtime = estimate;
        // Runtime estimates feed every backfill decision (shadow times,
        // hole durations) but never the priority-FIFO walk: drop the
        // backfill memo, keep the schedule memo.
        self.incr.bf_memo = None;
        let started_at = (j.state == JobState::Running)
            .then_some(j.start_time)
            .flatten();
        if let Some(start) = started_at {
            let new_end = start + estimate;
            if let Some((old_end, nodes)) = self.running_index.set_end(id, new_end) {
                // Re-plan only the affected slots: this job's old and new
                // commitment intervals.
                self.tl_queue(old_end, nodes, false);
                self.tl_queue(new_end, nodes, true);
                if let Some(counts) = self.class_counts.get(&id).cloned() {
                    self.tlc_queue(&counts, old_end, false);
                    self.tlc_queue(&counts, new_end, true);
                }
            }
        }
    }

    /// Queues a timeline delta (a running job's node commitment until
    /// `end`) for application at the next timeline consultation.
    fn tl_queue(&mut self, end: SimTime, nodes: u32, plan: bool) {
        if nodes == 0 {
            return;
        }
        let tl = self.timeline.get_mut();
        tl.queued.push(TimelineDelta { end, nodes, plan });
        // Keep memory O(running) even when no backfill pass ever drains
        // the queue (backfill disabled): paired plan/unplan deltas cancel
        // once applied.
        if tl.queued.len() >= 1024 {
            tl.flush();
        }
    }

    /// Whether the inventory spans more than one machine class (the
    /// per-class timeline machinery is live).
    fn multi_class(&self) -> bool {
        !self.class_held.is_empty()
    }

    /// Queues per-class timeline deltas mirroring an aggregate delta.
    /// No-op on uniform inventories (`counts` is empty then) and while
    /// the class timelines are dormant (they are rebuilt wholesale when
    /// they go live, see [`Slurm::activate_class_timelines`]).
    fn tlc_queue(&mut self, counts: &[u32], end: SimTime, plan: bool) {
        if !self.class_tl_live {
            return;
        }
        let tls = self.class_timelines.get_mut();
        for (c, &nodes) in counts.iter().enumerate() {
            if nodes == 0 {
                continue;
            }
            let tl = &mut tls[c];
            tl.queued.push(TimelineDelta { end, nodes, plan });
            if tl.queued.len() >= 1024 {
                tl.flush();
            }
        }
    }

    /// Records a running job's per-class node commitment until `end`:
    /// plans the class timelines and bumps the per-class held totals
    /// (multi-class clusters only).
    fn class_plan(&mut self, id: JobId, end: SimTime) {
        if !self.multi_class() {
            return;
        }
        let counts = self.cluster.held_class_counts(id.owner_tag());
        for (c, &n) in counts.iter().enumerate() {
            self.class_held[c] += n;
        }
        self.tlc_queue(&counts, end, true);
        self.class_counts.insert(id, counts);
    }

    /// Removes the per-class commitment recorded by [`Slurm::class_plan`]
    /// (multi-class clusters only; tolerates a job that was never
    /// planned, mirroring the scheduler's release-mode leniency).
    fn class_unplan(&mut self, id: JobId, end: SimTime) {
        if let Some(counts) = self.class_counts.remove(&id) {
            for (c, &n) in counts.iter().enumerate() {
                self.class_held[c] -= n;
            }
            self.tlc_queue(&counts, end, false);
        }
    }

    /// Brings the aggregate timeline — and, when live, every class
    /// timeline — up to date with the simulation clock.
    fn sync_timelines(&mut self, now: SimTime) {
        self.timeline.get_mut().sync(now);
        if self.class_tl_live {
            for tl in self.class_timelines.get_mut() {
                tl.sync(now);
            }
        }
    }

    /// Brings the per-class timelines live: rebuilds each class's
    /// occupancy profile from the recorded running commitments, after
    /// which every mutation maintains them eagerly. Called on the first
    /// class-constrained submission — queries only ever target a class
    /// timeline on behalf of a constrained pending job, so until one
    /// exists the timelines can sit dormant for free. The rebuild plans
    /// the same `(end, count)` commitments the eager path would have
    /// accumulated, so query answers (hole starts, range maxima) are
    /// identical to timelines maintained from the start.
    fn activate_class_timelines(&mut self, now: SimTime) {
        if !self.multi_class() || self.class_tl_live {
            return;
        }
        self.class_tl_live = true;
        let tls = self.class_timelines.get_mut();
        for tl in tls.iter_mut() {
            debug_assert!(!tl.recording, "class timelines went live mid-pass");
            *tl = Timeline::new();
        }
        for (&id, counts) in &self.class_counts {
            let Some(end) = self.running_index.end_of(id) else {
                continue;
            };
            for (c, &n) in counts.iter().enumerate() {
                if n > 0 {
                    let h = tls[c].slots.horizon();
                    tls[c].slots.plan(h, end, n);
                }
            }
        }
        for tl in tls.iter_mut() {
            tl.sync(now);
        }
    }

    /// The single class eligible under `constraint`: `None` for `Any`,
    /// on uniform inventories, or when the constraint spans several
    /// classes (then only the aggregate timeline can answer for it).
    fn sole_eligible_class(&self, constraint: ClassConstraint) -> Option<usize> {
        if !self.multi_class() || constraint == ClassConstraint::Any {
            return None;
        }
        let table = self.cluster.table();
        let mut found = None;
        for c in 0..table.num_classes() {
            if constraint.allows(c, table.class(c)) {
                if found.is_some() {
                    return None;
                }
                found = Some(c);
            }
        }
        found
    }

    /// Backfill reservation for a class-constrained blocked job: the
    /// earliest hole on its class timeline when exactly one class is
    /// eligible, otherwise the aggregate hole (over-optimistic for a
    /// multi-class constraint, but a reservation is a throttle on
    /// lower-priority starts, not a start-time promise).
    fn constrained_hole(
        &self,
        constraint: ClassConstraint,
        need: u32,
        dur: Span,
        now: SimTime,
    ) -> (SimTime, u32) {
        let Some(c) = self.sole_eligible_class(constraint) else {
            return self.hole_reservation(need, dur, now);
        };
        let avail = self.cluster.free_nodes_in(ClassConstraint::Class(c)) + self.class_held[c];
        if avail < need {
            return (SimTime(u64::MAX), 0);
        }
        let cap = i64::from(avail - need);
        let tls = self.class_timelines.borrow();
        match tls[c].slots.earliest_hole(now, cap, dur) {
            Some(s) => {
                let peak = tls[c].slots.max_in(s, s + dur);
                (s, (cap - peak) as u32)
            }
            None => (SimTime(u64::MAX), 0),
        }
    }

    /// Drops the memoized pending order. Must be called by every mutation
    /// that can change the pending set or any priority input.
    fn invalidate_queue_cache(&self) {
        *self.queue_cache.borrow_mut() = None;
    }

    /// Whether the incremental layer is active: the knob is on and the
    /// mode is not the full-cost oracle.
    fn incr_on(&self) -> bool {
        self.config.sched_incremental == SchedIncremental::On
            && self.config.sched_index != SchedIndex::ScanReference
    }

    /// Whether the queue cache runs in the persistent (tombstoned,
    /// appendable) regime. Arena-only: the `Indexed` mode keeps its
    /// per-pass materialisation cost so benchmarks can still measure the
    /// arena step against it.
    fn cache_is_persistent(&self) -> bool {
        self.incr_on() && self.config.sched_index == SchedIndex::Arena
    }

    /// Clears every cross-pass decision memo. The catch-all for mutations
    /// whose effect on pass outcomes is not worth proving finer rules
    /// about.
    fn incr_clear(&mut self) {
        self.incr.sched_block = None;
        self.incr.bf_memo = None;
    }

    /// A capacity-increasing event happened (completion, running-job
    /// cancellation, shrink): keep the watermark memos only while the new
    /// free count still cannot satisfy the smallest refused request —
    /// then every refusal in the memoized pass provably repeats. A
    /// backfill memo that refused a fitting job is always dropped: the
    /// changed running set may flip that refusal either way.
    fn incr_capacity_freed(&mut self) {
        // The watermark rule compares *global* free capacity against the
        // blocked request — unsound for a class-constrained pending job,
        // whose class can gain nodes without the global count reaching
        // the watermark. Fall back to a full invalidation while any such
        // job is pending (never the case on uniform inventories).
        if self.pending_index.constrained() > 0 {
            self.incr_clear();
            return;
        }
        let free = self.cluster.free_nodes();
        if self.incr.sched_block.is_some_and(|need| free >= need) {
            self.incr.sched_block = None;
        }
        if self
            .incr
            .bf_memo
            .as_ref()
            .is_some_and(|m| m.fitting_refused || free >= m.watermark)
        {
            self.incr.bf_memo = None;
        }
    }

    /// A pending job left the pending set without changing the relative
    /// order of the rest (start / cancellation): under the persistent
    /// cache its entry becomes a tombstone; otherwise the cache drops.
    fn queue_cache_tombstone(&mut self) {
        if !self.cache_is_persistent() {
            self.invalidate_queue_cache();
            return;
        }
        let mut cache = self.queue_cache.borrow_mut();
        if let Some(c) = cache.as_mut() {
            if !c.from_index || !c.persistent {
                *cache = None;
                return;
            }
            c.stale += 1;
            c.shared = None;
            c.no_resizers = None;
            // Compact (by rebuild on next use) once tombstones dominate,
            // keeping walks O(live + live) rather than O(history).
            if c.stale * 2 > c.order.len() {
                *cache = None;
            }
        }
    }

    /// Appends a just-submitted job to the persistent order. Sound only
    /// when the caller verified the index is exact (a fresh non-boosted
    /// submission then sorts strictly after every retained entry).
    fn queue_cache_append(&mut self, id: JobId) {
        let mut cache = self.queue_cache.borrow_mut();
        if let Some(c) = cache.as_mut() {
            if c.from_index && c.persistent {
                Arc::make_mut(&mut c.order).push(id);
                c.shared = None;
                c.no_resizers = None;
            } else {
                *cache = None;
            }
        }
    }

    /// The order a backfill pass walks. Persistent regime: the retained
    /// (possibly tombstoned) order, rebuilt from the index only when
    /// absent — passes then filter tombstones instead of materialising a
    /// fresh order. Elsewhere: the classic shared slice at full cost.
    fn pass_order(&self, now: SimTime) -> PassOrder {
        if self.cache_is_persistent() && self.index_is_exact() {
            let mut cache = self.queue_cache.borrow_mut();
            if let Some(c) = cache.as_ref() {
                if c.from_index && c.persistent {
                    return PassOrder::Persistent(Arc::clone(&c.order));
                }
            }
            let order = Arc::new(self.pending_index.ids_vec());
            *cache = Some(QueueCache {
                at: now,
                from_index: true,
                order: Arc::clone(&order),
                persistent: true,
                stale: 0,
                shared: None,
                no_resizers: None,
            });
            return PassOrder::Persistent(order);
        }
        PassOrder::Shared(self.pending_ids_by_priority(now))
    }

    /// Whether the [`PendingIndex`] key order provably equals the
    /// multifactor sort at every instant: the age factor is the only
    /// live weight and no pending job carries a non-zero base priority.
    /// Age grows at the same rate for every pending job, and the
    /// priority rounding is monotone in age, so `(priority desc, submit
    /// asc, seq asc)` collapses to the static `(boosted, submit, seq)`
    /// key — order can then only change at mutation points, never with
    /// time.
    fn index_is_exact(&self) -> bool {
        matches!(
            self.config.sched_index,
            SchedIndex::Arena | SchedIndex::Indexed
        ) && self.config.multifactor.weight_size == 0
            && self.pending_index.nonzero_base() == 0
    }

    /// Whether the pending order is *static between mutations* — i.e.
    /// the index key order is provably the multifactor order at every
    /// instant (the private `index_is_exact` check). Public so drivers can
    /// tell when ordering-sensitive optimisations (e.g. batching all
    /// same-instant arrivals into one scheduling pass, which relies on
    /// fresh non-boosted submissions sorting strictly last) are sound.
    pub fn pending_order_is_static(&self) -> bool {
        self.index_is_exact()
    }

    fn pending_ids_by_priority(&self, now: SimTime) -> Arc<[JobId]> {
        let indexed = self.index_is_exact();
        {
            let mut cache = self.queue_cache.borrow_mut();
            if let Some(c) = cache.as_mut() {
                // An index-served order is time-invariant until the next
                // mutation (which clears or tombstones the cache), so it
                // survives across instants; sort-served orders are valid
                // at `at` only.
                if c.at == now || (c.from_index && indexed) {
                    if let Some(s) = &c.shared {
                        return Arc::clone(s);
                    }
                    // Materialise the clean slice, filtering tombstones
                    // out of the persistent order (a no-op filter when
                    // the cache was never tombstoned).
                    let s: Arc<[JobId]> = if c.stale == 0 {
                        c.order.iter().copied().collect()
                    } else {
                        c.order
                            .iter()
                            .copied()
                            .filter(|&id| {
                                self.jobs
                                    .get(id)
                                    .is_some_and(|j| j.state == JobState::Pending)
                            })
                            .collect()
                    };
                    c.shared = Some(Arc::clone(&s));
                    return s;
                }
            }
        }
        let shared: Arc<[JobId]> = if indexed {
            self.pending_index.ids().collect::<Vec<JobId>>().into()
        } else {
            self.pending_order_scan(now).into()
        };
        // Only the persistent regime ever walks / appends / tombstones
        // `order`; everywhere else the clean slice is the whole cache and
        // `order` stays an empty placeholder (no second copy paid).
        let persistent = self.cache_is_persistent() && indexed;
        let order = if persistent {
            Arc::new(shared.to_vec())
        } else {
            Arc::new(Vec::new())
        };
        *self.queue_cache.borrow_mut() = Some(QueueCache {
            at: now,
            from_index: indexed,
            order,
            persistent,
            stale: 0,
            shared: Some(Arc::clone(&shared)),
            no_resizers: None,
        });
        shared
    }

    /// The pre-index pending order: recompute every multifactor priority
    /// and sort. Exercised when the static index key cannot represent the
    /// order (size weight or per-job base priorities in play) and under
    /// [`SchedIndex::ScanReference`] as the equivalence oracle.
    fn pending_order_scan(&self, now: SimTime) -> Vec<JobId> {
        let mut pend: Vec<(&Job, u64)> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Pending)
            .map(|j| (j, self.config.multifactor.priority(j, now)))
            .collect();
        pend.sort_by(|(a, pa), (b, pb)| {
            pb.cmp(pa)
                .then(a.submit_time.cmp(&b.submit_time))
                .then(a.seq.cmp(&b.seq))
        });
        pend.into_iter().map(|(j, _)| j.id).collect()
    }

    /// Pending jobs in scheduling order, excluding resizer jobs (exposed
    /// for the reconfiguration policy). Returns a shared slice: repeated
    /// consultations within one scheduling cycle are allocation-free, and
    /// with no resizers pending the full order itself is shared.
    pub fn pending_queue(&self, now: SimTime) -> Arc<[JobId]> {
        let order = self.pending_ids_by_priority(now);
        if let Some(nr) = self
            .queue_cache
            .borrow()
            .as_ref()
            .and_then(|c| c.no_resizers.clone())
        {
            return nr;
        }
        let nr: Arc<[JobId]> = if self.pending_index.pending_resizers() == 0 {
            Arc::clone(&order)
        } else {
            order
                .iter()
                .copied()
                .filter(|&id| !self.jobs[id].is_resizer())
                .collect::<Vec<JobId>>()
                .into()
        };
        if let Some(c) = self.queue_cache.borrow_mut().as_mut() {
            c.no_resizers = Some(Arc::clone(&nr));
        }
        nr
    }

    fn dependency_satisfied(&self, job: &Job) -> bool {
        match job.dependency {
            None => true,
            Some(Dependency::ExpandOf(parent)) => self
                .jobs
                .get(parent)
                .is_some_and(|p| p.state == JobState::Running),
        }
    }

    /// Earliest instant at which `need` nodes will be free, judging by
    /// running jobs' expected ends, plus the spare ("extra") nodes at that
    /// instant. This is the EASY backfill reservation for the top blocked
    /// job.
    fn reservation_for(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        if self.config.sched_index == SchedIndex::ScanReference {
            return self.reservation_for_scan(need, now);
        }
        let mut free = self.cluster.free_nodes();
        for (end, nodes) in self.running_index.iter() {
            free += nodes;
            if free >= need {
                return (end.max(now), free - need);
            }
        }
        // Estimates never free enough nodes (can happen transiently while
        // resizer nodes are detached): no backfill headroom.
        (SimTime(u64::MAX), 0)
    }

    /// The pre-index reservation: collect every running job's
    /// `(expected_end, held_nodes)` and sort — the equivalence oracle for
    /// the [`RunningIndex`] walk above.
    fn reservation_for_scan(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        let mut ends: Vec<(SimTime, u32)> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                (
                    j.expected_end().unwrap_or(now),
                    self.cluster.held_by(j.id.owner_tag()),
                )
            })
            .collect();
        ends.sort();
        let mut free = self.cluster.free_nodes();
        for (end, nodes) in ends {
            free += nodes;
            if free >= need {
                return (end.max(now), free - need);
            }
        }
        (SimTime(u64::MAX), 0)
    }

    fn start_job(&mut self, id: JobId, now: SimTime) -> JobStart {
        let need = self.jobs[id].requested_nodes;
        let constraint = self.jobs[id].constraint;
        let nodes = self
            .cluster
            .allocate_in(need, id.owner_tag(), constraint)
            .expect("caller verified free nodes");
        let job = self.jobs.get_mut(id).expect("job exists");
        self.pending_index.remove(job);
        job.state = JobState::Running;
        job.start_time = Some(now);
        let end = now + job.expected_runtime;
        let resizer_for = job.dependency.map(|Dependency::ExpandOf(parent)| parent);
        let held = self.cluster.held_by(id.owner_tag());
        self.running_index.insert(id, end, held);
        self.tl_queue(end, held, true);
        self.class_plan(id, end);
        // A start changes the free count, the running set and (for
        // resizer parents) dependency satisfiability: every memo dies;
        // the persistent order keeps the started id as a tombstone.
        self.queue_cache_tombstone();
        self.incr_clear();
        self.incr.reaped_at = None;
        JobStart {
            id,
            nodes,
            resizer_for,
        }
    }

    fn reap_dead_resizers(&mut self, now: SimTime) {
        if self.config.sched_index == SchedIndex::ScanReference {
            return self.reap_dead_resizers_scan(now);
        }
        // Per-instant memo: a schedule() immediately followed by a
        // backfill_pass() at the same instant reaps once. Any mutation
        // that can create candidates or change dependency state (submit,
        // start, complete, cancel) re-arms it.
        if self.incr_on() && self.incr.reaped_at == Some(now) {
            return;
        }
        // O(1) in the common case: completions push orphaned resizers
        // onto the candidate list; nothing queued means nothing to do.
        if !self.resizer_index.has_dead_candidates() {
            if self.incr_on() {
                self.incr.reaped_at = Some(now);
            }
            return;
        }
        for id in self.resizer_index.take_dead() {
            let Some(j) = self.jobs.get(id) else {
                continue;
            };
            if j.state != JobState::Pending || !j.is_resizer() {
                continue;
            }
            if self.dependency_satisfied(j) {
                // The parent was not running at registration but is now:
                // re-register so a later parent termination re-queues it.
                if let Some(Dependency::ExpandOf(parent)) = j.dependency {
                    self.resizer_index.register(parent, id, true);
                }
                continue;
            }
            self.cancel(id, now);
        }
        // Arm the memo last: the cancels above cleared it.
        if self.incr_on() {
            self.incr.reaped_at = Some(now);
        }
    }

    /// The pre-index reap: scan every job record for pending resizers
    /// with unsatisfied dependencies (the [`ResizerIndex`] oracle).
    fn reap_dead_resizers_scan(&mut self, now: SimTime) {
        // Dependency hygiene: resizers of finished jobs are dead.
        let dead: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|j| {
                j.state == JobState::Pending && j.is_resizer() && !self.dependency_satisfied(j)
            })
            .map(|j| j.id)
            .collect();
        for id in dead {
            self.cancel(id, now);
        }
    }

    /// The event-driven scheduling pass (Slurm's `sched/builtin` reacting
    /// to submissions and completions): starts pending jobs in priority
    /// order and stops at the first that does not fit. Backfill around
    /// blocked jobs happens only in the periodic [`Slurm::backfill_pass`],
    /// mirroring Slurm's `bf_interval` architecture. Also reaps resizer
    /// jobs whose original job ended.
    pub fn schedule(&mut self, now: SimTime) -> Vec<JobStart> {
        // Watermark elision: a prior pass started nothing and broke at a
        // blocked head, and no mutation since could change any decision
        // (the memo is cleared by every mutation that can — see
        // `incr_clear` / `incr_capacity_freed` call sites). Requires the
        // static order (new submissions sort last, so the head still
        // blocks first) and a provably no-op reap.
        if self.incr_on()
            && self.index_is_exact()
            && !self.resizer_index.has_dead_candidates()
            && self.incr.sched_block.is_some()
        {
            self.incr.sched_elided += 1;
            return Vec::new();
        }
        self.incr.sched_runs += 1;
        self.reap_dead_resizers(now);
        let (started, blocked) = if matches!(
            self.config.sched_index,
            SchedIndex::Arena | SchedIndex::Indexed
        ) && self.index_is_exact()
        {
            self.schedule_walk(now)
        } else {
            let order = self.pending_ids_by_priority(now);
            let mut started = Vec::new();
            let mut blocked = None;
            for &id in order.iter() {
                let job = &self.jobs[id];
                if !self.dependency_satisfied(job) {
                    // Cannot run regardless of resources; does not block
                    // the queue.
                    continue;
                }
                if self
                    .cluster
                    .can_allocate_in(job.requested_nodes, job.constraint)
                {
                    started.push(self.start_job(id, now));
                } else {
                    blocked = Some(job.requested_nodes);
                    break;
                }
            }
            (started, blocked)
        };
        // Memoize only a fully fruitless pass: a pass that started jobs
        // may have flipped a skipped resizer's dependency mid-walk, and
        // `start_job` cleared the memos anyway.
        if self.incr_on() && self.index_is_exact() && started.is_empty() {
            self.incr.sched_block = blocked;
        }
        started
    }

    /// The index-served scheduling pass: walks the [`PendingIndex`]
    /// through a resumable cursor instead of materialising the whole
    /// order, so a pass that starts `k` of `n` pending jobs costs
    /// O(k log n). Visit order is the exact index key order — identical
    /// to the slice the materialising path would have walked (the only
    /// mid-walk mutation, [`Slurm::start_job`], removes keys the cursor
    /// has already passed). Used by both [`SchedIndex::Arena`] and
    /// [`SchedIndex::Indexed`] whenever the index is exact. Also returns
    /// the blocked head's request size for the elision watermark.
    fn schedule_walk(&mut self, now: SimTime) -> (Vec<JobStart>, Option<u32>) {
        let mut started = Vec::new();
        let mut blocked = None;
        let mut cursor: Option<PendingKey> = None;
        while let Some(key) = self.pending_index.next_after(cursor) {
            cursor = Some(key);
            let (.., id) = key;
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            if self
                .cluster
                .can_allocate_in(job.requested_nodes, job.constraint)
            {
                started.push(self.start_job(id, now));
            } else {
                blocked = Some(job.requested_nodes);
                break;
            }
        }
        (started, blocked)
    }

    /// The periodic backfill pass (Slurm's backfill thread), dispatched
    /// on [`SlurmConfig::backfill_family`]:
    ///
    /// * [`BackfillFamily::Easy`] — the first `k` blocked jobs get
    ///   shadow-time reservations found on the slot-set timeline;
    ///   lower-priority jobs jump ahead only if they delay none of them.
    ///   `k = 1` is bit-for-bit the legacy behaviour.
    /// * [`BackfillFamily::Conservative`] — every blocked job gets a slot
    ///   planned in the timeline; a job starts now only if its whole
    ///   expected runtime fits under every plan.
    /// * [`BackfillFamily::LegacyReference`] — the pre-slot-set
    ///   single-reservation walk, kept as the equivalence oracle.
    ///
    /// Under [`SchedIncremental::On`] a pass whose memo is still valid —
    /// same family and knobs, a later-or-equal instant (refusals are
    /// monotone in time), no invalidating mutation since, and a provably
    /// no-op reap — is elided in O(1): it would start nothing and leave
    /// no observable state, bit-for-bit like running it. The legacy
    /// oracle never creates memos, so it never elides.
    pub fn backfill_pass(&mut self, now: SimTime) -> Vec<JobStart> {
        if self.incr_on()
            && self.index_is_exact()
            && !self.resizer_index.has_dead_candidates()
            && self.incr.bf_memo.as_ref().is_some_and(|m| {
                (if m.fitting_refused {
                    m.at == now
                } else {
                    m.at <= now
                }) && m.family == self.config.backfill_family
                    && m.backfill_on == self.config.backfill
                    && m.window == self.config.bf_max_job_test
            })
        {
            self.incr.bf_elided += 1;
            return Vec::new();
        }
        self.incr.bf_runs += 1;
        match self.config.backfill_family {
            BackfillFamily::Easy { reservations } => {
                self.backfill_pass_easy(now, reservations.max(1))
            }
            BackfillFamily::Conservative => self.backfill_pass_conservative(now),
            BackfillFamily::LegacyReference => self.backfill_pass_legacy(now),
        }
    }

    /// The pre-slot-set EASY pass: one reservation computed by the
    /// running-index walk ([`Slurm::reservation_for`]), kept verbatim as
    /// the equivalence oracle for `Easy { reservations: 1 }`.
    fn backfill_pass_legacy(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        let mut reservation: Option<(SimTime, u32)> = None;
        for &id in order.iter() {
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            let fits = self.cluster.can_allocate_in(need, job.constraint);
            match (&mut reservation, fits) {
                (None, true) => {
                    started.push(self.start_job(id, now));
                }
                (None, false) => {
                    if !self.config.backfill {
                        break;
                    }
                    reservation = Some(self.reservation_for(need, now));
                }
                (Some((shadow, extra)), true) => {
                    // Backfill: must not delay the reservation holder.
                    let est_end = now + self.jobs[id].expected_runtime;
                    if est_end <= *shadow {
                        started.push(self.start_job(id, now));
                    } else if need <= *extra {
                        *extra -= need;
                        started.push(self.start_job(id, now));
                    }
                }
                (Some(_), false) => {}
            }
        }
        started
    }

    /// EASY-k on the slot-set timeline: up to `k` blocked jobs hold
    /// `(shadow, spare)` reservations; a fitting lower-priority job
    /// starts only if, for every reservation, it either ends by the
    /// shadow time or fits in the spare nodes (which it then consumes).
    /// The first reservation reproduces the legacy walk bit-for-bit
    /// ([`Slurm::easy_first_reservation`]); deeper ones are O(log slots)
    /// hole queries. Reservations are planned into the timeline for the
    /// duration of the pass so each later hole query sees the earlier
    /// plans, and unplanned before returning.
    fn backfill_pass_easy(&mut self, now: SimTime, k: u32) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        self.sync_timelines(now);
        let order = self.pass_order(now);
        let mut started = Vec::new();
        let mut reservations: Vec<(SimTime, u32)> = Vec::new();
        // Refusal records for the elision memo (see [`BfMemo`]).
        let mut watermark = u32::MAX;
        let mut fitting_refused = false;
        for &id in order.ids() {
            // Tombstone / state filter: under the persistent order, ids
            // may refer to started, cancelled or recycled jobs; the
            // generation-checked arena rejects them. A clean order only
            // ever holds pending jobs here, so the filter is a no-op.
            let Some(job) = self.jobs.get(id) else {
                continue;
            };
            if job.state != JobState::Pending {
                continue;
            }
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            let constraint = job.constraint;
            if self.cluster.can_allocate_in(need, constraint) {
                if reservations.is_empty() {
                    started.push(self.start_job(id, now));
                    self.sync_timelines(now);
                    continue;
                }
                let est_end = now + self.jobs[id].expected_runtime;
                let harmless = reservations
                    .iter()
                    .all(|&(shadow, spare)| est_end <= shadow || need <= spare);
                if harmless {
                    for r in reservations.iter_mut() {
                        if est_end > r.0 {
                            r.1 -= need;
                        }
                    }
                    started.push(self.start_job(id, now));
                    self.sync_timelines(now);
                } else {
                    // A fitting job refused by the harmless check: not a
                    // time-invariant refusal (see [`BfMemo`]).
                    fitting_refused = true;
                }
            } else {
                watermark = watermark.min(need);
                if reservations.is_empty() && !self.config.backfill {
                    break;
                }
                if (reservations.len() as u32) < k {
                    let dur = self.jobs[id].expected_runtime;
                    let (shadow, spare) = if constraint != ClassConstraint::Any {
                        self.constrained_hole(constraint, need, dur, now)
                    } else if reservations.is_empty() {
                        self.easy_first_reservation(need, now)
                    } else {
                        self.hole_reservation(need, dur, now)
                    };
                    if shadow != SimTime(u64::MAX) {
                        let until = shadow + dur;
                        self.timeline
                            .get_mut()
                            .slots
                            .plan_journaled(shadow, until, need);
                        if let Some(c) = self.sole_eligible_class(constraint) {
                            self.class_timelines.get_mut()[c]
                                .slots
                                .plan_journaled(shadow, until, need);
                        }
                    }
                    reservations.push((shadow, spare));
                }
            }
        }
        self.timeline.get_mut().slots.rollback_plans();
        if self.class_tl_live {
            for tl in self.class_timelines.get_mut() {
                tl.slots.rollback_plans();
            }
        }
        self.bf_memoize(
            now,
            watermark,
            fitting_refused,
            started.is_empty(),
            reservations,
            Vec::new(),
        );
        started
    }

    /// Conservative backfill: walk the queue in priority order; a job
    /// whose whole expected runtime fits under the planned occupancy
    /// starts now, every other job gets the earliest hole planned into
    /// the timeline — so no start can delay any blocked job's plan.
    /// Pass-local plans are removed before returning.
    ///
    /// The walk stops after [`SlurmConfig::bf_max_job_test`] blocked jobs
    /// (Slurm's own conservative-depth cap): a job deeper than the window
    /// may not start anyway — the untested blocked jobs between it and
    /// the window would have no plans protecting them.
    fn backfill_pass_conservative(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        self.sync_timelines(now);
        // Temporary plans go in un-journaled: the pass plans up to
        // `window` reservations, and unwinding them one treap op at a
        // time dominates the pass. A checkpoint reverts them all in one
        // flat copy; mid-pass starts are replayed on top (see
        // [`Timeline::save`]).
        self.timeline.get_mut().save();
        if self.class_tl_live {
            for tl in self.class_timelines.get_mut() {
                tl.save();
            }
        }
        let window = self.config.bf_max_job_test.max(1);
        let order = self.pass_order(now);
        let mut started = Vec::new();
        let mut plan_slots: Vec<(JobId, SimTime)> = Vec::new();
        let mut tested: u32 = 0;
        // Refusal records for the elision memo (see [`BfMemo`]).
        let mut watermark = u32::MAX;
        let mut fitting_refused = false;
        for &id in order.ids() {
            // Tombstone / state filter (see `backfill_pass_easy`). Under
            // the persistent order this is what makes the pass a *window
            // over the retained order* — O(window + skips) instead of a
            // full O(pending) materialisation per pass.
            let Some(job) = self.jobs.get(id) else {
                continue;
            };
            if job.state != JobState::Pending {
                continue;
            }
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            let dur = job.expected_runtime;
            let fits = self.cluster.can_allocate_in(need, job.constraint);
            if !fits && plan_slots.is_empty() && !self.config.backfill {
                watermark = watermark.min(need);
                break;
            }
            tested += 1;
            if tested > window {
                break;
            }
            // A class-constrained job with a single eligible class plans
            // against that class's timeline (the aggregate would lend it
            // capacity its class never has); the plan still goes into
            // the aggregate too so unconstrained jobs cannot double-book
            // the same global window.
            let sole = self.sole_eligible_class(job.constraint);
            let avail = match sole {
                Some(c) => {
                    self.cluster.free_nodes_in(ClassConstraint::Class(c)) + self.class_held[c]
                }
                None => self.cluster.free_nodes() + self.running_index.total_held(),
            };
            if avail < need {
                // Can never run on current estimates; nothing to plan.
                // (A start needs `fits`, i.e. free >= need > avail >=
                // free — so the watermark rule covers this refusal too.)
                watermark = watermark.min(need);
                continue;
            }
            let cap = i64::from(avail - need);
            let hole = match sole {
                Some(c) => self.class_timelines.borrow()[c]
                    .slots
                    .earliest_hole(now, cap, dur),
                None => self.timeline.borrow().slots.earliest_hole(now, cap, dur),
            };
            match hole {
                Some(s) if s == now && fits => {
                    started.push(self.start_job(id, now));
                    self.sync_timelines(now);
                }
                Some(s) => {
                    // A fitting job whose hole is not at `now` is a
                    // time-sensitive refusal: occupancy decay alone can
                    // open its hole. A non-fitting one cannot start
                    // while `free < need`, whatever its hole does.
                    if fits {
                        fitting_refused = true;
                    } else {
                        watermark = watermark.min(need);
                    }
                    let until = s + dur;
                    self.timeline.get_mut().slots.plan(s, until, need);
                    if let Some(c) = sole {
                        self.class_timelines.get_mut()[c].slots.plan(s, until, need);
                    }
                    plan_slots.push((id, s));
                }
                None => {
                    if fits {
                        fitting_refused = true;
                    } else {
                        watermark = watermark.min(need);
                    }
                }
            }
        }
        self.timeline.get_mut().restore();
        if self.class_tl_live {
            for tl in self.class_timelines.get_mut() {
                tl.restore();
            }
        }
        self.bf_memoize(
            now,
            watermark,
            fitting_refused,
            started.is_empty(),
            Vec::new(),
            plan_slots,
        );
        started
    }

    /// Records the memo of a fruitless backfill pass (see [`BfMemo`]).
    /// Passes that started jobs need no action: `start_job` already
    /// cleared any previous memo.
    fn bf_memoize(
        &mut self,
        now: SimTime,
        watermark: u32,
        fitting_refused: bool,
        fruitless: bool,
        easy_reservations: Vec<(SimTime, u32)>,
        conservative_plan: Vec<(JobId, SimTime)>,
    ) {
        if !(self.incr_on() && self.index_is_exact() && fruitless) {
            return;
        }
        self.incr.bf_memo = Some(BfMemo {
            at: now,
            watermark,
            fitting_refused,
            family: self.config.backfill_family,
            backfill_on: self.config.backfill,
            window: self.config.bf_max_job_test,
            easy_reservations,
            conservative_plan,
        });
    }

    /// Pass counters of the incremental layer: executed versus elided
    /// scheduling and backfill passes (see [`IncrementalStats`]).
    pub fn incremental_stats(&self) -> IncrementalStats {
        IncrementalStats {
            sched_passes_run: self.incr.sched_runs,
            sched_passes_elided: self.incr.sched_elided,
            backfill_passes_run: self.incr.bf_runs,
            backfill_passes_elided: self.incr.bf_elided,
        }
    }

    /// The EASY-k `(shadow, spare)` reservations retained from the last
    /// fruitless backfill pass, while still provably current (every
    /// invalidating mutation drops them together with the pass memo).
    /// `None` when no memo is live or the memoized family was not EASY.
    /// This is the cross-pass reservation cache: while the blocking set
    /// is unchanged, repeat passes are elided and the pairs are served
    /// from here instead of being recomputed.
    pub fn easy_reservations(&self) -> Option<&[(SimTime, u32)]> {
        self.incr.bf_memo.as_ref().and_then(|m| {
            matches!(m.family, BackfillFamily::Easy { .. })
                .then_some(m.easy_reservations.as_slice())
        })
    }

    /// Whether growing running job `id` to `to` nodes would steal the
    /// backfill hole of the first blocked pending job. Grow-happy
    /// policies consult this before returning an expand verdict when
    /// [`SlurmConfig::hole_guard`] is on (default); off restores the
    /// timeline-blind behaviour.
    ///
    /// The check is deliberately mode-independent: it recomputes the
    /// blocked head's reservation from the timeline instead of peeking
    /// at [`Slurm::easy_reservations`] (whose presence depends on the
    /// [`SchedIncremental`] knob), so policy decisions stay
    /// bit-identical across every hot-path / incremental setting. A
    /// grow steals the hole when its extra nodes exceed the
    /// reservation's spare count while the grown job is still expected
    /// to run at the shadow time.
    pub fn grow_steals_backfill_hole(&self, id: JobId, to: u32, now: SimTime) -> bool {
        if !self.config.hole_guard || !self.config.backfill {
            return false;
        }
        let current = self.nodes_of(id);
        if to <= current {
            return false;
        }
        let delta = to - current;
        let pending = self.pending_queue(now);
        let blocked = pending.iter().find_map(|&pid| {
            let j = self.jobs.get(pid)?;
            (!self
                .cluster
                .can_allocate_in(j.requested_nodes, j.constraint))
            .then_some((j.requested_nodes, j.constraint, j.expected_runtime))
        });
        let Some((need, constraint, dur)) = blocked else {
            return false;
        };
        self.timeline.borrow_mut().sync(now);
        if self.class_tl_live {
            for tl in self.class_timelines.borrow_mut().iter_mut() {
                tl.sync(now);
            }
        }
        let (shadow, spare) = if constraint != ClassConstraint::Any {
            self.constrained_hole(constraint, need, dur, now)
        } else {
            self.easy_first_reservation(need, now)
        };
        if shadow == SimTime(u64::MAX) {
            return false;
        }
        let grown_end = self.jobs.get(id).and_then(Job::expected_end).unwrap_or(now);
        delta > spare && grown_end > shadow
    }

    /// The conservative plan `(job, planned start)` retained from the
    /// last fruitless backfill pass, while still provably current.
    /// Entries are as of the memoized instant (the memo's `at`): with the
    /// cluster unchanged since, no planned job can start earlier, so the
    /// plan remains the schedule the pass would reproduce. `None` when no
    /// memo is live or the memoized family was not conservative.
    pub fn conservative_plan(&self) -> Option<&[(JobId, SimTime)]> {
        self.incr.bf_memo.as_ref().and_then(|m| {
            (m.family == BackfillFamily::Conservative).then_some(m.conservative_plan.as_slice())
        })
    }

    /// The first EASY reservation, answered from the timeline but
    /// bit-for-bit identical to the legacy walk ([`Slurm::reservation_for`]).
    ///
    /// The timeline locates the crossing slot in O(log): the first
    /// boundary `S` where planned occupancy leaves `need` nodes free.
    /// The legacy walk, however, stops *inside* the group of running
    /// jobs sharing the expected end `S` — its "extra" count excludes
    /// later same-end entries — so the partial accumulation is replayed
    /// over just that group (O(group), not O(running)).
    fn easy_first_reservation(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        let free_now = self.cluster.free_nodes();
        // Defensive: callers only ask about blocked jobs (free < need).
        // Should the preconditions ever not hold, defer to the oracle so
        // the answer is unconditionally identical.
        if free_now >= need || self.running_index.len() == 0 {
            return self.reservation_for(need, now);
        }
        let avail = free_now + self.running_index.total_held();
        if avail < need {
            // Estimates never free enough nodes (can happen transiently
            // while resizer nodes are detached): no backfill headroom.
            return (SimTime(u64::MAX), 0);
        }
        let cap = i64::from(avail - need);
        let tl = self.timeline.borrow();
        let Some(s) = tl.slots.first_fit_at(now, cap) else {
            return (SimTime(u64::MAX), 0);
        };
        let occ_s = tl.slots.occupied_at(s);
        drop(tl);
        if s <= now {
            // Jobs already past their estimate (their ends clamp to
            // `now` in the legacy walk) free enough on their own.
            let mut free = free_now;
            for (_, nodes) in self.running_index.ends_through(now) {
                free += nodes;
                if free >= need {
                    return (now, free - need);
                }
            }
        } else {
            let group_sum: u32 = self.running_index.group_at(s).map(|(_, n)| n).sum();
            // Free count just before the group: avail - occ(S) counts
            // every job ending at or before S as freed; subtract the
            // group to get the legacy accumulator's starting point.
            let mut free = avail - (occ_s as u32) - group_sum;
            for (end, nodes) in self.running_index.group_at(s) {
                free += nodes;
                if free >= need {
                    return (end, free - need);
                }
            }
        }
        // Unreachable while the timeline mirrors the running set; defer
        // to the oracle rather than guess.
        self.reservation_for(need, now)
    }

    /// A deeper EASY-k reservation: the earliest timeline hole fitting
    /// `need` nodes for `dur`, with the spare count taken against the
    /// occupancy peak inside the window (so backfilling against this
    /// reservation can never overdraw it).
    fn hole_reservation(&self, need: u32, dur: Span, now: SimTime) -> (SimTime, u32) {
        let avail = self.cluster.free_nodes() + self.running_index.total_held();
        if avail < need {
            return (SimTime(u64::MAX), 0);
        }
        let cap = i64::from(avail - need);
        let tl = self.timeline.borrow();
        match tl.slots.earliest_hole(now, cap, dur) {
            Some(s) => {
                let peak = tl.slots.max_in(s, s + dur);
                (s, (cap - peak) as u32)
            }
            None => (SimTime(u64::MAX), 0),
        }
    }

    /// Marks a running job complete and frees its nodes.
    pub fn complete(&mut self, id: JobId, now: SimTime) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        debug_assert_eq!(job.state, JobState::Running, "completing a non-running job");
        let was_pending = job.state == JobState::Pending;
        job.state = JobState::Completed;
        job.end_time = Some(now);
        let dep = job.dependency;
        if was_pending {
            // Tolerated in release builds only (the debug assert above
            // fires first): keep the index consistent with the scan.
            self.pending_index.remove(&self.jobs[id]);
        }
        if let Some((end, nodes)) = self.running_index.remove(id) {
            self.tl_queue(end, nodes, false);
            self.class_unplan(id, end);
        }
        if let Some(Dependency::ExpandOf(parent)) = dep {
            self.resizer_index.resizer_terminal(parent, id);
        }
        self.resizer_index.parent_terminal(id);
        // Precise invalidation (arena mode): completing a *running* job
        // removes nothing from the pending set and touches no priority
        // input, so the memoized pending order stays valid. (Orphaned
        // resizers are reaped via `cancel`, which does invalidate.) The
        // older paths invalidate unconditionally, exactly as before.
        if was_pending || self.config.sched_index != SchedIndex::Arena {
            self.invalidate_queue_cache();
        }
        // A job that shrank to zero nodes cannot exist (envelope min >= 1),
        // but release defensively.
        let _ = self.cluster.release_all(id.owner_tag());
        // `parent_terminal` may have queued dead-resizer candidates.
        self.incr.reaped_at = None;
        if was_pending {
            self.incr_clear();
        } else {
            // Capacity-increasing event: watermark rule decides whether
            // the memos survive.
            self.incr_capacity_freed();
        }
        if !self.config.retain_completed {
            self.jobs.remove(id);
        }
    }

    /// Cancels a pending or running job. Detached resizer nodes are *not*
    /// freed — that is the point of protocol step 3: cancelling the hollow
    /// resizer job keeps its allocation parked for reattachment.
    pub fn cancel(&mut self, id: JobId, now: SimTime) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if job.state.is_terminal() {
            return;
        }
        let was_running = job.state == JobState::Running;
        let was_pending = job.state == JobState::Pending;
        let detached = job.detached_nodes != 0;
        job.state = JobState::Cancelled;
        job.end_time = Some(now);
        let dep = job.dependency;
        if was_pending {
            self.pending_index.remove(&self.jobs[id]);
        }
        if was_running {
            if let Some((end, nodes)) = self.running_index.remove(id) {
                self.tl_queue(end, nodes, false);
                self.class_unplan(id, end);
            }
        }
        if let Some(Dependency::ExpandOf(parent)) = dep {
            self.resizer_index.resizer_terminal(parent, id);
        }
        self.resizer_index.parent_terminal(id);
        if was_pending {
            // Removal without reorder: tombstone under the persistent
            // cache, full drop elsewhere (exactly the old behaviour).
            self.queue_cache_tombstone();
        } else {
            self.invalidate_queue_cache();
        }
        if was_running && !detached {
            let _ = self.cluster.release_all(id.owner_tag());
        }
        self.incr.reaped_at = None;
        if was_running && !detached {
            // Capacity-increasing: the watermark rule decides.
            self.incr_capacity_freed();
        } else {
            self.incr_clear();
        }
        // The record itself is never consulted after cancellation (node
        // ownership lives in the cluster tables), so it can be dropped
        // with the same retention rule as completions.
        if !self.config.retain_completed {
            self.jobs.remove(id);
        }
    }

    // ------------------------------------------------------------------
    // The §III malleability protocol.
    // ------------------------------------------------------------------

    /// Expands `id` to `to` nodes via the four-step resizer-job protocol.
    ///
    /// On success returns the job's full (old + new) node list. If the
    /// resizer cannot start immediately, it is left pending with maximum
    /// priority and [`ExpandError::Queued`] is returned; the caller decides
    /// whether to wait (async mode) or abort.
    pub fn expand_protocol(
        &mut self,
        id: JobId,
        to: u32,
        now: SimTime,
    ) -> Result<Vec<NodeId>, ExpandError> {
        let job = self.jobs.get(id).ok_or(ExpandError::UnknownJob(id))?;
        if job.state != JobState::Running {
            return Err(ExpandError::NotRunning(id));
        }
        let current = self.cluster.held_by(id.owner_tag());
        if to <= current {
            return Err(ExpandError::InvalidTarget { current, to });
        }
        let delta = to - current;
        let constraint = job.constraint;
        // Step 1: submit the resizer job B with a dependency on A and
        // maximum priority ("facilitating its execution", §V-B1). The
        // resizer inherits A's class constraint: the new nodes join A's
        // allocation, so they must satisfy the same placement rules.
        let rj = self.submit(
            JobRequest {
                name: format!("resizer-of-{id}"),
                nodes: delta,
                time_limit: None,
                expected_runtime: Some(Span::ZERO),
                dependency: Some(Dependency::ExpandOf(id)),
                base_priority: 0,
                resize: None,
                constraint,
            },
            now,
        );
        self.boost(rj);
        if !self.cluster.can_allocate_in(delta, constraint) {
            return Err(ExpandError::Queued { resizer: rj });
        }
        // The resizer starts right away (it outranks everything pending).
        let _ = self.start_job(rj, now);
        let (_, nodes) = self
            .finish_expand(rj, now)
            .expect("resizer started; protocol steps 2-4 cannot fail");
        Ok(nodes)
    }

    /// Completes protocol steps 2–4 for a resizer job that has started:
    /// detach its nodes, cancel it, reattach the nodes to the original job.
    /// Returns the original job id and its full node list.
    pub fn finish_expand(
        &mut self,
        rj: JobId,
        now: SimTime,
    ) -> Result<(JobId, Vec<NodeId>), ExpandError> {
        let rjob = self.jobs.get(rj).ok_or(ExpandError::UnknownJob(rj))?;
        if rjob.state != JobState::Running {
            return Err(ExpandError::NotRunning(rj));
        }
        let Some(Dependency::ExpandOf(original)) = rjob.dependency else {
            return Err(ExpandError::UnknownJob(rj));
        };
        let delta = self.cluster.held_by(rj.owner_tag());
        // Step 2: update B to zero nodes — the allocation detaches from B.
        if let Some(j) = self.jobs.get_mut(rj) {
            j.requested_nodes = 0;
            j.detached_nodes = delta;
        }
        // Step 3: cancel B (nodes stay parked because of the detach mark).
        self.cancel(rj, now);
        if let Some(j) = self.jobs.get_mut(rj) {
            // Record may already be pruned (retention off); clear the
            // mark when it survives.
            j.detached_nodes = 0;
        }
        // Step 4: update A to N_A + N_B — reattach.
        let moved = self
            .cluster
            .transfer_all(rj.owner_tag(), original.owner_tag())
            .expect("detached nodes are still owned by the resizer tag");
        debug_assert_eq!(moved.len() as u32, delta);
        let held = self.cluster.held_by(original.owner_tag());
        if let Some((end, old_nodes)) = self.running_index.set_nodes(original, held) {
            self.tl_queue(end, old_nodes, false);
            self.tl_queue(end, held, true);
            self.class_unplan(original, end);
            self.class_plan(original, end);
        }
        if let Some(j) = self.jobs.get_mut(original) {
            j.requested_nodes = self.cluster.held_by(original.owner_tag());
            j.reconfigurations += 1;
        }
        // The re-keyed running set changes `avail` (held grows by the
        // transferred nodes): rather than prove the finer rule, drop the
        // pass memos — expansions are rare next to passes.
        self.incr_clear();
        Ok((
            original,
            self.cluster.nodes_of(original.owner_tag()).to_vec(),
        ))
    }

    /// Aborts a queued expansion: cancels the pending resizer job (the
    /// timeout path of §V-B1).
    pub fn abort_expand(&mut self, rj: JobId, now: SimTime) {
        if let Some(j) = self.jobs.get(rj) {
            if j.state == JobState::Pending {
                self.cancel(rj, now);
            }
        }
    }

    /// Shrinks `id` to `to` nodes (a single "update job" call in Slurm,
    /// §III). Returns the released nodes. The ACK workflow that lets
    /// processes drain before the nodes die lives in the runtime layer;
    /// by the time this is called the nodes are clean.
    pub fn shrink_protocol(
        &mut self,
        id: JobId,
        to: u32,
        now: SimTime,
    ) -> Result<Vec<NodeId>, ExpandError> {
        let job = self.jobs.get(id).ok_or(ExpandError::UnknownJob(id))?;
        if job.state != JobState::Running {
            return Err(ExpandError::NotRunning(id));
        }
        let current = self.cluster.held_by(id.owner_tag());
        if to >= current || to == 0 {
            return Err(ExpandError::InvalidTarget { current, to });
        }
        let released = self
            .cluster
            .release_tail(id.owner_tag(), current - to)
            .expect("running job owns its nodes");
        let _ = now;
        if let Some((end, old_nodes)) = self.running_index.set_nodes(id, to) {
            self.tl_queue(end, old_nodes, false);
            self.tl_queue(end, to, true);
            self.class_unplan(id, end);
            self.class_plan(id, end);
        }
        if let Some(j) = self.jobs.get_mut(id) {
            j.requested_nodes = to;
            j.reconfigurations += 1;
        }
        // Capacity-increasing event: the watermark rule decides whether
        // the pass memos survive.
        self.incr_capacity_freed();
        Ok(released)
    }

    /// Internal-consistency check used by tests: re-derives every index
    /// from a scan of the job table and compares. This (and the
    /// `ScanReference` oracles) is where the O(jobs) scans live on.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.cluster.check_invariants()?;
        let pending: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Pending)
            .map(|j| j.id)
            .collect();
        let mut indexed: Vec<JobId> = self.pending_index.ids().collect();
        indexed.sort();
        let mut expected = pending.clone();
        expected.sort();
        if indexed != expected {
            return Err(format!(
                "pending index {indexed:?} != pending set {expected:?}"
            ));
        }
        let nonzero = pending
            .iter()
            .filter(|&&id| self.jobs[id].base_priority != 0)
            .count();
        if nonzero != self.pending_index.nonzero_base() {
            return Err(format!(
                "nonzero-base count {} != scanned {nonzero}",
                self.pending_index.nonzero_base()
            ));
        }
        let resizers = pending
            .iter()
            .filter(|&&id| self.jobs[id].is_resizer())
            .count();
        if resizers != self.pending_index.pending_resizers() {
            return Err(format!(
                "pending-resizer count {} != scanned {resizers}",
                self.pending_index.pending_resizers()
            ));
        }
        let constrained = pending
            .iter()
            .filter(|&&id| self.jobs[id].constraint != ClassConstraint::Any)
            .count();
        if constrained != self.pending_index.constrained() {
            return Err(format!(
                "constrained-pending count {} != scanned {constrained}",
                self.pending_index.constrained()
            ));
        }
        // Failed-node accounting: a node that stopped accepting work
        // while allocated (injected failure or administrative drain) may
        // only be owned by a job the scheduler still considers running —
        // a kill that released the rest of an allocation but leaked the
        // down node would show up here.
        for c in 0..self.cluster.table().num_classes() {
            let (start, end) = self.cluster.table().range(c);
            for n in start..end {
                let node = NodeId(n);
                if self.cluster.node_state(node).accepts_new_work() {
                    continue;
                }
                let Some(owner) = self.cluster.owner_of(node) else {
                    continue;
                };
                let owner = JobId(owner);
                let state_ok = self
                    .jobs
                    .get(owner)
                    .is_some_and(|j| j.state == JobState::Running);
                if !state_ok {
                    return Err(format!(
                        "node n{n} owned by {owner:?}, which is not a running job"
                    ));
                }
            }
        }
        let running: Vec<&Job> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .collect();
        if running.len() != self.running_index.len() {
            return Err(format!(
                "running index len {} != running jobs {}",
                self.running_index.len(),
                running.len()
            ));
        }
        let mut scan: Vec<(SimTime, u32)> = running
            .iter()
            .map(|j| {
                (
                    j.expected_end().expect("running job has a start time"),
                    self.cluster.held_by(j.id.owner_tag()),
                )
            })
            .collect();
        scan.sort();
        let walked: Vec<(SimTime, u32)> = self.running_index.iter().collect();
        if scan != walked {
            return Err(format!("running index {walked:?} != scan {scan:?}"));
        }
        let held: u32 = scan.iter().map(|&(_, n)| n).sum();
        if held != self.running_index.total_held() {
            return Err(format!(
                "held-total {} != scanned {held}",
                self.running_index.total_held()
            ));
        }
        // The slot-set timeline (deferred deltas flushed) must equal the
        // running-jobs occupancy profile at every breakpoint of either
        // step function: free-count conservation across plan / unplan /
        // merge and resize re-planning.
        let mut tl = self.timeline.borrow_mut();
        tl.flush();
        tl.slots.validate()?;
        let horizon = tl.slots.horizon();
        let expected_at = |t: SimTime| -> i64 {
            scan.iter()
                .filter(|&&(end, _)| end > t)
                .map(|&(_, n)| i64::from(n))
                .sum()
        };
        let mut probes: Vec<SimTime> = tl.slots.slots().iter().map(|&(b, _)| b).collect();
        probes.extend(scan.iter().map(|&(end, _)| end.max(horizon)));
        for p in probes {
            let got = tl.slots.occupied_at(p);
            let want = expected_at(p.max(horizon));
            if got != want {
                return Err(format!(
                    "timeline occupancy {got} at {p:?} != running profile {want}"
                ));
            }
        }
        drop(tl);
        if self.multi_class() {
            // Per-class bookkeeping: the side map must mirror the actual
            // per-class split of every running job's nodes, the held
            // totals must sum the map, and each class timeline must
            // equal its class's occupancy profile.
            let nclasses = self.cluster.table().num_classes();
            let mut want_held = vec![0u32; nclasses];
            for j in running.iter() {
                let counts = self.cluster.held_class_counts(j.id.owner_tag());
                let recorded = self
                    .class_counts
                    .get(&j.id)
                    .cloned()
                    .unwrap_or_else(|| vec![0; nclasses]);
                if counts != recorded {
                    return Err(format!(
                        "class counts of {:?}: recorded {recorded:?} != held {counts:?}",
                        j.id
                    ));
                }
                for (c, &n) in counts.iter().enumerate() {
                    want_held[c] += n;
                }
            }
            if self.class_counts.len() != running.len() {
                return Err(format!(
                    "class-count map holds {} jobs != {} running",
                    self.class_counts.len(),
                    running.len()
                ));
            }
            if want_held != self.class_held {
                return Err(format!(
                    "class held {:?} != scanned {want_held:?}",
                    self.class_held
                ));
            }
            // Dormant class timelines are empty by design (they rebuild on
            // activation), so their occupancy is only checkable once live.
            let mut tls = if self.class_tl_live {
                self.class_timelines.borrow_mut()
            } else {
                return Ok(());
            };
            for (c, tl) in tls.iter_mut().enumerate() {
                tl.flush();
                tl.slots.validate()?;
                let horizon = tl.slots.horizon();
                let class_scan: Vec<(SimTime, u32)> = running
                    .iter()
                    .map(|j| {
                        (
                            j.expected_end().expect("running job has a start time"),
                            self.class_counts.get(&j.id).map_or(0, |v| v[c]),
                        )
                    })
                    .collect();
                let expected_at = |t: SimTime| -> i64 {
                    class_scan
                        .iter()
                        .filter(|&&(end, _)| end > t)
                        .map(|&(_, n)| i64::from(n))
                        .sum()
                };
                let mut probes: Vec<SimTime> = tl.slots.slots().iter().map(|&(b, _)| b).collect();
                probes.extend(class_scan.iter().map(|&(end, _)| end.max(horizon)));
                for p in probes {
                    let got = tl.slots.occupied_at(p);
                    let want = expected_at(p.max(horizon));
                    if got != want {
                        return Err(format!(
                            "class {c} timeline occupancy {got} at {p:?} != profile {want}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_cluster::Cluster;

    fn slurm(nodes: u32) -> Slurm {
        Slurm::with_cluster(Cluster::new(nodes, 16))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn retention_off_drops_terminal_records_without_changing_scheduling() {
        let mut keep = slurm(8);
        let mut drop = slurm(8);
        drop.config.retain_completed = false;
        for s in [&mut keep, &mut drop] {
            let a = s.submit(JobRequest::rigid("a", 4), t(0));
            let b = s.submit(JobRequest::rigid("b", 8), t(0));
            let started = s.schedule(t(0));
            assert_eq!(started.len(), 1, "a starts, b blocked");
            s.complete(a, t(100));
            let started = s.schedule(t(100));
            assert_eq!(started.len(), 1, "b starts once a's nodes free");
            s.complete(b, t(200));
            // Either way the live views agree.
            assert_eq!(s.running_count(), 0);
            assert_eq!(s.pending_count(), 0);
            let retained = s.config.retain_completed;
            assert_eq!(s.job(a).is_some(), retained);
            assert_eq!(s.job(b).is_some(), retained);
        }
        assert_eq!(keep.jobs().count(), 2);
        assert_eq!(drop.jobs().count(), 0, "terminal records pruned");
    }

    #[test]
    fn fifo_start_in_submission_order() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        let started = s.schedule(t(0));
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].id, a);
        assert_eq!(started[1].id, b);
        assert_eq!(s.cluster().free_nodes(), 2);
    }

    #[test]
    fn blocked_top_job_reserves_and_small_jobs_backfill() {
        let mut s = slurm(10);
        // One long-running hog of 8 nodes.
        let hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        s.schedule(t(0));
        assert_eq!(s.job(hog).unwrap().state, JobState::Running);
        // Big job can't start (needs 6, 2 free); short job behind it can
        // backfill because it ends before the hog releases nodes.
        let big = s.submit(
            JobRequest::rigid("big", 6).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        let small = s.submit(
            JobRequest::rigid("small", 2).with_expected_runtime(Span::from_secs(10)),
            t(2),
        );
        assert!(s.schedule(t(3)).is_empty(), "FIFO pass must not backfill");
        let started = s.backfill_pass(t(3));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, small);
        assert_eq!(s.job(big).unwrap().state, JobState::Pending);
    }

    #[test]
    fn backfill_refuses_jobs_that_would_delay_reservation() {
        let mut s = slurm(10);
        let _hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(100)),
            t(0),
        );
        s.schedule(t(0));
        let _big = s.submit(
            JobRequest::rigid("big", 10).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        // 2 free; this job fits but runs for 1000 s, past the shadow time
        // (t=100) and the reservation needs all 10 nodes (extra = 0).
        let long_small = s.submit(
            JobRequest::rigid("long-small", 2).with_expected_runtime(Span::from_secs(1000)),
            t(2),
        );
        let started = s.backfill_pass(t(3));
        assert!(started.is_empty(), "{started:?}");
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
    }

    #[test]
    fn no_backfill_means_strict_fifo() {
        let mut s = slurm(10);
        s.config.backfill = false;
        let _hog = s.submit(JobRequest::rigid("hog", 8), t(0));
        s.schedule(t(0));
        let _big = s.submit(JobRequest::rigid("big", 6), t(1));
        let _small = s.submit(JobRequest::rigid("small", 2), t(2));
        assert!(s.schedule(t(3)).is_empty());
        assert!(s.backfill_pass(t(3)).is_empty(), "backfill disabled");
    }

    #[test]
    fn completion_frees_nodes_and_records_times() {
        let mut s = slurm(4);
        let a = s.submit(JobRequest::rigid("a", 4), t(5));
        s.schedule(t(10));
        s.complete(a, t(110));
        let job = s.job(a).unwrap();
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.waiting_time(), Some(Span::from_secs(5)));
        assert_eq!(job.execution_time(), Some(Span::from_secs(100)));
        assert_eq!(job.completion_time(), Some(Span::from_secs(105)));
        assert_eq!(s.cluster().free_nodes(), 4);
    }

    #[test]
    fn expand_protocol_walks_all_four_steps() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        let nodes = s.expand_protocol(a, 8, t(50)).unwrap();
        assert_eq!(nodes.len(), 8);
        assert_eq!(s.nodes_of(a), 8);
        assert_eq!(s.job(a).unwrap().requested_nodes, 8);
        assert_eq!(s.job(a).unwrap().reconfigurations, 1);
        // The resizer exists, is cancelled, and holds nothing.
        let rj = s.jobs().find(|j| j.is_resizer()).unwrap();
        assert_eq!(rj.state, JobState::Cancelled);
        assert_eq!(s.nodes_of(rj.id), 0);
        // No node leaked.
        assert_eq!(s.cluster().free_nodes(), 2);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn expand_queues_when_no_free_nodes() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let err = s.expand_protocol(a, 8, t(10)).unwrap_err();
        let ExpandError::Queued { resizer } = err else {
            panic!("expected Queued, got {err:?}");
        };
        assert_eq!(s.job(resizer).unwrap().state, JobState::Pending);
        // When B completes, the resizer starts and the driver can finish.
        s.complete(b, t(20));
        let started = s.schedule(t(20));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, resizer);
        assert_eq!(started[0].resizer_for, Some(a));
        let (orig, nodes) = s.finish_expand(resizer, t(20)).unwrap();
        assert_eq!(orig, a);
        assert_eq!(nodes.len(), 8);
        assert_eq!(s.nodes_of(a), 8);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn queued_resizer_can_be_aborted() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!()
        };
        s.abort_expand(resizer, t(40));
        assert_eq!(s.job(resizer).unwrap().state, JobState::Cancelled);
        assert_eq!(s.nodes_of(a), 4, "original job untouched");
    }

    #[test]
    fn resizer_dies_with_its_parent() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!()
        };
        s.complete(a, t(15));
        let started = s.schedule(t(15));
        assert!(started.is_empty());
        assert_eq!(s.job(resizer).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn shrink_releases_tail_nodes() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 8), t(0));
        s.schedule(t(0));
        let released = s.shrink_protocol(a, 2, t(30)).unwrap();
        assert_eq!(released.len(), 6);
        assert_eq!(s.nodes_of(a), 2);
        assert_eq!(s.job(a).unwrap().requested_nodes, 2);
        assert_eq!(s.cluster().free_nodes(), 8);
        // Shrink to 0 or >= current rejected.
        assert!(s.shrink_protocol(a, 2, t(31)).is_err());
        assert!(s.shrink_protocol(a, 0, t(31)).is_err());
    }

    #[test]
    fn boosted_job_jumps_the_queue() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let first = s.submit(JobRequest::rigid("first", 4), t(1));
        let second = s.submit(JobRequest::rigid("second", 4), t(2));
        s.boost(second);
        s.complete(hog, t(100));
        let started = s.schedule(t(100));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, second);
        assert_eq!(s.job(first).unwrap().state, JobState::Pending);
    }

    #[test]
    fn expand_rejects_bad_targets() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        assert_eq!(
            s.expand_protocol(a, 4, t(1)),
            Err(ExpandError::InvalidTarget { current: 4, to: 4 })
        );
        assert_eq!(
            s.expand_protocol(JobId(999), 8, t(1)),
            Err(ExpandError::UnknownJob(JobId(999)))
        );
        let pending = s.submit(JobRequest::rigid("p", 2), t(1));
        assert_eq!(
            s.expand_protocol(pending, 4, t(1)),
            Err(ExpandError::NotRunning(pending))
        );
    }

    #[test]
    fn cached_pending_order_tracks_mutations_within_one_instant() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let a = s.submit(JobRequest::rigid("a", 2), t(1));
        let b = s.submit(JobRequest::rigid("b", 2), t(2));
        // Two same-instant reads hit the cache and agree — and the hit is
        // allocation-free (the same shared slice comes back).
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![a, b]);
        assert!(Arc::ptr_eq(&s.pending_queue(t(5)), &s.pending_queue(t(5))));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![a, b]);
        // A boost at the same instant must invalidate, not serve stale.
        s.boost(b);
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![b, a]);
        // A same-instant submit must appear immediately.
        let c = s.submit(JobRequest::rigid("c", 1), t(5));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![b, a, c]);
        // A cancellation must disappear immediately.
        s.cancel(a, t(5));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![b, c]);
        // And a start (via completion freeing the machine) as well.
        s.complete(hog, t(5));
        s.schedule(t(5));
        assert!(s.pending_queue(t(5)).is_empty());
        // Age reorders across instants: the cache must not pin t=5.
        assert!(s.pending_queue(t(6)).is_empty());
    }

    #[test]
    fn pending_queue_excludes_resizers() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 8), t(0));
        s.schedule(t(0));
        let _q = s.submit(JobRequest::rigid("q", 2), t(1));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 16, t(2)).unwrap_err() else {
            panic!()
        };
        let queue = s.pending_queue(t(3));
        assert!(!queue.contains(&resizer));
        assert_eq!(queue.len(), 1);
    }

    fn scan_twin(nodes: u32) -> Slurm {
        let mut cfg = SlurmConfig::for_cluster(nodes);
        cfg.sched_index = SchedIndex::ScanReference;
        Slurm::new(Cluster::new(nodes, 16), cfg)
    }

    #[test]
    fn indexed_and_scan_paths_schedule_identically() {
        // Drive an identical mixed op sequence through both hot paths and
        // compare every observable: starts, queue orders, reservations
        // (via backfill behaviour), reaping.
        let mut idx = slurm(16);
        let mut scan = scan_twin(16);
        for s in [&mut idx, &mut scan] {
            for i in 0..6u32 {
                s.submit(
                    JobRequest::rigid(format!("j{i}"), 2 + (i * 3) % 7)
                        .with_expected_runtime(Span::from_secs(100 + (i as u64 * 77) % 400)),
                    t(i as u64),
                );
            }
        }
        let a = idx.schedule(t(10));
        let b = scan.schedule(t(10));
        assert_eq!(a, b);
        assert_eq!(idx.backfill_pass(t(12)), scan.backfill_pass(t(12)));
        // Complete the first started job, expand another, keep comparing.
        let first = a[0].id;
        for s in [&mut idx, &mut scan] {
            s.complete(first, t(50));
        }
        assert_eq!(idx.schedule(t(50)), scan.schedule(t(50)));
        assert_eq!(
            idx.pending_queue(t(60)).to_vec(),
            scan.pending_queue(t(60)).to_vec()
        );
        assert_eq!(idx.backfill_pass(t(60)), scan.backfill_pass(t(60)));
        idx.check_invariants().unwrap();
        scan.check_invariants().unwrap();
    }

    #[test]
    fn nonzero_base_priority_falls_back_to_the_sort() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let plain = s.submit(JobRequest::rigid("plain", 2), t(1));
        let vip = s.submit(
            JobRequest {
                base_priority: 50_000,
                ..JobRequest::rigid("vip", 2)
            },
            t(2),
        );
        // The static (submit, id) key would put `plain` first; the base
        // priority must win, which only the sort path can express.
        assert_eq!(s.pending_queue(t(3)).to_vec(), vec![vip, plain]);
        s.check_invariants().unwrap();
        // Once the high-base job leaves the pending set, the index serves
        // again — and still agrees with a scan twin.
        s.cancel(vip, t(4));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![plain]);
        let _ = hog;
        s.check_invariants().unwrap();
    }

    #[test]
    fn index_served_order_is_shared_across_instants() {
        let mut s = slurm(2);
        s.submit(JobRequest::rigid("hog", 2), t(0));
        s.schedule(t(0));
        s.submit(JobRequest::rigid("a", 1), t(1));
        s.submit(JobRequest::rigid("b", 1), t(2));
        // No mutation between consults at different instants: relative
        // order cannot change (uniform age growth), so the cache entry is
        // reused without recomputation or allocation.
        let q5 = s.pending_queue(t(5));
        let q9 = s.pending_queue(t(9));
        assert!(Arc::ptr_eq(&q5, &q9));
    }

    #[test]
    fn indices_stay_consistent_through_the_expand_protocol() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        s.check_invariants().unwrap();
        // Queued expansion: resizer pending with max priority.
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!("expected queued resizer");
        };
        s.check_invariants().unwrap();
        s.complete(b, t(20));
        s.check_invariants().unwrap();
        let started = s.schedule(t(20));
        assert_eq!(started[0].id, resizer);
        s.finish_expand(resizer, t(20)).unwrap();
        s.check_invariants().unwrap();
        // Shrink re-keys the running index.
        s.shrink_protocol(a, 2, t(30)).unwrap();
        s.check_invariants().unwrap();
        s.complete(a, t(40));
        s.check_invariants().unwrap();
    }

    #[test]
    fn estimate_refresh_rekeys_the_reservation_order() {
        let mut s = slurm(12);
        let long = s.submit(
            JobRequest::rigid("long", 6).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        let short = s.submit(
            JobRequest::rigid("short", 4).with_expected_runtime(Span::from_secs(100)),
            t(0),
        );
        s.schedule(t(0));
        s.check_invariants().unwrap();
        // Swap the estimates: the running index must re-key both entries
        // (check_invariants compares it against a fresh scan).
        s.set_expected_runtime(long, Span::from_secs(50));
        s.set_expected_runtime(short, Span::from_secs(2000));
        s.check_invariants().unwrap();
        // And the reservation built from the re-keyed order still admits
        // a short backfill candidate (2 free now, 10 needed, shadow at
        // short's new end t=2000).
        let _blocked = s.submit(JobRequest::rigid("blocked", 10), t(1));
        let small = s.submit(
            JobRequest::rigid("small", 2).with_expected_runtime(Span::from_secs(10)),
            t(2),
        );
        let started = s.backfill_pass(t(3));
        assert_eq!(started.len(), 1, "small job backfills: {started:?}");
        assert_eq!(started[0].id, small);
    }

    /// A 10-node machine with one 8-node hog until t=1000, then (in
    /// priority order) a blocked 6-node job, a blocked 10-node job, a
    /// *long* 2-node job and a *short* 2-node job. The families disagree
    /// exactly where they should.
    fn family_fixture(family: BackfillFamily) -> (Slurm, [JobId; 4]) {
        let mut s = slurm(10);
        s.config.backfill_family = family;
        let _hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(995)),
            t(0),
        );
        s.schedule(t(0));
        let blocked1 = s.submit(
            JobRequest::rigid("blocked1", 6).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        let blocked2 = s.submit(
            JobRequest::rigid("blocked2", 10).with_expected_runtime(Span::from_secs(100)),
            t(2),
        );
        let long_small = s.submit(
            JobRequest::rigid("long-small", 2).with_expected_runtime(Span::from_secs(5000)),
            t(3),
        );
        let short_small = s.submit(
            JobRequest::rigid("short-small", 2).with_expected_runtime(Span::from_secs(100)),
            t(4),
        );
        (s, [blocked1, blocked2, long_small, short_small])
    }

    #[test]
    fn easy1_lets_a_long_job_backfill_past_a_deep_blocked_job() {
        // Classic EASY: only blocked1 holds a reservation (shadow t=1000,
        // 4 extra nodes), so the long 2-node job jumps ahead even though
        // it will still be running when blocked2 could have started.
        let (mut s, [blocked1, blocked2, long_small, short_small]) =
            family_fixture(BackfillFamily::easy(1));
        let started = s.backfill_pass(t(5));
        assert_eq!(started.len(), 1, "{started:?}");
        assert_eq!(started[0].id, long_small);
        assert_eq!(s.job(short_small).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked1).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked2).unwrap().state, JobState::Pending);
        s.check_invariants().unwrap();
    }

    #[test]
    fn easy_k_protects_deeper_reservations() {
        // With two reservations, blocked2 holds the hole after blocked1's
        // plan ([t=1100, t=1200), zero spare), which the 5000 s job would
        // delay — it is refused. The short job ends before every shadow
        // time and still backfills.
        let (mut s, [blocked1, blocked2, long_small, short_small]) =
            family_fixture(BackfillFamily::easy(2));
        let started = s.backfill_pass(t(5));
        assert_eq!(started.len(), 1, "{started:?}");
        assert_eq!(started[0].id, short_small);
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked1).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked2).unwrap().state, JobState::Pending);
        s.check_invariants().unwrap();
    }

    #[test]
    fn conservative_plans_every_blocked_job() {
        // Conservative: blocked1 and blocked2 get planned slots, the long
        // job would overlap blocked2's plan (occupancy 10 > cap 8 inside
        // its window) and is only planned for later — the short job fits
        // entirely under the plans and starts.
        let (mut s, [blocked1, blocked2, long_small, short_small]) =
            family_fixture(BackfillFamily::Conservative);
        let started = s.backfill_pass(t(5));
        assert_eq!(started.len(), 1, "{started:?}");
        assert_eq!(started[0].id, short_small);
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked1).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked2).unwrap().state, JobState::Pending);
        s.check_invariants().unwrap();
    }

    #[test]
    fn easy1_and_legacy_reference_schedule_identically() {
        // Twin drive (the `indexed_and_scan_paths_schedule_identically`
        // pattern): the slot-set Easy{1} path and the legacy walk must
        // agree on every observable through a mixed op sequence.
        let mut easy = slurm(16);
        let mut legacy = slurm(16);
        legacy.config.backfill_family = BackfillFamily::LegacyReference;
        for s in [&mut easy, &mut legacy] {
            for i in 0..8u32 {
                s.submit(
                    JobRequest::rigid(format!("j{i}"), 2 + (i * 5) % 11)
                        .with_expected_runtime(Span::from_secs(60 + (i as u64 * 131) % 700)),
                    t(i as u64),
                );
            }
        }
        let a = easy.schedule(t(10));
        assert_eq!(a, legacy.schedule(t(10)));
        assert_eq!(easy.backfill_pass(t(12)), legacy.backfill_pass(t(12)));
        let first = a[0].id;
        for s in [&mut easy, &mut legacy] {
            s.complete(first, t(40));
            s.set_expected_runtime(a[1].id, Span::from_secs(2000));
        }
        assert_eq!(easy.backfill_pass(t(45)), legacy.backfill_pass(t(45)));
        assert_eq!(easy.schedule(t(50)), legacy.schedule(t(50)));
        assert_eq!(easy.backfill_pass(t(55)), legacy.backfill_pass(t(55)));
        easy.check_invariants().unwrap();
        legacy.check_invariants().unwrap();
    }

    #[test]
    fn timeline_survives_the_resize_protocol_under_deep_backfill() {
        // Expand / shrink re-plan only the affected job's slots; the
        // timeline must keep mirroring the running profile through the
        // whole §III protocol with deep backfill families querying it.
        for family in [BackfillFamily::easy(2), BackfillFamily::Conservative] {
            let mut s = slurm(10);
            s.config.backfill_family = family;
            let a = s.submit(
                JobRequest::rigid("a", 4).with_expected_runtime(Span::from_secs(500)),
                t(0),
            );
            let b = s.submit(
                JobRequest::rigid("b", 4).with_expected_runtime(Span::from_secs(300)),
                t(0),
            );
            s.schedule(t(0));
            let _queued = s.submit(JobRequest::rigid("q", 8), t(1));
            let tiny = s.submit(
                JobRequest::rigid("tiny", 1).with_expected_runtime(Span::from_secs(10)),
                t(2),
            );
            s.backfill_pass(t(3));
            s.check_invariants().unwrap();
            // Both families backfill `tiny` (harmless before every plan);
            // release its node so the expansion can complete synchronously.
            s.complete(tiny, t(8));
            s.expand_protocol(a, 6, t(10)).unwrap();
            s.check_invariants().unwrap();
            s.backfill_pass(t(12));
            s.check_invariants().unwrap();
            s.shrink_protocol(a, 2, t(20)).unwrap();
            s.check_invariants().unwrap();
            s.backfill_pass(t(25));
            s.check_invariants().unwrap();
            s.complete(b, t(30));
            s.complete(a, t(40));
            s.backfill_pass(t(45));
            s.check_invariants().unwrap();
        }
    }

    /// Twin schedulers — incremental on vs off — driven through the same
    /// operation sequence must make bit-identical decisions at every
    /// pass, while the incremental twin actually elides some of them.
    #[test]
    fn incremental_twin_matches_costed_baseline() {
        twin_run(BackfillFamily::easy(1));
        twin_run(BackfillFamily::Conservative);
    }

    fn twin_run(family: BackfillFamily) {
        let mut on = slurm(10);
        let mut off = slurm(10);
        off.config.sched_incremental = SchedIncremental::Off;
        on.config.backfill_family = family;
        off.config.backfill_family = family;
        let mut ids = Vec::new();
        for s in [&mut on, &mut off] {
            ids.clear();
            let r1 = s.submit(
                JobRequest::rigid("r1", 6).with_expected_runtime(Span::from_secs(1000)),
                t(0),
            );
            let r2 = s.submit(
                JobRequest::rigid("r2", 4).with_expected_runtime(Span::from_secs(500)),
                t(0),
            );
            ids.push(r1);
            ids.push(r2);
        }
        for step in 0..40u64 {
            let now = t(10 + step * 5);
            let (a, b) = (on.schedule(now), off.schedule(now));
            assert_eq!(a, b, "schedule diverged at {now:?}");
            if step % 3 == 0 {
                let (a, b) = (on.backfill_pass(now), off.backfill_pass(now));
                assert_eq!(a, b, "backfill diverged at {now:?}");
            }
            match step {
                5 => {
                    for s in [&mut on, &mut off] {
                        s.submit(
                            JobRequest::rigid("big", 9).with_expected_runtime(Span::from_secs(200)),
                            now,
                        );
                    }
                }
                11 => {
                    on.complete(ids[1], now);
                    off.complete(ids[1], now);
                }
                17 => {
                    for s in [&mut on, &mut off] {
                        s.submit(
                            JobRequest::rigid("tiny", 1).with_expected_runtime(Span::from_secs(30)),
                            now,
                        );
                    }
                }
                _ => {}
            }
            on.check_invariants().unwrap();
        }
        let stats = on.incremental_stats();
        assert!(
            stats.sched_passes_elided > 0,
            "no schedule pass elided: {stats:?}"
        );
        assert!(
            stats.backfill_passes_elided > 0,
            "no backfill pass elided: {stats:?}"
        );
        let stats = off.incremental_stats();
        assert_eq!(stats.sched_passes_elided, 0, "Off must never elide");
        assert_eq!(stats.backfill_passes_elided, 0, "Off must never elide");
        let on_jobs: Vec<_> = on
            .jobs()
            .map(|j| (j.name.clone(), j.state, j.start_time, j.end_time))
            .collect();
        let off_jobs: Vec<_> = off
            .jobs()
            .map(|j| (j.name.clone(), j.state, j.start_time, j.end_time))
            .collect();
        assert_eq!(on_jobs, off_jobs);
    }

    /// Regression: a job submitted below a live memo's watermark must
    /// lower the watermark, or a completion freeing enough nodes for the
    /// new job (but not for the old refusals) would keep the memo and
    /// unsoundly elide the pass that should backfill it.
    #[test]
    fn submit_below_watermark_lowers_it() {
        let mut s = slurm(10);
        let _r1 = s.submit(
            JobRequest::rigid("r1", 6).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        let r2 = s.submit(
            JobRequest::rigid("r2", 4).with_expected_runtime(Span::from_secs(500)),
            t(0),
        );
        assert_eq!(s.schedule(t(0)).len(), 2);
        s.submit(
            JobRequest::rigid("big", 8).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        s.schedule(t(1));
        assert!(s.backfill_pass(t(1)).is_empty(), "big cannot start");
        let small = s.submit(
            JobRequest::rigid("small", 3).with_expected_runtime(Span::from_secs(10)),
            t(2),
        );
        // Frees 4 nodes: enough for `small` (3), not for `big` (8). The
        // memo recorded watermark 8 at the pass; without the lowering
        // rule this completion would keep it and elide the next pass.
        s.complete(r2, t(3));
        let started = s.backfill_pass(t(3));
        assert_eq!(
            started.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![small],
            "small must backfill into the freed nodes"
        );
        assert_eq!(s.job(small).unwrap().state, JobState::Running);
    }

    /// The retained-plan accessors expose exactly what the live memo
    /// holds: EASY reservations under the Easy family, planned slots
    /// under Conservative, and nothing once the memo is invalidated.
    #[test]
    fn retained_plan_accessors_track_the_live_memo() {
        let mut s = slurm(10);
        let r1 = s.submit(
            JobRequest::rigid("r1", 6).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        s.schedule(t(0));
        let big = s.submit(
            JobRequest::rigid("big", 8).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        s.schedule(t(1));
        assert!(s.easy_reservations().is_none(), "no pass run yet");
        assert!(s.backfill_pass(t(1)).is_empty());
        let res = s.easy_reservations().expect("fruitless EASY pass memoised");
        assert_eq!(res.len(), 1, "one blocked job, one reservation");
        assert_eq!(res[0].0, t(1000), "shadow = r1's expected end");
        assert!(s.conservative_plan().is_none(), "family is Easy");
        // Any capacity event that can change the pass drops the memo.
        s.complete(r1, t(2));
        assert!(s.easy_reservations().is_none());

        let mut s = slurm(10);
        s.config.backfill_family = BackfillFamily::Conservative;
        let _r1 = s.submit(
            JobRequest::rigid("r1", 6).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        s.schedule(t(0));
        let big2 = s.submit(
            JobRequest::rigid("big", 8).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        s.schedule(t(1));
        assert!(s.backfill_pass(t(1)).is_empty());
        let plan = s.conservative_plan().expect("fruitless pass memoised");
        assert_eq!(plan, &[(big2, t(1000))], "big planned at r1's end");
        assert!(s.easy_reservations().is_none(), "family is Conservative");
        let _ = big;
        // A fitting submission invalidates the memo outright.
        s.submit(JobRequest::rigid("fits", 2), t(5));
        assert!(s.conservative_plan().is_none());
    }

    /// Same-instant duplicate reap scans are skipped under incremental
    /// scheduling: `schedule` + `backfill_pass` at one instant perform
    /// one scan, and decisions are unchanged.
    #[test]
    fn same_instant_reap_is_memoised() {
        let mut s = slurm(10);
        let a = s.submit(
            JobRequest::rigid("a", 4).with_expected_runtime(Span::from_secs(300)),
            t(0),
        );
        s.schedule(t(0));
        s.expand_protocol(a, 6, t(1)).unwrap();
        s.check_invariants().unwrap();
        // schedule() reaps, then backfill_pass() at the same instant
        // reuses the memo instead of rescanning.
        s.schedule(t(2));
        s.backfill_pass(t(2));
        s.check_invariants().unwrap();
        // The memo never crosses an instant: a later pass re-scans.
        s.schedule(t(40));
        s.check_invariants().unwrap();
    }
}
