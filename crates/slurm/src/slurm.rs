//! The scheduler core: queue, EASY backfill, and the malleability
//! protocol of §III.

use std::cell::RefCell;
use std::sync::Arc;

use dmr_cluster::{Cluster, NodeId};
use dmr_sim::{SimTime, Span};

use crate::arena::JobArena;
use crate::index::{PendingIndex, PendingKey, ResizerIndex, RunningIndex};
use crate::job::{Dependency, Job, JobId, JobRequest, JobState};
use crate::policy::{PolicyKind, ResizePolicy};
use crate::priority::MultifactorConfig;
use crate::slotset::{BackfillFamily, SlotSet};

/// Which hot-path implementation the scheduler runs on.
///
/// [`SchedIndex::Arena`] (the default) adds, on top of the incremental
/// indices, slab-arena job storage ([`crate::arena::JobArena`]), a
/// cursor walk of the pending index in [`Slurm::schedule`] (O(starts)
/// instead of O(pending) per pass) and precise queue-cache invalidation
/// (a completion that removes nothing from the pending set keeps the
/// memoized order alive). [`SchedIndex::Indexed`] is the previous
/// index-served hot path, kept costed exactly as before so benchmarks
/// can measure the arena win against it. [`SchedIndex::ScanReference`]
/// keeps the pre-index full-scan implementations alive as the
/// *equivalence oracle*: all modes produce bit-identical scheduling
/// decisions (pinned by `tests/index_equivalence.rs`); only the cost
/// differs. Benchmarks run all of them to measure each step's win.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedIndex {
    /// Slab job storage + pending-index cursor walk + precise cache
    /// invalidation (the fastest path).
    #[default]
    Arena,
    /// Incremental indices with per-pass order materialisation (the
    /// previous hot path, kept as the benchmark baseline).
    Indexed,
    /// Pre-index scans and sorts on every pass (reference / oracle).
    ScanReference,
}

/// Scheduler-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlurmConfig {
    /// Enable EASY backfill (the paper's `sched/backfill`); disabling it
    /// degrades to strict priority-FIFO — kept as an ablation knob.
    pub backfill: bool,
    /// Which backfill algorithm [`Slurm::backfill_pass`] runs (EASY-k /
    /// conservative / the legacy single-reservation oracle). Only
    /// consulted while [`SlurmConfig::backfill`] is on.
    pub backfill_family: BackfillFamily,
    /// Cap on blocked jobs the conservative pass examines (and therefore
    /// plans) per invocation — Slurm's `bf_max_job_test`, which defaults
    /// to 500 on real installations precisely because planning an
    /// unbounded queue is quadratic in queue depth no matter how cheap
    /// each hole query is. Jobs past the window stay pending for a later
    /// pass. The EASY families ignore it: their planning depth is already
    /// bounded by `reservations`.
    pub bf_max_job_test: u32,
    pub multifactor: MultifactorConfig,
    /// Backfill estimate for jobs that did not provide one.
    pub default_expected_runtime: Span,
    /// How long the runtime waits for a queued resizer job before aborting
    /// the expansion (§V-B1).
    pub resizer_timeout: Span,
    /// Grant maximum priority to the queued job a shrink benefits
    /// (Algorithm 1 line 18). Ablation knob; the paper always boosts.
    pub shrink_boost: bool,
    /// Which reconfiguration decision procedure to install (§IV plug-in).
    pub policy: PolicyKind,
    /// Keep terminal (completed / cancelled) job records in the jobs
    /// table. `true` (the default) preserves the accounting API
    /// ([`Slurm::job`] on finished jobs); `false` drops each record the
    /// moment it turns terminal, so arbitrarily long workloads hold only
    /// the *active* job set — the setting the streaming driver uses.
    /// Scheduling decisions never read terminal records (pending-queue
    /// priority, backfill reservations and resize policies all filter on
    /// live states), so the two settings schedule identically.
    pub retain_completed: bool,
    /// Hot-path implementation selector (see [`SchedIndex`]). Kept in the
    /// config so experiments and benchmarks can pit the indexed path
    /// against the scan oracle without code changes.
    pub sched_index: SchedIndex,
}

impl SlurmConfig {
    pub fn for_cluster(total_nodes: u32) -> Self {
        SlurmConfig {
            backfill: true,
            backfill_family: BackfillFamily::default(),
            bf_max_job_test: 512,
            multifactor: MultifactorConfig::with_total_nodes(total_nodes),
            default_expected_runtime: Span::from_secs(600),
            resizer_timeout: Span::from_secs(30),
            shrink_boost: true,
            policy: PolicyKind::Algorithm1,
            retain_completed: true,
            sched_index: SchedIndex::Arena,
        }
    }
}

/// A job the scheduler just started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStart {
    pub id: JobId,
    pub nodes: Vec<NodeId>,
    /// `Some(original)` when the started job is a resizer for `original`;
    /// the driver must then complete the expansion with
    /// [`Slurm::finish_expand`].
    pub resizer_for: Option<JobId>,
}

/// Failures of the expansion protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpandError {
    UnknownJob(JobId),
    NotRunning(JobId),
    /// `to` is not strictly larger than the current allocation.
    InvalidTarget {
        current: u32,
        to: u32,
    },
    /// The resizer job could not start immediately; it stays pending with
    /// maximum priority. The caller should either wait for it to start (it
    /// will appear in a later [`Slurm::schedule`] result) or abort with
    /// [`Slurm::abort_expand`] after [`SlurmConfig::resizer_timeout`].
    Queued {
        resizer: JobId,
    },
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::UnknownJob(j) => write!(f, "{j:?} does not exist"),
            ExpandError::NotRunning(j) => write!(f, "{j:?} is not running"),
            ExpandError::InvalidTarget { current, to } => {
                write!(f, "expand target {to} <= current {current}")
            }
            ExpandError::Queued { resizer } => {
                write!(f, "resizer {resizer:?} queued, expansion deferred")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// The workload manager.
pub struct Slurm {
    cluster: Cluster,
    /// Job records in a generation-checked slab ([`JobArena`]): O(1)
    /// lookups on the submit/start/complete path, slots recycled once a
    /// record is pruned. (The detach mark of expand-protocol step 2
    /// lives on the record itself, [`Job::detached_nodes`].)
    jobs: JobArena,
    /// Next submission sequence number ([`Job::seq`]).
    next_seq: u64,
    pub config: SlurmConfig,
    /// The installed reconfiguration decision procedure (§IV plug-in).
    /// `None` only transiently, while the policy is consulted.
    policy: Option<Box<dyn ResizePolicy>>,
    /// Memoized pending-queue priority order.
    ///
    /// A scheduling cycle needs the pending order — and then every policy
    /// consultation in the same cycle needs it again through
    /// [`Slurm::pending_queue`]. The order is a pure function of
    /// `(pending set, job attributes, now)`, so it is cached and
    /// invalidated on any mutation that can change it (submit, start,
    /// completion, cancellation, boost). Orders served straight from the
    /// [`PendingIndex`] are additionally time-invariant between
    /// mutations, so those cache entries survive across instants.
    /// `RefCell`: the recompute happens behind `&self` accessors. The
    /// orders are `Arc<[JobId]>` so cache hits are allocation-free.
    queue_cache: RefCell<Option<QueueCache>>,
    /// Ordered pending index (see [`crate::index`]).
    pending_index: PendingIndex,
    /// Running jobs ordered by `(expected_end, nodes, id)` for backfill.
    running_index: RunningIndex,
    /// Parent → resizer reverse-dependency map for O(affected) reaping.
    resizer_index: ResizerIndex,
    /// The slot-set free-resource timeline the EASY-k / conservative
    /// backfill families query (see [`crate::slotset`]). `RefCell`: the
    /// deferred deltas are flushed behind `&self` in
    /// [`Slurm::check_invariants`].
    timeline: RefCell<Timeline>,
}

/// One deferred timeline mutation: a running job's node commitment over
/// `[horizon, end)`, to add (`plan`) or remove. Queued O(1) at the index
/// mutation sites; applied (O(log slots) each) the next time the timeline
/// is consulted, so the scheduling hot paths never pay tree costs.
/// Applying from the *current* horizon is exact: occupancy behind the
/// horizon is clipped on both plan and unplan, and [`SlotSet::advance`]
/// prunes whatever a plan wrote behind the clock before any query runs.
#[derive(Debug)]
struct TimelineDelta {
    end: SimTime,
    nodes: u32,
    plan: bool,
}

/// The timeline plus its deferred-delta queue (see [`TimelineDelta`]).
#[derive(Debug)]
struct Timeline {
    slots: SlotSet,
    queued: Vec<TimelineDelta>,
}

impl Timeline {
    fn new() -> Self {
        Timeline {
            slots: SlotSet::new(SimTime::ZERO),
            queued: Vec::new(),
        }
    }

    /// Applies every queued delta (without moving the horizon).
    fn flush(&mut self) {
        for d in self.queued.drain(..) {
            let h = self.slots.horizon();
            if d.plan {
                self.slots.plan(h, d.end, d.nodes);
            } else {
                self.slots.unplan(h, d.end, d.nodes);
            }
        }
    }

    /// Brings the timeline up to date with the simulation clock: applies
    /// queued deltas, then garbage-collects everything behind `now`.
    fn sync(&mut self, now: SimTime) {
        self.flush();
        self.slots.advance(now);
    }
}

/// One memoized pending order (see [`Slurm::pending_queue`]).
struct QueueCache {
    /// Instant the order was computed at.
    at: SimTime,
    /// Whether it came from the index (then it is valid at *any* instant
    /// while the index stays exact, not just at `at`).
    from_index: bool,
    /// Full pending order.
    order: Arc<[JobId]>,
    /// The resizer-free view, built lazily on the first
    /// [`Slurm::pending_queue`] call of the cycle.
    no_resizers: Option<Arc<[JobId]>>,
}

impl Slurm {
    pub fn new(mut cluster: Cluster, config: SlurmConfig) -> Self {
        cluster.use_scan_selection(config.sched_index == SchedIndex::ScanReference);
        Slurm {
            cluster,
            jobs: JobArena::new(),
            next_seq: 0,
            policy: Some(config.policy.build()),
            config,
            queue_cache: RefCell::new(None),
            pending_index: PendingIndex::default(),
            running_index: RunningIndex::default(),
            resizer_index: ResizerIndex::default(),
            timeline: RefCell::new(Timeline::new()),
        }
    }

    /// Convenience constructor with defaults sized to the cluster.
    pub fn with_cluster(cluster: Cluster) -> Self {
        let cfg = SlurmConfig::for_cluster(cluster.total_nodes());
        Slurm::new(cluster, cfg)
    }

    /// Replaces the installed reconfiguration policy.
    ///
    /// `config.policy` is a construction-time selector only and is *not*
    /// updated here (a custom trait object need not correspond to any
    /// [`PolicyKind`]); after this call, [`Slurm::policy_name`] is the
    /// source of truth for what is installed.
    pub fn set_policy(&mut self, policy: Box<dyn ResizePolicy>) {
        self.policy = Some(policy);
    }

    /// Name of the installed policy (sweep CSV labelling).
    pub fn policy_name(&self) -> &'static str {
        self.policy
            .as_deref()
            .map_or("<consulting>", ResizePolicy::name)
    }

    /// Detaches the policy so [`crate::policy`] can pass `&Slurm` to it.
    pub(crate) fn take_policy(&mut self) -> Box<dyn ResizePolicy> {
        self.policy.take().expect("resize policy installed")
    }

    pub(crate) fn restore_policy(&mut self, policy: Box<dyn ResizePolicy>) {
        self.policy = Some(policy);
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(id)
    }

    /// All job records, in arena storage order (equal to submission
    /// order while no record has been pruned — in particular always
    /// under [`SlurmConfig::retain_completed`]). Order-sensitive callers
    /// should sort by [`Job::seq`].
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Number of running jobs. O(1): served from the running index,
    /// which tracks the `Running` state exactly.
    pub fn running_count(&self) -> usize {
        self.running_index.len()
    }

    /// Number of pending jobs. O(1): served from the pending index.
    pub fn pending_count(&self) -> usize {
        self.pending_index.len()
    }

    /// Nodes currently attached to any job (including detached resizer
    /// nodes mid-protocol).
    pub fn allocated_nodes(&self) -> u32 {
        self.cluster.allocated_nodes()
    }

    /// Current node count of a job.
    pub fn nodes_of(&self, id: JobId) -> u32 {
        self.cluster.held_by(id.owner_tag())
    }

    /// Submits a job; it becomes eligible at the next [`Slurm::schedule`].
    pub fn submit(&mut self, req: JobRequest, now: SimTime) -> JobId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let default_runtime = self.config.default_expected_runtime;
        let parent_running = match req.dependency {
            Some(Dependency::ExpandOf(parent)) => self
                .jobs
                .get(parent)
                .is_some_and(|p| p.state == JobState::Running),
            None => false,
        };
        let dependency = req.dependency;
        let id = self.jobs.insert_with(|id| Job {
            id,
            seq,
            detached_nodes: 0,
            name: req.name,
            state: JobState::Pending,
            requested_nodes: req.nodes,
            time_limit: req.time_limit,
            expected_runtime: req.expected_runtime.unwrap_or(default_runtime),
            dependency: req.dependency,
            base_priority: req.base_priority,
            boosted: false,
            resize: req.resize,
            submit_time: now,
            start_time: None,
            end_time: None,
            reconfigurations: 0,
        });
        self.pending_index.insert(&self.jobs[id]);
        if let Some(Dependency::ExpandOf(parent)) = dependency {
            self.resizer_index.register(parent, id, parent_running);
        }
        self.invalidate_queue_cache();
        id
    }

    /// Grants a pending job maximum priority (§IV-3: the queued job a
    /// shrink benefits "will be assigned the maximum priority in order to
    /// foster its execution").
    pub fn boost(&mut self, id: JobId) {
        if let Some(j) = self.jobs.get_mut(id) {
            let reindex = j.state == JobState::Pending && !j.boosted;
            j.boosted = true;
            let (submit, seq, jid) = (j.submit_time, j.seq, j.id);
            if reindex {
                self.pending_index.reboost(submit, seq, jid);
            }
            self.invalidate_queue_cache();
        }
    }

    /// Updates the backfill runtime estimate of a job (the simulation
    /// driver refreshes it after reconfigurations).
    pub fn set_expected_runtime(&mut self, id: JobId, estimate: Span) {
        let Some(j) = self.jobs.get_mut(id) else {
            return;
        };
        j.expected_runtime = estimate;
        let started_at = (j.state == JobState::Running)
            .then_some(j.start_time)
            .flatten();
        if let Some(start) = started_at {
            let new_end = start + estimate;
            if let Some((old_end, nodes)) = self.running_index.set_end(id, new_end) {
                // Re-plan only the affected slots: this job's old and new
                // commitment intervals.
                self.tl_queue(old_end, nodes, false);
                self.tl_queue(new_end, nodes, true);
            }
        }
    }

    /// Queues a timeline delta (a running job's node commitment until
    /// `end`) for application at the next timeline consultation.
    fn tl_queue(&mut self, end: SimTime, nodes: u32, plan: bool) {
        if nodes == 0 {
            return;
        }
        let tl = self.timeline.get_mut();
        tl.queued.push(TimelineDelta { end, nodes, plan });
        // Keep memory O(running) even when no backfill pass ever drains
        // the queue (backfill disabled): paired plan/unplan deltas cancel
        // once applied.
        if tl.queued.len() >= 1024 {
            tl.flush();
        }
    }

    /// Drops the memoized pending order. Must be called by every mutation
    /// that can change the pending set or any priority input.
    fn invalidate_queue_cache(&self) {
        *self.queue_cache.borrow_mut() = None;
    }

    /// Whether the [`PendingIndex`] key order provably equals the
    /// multifactor sort at every instant: the age factor is the only
    /// live weight and no pending job carries a non-zero base priority.
    /// Age grows at the same rate for every pending job, and the
    /// priority rounding is monotone in age, so `(priority desc, submit
    /// asc, seq asc)` collapses to the static `(boosted, submit, seq)`
    /// key — order can then only change at mutation points, never with
    /// time.
    fn index_is_exact(&self) -> bool {
        matches!(
            self.config.sched_index,
            SchedIndex::Arena | SchedIndex::Indexed
        ) && self.config.multifactor.weight_size == 0
            && self.pending_index.nonzero_base() == 0
    }

    /// Whether the pending order is *static between mutations* — i.e.
    /// the index key order is provably the multifactor order at every
    /// instant (the private `index_is_exact` check). Public so drivers can
    /// tell when ordering-sensitive optimisations (e.g. batching all
    /// same-instant arrivals into one scheduling pass, which relies on
    /// fresh non-boosted submissions sorting strictly last) are sound.
    pub fn pending_order_is_static(&self) -> bool {
        self.index_is_exact()
    }

    fn pending_ids_by_priority(&self, now: SimTime) -> Arc<[JobId]> {
        let indexed = self.index_is_exact();
        if let Some(c) = self.queue_cache.borrow().as_ref() {
            // An index-served order is time-invariant until the next
            // mutation (which clears the cache), so it survives across
            // instants; sort-served orders are valid at `at` only.
            if c.at == now || (c.from_index && indexed) {
                return Arc::clone(&c.order);
            }
        }
        let order: Arc<[JobId]> = if indexed {
            self.pending_index.ids().collect::<Vec<JobId>>().into()
        } else {
            self.pending_order_scan(now).into()
        };
        *self.queue_cache.borrow_mut() = Some(QueueCache {
            at: now,
            from_index: indexed,
            order: Arc::clone(&order),
            no_resizers: None,
        });
        order
    }

    /// The pre-index pending order: recompute every multifactor priority
    /// and sort. Exercised when the static index key cannot represent the
    /// order (size weight or per-job base priorities in play) and under
    /// [`SchedIndex::ScanReference`] as the equivalence oracle.
    fn pending_order_scan(&self, now: SimTime) -> Vec<JobId> {
        let mut pend: Vec<(&Job, u64)> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Pending)
            .map(|j| (j, self.config.multifactor.priority(j, now)))
            .collect();
        pend.sort_by(|(a, pa), (b, pb)| {
            pb.cmp(pa)
                .then(a.submit_time.cmp(&b.submit_time))
                .then(a.seq.cmp(&b.seq))
        });
        pend.into_iter().map(|(j, _)| j.id).collect()
    }

    /// Pending jobs in scheduling order, excluding resizer jobs (exposed
    /// for the reconfiguration policy). Returns a shared slice: repeated
    /// consultations within one scheduling cycle are allocation-free, and
    /// with no resizers pending the full order itself is shared.
    pub fn pending_queue(&self, now: SimTime) -> Arc<[JobId]> {
        let order = self.pending_ids_by_priority(now);
        if let Some(nr) = self
            .queue_cache
            .borrow()
            .as_ref()
            .and_then(|c| c.no_resizers.clone())
        {
            return nr;
        }
        let nr: Arc<[JobId]> = if self.pending_index.pending_resizers() == 0 {
            Arc::clone(&order)
        } else {
            order
                .iter()
                .copied()
                .filter(|&id| !self.jobs[id].is_resizer())
                .collect::<Vec<JobId>>()
                .into()
        };
        if let Some(c) = self.queue_cache.borrow_mut().as_mut() {
            c.no_resizers = Some(Arc::clone(&nr));
        }
        nr
    }

    fn dependency_satisfied(&self, job: &Job) -> bool {
        match job.dependency {
            None => true,
            Some(Dependency::ExpandOf(parent)) => self
                .jobs
                .get(parent)
                .is_some_and(|p| p.state == JobState::Running),
        }
    }

    /// Earliest instant at which `need` nodes will be free, judging by
    /// running jobs' expected ends, plus the spare ("extra") nodes at that
    /// instant. This is the EASY backfill reservation for the top blocked
    /// job.
    fn reservation_for(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        if self.config.sched_index == SchedIndex::ScanReference {
            return self.reservation_for_scan(need, now);
        }
        let mut free = self.cluster.free_nodes();
        for (end, nodes) in self.running_index.iter() {
            free += nodes;
            if free >= need {
                return (end.max(now), free - need);
            }
        }
        // Estimates never free enough nodes (can happen transiently while
        // resizer nodes are detached): no backfill headroom.
        (SimTime(u64::MAX), 0)
    }

    /// The pre-index reservation: collect every running job's
    /// `(expected_end, held_nodes)` and sort — the equivalence oracle for
    /// the [`RunningIndex`] walk above.
    fn reservation_for_scan(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        let mut ends: Vec<(SimTime, u32)> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                (
                    j.expected_end().unwrap_or(now),
                    self.cluster.held_by(j.id.owner_tag()),
                )
            })
            .collect();
        ends.sort();
        let mut free = self.cluster.free_nodes();
        for (end, nodes) in ends {
            free += nodes;
            if free >= need {
                return (end.max(now), free - need);
            }
        }
        (SimTime(u64::MAX), 0)
    }

    fn start_job(&mut self, id: JobId, now: SimTime) -> JobStart {
        let need = self.jobs[id].requested_nodes;
        let nodes = self
            .cluster
            .allocate(need, id.owner_tag())
            .expect("caller verified free nodes");
        let job = self.jobs.get_mut(id).expect("job exists");
        self.pending_index.remove(job);
        job.state = JobState::Running;
        job.start_time = Some(now);
        let end = now + job.expected_runtime;
        let resizer_for = job.dependency.map(|Dependency::ExpandOf(parent)| parent);
        let held = self.cluster.held_by(id.owner_tag());
        self.running_index.insert(id, end, held);
        self.tl_queue(end, held, true);
        self.invalidate_queue_cache();
        JobStart {
            id,
            nodes,
            resizer_for,
        }
    }

    fn reap_dead_resizers(&mut self, now: SimTime) {
        if self.config.sched_index == SchedIndex::ScanReference {
            return self.reap_dead_resizers_scan(now);
        }
        // O(1) in the common case: completions push orphaned resizers
        // onto the candidate list; nothing queued means nothing to do.
        if !self.resizer_index.has_dead_candidates() {
            return;
        }
        for id in self.resizer_index.take_dead() {
            let Some(j) = self.jobs.get(id) else {
                continue;
            };
            if j.state != JobState::Pending || !j.is_resizer() {
                continue;
            }
            if self.dependency_satisfied(j) {
                // The parent was not running at registration but is now:
                // re-register so a later parent termination re-queues it.
                if let Some(Dependency::ExpandOf(parent)) = j.dependency {
                    self.resizer_index.register(parent, id, true);
                }
                continue;
            }
            self.cancel(id, now);
        }
    }

    /// The pre-index reap: scan every job record for pending resizers
    /// with unsatisfied dependencies (the [`ResizerIndex`] oracle).
    fn reap_dead_resizers_scan(&mut self, now: SimTime) {
        // Dependency hygiene: resizers of finished jobs are dead.
        let dead: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|j| {
                j.state == JobState::Pending && j.is_resizer() && !self.dependency_satisfied(j)
            })
            .map(|j| j.id)
            .collect();
        for id in dead {
            self.cancel(id, now);
        }
    }

    /// The event-driven scheduling pass (Slurm's `sched/builtin` reacting
    /// to submissions and completions): starts pending jobs in priority
    /// order and stops at the first that does not fit. Backfill around
    /// blocked jobs happens only in the periodic [`Slurm::backfill_pass`],
    /// mirroring Slurm's `bf_interval` architecture. Also reaps resizer
    /// jobs whose original job ended.
    pub fn schedule(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        if self.config.sched_index == SchedIndex::Arena && self.index_is_exact() {
            return self.schedule_walk(now);
        }
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        for &id in order.iter() {
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                // Cannot run regardless of resources; does not block the
                // queue.
                continue;
            }
            if self.cluster.can_allocate(job.requested_nodes) {
                started.push(self.start_job(id, now));
            } else {
                break;
            }
        }
        started
    }

    /// The arena-mode scheduling pass: walks the [`PendingIndex`]
    /// through a resumable cursor instead of materialising the whole
    /// order, so a pass that starts `k` of `n` pending jobs costs
    /// O(k log n). Visit order is the exact index key order — identical
    /// to the slice the materialising path would have walked (the only
    /// mid-walk mutation, [`Slurm::start_job`], removes keys the cursor
    /// has already passed).
    fn schedule_walk(&mut self, now: SimTime) -> Vec<JobStart> {
        let mut started = Vec::new();
        let mut cursor: Option<PendingKey> = None;
        while let Some(key) = self.pending_index.next_after(cursor) {
            cursor = Some(key);
            let (.., id) = key;
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            if self.cluster.can_allocate(job.requested_nodes) {
                started.push(self.start_job(id, now));
            } else {
                break;
            }
        }
        started
    }

    /// The periodic backfill pass (Slurm's backfill thread), dispatched
    /// on [`SlurmConfig::backfill_family`]:
    ///
    /// * [`BackfillFamily::Easy`] — the first `k` blocked jobs get
    ///   shadow-time reservations found on the slot-set timeline;
    ///   lower-priority jobs jump ahead only if they delay none of them.
    ///   `k = 1` is bit-for-bit the legacy behaviour.
    /// * [`BackfillFamily::Conservative`] — every blocked job gets a slot
    ///   planned in the timeline; a job starts now only if its whole
    ///   expected runtime fits under every plan.
    /// * [`BackfillFamily::LegacyReference`] — the pre-slot-set
    ///   single-reservation walk, kept as the equivalence oracle.
    pub fn backfill_pass(&mut self, now: SimTime) -> Vec<JobStart> {
        match self.config.backfill_family {
            BackfillFamily::Easy { reservations } => {
                self.backfill_pass_easy(now, reservations.max(1))
            }
            BackfillFamily::Conservative => self.backfill_pass_conservative(now),
            BackfillFamily::LegacyReference => self.backfill_pass_legacy(now),
        }
    }

    /// The pre-slot-set EASY pass: one reservation computed by the
    /// running-index walk ([`Slurm::reservation_for`]), kept verbatim as
    /// the equivalence oracle for `Easy { reservations: 1 }`.
    fn backfill_pass_legacy(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        let mut reservation: Option<(SimTime, u32)> = None;
        for &id in order.iter() {
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            let fits = self.cluster.can_allocate(need);
            match (&mut reservation, fits) {
                (None, true) => {
                    started.push(self.start_job(id, now));
                }
                (None, false) => {
                    if !self.config.backfill {
                        break;
                    }
                    reservation = Some(self.reservation_for(need, now));
                }
                (Some((shadow, extra)), true) => {
                    // Backfill: must not delay the reservation holder.
                    let est_end = now + self.jobs[id].expected_runtime;
                    if est_end <= *shadow {
                        started.push(self.start_job(id, now));
                    } else if need <= *extra {
                        *extra -= need;
                        started.push(self.start_job(id, now));
                    }
                }
                (Some(_), false) => {}
            }
        }
        started
    }

    /// EASY-k on the slot-set timeline: up to `k` blocked jobs hold
    /// `(shadow, spare)` reservations; a fitting lower-priority job
    /// starts only if, for every reservation, it either ends by the
    /// shadow time or fits in the spare nodes (which it then consumes).
    /// The first reservation reproduces the legacy walk bit-for-bit
    /// ([`Slurm::easy_first_reservation`]); deeper ones are O(log slots)
    /// hole queries. Reservations are planned into the timeline for the
    /// duration of the pass so each later hole query sees the earlier
    /// plans, and unplanned before returning.
    fn backfill_pass_easy(&mut self, now: SimTime, k: u32) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        self.timeline.get_mut().sync(now);
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        let mut reservations: Vec<(SimTime, u32)> = Vec::new();
        let mut planned: Vec<(SimTime, SimTime, u32)> = Vec::new();
        for &id in order.iter() {
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            if self.cluster.can_allocate(need) {
                if reservations.is_empty() {
                    started.push(self.start_job(id, now));
                    self.timeline.get_mut().sync(now);
                    continue;
                }
                let est_end = now + self.jobs[id].expected_runtime;
                let harmless = reservations
                    .iter()
                    .all(|&(shadow, spare)| est_end <= shadow || need <= spare);
                if harmless {
                    for r in reservations.iter_mut() {
                        if est_end > r.0 {
                            r.1 -= need;
                        }
                    }
                    started.push(self.start_job(id, now));
                    self.timeline.get_mut().sync(now);
                }
            } else {
                if reservations.is_empty() && !self.config.backfill {
                    break;
                }
                if (reservations.len() as u32) < k {
                    let dur = self.jobs[id].expected_runtime;
                    let (shadow, spare) = if reservations.is_empty() {
                        self.easy_first_reservation(need, now)
                    } else {
                        self.hole_reservation(need, dur, now)
                    };
                    if shadow != SimTime(u64::MAX) {
                        let until = shadow + dur;
                        self.timeline.get_mut().slots.plan(shadow, until, need);
                        planned.push((shadow, until, need));
                    }
                    reservations.push((shadow, spare));
                }
            }
        }
        let tl = self.timeline.get_mut();
        for (from, until, nodes) in planned {
            tl.slots.unplan(from, until, nodes);
        }
        started
    }

    /// Conservative backfill: walk the queue in priority order; a job
    /// whose whole expected runtime fits under the planned occupancy
    /// starts now, every other job gets the earliest hole planned into
    /// the timeline — so no start can delay any blocked job's plan.
    /// Pass-local plans are removed before returning.
    ///
    /// The walk stops after [`SlurmConfig::bf_max_job_test`] blocked jobs
    /// (Slurm's own conservative-depth cap): a job deeper than the window
    /// may not start anyway — the untested blocked jobs between it and
    /// the window would have no plans protecting them.
    fn backfill_pass_conservative(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        self.timeline.get_mut().sync(now);
        let window = self.config.bf_max_job_test.max(1);
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        let mut planned: Vec<(SimTime, SimTime, u32)> = Vec::new();
        let mut tested: u32 = 0;
        for &id in order.iter() {
            let job = &self.jobs[id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            let dur = job.expected_runtime;
            let fits = self.cluster.can_allocate(need);
            if !fits && planned.is_empty() && !self.config.backfill {
                break;
            }
            tested += 1;
            if tested > window {
                break;
            }
            let avail = self.cluster.free_nodes() + self.running_index.total_held();
            if avail < need {
                // Can never run on current estimates; nothing to plan.
                continue;
            }
            let cap = i64::from(avail - need);
            let hole = self.timeline.borrow().slots.earliest_hole(now, cap, dur);
            match hole {
                Some(s) if s == now && fits => {
                    started.push(self.start_job(id, now));
                    self.timeline.get_mut().sync(now);
                }
                Some(s) => {
                    let until = s + dur;
                    self.timeline.get_mut().slots.plan(s, until, need);
                    planned.push((s, until, need));
                }
                None => {}
            }
        }
        let tl = self.timeline.get_mut();
        for (from, until, nodes) in planned {
            tl.slots.unplan(from, until, nodes);
        }
        started
    }

    /// The first EASY reservation, answered from the timeline but
    /// bit-for-bit identical to the legacy walk ([`Slurm::reservation_for`]).
    ///
    /// The timeline locates the crossing slot in O(log): the first
    /// boundary `S` where planned occupancy leaves `need` nodes free.
    /// The legacy walk, however, stops *inside* the group of running
    /// jobs sharing the expected end `S` — its "extra" count excludes
    /// later same-end entries — so the partial accumulation is replayed
    /// over just that group (O(group), not O(running)).
    fn easy_first_reservation(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        let free_now = self.cluster.free_nodes();
        // Defensive: callers only ask about blocked jobs (free < need).
        // Should the preconditions ever not hold, defer to the oracle so
        // the answer is unconditionally identical.
        if free_now >= need || self.running_index.len() == 0 {
            return self.reservation_for(need, now);
        }
        let avail = free_now + self.running_index.total_held();
        if avail < need {
            // Estimates never free enough nodes (can happen transiently
            // while resizer nodes are detached): no backfill headroom.
            return (SimTime(u64::MAX), 0);
        }
        let cap = i64::from(avail - need);
        let tl = self.timeline.borrow();
        let Some(s) = tl.slots.first_fit_at(now, cap) else {
            return (SimTime(u64::MAX), 0);
        };
        let occ_s = tl.slots.occupied_at(s);
        drop(tl);
        if s <= now {
            // Jobs already past their estimate (their ends clamp to
            // `now` in the legacy walk) free enough on their own.
            let mut free = free_now;
            for (_, nodes) in self.running_index.ends_through(now) {
                free += nodes;
                if free >= need {
                    return (now, free - need);
                }
            }
        } else {
            let group_sum: u32 = self.running_index.group_at(s).map(|(_, n)| n).sum();
            // Free count just before the group: avail - occ(S) counts
            // every job ending at or before S as freed; subtract the
            // group to get the legacy accumulator's starting point.
            let mut free = avail - (occ_s as u32) - group_sum;
            for (end, nodes) in self.running_index.group_at(s) {
                free += nodes;
                if free >= need {
                    return (end, free - need);
                }
            }
        }
        // Unreachable while the timeline mirrors the running set; defer
        // to the oracle rather than guess.
        self.reservation_for(need, now)
    }

    /// A deeper EASY-k reservation: the earliest timeline hole fitting
    /// `need` nodes for `dur`, with the spare count taken against the
    /// occupancy peak inside the window (so backfilling against this
    /// reservation can never overdraw it).
    fn hole_reservation(&self, need: u32, dur: Span, now: SimTime) -> (SimTime, u32) {
        let avail = self.cluster.free_nodes() + self.running_index.total_held();
        if avail < need {
            return (SimTime(u64::MAX), 0);
        }
        let cap = i64::from(avail - need);
        let tl = self.timeline.borrow();
        match tl.slots.earliest_hole(now, cap, dur) {
            Some(s) => {
                let peak = tl.slots.max_in(s, s + dur);
                (s, (cap - peak) as u32)
            }
            None => (SimTime(u64::MAX), 0),
        }
    }

    /// Marks a running job complete and frees its nodes.
    pub fn complete(&mut self, id: JobId, now: SimTime) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        debug_assert_eq!(job.state, JobState::Running, "completing a non-running job");
        let was_pending = job.state == JobState::Pending;
        job.state = JobState::Completed;
        job.end_time = Some(now);
        let dep = job.dependency;
        if was_pending {
            // Tolerated in release builds only (the debug assert above
            // fires first): keep the index consistent with the scan.
            self.pending_index.remove(&self.jobs[id]);
        }
        if let Some((end, nodes)) = self.running_index.remove(id) {
            self.tl_queue(end, nodes, false);
        }
        if let Some(Dependency::ExpandOf(parent)) = dep {
            self.resizer_index.resizer_terminal(parent, id);
        }
        self.resizer_index.parent_terminal(id);
        // Precise invalidation (arena mode): completing a *running* job
        // removes nothing from the pending set and touches no priority
        // input, so the memoized pending order stays valid. (Orphaned
        // resizers are reaped via `cancel`, which does invalidate.) The
        // older paths invalidate unconditionally, exactly as before.
        if was_pending || self.config.sched_index != SchedIndex::Arena {
            self.invalidate_queue_cache();
        }
        // A job that shrank to zero nodes cannot exist (envelope min >= 1),
        // but release defensively.
        let _ = self.cluster.release_all(id.owner_tag());
        if !self.config.retain_completed {
            self.jobs.remove(id);
        }
    }

    /// Cancels a pending or running job. Detached resizer nodes are *not*
    /// freed — that is the point of protocol step 3: cancelling the hollow
    /// resizer job keeps its allocation parked for reattachment.
    pub fn cancel(&mut self, id: JobId, now: SimTime) {
        let Some(job) = self.jobs.get_mut(id) else {
            return;
        };
        if job.state.is_terminal() {
            return;
        }
        let was_running = job.state == JobState::Running;
        let was_pending = job.state == JobState::Pending;
        let detached = job.detached_nodes != 0;
        job.state = JobState::Cancelled;
        job.end_time = Some(now);
        let dep = job.dependency;
        if was_pending {
            self.pending_index.remove(&self.jobs[id]);
        }
        if was_running {
            if let Some((end, nodes)) = self.running_index.remove(id) {
                self.tl_queue(end, nodes, false);
            }
        }
        if let Some(Dependency::ExpandOf(parent)) = dep {
            self.resizer_index.resizer_terminal(parent, id);
        }
        self.resizer_index.parent_terminal(id);
        self.invalidate_queue_cache();
        if was_running && !detached {
            let _ = self.cluster.release_all(id.owner_tag());
        }
        // The record itself is never consulted after cancellation (node
        // ownership lives in the cluster tables), so it can be dropped
        // with the same retention rule as completions.
        if !self.config.retain_completed {
            self.jobs.remove(id);
        }
    }

    // ------------------------------------------------------------------
    // The §III malleability protocol.
    // ------------------------------------------------------------------

    /// Expands `id` to `to` nodes via the four-step resizer-job protocol.
    ///
    /// On success returns the job's full (old + new) node list. If the
    /// resizer cannot start immediately, it is left pending with maximum
    /// priority and [`ExpandError::Queued`] is returned; the caller decides
    /// whether to wait (async mode) or abort.
    pub fn expand_protocol(
        &mut self,
        id: JobId,
        to: u32,
        now: SimTime,
    ) -> Result<Vec<NodeId>, ExpandError> {
        let job = self.jobs.get(id).ok_or(ExpandError::UnknownJob(id))?;
        if job.state != JobState::Running {
            return Err(ExpandError::NotRunning(id));
        }
        let current = self.cluster.held_by(id.owner_tag());
        if to <= current {
            return Err(ExpandError::InvalidTarget { current, to });
        }
        let delta = to - current;
        // Step 1: submit the resizer job B with a dependency on A and
        // maximum priority ("facilitating its execution", §V-B1).
        let rj = self.submit(
            JobRequest {
                name: format!("resizer-of-{id}"),
                nodes: delta,
                time_limit: None,
                expected_runtime: Some(Span::ZERO),
                dependency: Some(Dependency::ExpandOf(id)),
                base_priority: 0,
                resize: None,
            },
            now,
        );
        self.boost(rj);
        if !self.cluster.can_allocate(delta) {
            return Err(ExpandError::Queued { resizer: rj });
        }
        // The resizer starts right away (it outranks everything pending).
        let _ = self.start_job(rj, now);
        let (_, nodes) = self
            .finish_expand(rj, now)
            .expect("resizer started; protocol steps 2-4 cannot fail");
        Ok(nodes)
    }

    /// Completes protocol steps 2–4 for a resizer job that has started:
    /// detach its nodes, cancel it, reattach the nodes to the original job.
    /// Returns the original job id and its full node list.
    pub fn finish_expand(
        &mut self,
        rj: JobId,
        now: SimTime,
    ) -> Result<(JobId, Vec<NodeId>), ExpandError> {
        let rjob = self.jobs.get(rj).ok_or(ExpandError::UnknownJob(rj))?;
        if rjob.state != JobState::Running {
            return Err(ExpandError::NotRunning(rj));
        }
        let Some(Dependency::ExpandOf(original)) = rjob.dependency else {
            return Err(ExpandError::UnknownJob(rj));
        };
        let delta = self.cluster.held_by(rj.owner_tag());
        // Step 2: update B to zero nodes — the allocation detaches from B.
        if let Some(j) = self.jobs.get_mut(rj) {
            j.requested_nodes = 0;
            j.detached_nodes = delta;
        }
        // Step 3: cancel B (nodes stay parked because of the detach mark).
        self.cancel(rj, now);
        if let Some(j) = self.jobs.get_mut(rj) {
            // Record may already be pruned (retention off); clear the
            // mark when it survives.
            j.detached_nodes = 0;
        }
        // Step 4: update A to N_A + N_B — reattach.
        let moved = self
            .cluster
            .transfer_all(rj.owner_tag(), original.owner_tag())
            .expect("detached nodes are still owned by the resizer tag");
        debug_assert_eq!(moved.len() as u32, delta);
        let held = self.cluster.held_by(original.owner_tag());
        if let Some((end, old_nodes)) = self.running_index.set_nodes(original, held) {
            self.tl_queue(end, old_nodes, false);
            self.tl_queue(end, held, true);
        }
        if let Some(j) = self.jobs.get_mut(original) {
            j.requested_nodes = self.cluster.held_by(original.owner_tag());
            j.reconfigurations += 1;
        }
        Ok((
            original,
            self.cluster.nodes_of(original.owner_tag()).to_vec(),
        ))
    }

    /// Aborts a queued expansion: cancels the pending resizer job (the
    /// timeout path of §V-B1).
    pub fn abort_expand(&mut self, rj: JobId, now: SimTime) {
        if let Some(j) = self.jobs.get(rj) {
            if j.state == JobState::Pending {
                self.cancel(rj, now);
            }
        }
    }

    /// Shrinks `id` to `to` nodes (a single "update job" call in Slurm,
    /// §III). Returns the released nodes. The ACK workflow that lets
    /// processes drain before the nodes die lives in the runtime layer;
    /// by the time this is called the nodes are clean.
    pub fn shrink_protocol(
        &mut self,
        id: JobId,
        to: u32,
        now: SimTime,
    ) -> Result<Vec<NodeId>, ExpandError> {
        let job = self.jobs.get(id).ok_or(ExpandError::UnknownJob(id))?;
        if job.state != JobState::Running {
            return Err(ExpandError::NotRunning(id));
        }
        let current = self.cluster.held_by(id.owner_tag());
        if to >= current || to == 0 {
            return Err(ExpandError::InvalidTarget { current, to });
        }
        let released = self
            .cluster
            .release_tail(id.owner_tag(), current - to)
            .expect("running job owns its nodes");
        let _ = now;
        if let Some((end, old_nodes)) = self.running_index.set_nodes(id, to) {
            self.tl_queue(end, old_nodes, false);
            self.tl_queue(end, to, true);
        }
        if let Some(j) = self.jobs.get_mut(id) {
            j.requested_nodes = to;
            j.reconfigurations += 1;
        }
        Ok(released)
    }

    /// Internal-consistency check used by tests: re-derives every index
    /// from a scan of the job table and compares. This (and the
    /// `ScanReference` oracles) is where the O(jobs) scans live on.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.cluster.check_invariants()?;
        let pending: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Pending)
            .map(|j| j.id)
            .collect();
        let mut indexed: Vec<JobId> = self.pending_index.ids().collect();
        indexed.sort();
        let mut expected = pending.clone();
        expected.sort();
        if indexed != expected {
            return Err(format!(
                "pending index {indexed:?} != pending set {expected:?}"
            ));
        }
        let nonzero = pending
            .iter()
            .filter(|&&id| self.jobs[id].base_priority != 0)
            .count();
        if nonzero != self.pending_index.nonzero_base() {
            return Err(format!(
                "nonzero-base count {} != scanned {nonzero}",
                self.pending_index.nonzero_base()
            ));
        }
        let resizers = pending
            .iter()
            .filter(|&&id| self.jobs[id].is_resizer())
            .count();
        if resizers != self.pending_index.pending_resizers() {
            return Err(format!(
                "pending-resizer count {} != scanned {resizers}",
                self.pending_index.pending_resizers()
            ));
        }
        let running: Vec<&Job> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .collect();
        if running.len() != self.running_index.len() {
            return Err(format!(
                "running index len {} != running jobs {}",
                self.running_index.len(),
                running.len()
            ));
        }
        let mut scan: Vec<(SimTime, u32)> = running
            .iter()
            .map(|j| {
                (
                    j.expected_end().expect("running job has a start time"),
                    self.cluster.held_by(j.id.owner_tag()),
                )
            })
            .collect();
        scan.sort();
        let walked: Vec<(SimTime, u32)> = self.running_index.iter().collect();
        if scan != walked {
            return Err(format!("running index {walked:?} != scan {scan:?}"));
        }
        let held: u32 = scan.iter().map(|&(_, n)| n).sum();
        if held != self.running_index.total_held() {
            return Err(format!(
                "held-total {} != scanned {held}",
                self.running_index.total_held()
            ));
        }
        // The slot-set timeline (deferred deltas flushed) must equal the
        // running-jobs occupancy profile at every breakpoint of either
        // step function: free-count conservation across plan / unplan /
        // merge and resize re-planning.
        let mut tl = self.timeline.borrow_mut();
        tl.flush();
        tl.slots.validate()?;
        let horizon = tl.slots.horizon();
        let expected_at = |t: SimTime| -> i64 {
            scan.iter()
                .filter(|&&(end, _)| end > t)
                .map(|&(_, n)| i64::from(n))
                .sum()
        };
        let mut probes: Vec<SimTime> = tl.slots.slots().iter().map(|&(b, _)| b).collect();
        probes.extend(scan.iter().map(|&(end, _)| end.max(horizon)));
        for p in probes {
            let got = tl.slots.occupied_at(p);
            let want = expected_at(p.max(horizon));
            if got != want {
                return Err(format!(
                    "timeline occupancy {got} at {p:?} != running profile {want}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_cluster::Cluster;

    fn slurm(nodes: u32) -> Slurm {
        Slurm::with_cluster(Cluster::new(nodes, 16))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn retention_off_drops_terminal_records_without_changing_scheduling() {
        let mut keep = slurm(8);
        let mut drop = slurm(8);
        drop.config.retain_completed = false;
        for s in [&mut keep, &mut drop] {
            let a = s.submit(JobRequest::rigid("a", 4), t(0));
            let b = s.submit(JobRequest::rigid("b", 8), t(0));
            let started = s.schedule(t(0));
            assert_eq!(started.len(), 1, "a starts, b blocked");
            s.complete(a, t(100));
            let started = s.schedule(t(100));
            assert_eq!(started.len(), 1, "b starts once a's nodes free");
            s.complete(b, t(200));
            // Either way the live views agree.
            assert_eq!(s.running_count(), 0);
            assert_eq!(s.pending_count(), 0);
            let retained = s.config.retain_completed;
            assert_eq!(s.job(a).is_some(), retained);
            assert_eq!(s.job(b).is_some(), retained);
        }
        assert_eq!(keep.jobs().count(), 2);
        assert_eq!(drop.jobs().count(), 0, "terminal records pruned");
    }

    #[test]
    fn fifo_start_in_submission_order() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        let started = s.schedule(t(0));
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].id, a);
        assert_eq!(started[1].id, b);
        assert_eq!(s.cluster().free_nodes(), 2);
    }

    #[test]
    fn blocked_top_job_reserves_and_small_jobs_backfill() {
        let mut s = slurm(10);
        // One long-running hog of 8 nodes.
        let hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        s.schedule(t(0));
        assert_eq!(s.job(hog).unwrap().state, JobState::Running);
        // Big job can't start (needs 6, 2 free); short job behind it can
        // backfill because it ends before the hog releases nodes.
        let big = s.submit(
            JobRequest::rigid("big", 6).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        let small = s.submit(
            JobRequest::rigid("small", 2).with_expected_runtime(Span::from_secs(10)),
            t(2),
        );
        assert!(s.schedule(t(3)).is_empty(), "FIFO pass must not backfill");
        let started = s.backfill_pass(t(3));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, small);
        assert_eq!(s.job(big).unwrap().state, JobState::Pending);
    }

    #[test]
    fn backfill_refuses_jobs_that_would_delay_reservation() {
        let mut s = slurm(10);
        let _hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(100)),
            t(0),
        );
        s.schedule(t(0));
        let _big = s.submit(
            JobRequest::rigid("big", 10).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        // 2 free; this job fits but runs for 1000 s, past the shadow time
        // (t=100) and the reservation needs all 10 nodes (extra = 0).
        let long_small = s.submit(
            JobRequest::rigid("long-small", 2).with_expected_runtime(Span::from_secs(1000)),
            t(2),
        );
        let started = s.backfill_pass(t(3));
        assert!(started.is_empty(), "{started:?}");
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
    }

    #[test]
    fn no_backfill_means_strict_fifo() {
        let mut s = slurm(10);
        s.config.backfill = false;
        let _hog = s.submit(JobRequest::rigid("hog", 8), t(0));
        s.schedule(t(0));
        let _big = s.submit(JobRequest::rigid("big", 6), t(1));
        let _small = s.submit(JobRequest::rigid("small", 2), t(2));
        assert!(s.schedule(t(3)).is_empty());
        assert!(s.backfill_pass(t(3)).is_empty(), "backfill disabled");
    }

    #[test]
    fn completion_frees_nodes_and_records_times() {
        let mut s = slurm(4);
        let a = s.submit(JobRequest::rigid("a", 4), t(5));
        s.schedule(t(10));
        s.complete(a, t(110));
        let job = s.job(a).unwrap();
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.waiting_time(), Some(Span::from_secs(5)));
        assert_eq!(job.execution_time(), Some(Span::from_secs(100)));
        assert_eq!(job.completion_time(), Some(Span::from_secs(105)));
        assert_eq!(s.cluster().free_nodes(), 4);
    }

    #[test]
    fn expand_protocol_walks_all_four_steps() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        let nodes = s.expand_protocol(a, 8, t(50)).unwrap();
        assert_eq!(nodes.len(), 8);
        assert_eq!(s.nodes_of(a), 8);
        assert_eq!(s.job(a).unwrap().requested_nodes, 8);
        assert_eq!(s.job(a).unwrap().reconfigurations, 1);
        // The resizer exists, is cancelled, and holds nothing.
        let rj = s.jobs().find(|j| j.is_resizer()).unwrap();
        assert_eq!(rj.state, JobState::Cancelled);
        assert_eq!(s.nodes_of(rj.id), 0);
        // No node leaked.
        assert_eq!(s.cluster().free_nodes(), 2);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn expand_queues_when_no_free_nodes() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let err = s.expand_protocol(a, 8, t(10)).unwrap_err();
        let ExpandError::Queued { resizer } = err else {
            panic!("expected Queued, got {err:?}");
        };
        assert_eq!(s.job(resizer).unwrap().state, JobState::Pending);
        // When B completes, the resizer starts and the driver can finish.
        s.complete(b, t(20));
        let started = s.schedule(t(20));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, resizer);
        assert_eq!(started[0].resizer_for, Some(a));
        let (orig, nodes) = s.finish_expand(resizer, t(20)).unwrap();
        assert_eq!(orig, a);
        assert_eq!(nodes.len(), 8);
        assert_eq!(s.nodes_of(a), 8);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn queued_resizer_can_be_aborted() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!()
        };
        s.abort_expand(resizer, t(40));
        assert_eq!(s.job(resizer).unwrap().state, JobState::Cancelled);
        assert_eq!(s.nodes_of(a), 4, "original job untouched");
    }

    #[test]
    fn resizer_dies_with_its_parent() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!()
        };
        s.complete(a, t(15));
        let started = s.schedule(t(15));
        assert!(started.is_empty());
        assert_eq!(s.job(resizer).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn shrink_releases_tail_nodes() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 8), t(0));
        s.schedule(t(0));
        let released = s.shrink_protocol(a, 2, t(30)).unwrap();
        assert_eq!(released.len(), 6);
        assert_eq!(s.nodes_of(a), 2);
        assert_eq!(s.job(a).unwrap().requested_nodes, 2);
        assert_eq!(s.cluster().free_nodes(), 8);
        // Shrink to 0 or >= current rejected.
        assert!(s.shrink_protocol(a, 2, t(31)).is_err());
        assert!(s.shrink_protocol(a, 0, t(31)).is_err());
    }

    #[test]
    fn boosted_job_jumps_the_queue() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let first = s.submit(JobRequest::rigid("first", 4), t(1));
        let second = s.submit(JobRequest::rigid("second", 4), t(2));
        s.boost(second);
        s.complete(hog, t(100));
        let started = s.schedule(t(100));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, second);
        assert_eq!(s.job(first).unwrap().state, JobState::Pending);
    }

    #[test]
    fn expand_rejects_bad_targets() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        assert_eq!(
            s.expand_protocol(a, 4, t(1)),
            Err(ExpandError::InvalidTarget { current: 4, to: 4 })
        );
        assert_eq!(
            s.expand_protocol(JobId(999), 8, t(1)),
            Err(ExpandError::UnknownJob(JobId(999)))
        );
        let pending = s.submit(JobRequest::rigid("p", 2), t(1));
        assert_eq!(
            s.expand_protocol(pending, 4, t(1)),
            Err(ExpandError::NotRunning(pending))
        );
    }

    #[test]
    fn cached_pending_order_tracks_mutations_within_one_instant() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let a = s.submit(JobRequest::rigid("a", 2), t(1));
        let b = s.submit(JobRequest::rigid("b", 2), t(2));
        // Two same-instant reads hit the cache and agree — and the hit is
        // allocation-free (the same shared slice comes back).
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![a, b]);
        assert!(Arc::ptr_eq(&s.pending_queue(t(5)), &s.pending_queue(t(5))));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![a, b]);
        // A boost at the same instant must invalidate, not serve stale.
        s.boost(b);
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![b, a]);
        // A same-instant submit must appear immediately.
        let c = s.submit(JobRequest::rigid("c", 1), t(5));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![b, a, c]);
        // A cancellation must disappear immediately.
        s.cancel(a, t(5));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![b, c]);
        // And a start (via completion freeing the machine) as well.
        s.complete(hog, t(5));
        s.schedule(t(5));
        assert!(s.pending_queue(t(5)).is_empty());
        // Age reorders across instants: the cache must not pin t=5.
        assert!(s.pending_queue(t(6)).is_empty());
    }

    #[test]
    fn pending_queue_excludes_resizers() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 8), t(0));
        s.schedule(t(0));
        let _q = s.submit(JobRequest::rigid("q", 2), t(1));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 16, t(2)).unwrap_err() else {
            panic!()
        };
        let queue = s.pending_queue(t(3));
        assert!(!queue.contains(&resizer));
        assert_eq!(queue.len(), 1);
    }

    fn scan_twin(nodes: u32) -> Slurm {
        let mut cfg = SlurmConfig::for_cluster(nodes);
        cfg.sched_index = SchedIndex::ScanReference;
        Slurm::new(Cluster::new(nodes, 16), cfg)
    }

    #[test]
    fn indexed_and_scan_paths_schedule_identically() {
        // Drive an identical mixed op sequence through both hot paths and
        // compare every observable: starts, queue orders, reservations
        // (via backfill behaviour), reaping.
        let mut idx = slurm(16);
        let mut scan = scan_twin(16);
        for s in [&mut idx, &mut scan] {
            for i in 0..6u32 {
                s.submit(
                    JobRequest::rigid(format!("j{i}"), 2 + (i * 3) % 7)
                        .with_expected_runtime(Span::from_secs(100 + (i as u64 * 77) % 400)),
                    t(i as u64),
                );
            }
        }
        let a = idx.schedule(t(10));
        let b = scan.schedule(t(10));
        assert_eq!(a, b);
        assert_eq!(idx.backfill_pass(t(12)), scan.backfill_pass(t(12)));
        // Complete the first started job, expand another, keep comparing.
        let first = a[0].id;
        for s in [&mut idx, &mut scan] {
            s.complete(first, t(50));
        }
        assert_eq!(idx.schedule(t(50)), scan.schedule(t(50)));
        assert_eq!(
            idx.pending_queue(t(60)).to_vec(),
            scan.pending_queue(t(60)).to_vec()
        );
        assert_eq!(idx.backfill_pass(t(60)), scan.backfill_pass(t(60)));
        idx.check_invariants().unwrap();
        scan.check_invariants().unwrap();
    }

    #[test]
    fn nonzero_base_priority_falls_back_to_the_sort() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let plain = s.submit(JobRequest::rigid("plain", 2), t(1));
        let vip = s.submit(
            JobRequest {
                base_priority: 50_000,
                ..JobRequest::rigid("vip", 2)
            },
            t(2),
        );
        // The static (submit, id) key would put `plain` first; the base
        // priority must win, which only the sort path can express.
        assert_eq!(s.pending_queue(t(3)).to_vec(), vec![vip, plain]);
        s.check_invariants().unwrap();
        // Once the high-base job leaves the pending set, the index serves
        // again — and still agrees with a scan twin.
        s.cancel(vip, t(4));
        assert_eq!(s.pending_queue(t(5)).to_vec(), vec![plain]);
        let _ = hog;
        s.check_invariants().unwrap();
    }

    #[test]
    fn index_served_order_is_shared_across_instants() {
        let mut s = slurm(2);
        s.submit(JobRequest::rigid("hog", 2), t(0));
        s.schedule(t(0));
        s.submit(JobRequest::rigid("a", 1), t(1));
        s.submit(JobRequest::rigid("b", 1), t(2));
        // No mutation between consults at different instants: relative
        // order cannot change (uniform age growth), so the cache entry is
        // reused without recomputation or allocation.
        let q5 = s.pending_queue(t(5));
        let q9 = s.pending_queue(t(9));
        assert!(Arc::ptr_eq(&q5, &q9));
    }

    #[test]
    fn indices_stay_consistent_through_the_expand_protocol() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        s.check_invariants().unwrap();
        // Queued expansion: resizer pending with max priority.
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!("expected queued resizer");
        };
        s.check_invariants().unwrap();
        s.complete(b, t(20));
        s.check_invariants().unwrap();
        let started = s.schedule(t(20));
        assert_eq!(started[0].id, resizer);
        s.finish_expand(resizer, t(20)).unwrap();
        s.check_invariants().unwrap();
        // Shrink re-keys the running index.
        s.shrink_protocol(a, 2, t(30)).unwrap();
        s.check_invariants().unwrap();
        s.complete(a, t(40));
        s.check_invariants().unwrap();
    }

    #[test]
    fn estimate_refresh_rekeys_the_reservation_order() {
        let mut s = slurm(12);
        let long = s.submit(
            JobRequest::rigid("long", 6).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        let short = s.submit(
            JobRequest::rigid("short", 4).with_expected_runtime(Span::from_secs(100)),
            t(0),
        );
        s.schedule(t(0));
        s.check_invariants().unwrap();
        // Swap the estimates: the running index must re-key both entries
        // (check_invariants compares it against a fresh scan).
        s.set_expected_runtime(long, Span::from_secs(50));
        s.set_expected_runtime(short, Span::from_secs(2000));
        s.check_invariants().unwrap();
        // And the reservation built from the re-keyed order still admits
        // a short backfill candidate (2 free now, 10 needed, shadow at
        // short's new end t=2000).
        let _blocked = s.submit(JobRequest::rigid("blocked", 10), t(1));
        let small = s.submit(
            JobRequest::rigid("small", 2).with_expected_runtime(Span::from_secs(10)),
            t(2),
        );
        let started = s.backfill_pass(t(3));
        assert_eq!(started.len(), 1, "small job backfills: {started:?}");
        assert_eq!(started[0].id, small);
    }

    /// A 10-node machine with one 8-node hog until t=1000, then (in
    /// priority order) a blocked 6-node job, a blocked 10-node job, a
    /// *long* 2-node job and a *short* 2-node job. The families disagree
    /// exactly where they should.
    fn family_fixture(family: BackfillFamily) -> (Slurm, [JobId; 4]) {
        let mut s = slurm(10);
        s.config.backfill_family = family;
        let _hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(995)),
            t(0),
        );
        s.schedule(t(0));
        let blocked1 = s.submit(
            JobRequest::rigid("blocked1", 6).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        let blocked2 = s.submit(
            JobRequest::rigid("blocked2", 10).with_expected_runtime(Span::from_secs(100)),
            t(2),
        );
        let long_small = s.submit(
            JobRequest::rigid("long-small", 2).with_expected_runtime(Span::from_secs(5000)),
            t(3),
        );
        let short_small = s.submit(
            JobRequest::rigid("short-small", 2).with_expected_runtime(Span::from_secs(100)),
            t(4),
        );
        (s, [blocked1, blocked2, long_small, short_small])
    }

    #[test]
    fn easy1_lets_a_long_job_backfill_past_a_deep_blocked_job() {
        // Classic EASY: only blocked1 holds a reservation (shadow t=1000,
        // 4 extra nodes), so the long 2-node job jumps ahead even though
        // it will still be running when blocked2 could have started.
        let (mut s, [blocked1, blocked2, long_small, short_small]) =
            family_fixture(BackfillFamily::easy(1));
        let started = s.backfill_pass(t(5));
        assert_eq!(started.len(), 1, "{started:?}");
        assert_eq!(started[0].id, long_small);
        assert_eq!(s.job(short_small).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked1).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked2).unwrap().state, JobState::Pending);
        s.check_invariants().unwrap();
    }

    #[test]
    fn easy_k_protects_deeper_reservations() {
        // With two reservations, blocked2 holds the hole after blocked1's
        // plan ([t=1100, t=1200), zero spare), which the 5000 s job would
        // delay — it is refused. The short job ends before every shadow
        // time and still backfills.
        let (mut s, [blocked1, blocked2, long_small, short_small]) =
            family_fixture(BackfillFamily::easy(2));
        let started = s.backfill_pass(t(5));
        assert_eq!(started.len(), 1, "{started:?}");
        assert_eq!(started[0].id, short_small);
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked1).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked2).unwrap().state, JobState::Pending);
        s.check_invariants().unwrap();
    }

    #[test]
    fn conservative_plans_every_blocked_job() {
        // Conservative: blocked1 and blocked2 get planned slots, the long
        // job would overlap blocked2's plan (occupancy 10 > cap 8 inside
        // its window) and is only planned for later — the short job fits
        // entirely under the plans and starts.
        let (mut s, [blocked1, blocked2, long_small, short_small]) =
            family_fixture(BackfillFamily::Conservative);
        let started = s.backfill_pass(t(5));
        assert_eq!(started.len(), 1, "{started:?}");
        assert_eq!(started[0].id, short_small);
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked1).unwrap().state, JobState::Pending);
        assert_eq!(s.job(blocked2).unwrap().state, JobState::Pending);
        s.check_invariants().unwrap();
    }

    #[test]
    fn easy1_and_legacy_reference_schedule_identically() {
        // Twin drive (the `indexed_and_scan_paths_schedule_identically`
        // pattern): the slot-set Easy{1} path and the legacy walk must
        // agree on every observable through a mixed op sequence.
        let mut easy = slurm(16);
        let mut legacy = slurm(16);
        legacy.config.backfill_family = BackfillFamily::LegacyReference;
        for s in [&mut easy, &mut legacy] {
            for i in 0..8u32 {
                s.submit(
                    JobRequest::rigid(format!("j{i}"), 2 + (i * 5) % 11)
                        .with_expected_runtime(Span::from_secs(60 + (i as u64 * 131) % 700)),
                    t(i as u64),
                );
            }
        }
        let a = easy.schedule(t(10));
        assert_eq!(a, legacy.schedule(t(10)));
        assert_eq!(easy.backfill_pass(t(12)), legacy.backfill_pass(t(12)));
        let first = a[0].id;
        for s in [&mut easy, &mut legacy] {
            s.complete(first, t(40));
            s.set_expected_runtime(a[1].id, Span::from_secs(2000));
        }
        assert_eq!(easy.backfill_pass(t(45)), legacy.backfill_pass(t(45)));
        assert_eq!(easy.schedule(t(50)), legacy.schedule(t(50)));
        assert_eq!(easy.backfill_pass(t(55)), legacy.backfill_pass(t(55)));
        easy.check_invariants().unwrap();
        legacy.check_invariants().unwrap();
    }

    #[test]
    fn timeline_survives_the_resize_protocol_under_deep_backfill() {
        // Expand / shrink re-plan only the affected job's slots; the
        // timeline must keep mirroring the running profile through the
        // whole §III protocol with deep backfill families querying it.
        for family in [BackfillFamily::easy(2), BackfillFamily::Conservative] {
            let mut s = slurm(10);
            s.config.backfill_family = family;
            let a = s.submit(
                JobRequest::rigid("a", 4).with_expected_runtime(Span::from_secs(500)),
                t(0),
            );
            let b = s.submit(
                JobRequest::rigid("b", 4).with_expected_runtime(Span::from_secs(300)),
                t(0),
            );
            s.schedule(t(0));
            let _queued = s.submit(JobRequest::rigid("q", 8), t(1));
            let tiny = s.submit(
                JobRequest::rigid("tiny", 1).with_expected_runtime(Span::from_secs(10)),
                t(2),
            );
            s.backfill_pass(t(3));
            s.check_invariants().unwrap();
            // Both families backfill `tiny` (harmless before every plan);
            // release its node so the expansion can complete synchronously.
            s.complete(tiny, t(8));
            s.expand_protocol(a, 6, t(10)).unwrap();
            s.check_invariants().unwrap();
            s.backfill_pass(t(12));
            s.check_invariants().unwrap();
            s.shrink_protocol(a, 2, t(20)).unwrap();
            s.check_invariants().unwrap();
            s.backfill_pass(t(25));
            s.check_invariants().unwrap();
            s.complete(b, t(30));
            s.complete(a, t(40));
            s.backfill_pass(t(45));
            s.check_invariants().unwrap();
        }
    }
}
