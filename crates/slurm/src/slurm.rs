//! The scheduler core: queue, EASY backfill, and the malleability
//! protocol of §III.

use std::cell::RefCell;
use std::collections::BTreeMap;

use dmr_cluster::{Cluster, NodeId};
use dmr_sim::{SimTime, Span};

use crate::job::{Dependency, Job, JobId, JobRequest, JobState};
use crate::policy::{PolicyKind, ResizePolicy};
use crate::priority::MultifactorConfig;

/// Scheduler-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlurmConfig {
    /// Enable EASY backfill (the paper's `sched/backfill`); disabling it
    /// degrades to strict priority-FIFO — kept as an ablation knob.
    pub backfill: bool,
    pub multifactor: MultifactorConfig,
    /// Backfill estimate for jobs that did not provide one.
    pub default_expected_runtime: Span,
    /// How long the runtime waits for a queued resizer job before aborting
    /// the expansion (§V-B1).
    pub resizer_timeout: Span,
    /// Grant maximum priority to the queued job a shrink benefits
    /// (Algorithm 1 line 18). Ablation knob; the paper always boosts.
    pub shrink_boost: bool,
    /// Which reconfiguration decision procedure to install (§IV plug-in).
    pub policy: PolicyKind,
    /// Keep terminal (completed / cancelled) job records in the jobs
    /// table. `true` (the default) preserves the accounting API
    /// ([`Slurm::job`] on finished jobs); `false` drops each record the
    /// moment it turns terminal, so arbitrarily long workloads hold only
    /// the *active* job set — the setting the streaming driver uses.
    /// Scheduling decisions never read terminal records (pending-queue
    /// priority, backfill reservations and resize policies all filter on
    /// live states), so the two settings schedule identically.
    pub retain_completed: bool,
}

impl SlurmConfig {
    pub fn for_cluster(total_nodes: u32) -> Self {
        SlurmConfig {
            backfill: true,
            multifactor: MultifactorConfig::with_total_nodes(total_nodes),
            default_expected_runtime: Span::from_secs(600),
            resizer_timeout: Span::from_secs(30),
            shrink_boost: true,
            policy: PolicyKind::Algorithm1,
            retain_completed: true,
        }
    }
}

/// A job the scheduler just started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStart {
    pub id: JobId,
    pub nodes: Vec<NodeId>,
    /// `Some(original)` when the started job is a resizer for `original`;
    /// the driver must then complete the expansion with
    /// [`Slurm::finish_expand`].
    pub resizer_for: Option<JobId>,
}

/// Failures of the expansion protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExpandError {
    UnknownJob(JobId),
    NotRunning(JobId),
    /// `to` is not strictly larger than the current allocation.
    InvalidTarget {
        current: u32,
        to: u32,
    },
    /// The resizer job could not start immediately; it stays pending with
    /// maximum priority. The caller should either wait for it to start (it
    /// will appear in a later [`Slurm::schedule`] result) or abort with
    /// [`Slurm::abort_expand`] after [`SlurmConfig::resizer_timeout`].
    Queued {
        resizer: JobId,
    },
}

impl std::fmt::Display for ExpandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpandError::UnknownJob(j) => write!(f, "{j:?} does not exist"),
            ExpandError::NotRunning(j) => write!(f, "{j:?} is not running"),
            ExpandError::InvalidTarget { current, to } => {
                write!(f, "expand target {to} <= current {current}")
            }
            ExpandError::Queued { resizer } => {
                write!(f, "resizer {resizer:?} queued, expansion deferred")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// The workload manager.
pub struct Slurm {
    cluster: Cluster,
    jobs: BTreeMap<JobId, Job>,
    /// Resizer jobs whose nodes were detached ("updated to 0 nodes",
    /// protocol step 2) and await reattachment to the original job.
    detached: BTreeMap<JobId, u32>,
    next_id: u64,
    pub config: SlurmConfig,
    /// The installed reconfiguration decision procedure (§IV plug-in).
    /// `None` only transiently, while the policy is consulted.
    policy: Option<Box<dyn ResizePolicy>>,
    /// Memoized pending-queue priority order for one instant.
    ///
    /// A scheduling cycle computes the multifactor priority of every
    /// pending job and sorts them — and then every policy consultation in
    /// the same cycle does it again through [`Slurm::pending_queue`]. The
    /// order is a pure function of `(pending set, job attributes, now)`,
    /// so it is cached per instant and invalidated on any mutation that
    /// can change it (submit, start, completion, cancellation, boost).
    /// `RefCell`: the recompute happens behind `&self` accessors.
    queue_cache: RefCell<Option<(SimTime, Vec<JobId>)>>,
}

impl Slurm {
    pub fn new(cluster: Cluster, config: SlurmConfig) -> Self {
        Slurm {
            cluster,
            jobs: BTreeMap::new(),
            detached: BTreeMap::new(),
            next_id: 1,
            policy: Some(config.policy.build()),
            config,
            queue_cache: RefCell::new(None),
        }
    }

    /// Convenience constructor with defaults sized to the cluster.
    pub fn with_cluster(cluster: Cluster) -> Self {
        let cfg = SlurmConfig::for_cluster(cluster.total_nodes());
        Slurm::new(cluster, cfg)
    }

    /// Replaces the installed reconfiguration policy.
    ///
    /// `config.policy` is a construction-time selector only and is *not*
    /// updated here (a custom trait object need not correspond to any
    /// [`PolicyKind`]); after this call, [`Slurm::policy_name`] is the
    /// source of truth for what is installed.
    pub fn set_policy(&mut self, policy: Box<dyn ResizePolicy>) {
        self.policy = Some(policy);
    }

    /// Name of the installed policy (sweep CSV labelling).
    pub fn policy_name(&self) -> &'static str {
        self.policy
            .as_deref()
            .map_or("<consulting>", ResizePolicy::name)
    }

    /// Detaches the policy so [`crate::policy`] can pass `&Slurm` to it.
    pub(crate) fn take_policy(&mut self) -> Box<dyn ResizePolicy> {
        self.policy.take().expect("resize policy installed")
    }

    pub(crate) fn restore_policy(&mut self, policy: Box<dyn ResizePolicy>) {
        self.policy = Some(policy);
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All job records (submission order).
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    pub fn running_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .count()
    }

    pub fn pending_count(&self) -> usize {
        self.jobs
            .values()
            .filter(|j| j.state == JobState::Pending)
            .count()
    }

    /// Nodes currently attached to any job (including detached resizer
    /// nodes mid-protocol).
    pub fn allocated_nodes(&self) -> u32 {
        self.cluster.allocated_nodes()
    }

    /// Current node count of a job.
    pub fn nodes_of(&self, id: JobId) -> u32 {
        self.cluster.held_by(id.owner_tag())
    }

    /// Submits a job; it becomes eligible at the next [`Slurm::schedule`].
    pub fn submit(&mut self, req: JobRequest, now: SimTime) -> JobId {
        let id = JobId(self.next_id);
        self.next_id += 1;
        let job = Job {
            id,
            name: req.name,
            state: JobState::Pending,
            requested_nodes: req.nodes,
            time_limit: req.time_limit,
            expected_runtime: req
                .expected_runtime
                .unwrap_or(self.config.default_expected_runtime),
            dependency: req.dependency,
            base_priority: req.base_priority,
            boosted: false,
            resize: req.resize,
            submit_time: now,
            start_time: None,
            end_time: None,
            reconfigurations: 0,
        };
        self.jobs.insert(id, job);
        self.invalidate_queue_cache();
        id
    }

    /// Grants a pending job maximum priority (§IV-3: the queued job a
    /// shrink benefits "will be assigned the maximum priority in order to
    /// foster its execution").
    pub fn boost(&mut self, id: JobId) {
        if let Some(j) = self.jobs.get_mut(&id) {
            j.boosted = true;
            self.invalidate_queue_cache();
        }
    }

    /// Updates the backfill runtime estimate of a job (the simulation
    /// driver refreshes it after reconfigurations).
    pub fn set_expected_runtime(&mut self, id: JobId, estimate: Span) {
        if let Some(j) = self.jobs.get_mut(&id) {
            j.expected_runtime = estimate;
        }
    }

    /// Drops the memoized pending order. Must be called by every mutation
    /// that can change the pending set or any priority input.
    fn invalidate_queue_cache(&self) {
        *self.queue_cache.borrow_mut() = None;
    }

    fn pending_ids_by_priority(&self, now: SimTime) -> Vec<JobId> {
        if let Some((at, order)) = self.queue_cache.borrow().as_ref() {
            if *at == now {
                return order.clone();
            }
        }
        let mut pend: Vec<(&Job, u64)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Pending)
            .map(|j| (j, self.config.multifactor.priority(j, now)))
            .collect();
        pend.sort_by(|(a, pa), (b, pb)| {
            pb.cmp(pa)
                .then(a.submit_time.cmp(&b.submit_time))
                .then(a.id.cmp(&b.id))
        });
        let order: Vec<JobId> = pend.into_iter().map(|(j, _)| j.id).collect();
        *self.queue_cache.borrow_mut() = Some((now, order.clone()));
        order
    }

    /// Pending jobs in scheduling order, excluding resizer jobs (exposed
    /// for the reconfiguration policy).
    pub fn pending_queue(&self, now: SimTime) -> Vec<JobId> {
        self.pending_ids_by_priority(now)
            .into_iter()
            .filter(|id| !self.jobs[id].is_resizer())
            .collect()
    }

    fn dependency_satisfied(&self, job: &Job) -> bool {
        match job.dependency {
            None => true,
            Some(Dependency::ExpandOf(parent)) => self
                .jobs
                .get(&parent)
                .is_some_and(|p| p.state == JobState::Running),
        }
    }

    /// Earliest instant at which `need` nodes will be free, judging by
    /// running jobs' expected ends, plus the spare ("extra") nodes at that
    /// instant. This is the EASY backfill reservation for the top blocked
    /// job.
    fn reservation_for(&self, need: u32, now: SimTime) -> (SimTime, u32) {
        let mut ends: Vec<(SimTime, u32)> = self
            .jobs
            .values()
            .filter(|j| j.state == JobState::Running)
            .map(|j| {
                (
                    j.expected_end().unwrap_or(now),
                    self.cluster.held_by(j.id.owner_tag()),
                )
            })
            .collect();
        ends.sort();
        let mut free = self.cluster.free_nodes();
        for (end, nodes) in ends {
            free += nodes;
            if free >= need {
                return (end.max(now), free - need);
            }
        }
        // Estimates never free enough nodes (can happen transiently while
        // resizer nodes are detached): no backfill headroom.
        (SimTime(u64::MAX), 0)
    }

    fn start_job(&mut self, id: JobId, now: SimTime) -> JobStart {
        let need = self.jobs[&id].requested_nodes;
        let nodes = self
            .cluster
            .allocate(need, id.owner_tag())
            .expect("caller verified free nodes");
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.state = JobState::Running;
        job.start_time = Some(now);
        let resizer_for = job.dependency.map(|Dependency::ExpandOf(parent)| parent);
        self.invalidate_queue_cache();
        JobStart {
            id,
            nodes,
            resizer_for,
        }
    }

    fn reap_dead_resizers(&mut self, now: SimTime) {
        // Dependency hygiene: resizers of finished jobs are dead.
        let dead: Vec<JobId> = self
            .jobs
            .values()
            .filter(|j| {
                j.state == JobState::Pending && j.is_resizer() && !self.dependency_satisfied(j)
            })
            .map(|j| j.id)
            .collect();
        for id in dead {
            self.cancel(id, now);
        }
    }

    /// The event-driven scheduling pass (Slurm's `sched/builtin` reacting
    /// to submissions and completions): starts pending jobs in priority
    /// order and stops at the first that does not fit. Backfill around
    /// blocked jobs happens only in the periodic [`Slurm::backfill_pass`],
    /// mirroring Slurm's `bf_interval` architecture. Also reaps resizer
    /// jobs whose original job ended.
    pub fn schedule(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        for id in order {
            let job = &self.jobs[&id];
            if !self.dependency_satisfied(job) {
                // Cannot run regardless of resources; does not block the
                // queue.
                continue;
            }
            if self.cluster.can_allocate(job.requested_nodes) {
                started.push(self.start_job(id, now));
            } else {
                break;
            }
        }
        started
    }

    /// The periodic EASY-backfill pass (Slurm's backfill thread): a
    /// reservation is computed for the highest-priority blocked job and
    /// lower-priority jobs jump ahead only if they do not delay it.
    pub fn backfill_pass(&mut self, now: SimTime) -> Vec<JobStart> {
        self.reap_dead_resizers(now);
        let order = self.pending_ids_by_priority(now);
        let mut started = Vec::new();
        let mut reservation: Option<(SimTime, u32)> = None;
        for id in order {
            let job = &self.jobs[&id];
            if !self.dependency_satisfied(job) {
                continue;
            }
            let need = job.requested_nodes;
            let fits = self.cluster.can_allocate(need);
            match (&mut reservation, fits) {
                (None, true) => {
                    started.push(self.start_job(id, now));
                }
                (None, false) => {
                    if !self.config.backfill {
                        break;
                    }
                    reservation = Some(self.reservation_for(need, now));
                }
                (Some((shadow, extra)), true) => {
                    // Backfill: must not delay the reservation holder.
                    let est_end = now + self.jobs[&id].expected_runtime;
                    if est_end <= *shadow {
                        started.push(self.start_job(id, now));
                    } else if need <= *extra {
                        *extra -= need;
                        started.push(self.start_job(id, now));
                    }
                }
                (Some(_), false) => {}
            }
        }
        started
    }

    /// Marks a running job complete and frees its nodes.
    pub fn complete(&mut self, id: JobId, now: SimTime) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        debug_assert_eq!(job.state, JobState::Running, "completing a non-running job");
        job.state = JobState::Completed;
        job.end_time = Some(now);
        self.invalidate_queue_cache();
        // A job that shrank to zero nodes cannot exist (envelope min >= 1),
        // but release defensively.
        let _ = self.cluster.release_all(id.owner_tag());
        if !self.config.retain_completed {
            self.jobs.remove(&id);
        }
    }

    /// Cancels a pending or running job. Detached resizer nodes are *not*
    /// freed — that is the point of protocol step 3: cancelling the hollow
    /// resizer job keeps its allocation parked for reattachment.
    pub fn cancel(&mut self, id: JobId, now: SimTime) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.state.is_terminal() {
            return;
        }
        let was_running = job.state == JobState::Running;
        job.state = JobState::Cancelled;
        job.end_time = Some(now);
        self.invalidate_queue_cache();
        if was_running && !self.detached.contains_key(&id) {
            let _ = self.cluster.release_all(id.owner_tag());
        }
        // The record itself is never consulted after cancellation (the
        // detach mark and node ownership live in their own tables), so it
        // can be dropped with the same retention rule as completions.
        if !self.config.retain_completed {
            self.jobs.remove(&id);
        }
    }

    // ------------------------------------------------------------------
    // The §III malleability protocol.
    // ------------------------------------------------------------------

    /// Expands `id` to `to` nodes via the four-step resizer-job protocol.
    ///
    /// On success returns the job's full (old + new) node list. If the
    /// resizer cannot start immediately, it is left pending with maximum
    /// priority and [`ExpandError::Queued`] is returned; the caller decides
    /// whether to wait (async mode) or abort.
    pub fn expand_protocol(
        &mut self,
        id: JobId,
        to: u32,
        now: SimTime,
    ) -> Result<Vec<NodeId>, ExpandError> {
        let job = self.jobs.get(&id).ok_or(ExpandError::UnknownJob(id))?;
        if job.state != JobState::Running {
            return Err(ExpandError::NotRunning(id));
        }
        let current = self.cluster.held_by(id.owner_tag());
        if to <= current {
            return Err(ExpandError::InvalidTarget { current, to });
        }
        let delta = to - current;
        // Step 1: submit the resizer job B with a dependency on A and
        // maximum priority ("facilitating its execution", §V-B1).
        let rj = self.submit(
            JobRequest {
                name: format!("resizer-of-{id}"),
                nodes: delta,
                time_limit: None,
                expected_runtime: Some(Span::ZERO),
                dependency: Some(Dependency::ExpandOf(id)),
                base_priority: 0,
                resize: None,
            },
            now,
        );
        self.boost(rj);
        if !self.cluster.can_allocate(delta) {
            return Err(ExpandError::Queued { resizer: rj });
        }
        // The resizer starts right away (it outranks everything pending).
        let _ = self.start_job(rj, now);
        let (_, nodes) = self
            .finish_expand(rj, now)
            .expect("resizer started; protocol steps 2-4 cannot fail");
        Ok(nodes)
    }

    /// Completes protocol steps 2–4 for a resizer job that has started:
    /// detach its nodes, cancel it, reattach the nodes to the original job.
    /// Returns the original job id and its full node list.
    pub fn finish_expand(
        &mut self,
        rj: JobId,
        now: SimTime,
    ) -> Result<(JobId, Vec<NodeId>), ExpandError> {
        let rjob = self.jobs.get(&rj).ok_or(ExpandError::UnknownJob(rj))?;
        if rjob.state != JobState::Running {
            return Err(ExpandError::NotRunning(rj));
        }
        let Some(Dependency::ExpandOf(original)) = rjob.dependency else {
            return Err(ExpandError::UnknownJob(rj));
        };
        let delta = self.cluster.held_by(rj.owner_tag());
        // Step 2: update B to zero nodes — the allocation detaches from B.
        self.detached.insert(rj, delta);
        if let Some(j) = self.jobs.get_mut(&rj) {
            j.requested_nodes = 0;
        }
        // Step 3: cancel B (nodes stay parked because of the detach mark).
        self.cancel(rj, now);
        self.detached.remove(&rj);
        // Step 4: update A to N_A + N_B — reattach.
        let moved = self
            .cluster
            .transfer_all(rj.owner_tag(), original.owner_tag())
            .expect("detached nodes are still owned by the resizer tag");
        debug_assert_eq!(moved.len() as u32, delta);
        if let Some(j) = self.jobs.get_mut(&original) {
            j.requested_nodes = self.cluster.held_by(original.owner_tag());
            j.reconfigurations += 1;
        }
        Ok((
            original,
            self.cluster.nodes_of(original.owner_tag()).to_vec(),
        ))
    }

    /// Aborts a queued expansion: cancels the pending resizer job (the
    /// timeout path of §V-B1).
    pub fn abort_expand(&mut self, rj: JobId, now: SimTime) {
        if let Some(j) = self.jobs.get(&rj) {
            if j.state == JobState::Pending {
                self.cancel(rj, now);
            }
        }
    }

    /// Shrinks `id` to `to` nodes (a single "update job" call in Slurm,
    /// §III). Returns the released nodes. The ACK workflow that lets
    /// processes drain before the nodes die lives in the runtime layer;
    /// by the time this is called the nodes are clean.
    pub fn shrink_protocol(
        &mut self,
        id: JobId,
        to: u32,
        now: SimTime,
    ) -> Result<Vec<NodeId>, ExpandError> {
        let job = self.jobs.get(&id).ok_or(ExpandError::UnknownJob(id))?;
        if job.state != JobState::Running {
            return Err(ExpandError::NotRunning(id));
        }
        let current = self.cluster.held_by(id.owner_tag());
        if to >= current || to == 0 {
            return Err(ExpandError::InvalidTarget { current, to });
        }
        let released = self
            .cluster
            .release_tail(id.owner_tag(), current - to)
            .expect("running job owns its nodes");
        let _ = now;
        if let Some(j) = self.jobs.get_mut(&id) {
            j.requested_nodes = to;
            j.reconfigurations += 1;
        }
        Ok(released)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_cluster::Cluster;

    fn slurm(nodes: u32) -> Slurm {
        Slurm::with_cluster(Cluster::new(nodes, 16))
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn retention_off_drops_terminal_records_without_changing_scheduling() {
        let mut keep = slurm(8);
        let mut drop = slurm(8);
        drop.config.retain_completed = false;
        for s in [&mut keep, &mut drop] {
            let a = s.submit(JobRequest::rigid("a", 4), t(0));
            let b = s.submit(JobRequest::rigid("b", 8), t(0));
            let started = s.schedule(t(0));
            assert_eq!(started.len(), 1, "a starts, b blocked");
            s.complete(a, t(100));
            let started = s.schedule(t(100));
            assert_eq!(started.len(), 1, "b starts once a's nodes free");
            s.complete(b, t(200));
            // Either way the live views agree.
            assert_eq!(s.running_count(), 0);
            assert_eq!(s.pending_count(), 0);
            let retained = s.config.retain_completed;
            assert_eq!(s.job(a).is_some(), retained);
            assert_eq!(s.job(b).is_some(), retained);
        }
        assert_eq!(keep.jobs().count(), 2);
        assert_eq!(drop.jobs().count(), 0, "terminal records pruned");
    }

    #[test]
    fn fifo_start_in_submission_order() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        let started = s.schedule(t(0));
        assert_eq!(started.len(), 2);
        assert_eq!(started[0].id, a);
        assert_eq!(started[1].id, b);
        assert_eq!(s.cluster().free_nodes(), 2);
    }

    #[test]
    fn blocked_top_job_reserves_and_small_jobs_backfill() {
        let mut s = slurm(10);
        // One long-running hog of 8 nodes.
        let hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(1000)),
            t(0),
        );
        s.schedule(t(0));
        assert_eq!(s.job(hog).unwrap().state, JobState::Running);
        // Big job can't start (needs 6, 2 free); short job behind it can
        // backfill because it ends before the hog releases nodes.
        let big = s.submit(
            JobRequest::rigid("big", 6).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        let small = s.submit(
            JobRequest::rigid("small", 2).with_expected_runtime(Span::from_secs(10)),
            t(2),
        );
        assert!(s.schedule(t(3)).is_empty(), "FIFO pass must not backfill");
        let started = s.backfill_pass(t(3));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, small);
        assert_eq!(s.job(big).unwrap().state, JobState::Pending);
    }

    #[test]
    fn backfill_refuses_jobs_that_would_delay_reservation() {
        let mut s = slurm(10);
        let _hog = s.submit(
            JobRequest::rigid("hog", 8).with_expected_runtime(Span::from_secs(100)),
            t(0),
        );
        s.schedule(t(0));
        let _big = s.submit(
            JobRequest::rigid("big", 10).with_expected_runtime(Span::from_secs(100)),
            t(1),
        );
        // 2 free; this job fits but runs for 1000 s, past the shadow time
        // (t=100) and the reservation needs all 10 nodes (extra = 0).
        let long_small = s.submit(
            JobRequest::rigid("long-small", 2).with_expected_runtime(Span::from_secs(1000)),
            t(2),
        );
        let started = s.backfill_pass(t(3));
        assert!(started.is_empty(), "{started:?}");
        assert_eq!(s.job(long_small).unwrap().state, JobState::Pending);
    }

    #[test]
    fn no_backfill_means_strict_fifo() {
        let mut s = slurm(10);
        s.config.backfill = false;
        let _hog = s.submit(JobRequest::rigid("hog", 8), t(0));
        s.schedule(t(0));
        let _big = s.submit(JobRequest::rigid("big", 6), t(1));
        let _small = s.submit(JobRequest::rigid("small", 2), t(2));
        assert!(s.schedule(t(3)).is_empty());
        assert!(s.backfill_pass(t(3)).is_empty(), "backfill disabled");
    }

    #[test]
    fn completion_frees_nodes_and_records_times() {
        let mut s = slurm(4);
        let a = s.submit(JobRequest::rigid("a", 4), t(5));
        s.schedule(t(10));
        s.complete(a, t(110));
        let job = s.job(a).unwrap();
        assert_eq!(job.state, JobState::Completed);
        assert_eq!(job.waiting_time(), Some(Span::from_secs(5)));
        assert_eq!(job.execution_time(), Some(Span::from_secs(100)));
        assert_eq!(job.completion_time(), Some(Span::from_secs(105)));
        assert_eq!(s.cluster().free_nodes(), 4);
    }

    #[test]
    fn expand_protocol_walks_all_four_steps() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        let nodes = s.expand_protocol(a, 8, t(50)).unwrap();
        assert_eq!(nodes.len(), 8);
        assert_eq!(s.nodes_of(a), 8);
        assert_eq!(s.job(a).unwrap().requested_nodes, 8);
        assert_eq!(s.job(a).unwrap().reconfigurations, 1);
        // The resizer exists, is cancelled, and holds nothing.
        let rj = s.jobs().find(|j| j.is_resizer()).unwrap();
        assert_eq!(rj.state, JobState::Cancelled);
        assert_eq!(s.nodes_of(rj.id), 0);
        // No node leaked.
        assert_eq!(s.cluster().free_nodes(), 2);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn expand_queues_when_no_free_nodes() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let err = s.expand_protocol(a, 8, t(10)).unwrap_err();
        let ExpandError::Queued { resizer } = err else {
            panic!("expected Queued, got {err:?}");
        };
        assert_eq!(s.job(resizer).unwrap().state, JobState::Pending);
        // When B completes, the resizer starts and the driver can finish.
        s.complete(b, t(20));
        let started = s.schedule(t(20));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, resizer);
        assert_eq!(started[0].resizer_for, Some(a));
        let (orig, nodes) = s.finish_expand(resizer, t(20)).unwrap();
        assert_eq!(orig, a);
        assert_eq!(nodes.len(), 8);
        assert_eq!(s.nodes_of(a), 8);
        s.cluster().check_invariants().unwrap();
    }

    #[test]
    fn queued_resizer_can_be_aborted() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!()
        };
        s.abort_expand(resizer, t(40));
        assert_eq!(s.job(resizer).unwrap().state, JobState::Cancelled);
        assert_eq!(s.nodes_of(a), 4, "original job untouched");
    }

    #[test]
    fn resizer_dies_with_its_parent() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 8, t(10)).unwrap_err() else {
            panic!()
        };
        s.complete(a, t(15));
        let started = s.schedule(t(15));
        assert!(started.is_empty());
        assert_eq!(s.job(resizer).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn shrink_releases_tail_nodes() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::rigid("a", 8), t(0));
        s.schedule(t(0));
        let released = s.shrink_protocol(a, 2, t(30)).unwrap();
        assert_eq!(released.len(), 6);
        assert_eq!(s.nodes_of(a), 2);
        assert_eq!(s.job(a).unwrap().requested_nodes, 2);
        assert_eq!(s.cluster().free_nodes(), 8);
        // Shrink to 0 or >= current rejected.
        assert!(s.shrink_protocol(a, 2, t(31)).is_err());
        assert!(s.shrink_protocol(a, 0, t(31)).is_err());
    }

    #[test]
    fn boosted_job_jumps_the_queue() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let first = s.submit(JobRequest::rigid("first", 4), t(1));
        let second = s.submit(JobRequest::rigid("second", 4), t(2));
        s.boost(second);
        s.complete(hog, t(100));
        let started = s.schedule(t(100));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].id, second);
        assert_eq!(s.job(first).unwrap().state, JobState::Pending);
    }

    #[test]
    fn expand_rejects_bad_targets() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        assert_eq!(
            s.expand_protocol(a, 4, t(1)),
            Err(ExpandError::InvalidTarget { current: 4, to: 4 })
        );
        assert_eq!(
            s.expand_protocol(JobId(999), 8, t(1)),
            Err(ExpandError::UnknownJob(JobId(999)))
        );
        let pending = s.submit(JobRequest::rigid("p", 2), t(1));
        assert_eq!(
            s.expand_protocol(pending, 4, t(1)),
            Err(ExpandError::NotRunning(pending))
        );
    }

    #[test]
    fn cached_pending_order_tracks_mutations_within_one_instant() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let a = s.submit(JobRequest::rigid("a", 2), t(1));
        let b = s.submit(JobRequest::rigid("b", 2), t(2));
        // Two same-instant reads hit the cache and agree.
        assert_eq!(s.pending_queue(t(5)), vec![a, b]);
        assert_eq!(s.pending_queue(t(5)), vec![a, b]);
        // A boost at the same instant must invalidate, not serve stale.
        s.boost(b);
        assert_eq!(s.pending_queue(t(5)), vec![b, a]);
        // A same-instant submit must appear immediately.
        let c = s.submit(JobRequest::rigid("c", 1), t(5));
        assert_eq!(s.pending_queue(t(5)), vec![b, a, c]);
        // A cancellation must disappear immediately.
        s.cancel(a, t(5));
        assert_eq!(s.pending_queue(t(5)), vec![b, c]);
        // And a start (via completion freeing the machine) as well.
        s.complete(hog, t(5));
        s.schedule(t(5));
        assert!(s.pending_queue(t(5)).is_empty());
        // Age reorders across instants: the cache must not pin t=5.
        assert!(s.pending_queue(t(6)).is_empty());
    }

    #[test]
    fn pending_queue_excludes_resizers() {
        let mut s = slurm(8);
        let a = s.submit(JobRequest::rigid("a", 8), t(0));
        s.schedule(t(0));
        let _q = s.submit(JobRequest::rigid("q", 2), t(1));
        let ExpandError::Queued { resizer } = s.expand_protocol(a, 16, t(2)).unwrap_err() else {
            panic!()
        };
        let queue = s.pending_queue(t(3));
        assert!(!queue.contains(&resizer));
        assert_eq!(queue.len(), 1);
    }
}
