//! # dmr-slurm — a Slurm-like workload manager with malleability support
//!
//! Implements the resource-management half of the paper: a batch scheduler
//! in the image of Slurm 15.08 as configured on the testbed (§VII-A):
//!
//! * **job lifecycle** — submit / pending / running / completed / cancelled,
//!   with per-job accounting (submit, start, end) ([`job`]);
//! * **multifactor priority** — age + job-size factors plus the explicit
//!   max-priority boost the reconfiguration policy applies to jobs it is
//!   making room for ([`priority`]);
//! * **backfill families** — the `sched/backfill` behaviour as a
//!   selectable [`slotset::BackfillFamily`] over a slot-set free-resource
//!   timeline ([`slotset::SlotSet`]): EASY-k (reservations for the first
//!   `k` blocked jobs; `k = 1` is the paper's configuration), conservative
//!   (every blocked job planned), and the legacy single-reservation walk
//!   kept as the equivalence oracle ([`slurm::Slurm::backfill_pass`]);
//! * **the malleability protocol** (§III) — expansion through a *resizer
//!   job* (submit B depending on A → update B to 0 nodes → cancel B →
//!   update A to N_A+N_B) and shrinking through a node-releasing update
//!   ([`slurm::Slurm::expand_protocol`] et al.);
//! * **the pluggable reconfiguration-policy layer** (§IV) — a
//!   [`policy::ResizePolicy`] trait object installed in the scheduler
//!   decides expand / shrink / no-action from the global system state;
//!   ships with [`policy::Algorithm1`] (the paper's procedure),
//!   [`policy::UtilizationTarget`] and [`policy::FairShare`], selected by
//!   [`policy::PolicyKind`] ([`policy`]).
//!
//! The crate is time-agnostic: every operation takes `now: SimTime` from
//! the caller, so the same scheduler drives the discrete-event simulations
//! in `dmr-core` and the unit tests here.

pub mod arena;
pub(crate) mod index;
pub mod job;
pub mod policy;
pub mod priority;
pub mod slotset;
pub mod slurm;

pub use arena::JobArena;
pub use job::{Dependency, Job, JobId, JobRequest, JobState, ResizeEnvelope};
pub use policy::{
    Algorithm1, EnergyAware, FairShare, PolicyKind, ResizeAction, ResizePolicy, UtilizationTarget,
};
pub use priority::MultifactorConfig;
pub use slotset::{BackfillFamily, SlotSet};
pub use slurm::{
    ExpandError, IncrementalStats, JobStart, SchedIncremental, SchedIndex, Slurm, SlurmConfig,
};
