//! Multifactor job priority.
//!
//! Slurm's `priority/multifactor` plug-in combines weighted factors (age,
//! job size, fair-share, QOS, nice). The paper enables it with default
//! values (§VII-A); defaults make age and job size the active terms, and
//! the reconfiguration policy adds one more input: an explicit max-priority
//! boost for the queued job a shrink is making room for (§IV-3).

use dmr_sim::{SimTime, Span};

use crate::job::Job;

/// Weights for the priority factors. Factor values are normalised to
/// `[0, 1]` then scaled by their weight, mirroring Slurm's fixed-point
/// arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct MultifactorConfig {
    /// Weight of the age factor.
    pub weight_age: u64,
    /// Age at which the age factor saturates.
    pub max_age: Span,
    /// Weight of the job-size factor (larger jobs score higher, Slurm's
    /// default favours big jobs to fight starvation).
    pub weight_size: u64,
    /// Total nodes used to normalise the size factor.
    pub total_nodes: u32,
}

impl MultifactorConfig {
    /// Slurm defaults: `priority/multifactor` with default weights leaves
    /// every factor at zero except what ages naturally — queue order
    /// degenerates to submission order (the paper enables the plug-in
    /// "configured with default values", §VII-A). We keep a pure age
    /// weight so ordering is explicit and deterministic.
    pub fn with_total_nodes(total_nodes: u32) -> Self {
        MultifactorConfig {
            weight_age: 1000,
            max_age: Span::from_secs(24 * 3600),
            weight_size: 0,
            total_nodes: total_nodes.max(1),
        }
    }

    /// Size-aware variant (non-default in Slurm): favours wide jobs, which
    /// packs better — kept as an ablation configuration.
    pub fn size_weighted(total_nodes: u32) -> Self {
        MultifactorConfig {
            weight_size: 1000,
            ..MultifactorConfig::with_total_nodes(total_nodes)
        }
    }

    /// Priority of `job` at instant `now`. Boosted jobs sort above every
    /// non-boosted job regardless of factors.
    pub fn priority(&self, job: &Job, now: SimTime) -> u64 {
        if job.boosted {
            return u64::MAX;
        }
        let age = now.since(job.submit_time);
        let age_norm = if self.max_age.is_zero() {
            1.0
        } else {
            (age.as_secs_f64() / self.max_age.as_secs_f64()).min(1.0)
        };
        let size_norm = (job.requested_nodes as f64 / self.total_nodes as f64).min(1.0);
        let score = self.weight_age as f64 * age_norm + self.weight_size as f64 * size_norm;
        job.base_priority.saturating_add(score.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobState};

    fn job(id: u64, nodes: u32, submit: u64) -> Job {
        Job {
            id: JobId(id),
            seq: id,
            detached_nodes: 0,
            name: format!("j{id}"),
            state: JobState::Pending,
            requested_nodes: nodes,
            time_limit: None,
            expected_runtime: Span::from_secs(60),
            dependency: None,
            base_priority: 0,
            boosted: false,
            resize: None,
            constraint: dmr_cluster::ClassConstraint::Any,
            submit_time: SimTime::from_secs(submit),
            start_time: None,
            end_time: None,
            reconfigurations: 0,
        }
    }

    #[test]
    fn older_jobs_rank_higher() {
        let cfg = MultifactorConfig::with_total_nodes(64);
        let old = job(1, 4, 0);
        let young = job(2, 4, 1000);
        let now = SimTime::from_secs(2000);
        assert!(cfg.priority(&old, now) > cfg.priority(&young, now));
    }

    #[test]
    fn bigger_jobs_rank_higher_at_same_age() {
        let cfg = MultifactorConfig::size_weighted(64);
        let big = job(1, 32, 0);
        let small = job(2, 2, 0);
        let now = SimTime::from_secs(100);
        assert!(cfg.priority(&big, now) > cfg.priority(&small, now));
    }

    #[test]
    fn age_factor_saturates() {
        let cfg = MultifactorConfig::with_total_nodes(64);
        let j = job(1, 4, 0);
        let p1 = cfg.priority(&j, SimTime::from_secs(24 * 3600));
        let p2 = cfg.priority(&j, SimTime::from_secs(48 * 3600));
        assert_eq!(p1, p2);
    }

    #[test]
    fn boost_dominates_everything() {
        let cfg = MultifactorConfig::with_total_nodes(64);
        let mut small_young = job(1, 1, 1_000_000);
        small_young.boosted = true;
        let big_old = job(2, 64, 0);
        let now = SimTime::from_secs(2_000_000);
        assert!(cfg.priority(&small_young, now) > cfg.priority(&big_old, now));
    }

    #[test]
    fn base_priority_adds() {
        let cfg = MultifactorConfig::with_total_nodes(64);
        let mut a = job(1, 4, 0);
        let b = job(2, 4, 0);
        a.base_priority = 10_000;
        let now = SimTime::from_secs(50);
        assert!(cfg.priority(&a, now) > cfg.priority(&b, now));
    }
}
