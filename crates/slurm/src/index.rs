//! Incremental scheduler indices — the hot-path structures behind
//! [`crate::slurm::Slurm`].
//!
//! Every scheduling pass used to rediscover global order by scanning the
//! whole job table: recompute every multifactor priority and sort
//! (pending order), collect-and-sort running end times (backfill
//! reservations), scan for dead resizer jobs. These structures maintain
//! the same orders *incrementally*, updated at the mutation points where
//! relative order can actually change:
//!
//! * [`PendingIndex`] — the pending queue keyed by
//!   `(boosted, submit_time, id)`. The multifactor age term grows at the
//!   same rate for every pending job, so under the default configuration
//!   (pure age weight, uniform base priority) the priority-sorted order
//!   *is* this static key order at every instant; the scheduler verifies
//!   the preconditions and falls back to the full sort otherwise.
//! * [`RunningIndex`] — running jobs keyed by
//!   `(expected_end, held_nodes, id)`, exactly the order the EASY
//!   backfill reservation scan produced by sorting.
//! * [`ResizerIndex`] — the parent → resizer reverse-dependency map, so
//!   resizers orphaned by a completion are reaped in O(affected) instead
//!   of an O(jobs) scan per scheduling pass.
//!
//! The indices are bookkeeping only: they never decide anything, and the
//! pre-index scan implementations survive behind
//! [`crate::slurm::SchedIndex::ScanReference`] as the equivalence oracle.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};

use dmr_sim::SimTime;

use crate::job::{Job, JobId};

/// Index key of one pending job: `(boosted first, submit ascending, seq
/// ascending)`, with the id carried as payload. The submission sequence
/// number ([`Job::seq`]) is unique, so the key is total — and stable
/// even when arena slot recycling makes raw [`JobId`] values
/// non-monotonic.
pub(crate) type PendingKey = (Reverse<bool>, SimTime, u64, JobId);

/// Ordered index of the pending set.
///
/// Iteration order is `(boosted first, submit ascending, seq ascending)`
/// — the multifactor order whenever the age factor is the only live
/// weight and no pending job carries a non-zero base priority. The index
/// also counts the jobs that would break that equality (`nonzero_base`)
/// so the scheduler can detect, in O(1), when it must fall back to the
/// sort.
#[derive(Debug, Default)]
pub(crate) struct PendingIndex {
    set: BTreeSet<PendingKey>,
    /// Pending jobs with `base_priority != 0` (index-exactness veto).
    nonzero_base: usize,
    /// Pending resizer jobs (lets `pending_queue` skip its filter pass
    /// when there is nothing to filter).
    resizers: usize,
    /// Pending jobs with a non-`Any` class constraint. The watermark
    /// pass-elision rule compares *global* free capacity against the
    /// blocked request, which is unsound for a class-constrained job
    /// (its class can free nodes without the global watermark moving),
    /// so capacity events fall back to a full invalidation whenever this
    /// is non-zero.
    constrained: usize,
}

impl PendingIndex {
    fn key(job: &Job) -> PendingKey {
        (Reverse(job.boosted), job.submit_time, job.seq, job.id)
    }

    pub(crate) fn insert(&mut self, job: &Job) {
        let added = self.set.insert(Self::key(job));
        debug_assert!(added, "{:?} already indexed", job.id);
        if job.base_priority != 0 {
            self.nonzero_base += 1;
        }
        if job.is_resizer() {
            self.resizers += 1;
        }
        if job.constraint != dmr_cluster::ClassConstraint::Any {
            self.constrained += 1;
        }
    }

    pub(crate) fn remove(&mut self, job: &Job) {
        let removed = self.set.remove(&Self::key(job));
        debug_assert!(removed, "{:?} not indexed", job.id);
        if job.base_priority != 0 {
            self.nonzero_base -= 1;
        }
        if job.is_resizer() {
            self.resizers -= 1;
        }
        if job.constraint != dmr_cluster::ClassConstraint::Any {
            self.constrained -= 1;
        }
    }

    /// Re-keys a pending job whose `boosted` flag just flipped to `true`.
    pub(crate) fn reboost(&mut self, submit: SimTime, seq: u64, id: JobId) {
        let removed = self.set.remove(&(Reverse(false), submit, seq, id));
        debug_assert!(removed, "{id:?} not indexed for reboost");
        self.set.insert((Reverse(true), submit, seq, id));
    }

    pub(crate) fn nonzero_base(&self) -> usize {
        self.nonzero_base
    }

    pub(crate) fn pending_resizers(&self) -> usize {
        self.resizers
    }

    /// Pending jobs whose class constraint is not `Any` (see the field
    /// docs: non-zero disables watermark-based capacity elision).
    pub(crate) fn constrained(&self) -> usize {
        self.constrained
    }

    pub(crate) fn len(&self) -> usize {
        self.set.len()
    }

    /// Pending ids in scheduling order (no priorities computed, no sort).
    pub(crate) fn ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.set.iter().map(|&(.., id)| id)
    }

    /// The full scheduling order, materialised with an exact-capacity
    /// allocation. This is the rebuild path of the persistent pass order
    /// the incremental scheduler retains between passes; after the
    /// rebuild the order is kept current by appends and tombstones, so
    /// this runs once per invalidation, not once per pass.
    pub(crate) fn ids_vec(&self) -> Vec<JobId> {
        let mut out = Vec::with_capacity(self.set.len());
        out.extend(self.ids());
        out
    }

    /// The first key strictly after `prev` (`None` starts at the front)
    /// — a resumable cursor over the scheduling order. The arena hot
    /// path walks the queue this way instead of materialising the whole
    /// order, so a pass that starts `k` of `n` pending jobs costs
    /// O(k log n) rather than O(n), and the cursor survives the removal
    /// of every key it has already visited.
    pub(crate) fn next_after(&self, prev: Option<PendingKey>) -> Option<PendingKey> {
        use std::ops::Bound::{Excluded, Unbounded};
        match prev {
            None => self.set.first().copied(),
            Some(key) => self.set.range((Excluded(key), Unbounded)).next().copied(),
        }
    }
}

/// Ordered index of running jobs by `(expected_end, held_nodes, id)`.
///
/// This is exactly the order the backfill reservation scan produced: a
/// stable sort of `(expected_end, held_nodes)` pairs collected in id
/// order. A side map remembers each job's current key so re-keying on
/// estimate refresh or resize is O(log n).
#[derive(Debug, Default)]
pub(crate) struct RunningIndex {
    set: BTreeSet<(SimTime, u32, JobId)>,
    key_of: BTreeMap<JobId, (SimTime, u32)>,
    /// Sum of `held_nodes` over every indexed job, maintained at each
    /// mutation. `free + held_total` is the node count *available over
    /// time* — the base the slot-set timeline subtracts occupancy from.
    held_total: u32,
}

impl RunningIndex {
    pub(crate) fn insert(&mut self, id: JobId, end: SimTime, nodes: u32) {
        debug_assert!(!self.key_of.contains_key(&id), "{id:?} already running");
        self.set.insert((end, nodes, id));
        self.key_of.insert(id, (end, nodes));
        self.held_total += nodes;
    }

    /// Removes `id` if it is indexed (jobs completed defensively twice
    /// are tolerated, mirroring the scheduler's release-mode leniency).
    /// Returns the old `(expected_end, held_nodes)` key so the caller can
    /// unplan the corresponding timeline interval.
    pub(crate) fn remove(&mut self, id: JobId) -> Option<(SimTime, u32)> {
        let old = self.key_of.remove(&id);
        if let Some((end, nodes)) = old {
            self.set.remove(&(end, nodes, id));
            self.held_total -= nodes;
        }
        old
    }

    /// The expected end currently keyed for `id`, if it is running.
    pub(crate) fn end_of(&self, id: JobId) -> Option<SimTime> {
        self.key_of.get(&id).map(|&(end, _)| end)
    }

    /// Re-keys `id` with a new expected end (estimate refresh); returns
    /// the old key for timeline re-planning.
    pub(crate) fn set_end(&mut self, id: JobId, end: SimTime) -> Option<(SimTime, u32)> {
        let key = self.key_of.get_mut(&id)?;
        let old = *key;
        self.set.remove(&(old.0, old.1, id));
        key.0 = end;
        self.set.insert((end, old.1, id));
        Some(old)
    }

    /// Re-keys `id` with a new held-node count (expand / shrink); returns
    /// the old key for timeline re-planning.
    pub(crate) fn set_nodes(&mut self, id: JobId, nodes: u32) -> Option<(SimTime, u32)> {
        let key = self.key_of.get_mut(&id)?;
        let old = *key;
        self.set.remove(&(old.0, old.1, id));
        key.1 = nodes;
        self.set.insert((old.0, nodes, id));
        self.held_total = self.held_total - old.1 + nodes;
        Some(old)
    }

    pub(crate) fn len(&self) -> usize {
        self.set.len()
    }

    /// Sum of held nodes over every running job (O(1), maintained).
    pub(crate) fn total_held(&self) -> u32 {
        self.held_total
    }

    /// `(expected_end, held_nodes)` pairs in reservation-scan order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.set.iter().map(|&(end, nodes, _)| (end, nodes))
    }

    /// The jobs expiring exactly at `end`, in reservation-scan key order
    /// — the "group" the legacy reservation walk may stop inside of.
    pub(crate) fn group_at(&self, end: SimTime) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.set
            .range((end, 0, JobId(0))..=(end, u32::MAX, JobId(u64::MAX)))
            .map(|&(end, nodes, _)| (end, nodes))
    }

    /// The jobs whose expected end is at or before `now` (overruns), in
    /// reservation-scan key order — the prefix the legacy walk clamps to
    /// `now`.
    pub(crate) fn ends_through(&self, now: SimTime) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.set
            .range(..=(now, u32::MAX, JobId(u64::MAX)))
            .map(|&(end, nodes, _)| (end, nodes))
    }
}

/// Parent → resizer reverse-dependency map plus the reap candidate list.
///
/// A resizer job is dead when its parent is no longer running. Instead of
/// scanning every job per pass, resizers are registered under their
/// running parent; when the parent turns terminal the whole group moves
/// to the `dead` candidate set, which the next scheduling pass drains in
/// O(affected). Candidates are *re-verified* against live state before
/// cancellation, so a parent that was merely pending at registration time
/// and has started since is never reaped by mistake.
#[derive(Debug, Default)]
pub(crate) struct ResizerIndex {
    by_parent: BTreeMap<JobId, BTreeSet<JobId>>,
    dead: BTreeSet<JobId>,
}

impl ResizerIndex {
    /// Registers `resizer` under `parent`. A parent that is not currently
    /// running makes the resizer an immediate reap candidate (the scan
    /// path treated an unsatisfied dependency as dead regardless of why).
    pub(crate) fn register(&mut self, parent: JobId, resizer: JobId, parent_running: bool) {
        if parent_running {
            self.by_parent.entry(parent).or_default().insert(resizer);
        } else {
            self.dead.insert(resizer);
        }
    }

    /// A resizer turned terminal on its own: deregister it everywhere.
    pub(crate) fn resizer_terminal(&mut self, parent: JobId, resizer: JobId) {
        if let Some(group) = self.by_parent.get_mut(&parent) {
            group.remove(&resizer);
            if group.is_empty() {
                self.by_parent.remove(&parent);
            }
        }
        self.dead.remove(&resizer);
    }

    /// `parent` turned terminal: every resizer registered under it becomes
    /// a reap candidate.
    pub(crate) fn parent_terminal(&mut self, parent: JobId) {
        if let Some(group) = self.by_parent.remove(&parent) {
            self.dead.extend(group);
        }
    }

    pub(crate) fn has_dead_candidates(&self) -> bool {
        !self.dead.is_empty()
    }

    /// Drains the candidate list in ascending id order (the order the
    /// scan produced by walking the job table).
    pub(crate) fn take_dead(&mut self) -> Vec<JobId> {
        std::mem::take(&mut self.dead).into_iter().collect()
    }
}
