//! Generation-checked slab arena for job records.
//!
//! The scheduler's job table used to be a `BTreeMap<JobId, Job>`: every
//! lookup on the submit/start/complete path paid a pointer-chasing tree
//! descent and every insert/remove a rebalance. [`JobArena`] stores jobs
//! in a flat `Vec` of slots addressed directly by the low 32 bits of
//! [`JobId`] (see [`JobId::slot`]); lookups are one bounds check, one
//! generation compare and one indexed load. Freed slots go on a LIFO
//! free list and are recycled with their generation bumped, so the table
//! stays as dense as the *live* job set no matter how many jobs a
//! streaming workload retires — and a stale id held by a caller after
//! its job was pruned misses the generation check instead of aliasing
//! the slot's new tenant.
//!
//! Under [`crate::slurm::SlurmConfig::retain_completed`] the scheduler
//! never removes records, so no slot recycles, generations stay 0 and
//! ids remain dense and monotonic — the accounting-friendly behaviour
//! the non-streaming API keeps.

use std::ops::{Index, IndexMut};

use crate::job::{Job, JobId};

#[derive(Debug, Default)]
struct Slot {
    generation: u32,
    job: Option<Job>,
}

/// Slab of [`Job`] records addressed by [`JobId`] `(generation, slot)`
/// pairs. See the module docs for the design.
#[derive(Debug, Default)]
pub struct JobArena {
    slots: Vec<Slot>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    live: usize,
}

impl JobArena {
    pub fn new() -> Self {
        JobArena::default()
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Total slots backing the arena (live + free) — capacity telemetry.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates a slot, derives the [`JobId`] for it, and stores the
    /// record `build` produces for that id.
    pub fn insert_with(&mut self, build: impl FnOnce(JobId) -> Job) -> JobId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                let slot = u32::try_from(self.slots.len()).expect("job arena overflow");
                self.slots.push(Slot::default());
                slot
            }
        };
        let entry = &mut self.slots[slot as usize];
        debug_assert!(entry.job.is_none(), "free slot occupied");
        let id = JobId::pack(entry.generation, slot);
        entry.job = Some(build(id));
        self.live += 1;
        id
    }

    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.slots
            .get(id.slot() as usize)
            .filter(|s| s.generation == id.generation())
            .and_then(|s| s.job.as_ref())
    }

    pub fn get_mut(&mut self, id: JobId) -> Option<&mut Job> {
        self.slots
            .get_mut(id.slot() as usize)
            .filter(|s| s.generation == id.generation())
            .and_then(|s| s.job.as_mut())
    }

    pub fn contains(&self, id: JobId) -> bool {
        self.get(id).is_some()
    }

    /// Removes the record, recycling its slot under a bumped generation.
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let slot = self.slots.get_mut(id.slot() as usize)?;
        if slot.generation != id.generation() || slot.job.is_none() {
            return None;
        }
        let job = slot.job.take();
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        job
    }

    /// Live records in slot (storage) order. Scheduling decisions never
    /// depend on this order — ordering-sensitive consumers sort by
    /// [`Job::seq`] or walk an index.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.slots.iter().filter_map(|s| s.job.as_ref())
    }
}

impl Index<JobId> for JobArena {
    type Output = Job;

    fn index(&self, id: JobId) -> &Job {
        self.get(id).expect("job id not in arena")
    }
}

impl IndexMut<JobId> for JobArena {
    fn index_mut(&mut self, id: JobId) -> &mut Job {
        self.get_mut(id).expect("job id not in arena")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobState;
    use dmr_sim::{SimTime, Span};

    fn record(id: JobId, seq: u64) -> Job {
        Job {
            id,
            seq,
            detached_nodes: 0,
            name: format!("j{seq}"),
            state: JobState::Pending,
            requested_nodes: 1,
            time_limit: None,
            expected_runtime: Span::from_secs(60),
            dependency: None,
            base_priority: 0,
            boosted: false,
            resize: None,
            constraint: dmr_cluster::ClassConstraint::Any,
            submit_time: SimTime::ZERO,
            start_time: None,
            end_time: None,
            reconfigurations: 0,
        }
    }

    #[test]
    fn ids_stay_dense_and_monotonic_without_removal() {
        let mut a = JobArena::new();
        let ids: Vec<_> = (0..10).map(|i| a.insert_with(|id| record(id, i))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(id.slot(), i as u32);
            assert_eq!(id.generation(), 0);
            assert_eq!(a[*id].seq, i as u64);
        }
        assert_eq!(a.len(), 10);
        assert_eq!(a.capacity(), 10);
    }

    #[test]
    fn recycled_slots_bump_the_generation() {
        let mut a = JobArena::new();
        let first = a.insert_with(|id| record(id, 0));
        assert!(a.remove(first).is_some());
        let second = a.insert_with(|id| record(id, 1));
        assert_eq!(second.slot(), first.slot(), "slot recycled");
        assert_eq!(second.generation(), first.generation() + 1);
        // The stale id cannot see (or evict) the new tenant.
        assert!(a.get(first).is_none());
        assert!(a.remove(first).is_none());
        assert_eq!(a[second].seq, 1);
        assert_eq!(a.capacity(), 1, "table stays as dense as the live set");
    }

    #[test]
    fn out_of_range_and_double_remove_are_safe() {
        let mut a = JobArena::new();
        let id = a.insert_with(|id| record(id, 0));
        assert!(a.get(JobId(999)).is_none());
        assert!(a.remove(id).is_some());
        assert!(a.remove(id).is_none());
        assert!(a.is_empty());
    }

    #[test]
    fn iter_yields_live_records_only() {
        let mut a = JobArena::new();
        let ids: Vec<_> = (0..5).map(|i| a.insert_with(|id| record(id, i))).collect();
        a.remove(ids[1]);
        a.remove(ids[3]);
        let seqs: Vec<_> = a.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, vec![0, 2, 4]);
    }
}
