//! Job identity, lifecycle and bookkeeping.

use std::fmt;

use dmr_cluster::ClassConstraint;
use dmr_sim::{SimTime, Span};

/// Batch-job identifier, unique within one [`crate::slurm::Slurm`]
/// instance.
///
/// The raw value packs an arena address: the low 32 bits are the slot in
/// the scheduler's [`crate::arena::JobArena`] and the high 32 bits a
/// generation counter bumped each time the slot is recycled, so a stale
/// id from a pruned job can never alias a live one. Ids are therefore
/// *not* monotonic in submission order once slots recycle — ordering-
/// sensitive comparisons use [`Job::seq`] instead.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl JobId {
    /// The raw id, used as the cluster allocation owner tag.
    pub fn owner_tag(self) -> u64 {
        self.0
    }

    /// Builds an id from an arena address.
    pub(crate) fn pack(generation: u32, slot: u32) -> JobId {
        JobId(((generation as u64) << 32) | slot as u64)
    }

    /// Arena slot (low 32 bits). Public so callers keeping side tables
    /// about jobs (e.g. the simulation driver's per-job run state) can
    /// use the same dense addressing.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// Arena generation (high 32 bits); see [`JobId::slot`].
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Lifecycle states (a subset of Slurm's, sufficient for the paper's
/// protocol: the expand workflow only inspects Pending/Running).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    Pending,
    Running,
    Completed,
    Cancelled,
}

impl JobState {
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Cancelled)
    }
}

/// Inter-job dependencies. The only kind the framework needs is the
/// resizer-job relation: "job B exists to expand job A" (Slurm's
/// `--dependency=expand:A`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dependency {
    /// This job is a resizer for the given original job; it may only start
    /// while that job is running, and is cancelled if it terminates.
    ExpandOf(JobId),
}

/// The malleability envelope a flexible job registers with the RMS
/// (min / max / preferred / factor — the DMR API arguments of §V-A).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ResizeEnvelope {
    pub min: u32,
    pub max: u32,
    pub preferred: Option<u32>,
    /// Resizes move to `current * factor^k` or `current / factor^k`.
    pub factor: u32,
}

impl ResizeEnvelope {
    /// Largest expansion target reachable from `current` towards `bound`
    /// given `free` spare nodes, or `None` if no step is possible.
    ///
    /// Targets are constrained to the factor chain `current * factor^k`
    /// (the "homogeneous distributions" of §VI-B) and to the envelope
    /// maximum.
    pub fn max_procs_to(&self, current: u32, bound: u32, free: u32) -> Option<u32> {
        if self.factor < 2 || current == 0 {
            return None;
        }
        let bound = bound.min(self.max);
        let mut best = None;
        let mut t = current.checked_mul(self.factor)?;
        while t <= bound && t - current <= free {
            best = Some(t);
            t = t.checked_mul(self.factor)?;
        }
        best
    }

    /// Whether `target` is reachable from `current` by shrinking along the
    /// factor chain without violating the envelope minimum.
    pub fn can_shrink_to(&self, current: u32, target: u32) -> bool {
        if target >= current || target < self.min || self.factor < 2 || target == 0 {
            return false;
        }
        let mut t = current;
        while t > target {
            if !t.is_multiple_of(self.factor) {
                return false;
            }
            t /= self.factor;
        }
        t == target
    }

    /// All shrink targets (descending) reachable from `current`.
    pub fn shrink_chain(&self, current: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if self.factor < 2 {
            return out;
        }
        let mut t = current;
        while t.is_multiple_of(self.factor) {
            t /= self.factor;
            if t < self.min || t == 0 {
                break;
            }
            out.push(t);
        }
        out
    }
}

/// Everything a submission provides (a condensed `sbatch`).
#[derive(Clone, Debug)]
pub struct JobRequest {
    pub name: String,
    /// Nodes requested at submission.
    pub nodes: u32,
    /// Hard wall-clock limit; `None` disables enforcement (the paper's
    /// malleable jobs deliberately over-run their fixed-size estimate when
    /// shrunk, so limits stay advisory in the reproduction).
    pub time_limit: Option<Span>,
    /// Runtime estimate used for backfill reservations. Defaults to the
    /// scheduler-wide default when `None`.
    pub expected_runtime: Option<Span>,
    pub dependency: Option<Dependency>,
    /// Additive base priority (Slurm "nice", inverted).
    pub base_priority: u64,
    /// Malleability envelope; `None` marks a rigid job.
    pub resize: Option<ResizeEnvelope>,
    /// Which machine classes the job may be placed on (Slurm
    /// `--constraint`). Defaults to [`ClassConstraint::Any`], which on a
    /// uniform cluster is the only meaningful value.
    pub constraint: ClassConstraint,
}

impl JobRequest {
    /// A rigid job with defaults — the common case in mixed workloads.
    pub fn rigid(name: impl Into<String>, nodes: u32) -> Self {
        JobRequest {
            name: name.into(),
            nodes,
            time_limit: None,
            expected_runtime: None,
            dependency: None,
            base_priority: 0,
            resize: None,
            constraint: ClassConstraint::Any,
        }
    }

    /// A malleable job with the given envelope.
    pub fn flexible(name: impl Into<String>, nodes: u32, resize: ResizeEnvelope) -> Self {
        JobRequest {
            resize: Some(resize),
            ..JobRequest::rigid(name, nodes)
        }
    }

    pub fn with_expected_runtime(mut self, estimate: Span) -> Self {
        self.expected_runtime = Some(estimate);
        self
    }

    /// Restricts placement to the classes eligible under `constraint`.
    pub fn with_constraint(mut self, constraint: ClassConstraint) -> Self {
        self.constraint = constraint;
        self
    }
}

/// A job record inside the scheduler.
#[derive(Clone, Debug)]
pub struct Job {
    pub id: JobId,
    /// Submission sequence number: strictly monotonic in submission
    /// order, the scheduler's stable tie-break. ([`JobId`] values stop
    /// being monotonic once arena slots recycle, so every ordering-
    /// sensitive comparison uses this instead.)
    pub seq: u64,
    /// Nodes detached from this (resizer) job mid-expand-protocol and
    /// awaiting reattachment to the original job; `0` when not detached.
    /// Cancelling a detached resizer must *not* free its nodes — that is
    /// protocol step 3.
    pub detached_nodes: u32,
    pub name: String,
    pub state: JobState,
    /// Current node request (updated by shrink/expand protocol steps).
    pub requested_nodes: u32,
    pub time_limit: Option<Span>,
    /// Backfill estimate of the remaining-runtime-from-start.
    pub expected_runtime: Span,
    pub dependency: Option<Dependency>,
    pub base_priority: u64,
    /// Set by the policy when this pending job triggered a shrink; grants
    /// maximum priority (§IV-3).
    pub boosted: bool,
    pub resize: Option<ResizeEnvelope>,
    /// Machine-class placement constraint (copied from the request;
    /// resizer jobs inherit their original job's).
    pub constraint: ClassConstraint,
    pub submit_time: SimTime,
    pub start_time: Option<SimTime>,
    pub end_time: Option<SimTime>,
    /// Number of completed reconfigurations (accounting).
    pub reconfigurations: u32,
}

impl Job {
    pub fn is_resizer(&self) -> bool {
        matches!(self.dependency, Some(Dependency::ExpandOf(_)))
    }

    /// Waiting time: submission to start (only meaningful once started).
    pub fn waiting_time(&self) -> Option<Span> {
        self.start_time.map(|s| s.since(self.submit_time))
    }

    /// Execution time: start to end.
    pub fn execution_time(&self) -> Option<Span> {
        match (self.start_time, self.end_time) {
            (Some(s), Some(e)) => Some(e.since(s)),
            _ => None,
        }
    }

    /// Completion time: submission to end (waiting + execution, the
    /// user-visible latency the paper argues malleability improves).
    pub fn completion_time(&self) -> Option<Span> {
        self.end_time.map(|e| e.since(self.submit_time))
    }

    /// Estimated end for backfill purposes.
    pub fn expected_end(&self) -> Option<SimTime> {
        self.start_time.map(|s| s + self.expected_runtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(min: u32, max: u32) -> ResizeEnvelope {
        ResizeEnvelope {
            min,
            max,
            preferred: None,
            factor: 2,
        }
    }

    #[test]
    fn max_procs_to_walks_factor_chain() {
        let e = env(1, 32);
        // From 4 with plenty free: 8, 16, 32 are reachable; best is 32.
        assert_eq!(e.max_procs_to(4, 32, 100), Some(32));
        // Bounded by target bound.
        assert_eq!(e.max_procs_to(4, 20, 100), Some(16));
        // Bounded by free nodes: delta to 8 is 4, to 16 is 12.
        assert_eq!(e.max_procs_to(4, 32, 5), Some(8));
        // No step possible.
        assert_eq!(e.max_procs_to(4, 32, 3), None);
        assert_eq!(e.max_procs_to(4, 7, 100), None);
    }

    #[test]
    fn max_procs_respects_envelope_max() {
        let e = env(1, 16);
        assert_eq!(e.max_procs_to(4, 32, 100), Some(16));
    }

    #[test]
    fn shrink_chain_and_membership() {
        let e = env(2, 32);
        assert_eq!(e.shrink_chain(32), vec![16, 8, 4, 2]);
        assert!(e.can_shrink_to(32, 8));
        assert!(!e.can_shrink_to(32, 1), "below min");
        assert!(!e.can_shrink_to(32, 12), "not on factor chain");
        assert!(!e.can_shrink_to(8, 8), "no-op is not a shrink");
        assert!(!e.can_shrink_to(8, 16), "growth is not a shrink");
    }

    #[test]
    fn shrink_chain_handles_odd_sizes() {
        let e = env(1, 32);
        assert_eq!(e.shrink_chain(12), vec![6, 3]);
        assert_eq!(e.shrink_chain(7), Vec::<u32>::new());
    }

    #[test]
    fn degenerate_factor_yields_nothing() {
        let e = ResizeEnvelope {
            min: 1,
            max: 32,
            preferred: None,
            factor: 1,
        };
        assert_eq!(e.max_procs_to(4, 32, 100), None);
        assert!(e.shrink_chain(8).is_empty());
    }

    #[test]
    fn accounting_spans() {
        let mut j = Job {
            id: JobId(1),
            seq: 0,
            detached_nodes: 0,
            name: "t".into(),
            state: JobState::Pending,
            requested_nodes: 4,
            time_limit: None,
            expected_runtime: Span::from_secs(100),
            dependency: None,
            base_priority: 0,
            boosted: false,
            resize: None,
            constraint: ClassConstraint::Any,
            submit_time: SimTime::from_secs(10),
            start_time: None,
            end_time: None,
            reconfigurations: 0,
        };
        assert_eq!(j.waiting_time(), None);
        j.start_time = Some(SimTime::from_secs(25));
        j.end_time = Some(SimTime::from_secs(75));
        assert_eq!(j.waiting_time(), Some(Span::from_secs(15)));
        assert_eq!(j.execution_time(), Some(Span::from_secs(50)));
        assert_eq!(j.completion_time(), Some(Span::from_secs(65)));
        assert_eq!(
            j.expected_end(),
            Some(SimTime::from_secs(125)),
            "start + estimate"
        );
    }
}
