//! Slot-set free-resource timeline: the future-occupancy step function
//! behind the backfill families.
//!
//! The legacy EASY backfill re-derived the shadow time on every pass by
//! walking the running-jobs end-time index and accumulating freed nodes.
//! That is O(running) per blocked job and — worse — it can only answer
//! "when is the *cluster-wide* free count ≥ need", which is enough for a
//! single reservation but not for planning many jobs into the future
//! (EASY-k, conservative backfill).
//!
//! [`SlotSet`] maintains the *planned occupancy* `occ(t)` — the number of
//! nodes committed at instant `t` by running jobs (and, transiently,
//! by pass-local reservations) — as an ordered sequence of slots: each
//! slot is a half-open interval of sim-time `[b_i, b_{i+1})` carrying one
//! occupancy value, stored as its left boundary. The boundaries live in a
//! randomized balanced tree (a treap with lazy range-add and subtree
//! min/max occupancy aggregates), so the core operations are logarithmic
//! in the slot count `s`:
//!
//! * [`SlotSet::plan`] / [`SlotSet::unplan`] — add / remove `nodes` over
//!   `[from, until)`: split at most two slots, lazy-add over the covered
//!   range, and re-merge boundaries that became redundant — O(log s);
//! * [`SlotSet::earliest_hole`] — first instant `t ≥ from` with
//!   `occ ≤ cap` throughout `[t, t + dur)`: descend on the min-occupancy
//!   aggregate to candidate slots and on the max aggregate to the
//!   blockers that invalidate them — O(log s) per candidate visited;
//! * [`SlotSet::advance`] — garbage-collect every boundary behind the
//!   simulation clock while preserving the step function at and after
//!   `now`, so the structure holds O(active plans) slots regardless of
//!   how long the simulation runs.
//!
//! The free count at `t` is `avail − occ(t)` where `avail` is the free
//! node count plus every node held by a running job; keeping the *base*
//! at the actual cluster free count makes detached resizer nodes and
//! overrunning jobs (expected end in the past) come out right without
//! special cases. Queries are read-only (`&self`): descents carry the
//! accumulated lazy tags as a value instead of pushing them down.
//!
//! [`BackfillFamily`] selects which backfill algorithm consumes the
//! timeline; the legacy single-reservation walk survives as
//! [`BackfillFamily::LegacyReference`], the equivalence oracle pinned by
//! `tests/backfill_equivalence.rs` (the same pattern as
//! [`crate::slurm::SchedIndex::ScanReference`]).

use dmr_sim::{SimTime, Span};

/// Which backfill algorithm [`crate::slurm::Slurm::backfill_pass`] runs.
///
/// All families share the FIFO head behaviour (start jobs in priority
/// order until one blocks); they differ in how many blocked jobs get a
/// planned start and in what lower-priority jobs may do around those
/// plans. `Easy { reservations: 1 }` (the default) is bit-for-bit
/// identical to [`BackfillFamily::LegacyReference`] — pinned by
/// `tests/backfill_equivalence.rs` — only the cost differs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BackfillFamily {
    /// EASY-k: the first `reservations` blocked jobs get a shadow-time
    /// reservation; lower-priority jobs may start only if they end
    /// before every shadow time or fit in the spare ("extra") nodes at
    /// it. `reservations: 1` is classic EASY (today's behaviour).
    Easy {
        /// Maximum number of concurrently held reservations per pass.
        reservations: u32,
    },
    /// Conservative backfill: *every* blocked job gets a slot planned in
    /// the free-resource timeline, and a job may start now only if doing
    /// so delays none of those plans (its whole expected runtime fits
    /// under the planned occupancy).
    Conservative,
    /// The pre-slot-set EASY implementation: one reservation derived by
    /// walking the running-jobs end-time index per pass. Kept as the
    /// equivalence oracle; the timeline is still maintained but never
    /// consulted.
    LegacyReference,
}

impl Default for BackfillFamily {
    fn default() -> Self {
        BackfillFamily::Easy { reservations: 1 }
    }
}

impl BackfillFamily {
    /// EASY with `k` reservations (`k` is clamped to at least 1).
    pub fn easy(k: u32) -> Self {
        BackfillFamily::Easy {
            reservations: k.max(1),
        }
    }

    /// Short label for sweep CSVs and bench run entries.
    pub fn label(self) -> &'static str {
        match self {
            BackfillFamily::Easy { reservations: 1 } => "easy1",
            BackfillFamily::Easy { reservations: 8 } => "easy8",
            BackfillFamily::Easy { reservations: 64 } => "easy64",
            BackfillFamily::Easy { .. } => "easyk",
            BackfillFamily::Conservative => "conservative",
            BackfillFamily::LegacyReference => "legacy",
        }
    }
}

/// Sentinel child index ("no node").
const NIL: u32 = u32::MAX;

/// One slot boundary: the step function takes value `occ` on
/// `[time, next boundary)`. Stored values are relative to the lazy `add`
/// tags of the node itself and its ancestors (see [`SlotSet`] internals).
#[derive(Clone, Debug)]
struct Slot {
    time: SimTime,
    /// Occupancy of the interval starting here, excluding pending adds.
    occ: i64,
    /// Subtree min/max occupancy (same frame as `occ`: excluding this
    /// node's own `add` and every ancestor's).
    min: i64,
    max: i64,
    /// Lazy delta pending for the whole subtree *including this node*.
    add: i64,
    /// Heap priority (deterministic hash of an insertion counter).
    pri: u64,
    l: u32,
    r: u32,
}

/// The free-resource timeline (see module docs).
#[derive(Debug)]
pub struct SlotSet {
    slots: Vec<Slot>,
    free: Vec<u32>,
    root: u32,
    /// Earliest represented instant; there is always a boundary exactly
    /// here, and every query/mutation clamps to it.
    horizon: SimTime,
    /// Insertion counter feeding the deterministic priority hash.
    seq: u64,
    /// Intervals committed through [`SlotSet::plan_journaled`] and not
    /// yet rolled back. Retained between passes so the per-pass unwind
    /// list of the backfill families reuses its capacity instead of
    /// reallocating every pass.
    journal: Vec<(SimTime, SimTime, u32)>,
}

/// A saved copy of a [`SlotSet`]'s state (see [`SlotSet::save`]).
///
/// The conservative backfill pass plans hundreds of pass-local
/// reservations; unwinding them one [`SlotSet::unplan`] at a time costs
/// a treap operation each. A checkpoint instead captures the whole slot
/// arena up front — a capacity-reusing memcpy — and
/// [`SlotSet::restore`] puts it back in O(slots) flat copies, no tree
/// surgery. One checkpoint is retained per scheduler and reused across
/// passes, so steady-state saves allocate nothing.
#[derive(Debug, Default)]
pub struct SlotSetCheckpoint {
    slots: Vec<Slot>,
    free: Vec<u32>,
    root: u32,
    horizon: SimTime,
    seq: u64,
}

/// Running state of one [`SlotSet::earliest_hole`] traversal: the
/// candidate start currently surviving (its window, so far, holds), and
/// whether the search has proven it (a blocker at or past the window's
/// end, or the timeline running out).
struct HoleScan {
    cand: Option<SimTime>,
    done: bool,
}

/// `splitmix64` — deterministic, well-mixed treap priorities without an
/// RNG dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl SlotSet {
    /// An empty timeline: occupancy 0 everywhere from `origin` on.
    pub fn new(origin: SimTime) -> Self {
        let mut s = SlotSet {
            slots: Vec::new(),
            free: Vec::new(),
            root: NIL,
            horizon: origin,
            seq: 0,
            journal: Vec::new(),
        };
        s.root = s.alloc(origin, 0);
        s
    }

    /// Earliest represented instant (the simulation clock of the last
    /// [`SlotSet::advance`]).
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of slots (boundaries) currently held.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// `true` when the timeline holds only the horizon slot.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    fn alloc(&mut self, time: SimTime, occ: i64) -> u32 {
        let pri = splitmix64(self.seq);
        self.seq += 1;
        let slot = Slot {
            time,
            occ,
            min: occ,
            max: occ,
            add: 0,
            pri,
            l: NIL,
            r: NIL,
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn release_subtree(&mut self, n: u32) {
        let mut stack = vec![n];
        while let Some(n) = stack.pop() {
            if n == NIL {
                continue;
            }
            let (l, r) = (self.slots[n as usize].l, self.slots[n as usize].r);
            stack.push(l);
            stack.push(r);
            self.free.push(n);
        }
    }

    /// Applies this node's pending delta to itself and forwards it to the
    /// children, so the node's stored fields become frame-exact.
    fn push_down(&mut self, n: u32) {
        let a = self.slots[n as usize].add;
        if a == 0 {
            return;
        }
        let (l, r) = {
            let s = &mut self.slots[n as usize];
            s.add = 0;
            s.occ += a;
            s.min += a;
            s.max += a;
            (s.l, s.r)
        };
        if l != NIL {
            self.slots[l as usize].add += a;
        }
        if r != NIL {
            self.slots[r as usize].add += a;
        }
    }

    fn pull_up(&mut self, n: u32) {
        let (l, r, occ) = {
            let s = &self.slots[n as usize];
            (s.l, s.r, s.occ)
        };
        let mut min = occ;
        let mut max = occ;
        for c in [l, r] {
            if c != NIL {
                let cs = &self.slots[c as usize];
                min = min.min(cs.min + cs.add);
                max = max.max(cs.max + cs.add);
            }
        }
        let s = &mut self.slots[n as usize];
        s.min = min;
        s.max = max;
    }

    /// Splits into `(times < key, times >= key)`.
    fn split(&mut self, n: u32, key: SimTime) -> (u32, u32) {
        if n == NIL {
            return (NIL, NIL);
        }
        self.push_down(n);
        if self.slots[n as usize].time < key {
            let r = self.slots[n as usize].r;
            let (a, b) = self.split(r, key);
            self.slots[n as usize].r = a;
            self.pull_up(n);
            (n, b)
        } else {
            let l = self.slots[n as usize].l;
            let (a, b) = self.split(l, key);
            self.slots[n as usize].l = b;
            self.pull_up(n);
            (a, n)
        }
    }

    /// Merges two trees; every time in `a` precedes every time in `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.slots[a as usize].pri >= self.slots[b as usize].pri {
            self.push_down(a);
            let r = self.slots[a as usize].r;
            let m = self.merge(r, b);
            self.slots[a as usize].r = m;
            self.pull_up(a);
            a
        } else {
            self.push_down(b);
            let l = self.slots[b as usize].l;
            let m = self.merge(a, l);
            self.slots[b as usize].l = m;
            self.pull_up(b);
            b
        }
    }

    /// True occupancy at instant `t` (clamped to the horizon).
    pub fn occupied_at(&self, t: SimTime) -> i64 {
        let t = t.max(self.horizon);
        let mut n = self.root;
        let mut acc = 0i64;
        let mut best = 0i64;
        while n != NIL {
            let s = &self.slots[n as usize];
            let frame = acc + s.add;
            if s.time <= t {
                best = s.occ + frame;
                n = s.r;
            } else {
                n = s.l;
            }
            acc = frame;
        }
        best
    }

    /// Time and true occupancy of the last boundary in subtree `n`.
    fn last_value(&self, mut n: u32, mut acc: i64) -> Option<(SimTime, i64)> {
        let mut best = None;
        while n != NIL {
            let s = &self.slots[n as usize];
            let frame = acc + s.add;
            best = Some((s.time, s.occ + frame));
            n = s.r;
            acc = frame;
        }
        best
    }

    fn first_time(&self, mut n: u32) -> Option<SimTime> {
        let mut best = None;
        while n != NIL {
            let s = &self.slots[n as usize];
            best = Some(s.time);
            n = s.l;
        }
        best
    }

    /// First boundary at or after `from` with occupancy `<= cap`.
    /// Read-only: prunes on the subtree min aggregate.
    fn first_matching(&self, n: u32, from: SimTime, acc: i64, cap: i64) -> Option<SimTime> {
        if n == NIL {
            return None;
        }
        let s = &self.slots[n as usize];
        let frame = acc + s.add;
        if s.min + frame > cap {
            return None;
        }
        if s.time >= from {
            if let Some(t) = self.first_matching(s.l, from, frame, cap) {
                return Some(t);
            }
            if s.occ + frame <= cap {
                return Some(s.time);
            }
        }
        self.first_matching(s.r, from, frame, cap)
    }

    /// First boundary time `>= from` with occupancy `<= cap`.
    pub fn first_fit_at(&self, from: SimTime, cap: i64) -> Option<SimTime> {
        self.first_matching(self.root, from.max(self.horizon), 0, cap)
    }

    /// One in-order scan from `from` running the whole hole search as a
    /// state machine: while no candidate start is held, it hunts the
    /// first boundary with occupancy `<= cap`; while one is held, it
    /// hunts the blocker (`> cap`) that would invalidate it. A blocker
    /// inside the candidate's window discards the candidate and the hunt
    /// flips back; a blocker at or beyond the window's end proves the
    /// hole and stops. Phase-dependent aggregate pruning skips whole
    /// subtrees (`min > cap` while fit-hunting, `max <= cap` while
    /// blocker-hunting), and because this is a single traversal each
    /// slot is visited at most once per query — the loop of
    /// root-restarting descents it replaced paid a full root path per
    /// blocker hopped.
    fn hole_scan(&self, n: u32, from: SimTime, dur: Span, acc: i64, cap: i64, st: &mut HoleScan) {
        if n == NIL || st.done {
            return;
        }
        let s = &self.slots[n as usize];
        let frame = acc + s.add;
        // The phase cannot flip inside a pruned subtree: no fit means no
        // new candidate, no blocker means no invalidation.
        match st.cand {
            None if s.min + frame > cap => return,
            Some(_) if s.max + frame <= cap => return,
            _ => {}
        }
        if s.time >= from {
            self.hole_scan(s.l, from, dur, frame, cap, st);
            if st.done {
                return;
            }
            let v = s.occ + frame;
            match st.cand {
                None => {
                    if v <= cap {
                        st.cand = Some(s.time);
                    }
                }
                Some(c) => {
                    if v > cap {
                        if s.time.0 >= c.0.saturating_add(dur.0) {
                            st.done = true;
                            return;
                        }
                        st.cand = None;
                    }
                }
            }
        }
        self.hole_scan(s.r, from, dur, frame, cap, st);
    }

    /// Maximum occupancy over the window `[from, until)` (clamped to the
    /// horizon; an empty window reports the value at `from`).
    pub fn max_in(&self, from: SimTime, until: SimTime) -> i64 {
        let from = from.max(self.horizon);
        let mut best = self.occupied_at(from);
        self.boundary_max(self.root, from, until, 0, &mut best);
        best
    }

    fn boundary_max(&self, n: u32, from: SimTime, until: SimTime, acc: i64, best: &mut i64) {
        if n == NIL {
            return;
        }
        let s = &self.slots[n as usize];
        let frame = acc + s.add;
        if s.max + frame <= *best {
            return;
        }
        if s.time < from {
            self.boundary_max(s.r, from, until, frame, best);
        } else if s.time >= until {
            self.boundary_max(s.l, from, until, frame, best);
        } else {
            *best = (*best).max(s.occ + frame);
            self.boundary_max(s.l, from, until, frame, best);
            self.boundary_max(s.r, from, until, frame, best);
        }
    }

    /// Ensures a boundary exists exactly at `t` (carrying the value the
    /// step function already has there).
    fn ensure_boundary(&mut self, t: SimTime) {
        let (a, bc) = self.split(self.root, t);
        let (b, c) = self.split(bc, SimTime(t.0.saturating_add(1)));
        let b = if b == NIL {
            let carried = self.last_value(a, 0).map_or(0, |(_, v)| v);
            self.alloc(t, carried)
        } else {
            b
        };
        let ab = self.merge(a, b);
        self.root = self.merge(ab, c);
    }

    fn remove_boundary(&mut self, t: SimTime) {
        let (a, bc) = self.split(self.root, t);
        let (b, c) = self.split(bc, SimTime(t.0.saturating_add(1)));
        if b != NIL {
            self.release_subtree(b);
        }
        self.root = self.merge(a, c);
    }

    /// Drops boundary `t` if it carries the same occupancy as its
    /// predecessor (the slot-merge half of split/merge). The horizon
    /// boundary is never dropped.
    fn coalesce(&mut self, t: SimTime) {
        if t <= self.horizon || t.0 == u64::MAX {
            return;
        }
        let here = self.occupied_at(t);
        let before = self.occupied_at(SimTime(t.0 - 1));
        if here == before && self.has_boundary(t) {
            self.remove_boundary(t);
        }
    }

    fn has_boundary(&self, t: SimTime) -> bool {
        let mut n = self.root;
        while n != NIL {
            let s = &self.slots[n as usize];
            match t.cmp(&s.time) {
                std::cmp::Ordering::Equal => return true,
                std::cmp::Ordering::Less => n = s.l,
                std::cmp::Ordering::Greater => n = s.r,
            }
        }
        false
    }

    fn range_apply(&mut self, from: SimTime, until: SimTime, delta: i64) {
        let (a, bc) = self.split(self.root, from);
        let (b, c) = self.split(bc, until);
        if b != NIL {
            let s = &mut self.slots[b as usize];
            s.add += delta;
            debug_assert!(s.min + s.add >= 0, "negative planned occupancy");
        }
        let ab = self.merge(a, b);
        self.root = self.merge(ab, c);
    }

    /// Commits `nodes` over `[from, until)` (clamped to the horizon).
    pub fn plan(&mut self, from: SimTime, until: SimTime, nodes: u32) {
        let from = from.max(self.horizon);
        if until <= from || nodes == 0 {
            return;
        }
        self.ensure_boundary(from);
        self.ensure_boundary(until);
        self.range_apply(from, until, i64::from(nodes));
    }

    /// [`SlotSet::plan`] plus a journal entry: the interval is recorded
    /// so one [`SlotSet::rollback_plans`] call reverts every temporary
    /// commitment of the current pass. The backfill families plan
    /// shadow-time reservations this way — the reservations steer the
    /// pass's hole queries but must not leak into the next pass, whose
    /// occupancy is re-derived from the running set alone.
    pub fn plan_journaled(&mut self, from: SimTime, until: SimTime, nodes: u32) {
        self.plan(from, until, nodes);
        self.journal.push((from, until, nodes));
    }

    /// Reverts, newest first, every interval recorded by
    /// [`SlotSet::plan_journaled`] since the last rollback. Plans are
    /// commutative interval adds, so the timeline is restored exactly no
    /// matter how the journaled intervals overlapped.
    pub fn rollback_plans(&mut self) {
        while let Some((from, until, nodes)) = self.journal.pop() {
            self.unplan(from, until, nodes);
        }
    }

    /// Copies the whole timeline into `into`, reusing its buffers. The
    /// caller may then mutate freely with [`SlotSet::plan`] /
    /// [`SlotSet::unplan`] and revert everything at once with
    /// [`SlotSet::restore`] — a flat memcpy either way, with no
    /// per-interval treap unwinding. Must not be called with journaled
    /// plans outstanding: restore would silently discard the journal's
    /// pairing with the tree state.
    pub fn save(&self, into: &mut SlotSetCheckpoint) {
        debug_assert!(self.journal.is_empty(), "checkpoint with live journal");
        into.slots.clone_from(&self.slots);
        into.free.clone_from(&self.free);
        into.root = self.root;
        into.horizon = self.horizon;
        into.seq = self.seq;
    }

    /// Restores the state captured by [`SlotSet::save`], discarding every
    /// mutation made since. The checkpoint is unchanged and may be
    /// restored again.
    pub fn restore(&mut self, from: &SlotSetCheckpoint) {
        self.slots.clone_from(&from.slots);
        self.free.clone_from(&from.free);
        self.root = from.root;
        self.horizon = from.horizon;
        self.seq = from.seq;
        self.journal.clear();
    }

    /// Reverts a [`SlotSet::plan`] of `nodes` over `[from, until)` and
    /// merges boundaries the revert made redundant.
    pub fn unplan(&mut self, from: SimTime, until: SimTime, nodes: u32) {
        let from = from.max(self.horizon);
        if until <= from || nodes == 0 {
            return;
        }
        self.ensure_boundary(from);
        self.ensure_boundary(until);
        self.range_apply(from, until, -i64::from(nodes));
        self.coalesce(until);
        self.coalesce(from);
    }

    /// Moves the horizon forward to `now`: every boundary strictly before
    /// `now` is dropped, preserving the step function at and after `now`.
    /// A `now` at or behind the horizon is a no-op.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.horizon {
            return;
        }
        let (a, b) = self.split(self.root, now);
        let carried = self.last_value(a, 0).map_or(0, |(_, v)| v);
        self.release_subtree(a);
        self.root = if self.first_time(b) == Some(now) {
            b
        } else {
            let n = self.alloc(now, carried);
            self.merge(n, b)
        };
        self.horizon = now;
    }

    /// Earliest `t >= from` such that `occ(s) <= cap` for every `s` in
    /// `[t, t + dur)`, or `None` when the occupancy never falls to `cap`.
    /// A single pruned in-order traversal (`hole_scan`) runs
    /// the candidate/blocker alternation to completion; the seed handles
    /// `from` itself lying mid-slot (its controlling boundary sits before
    /// `from`, where the scan never looks).
    pub fn earliest_hole(&self, from: SimTime, cap: i64, dur: Span) -> Option<SimTime> {
        if cap < 0 {
            return None;
        }
        let t = from.max(self.horizon);
        let mut st = HoleScan {
            cand: (self.occupied_at(t) <= cap).then_some(t),
            done: false,
        };
        self.hole_scan(
            self.root,
            SimTime(t.0.saturating_add(1)),
            dur,
            0,
            cap,
            &mut st,
        );
        st.cand
    }

    /// All slots as `(left boundary, occupancy)` in time order (test and
    /// debugging aid).
    pub fn slots(&self) -> Vec<(SimTime, i64)> {
        let mut out = Vec::with_capacity(self.len());
        self.collect(self.root, 0, &mut out);
        out
    }

    fn collect(&self, n: u32, acc: i64, out: &mut Vec<(SimTime, i64)>) {
        if n == NIL {
            return;
        }
        let s = &self.slots[n as usize];
        let frame = acc + s.add;
        self.collect(s.l, frame, out);
        out.push((s.time, s.occ + frame));
        self.collect(s.r, frame, out);
    }

    /// Structural invariants: slots sorted and disjoint (strictly
    /// increasing boundaries), the horizon slot present and first, no
    /// negative occupancy.
    pub fn validate(&self) -> Result<(), String> {
        let slots = self.slots();
        let Some(&(first, _)) = slots.first() else {
            return Err("timeline has no slots (horizon slot missing)".into());
        };
        if first != self.horizon {
            return Err(format!(
                "first slot at {:?} != horizon {:?}",
                first, self.horizon
            ));
        }
        for w in slots.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!(
                    "slots out of order / overlapping: {:?} then {:?}",
                    w[0], w[1]
                ));
            }
        }
        if let Some(&(t, occ)) = slots.iter().find(|&&(_, occ)| occ < 0) {
            return Err(format!("negative occupancy {occ} at {t:?}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    /// Brute-force model: occupancy per microsecond boundary map.
    #[derive(Default)]
    struct Model {
        steps: BTreeMap<u64, i64>,
        horizon: u64,
    }

    impl Model {
        fn occ(&self, at: u64) -> i64 {
            let at = at.max(self.horizon);
            self.steps.range(..=at).next_back().map_or(0, |(_, &v)| v)
        }

        fn apply(&mut self, from: u64, until: u64, delta: i64) {
            let from = from.max(self.horizon);
            if until <= from {
                return;
            }
            let at_from = self.occ(from);
            let at_until = self.occ(until);
            self.steps.entry(from).or_insert(at_from);
            self.steps.entry(until).or_insert(at_until);
            for (_, v) in self.steps.range_mut(from..until) {
                *v += delta;
            }
        }

        fn advance(&mut self, now: u64) {
            if now <= self.horizon {
                return;
            }
            let carried = self.occ(now);
            self.steps = self.steps.split_off(&now);
            self.steps.entry(now).or_insert(carried);
            self.horizon = now;
        }

        fn earliest_hole(&self, from: u64, cap: i64, dur: u64) -> Option<u64> {
            if cap < 0 {
                return None;
            }
            let mut starts: Vec<u64> = vec![from.max(self.horizon)];
            starts.extend(self.steps.keys().copied().filter(|&k| k > from));
            'outer: for s in starts {
                let end = s.saturating_add(dur);
                if self.occ(s) > cap {
                    continue;
                }
                for (&k, &v) in self.steps.range(s..end) {
                    if v > cap {
                        continue 'outer;
                    }
                    let _ = k;
                }
                return Some(s);
            }
            None
        }
    }

    /// Tiny deterministic generator for the randomized tests.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn plan_and_unplan_round_trip_conserves_the_timeline() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        tl.plan(t(10), t(50), 4);
        tl.plan(t(20), t(80), 3);
        let before = tl.slots();
        tl.plan(t(30), t(60), 5);
        tl.unplan(t(30), t(60), 5);
        assert_eq!(tl.slots(), before, "plan+unplan must be a no-op");
        tl.validate().unwrap();
        // Full teardown returns to the empty timeline.
        tl.unplan(t(20), t(80), 3);
        tl.unplan(t(10), t(50), 4);
        assert_eq!(tl.slots(), vec![(SimTime::ZERO, 0)]);
        tl.validate().unwrap();
    }

    #[test]
    fn journaled_plans_roll_back_exactly() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        tl.plan(t(10), t(50), 4);
        let before = tl.slots();
        // Overlapping temporary reservations, as a backfill pass plans
        // them, including one extending the represented range.
        tl.plan_journaled(t(30), t(60), 5);
        tl.plan_journaled(t(20), t(90), 2);
        tl.plan_journaled(t(30), t(40), 1);
        assert_eq!(tl.occupied_at(t(35)), 4 + 5 + 2 + 1);
        tl.rollback_plans();
        assert_eq!(tl.slots(), before, "rollback must restore the pass state");
        tl.validate().unwrap();
        // The journal is drained: a second rollback is a no-op, and the
        // next pass's entries stand alone.
        tl.rollback_plans();
        assert_eq!(tl.slots(), before);
        tl.plan_journaled(t(15), t(25), 3);
        tl.rollback_plans();
        assert_eq!(tl.slots(), before);
        tl.validate().unwrap();
    }

    #[test]
    fn checkpoint_restore_reverts_arbitrary_mutation() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        tl.plan(t(10), t(50), 4);
        tl.plan(t(20), t(80), 3);
        let before = tl.slots();
        let mut ckpt = SlotSetCheckpoint::default();
        tl.save(&mut ckpt);
        // A conservative-pass-shaped burst of un-journaled plans,
        // including boundary churn from an interleaved unplan.
        for i in 0..64u64 {
            tl.plan(t(30 + i), t(60 + 2 * i), 1 + (i % 5) as u32);
        }
        tl.unplan(t(20), t(80), 3);
        assert_ne!(tl.slots(), before);
        tl.restore(&ckpt);
        assert_eq!(tl.slots(), before, "restore must revert every mutation");
        tl.validate().unwrap();
        // The checkpoint is reusable: mutate and restore again.
        tl.plan(t(5), t(95), 7);
        tl.restore(&ckpt);
        assert_eq!(tl.slots(), before);
        tl.validate().unwrap();
    }

    #[test]
    fn occupancy_steps_where_plans_overlap() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        tl.plan(t(10), t(30), 2);
        tl.plan(t(20), t(40), 5);
        assert_eq!(tl.occupied_at(t(5)), 0);
        assert_eq!(tl.occupied_at(t(10)), 2);
        assert_eq!(tl.occupied_at(t(25)), 7);
        assert_eq!(tl.occupied_at(t(30)), 5);
        assert_eq!(tl.occupied_at(t(40)), 0);
        tl.validate().unwrap();
    }

    #[test]
    fn advance_preserves_the_suffix_and_prunes_the_past() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        tl.plan(t(10), t(30), 2);
        tl.plan(t(20), t(40), 5);
        tl.advance(t(25));
        assert_eq!(tl.horizon(), t(25));
        assert_eq!(tl.occupied_at(t(25)), 7);
        assert_eq!(tl.occupied_at(t(35)), 5);
        assert_eq!(tl.occupied_at(t(40)), 0);
        // Everything before now is clamped to the horizon value.
        assert_eq!(tl.occupied_at(t(1)), 7);
        tl.validate().unwrap();
        // Advancing past every plan empties the timeline.
        tl.advance(t(100));
        assert_eq!(tl.slots(), vec![(t(100), 0)]);
    }

    #[test]
    fn earliest_hole_finds_gaps_between_and_after_plans() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        // 10 nodes committed on [0, 100), 4 on [100, 200), 10 on [200, 300).
        tl.plan(SimTime::ZERO, t(100), 10);
        tl.plan(t(100), t(200), 4);
        tl.plan(t(200), t(300), 10);
        // cap 6: the [100, 200) valley fits a 50 s window but not 150 s.
        assert_eq!(
            tl.earliest_hole(SimTime::ZERO, 6, Span::from_secs(50)),
            Some(t(100))
        );
        assert_eq!(
            tl.earliest_hole(SimTime::ZERO, 6, Span::from_secs(150)),
            Some(t(300))
        );
        // cap 10: everything fits immediately.
        assert_eq!(
            tl.earliest_hole(SimTime::ZERO, 10, Span::from_secs(1000)),
            Some(SimTime::ZERO)
        );
        // cap below every slot: only the tail qualifies.
        assert_eq!(
            tl.earliest_hole(SimTime::ZERO, 0, Span::from_secs(1)),
            Some(t(300))
        );
        // Negative cap can never fit.
        assert_eq!(
            tl.earliest_hole(SimTime::ZERO, -1, Span::from_secs(1)),
            None
        );
        // Zero-duration windows fit at any point at or under cap.
        assert_eq!(tl.earliest_hole(t(150), 6, Span::ZERO), Some(t(150)));
    }

    #[test]
    fn randomized_ops_match_the_brute_force_model() {
        let mut rng = Lcg(0x5eed_d312);
        for round in 0..60 {
            let mut tl = SlotSet::new(SimTime::ZERO);
            let mut model = Model::default();
            let mut live: Vec<(u64, u64, u32)> = Vec::new();
            for _ in 0..120 {
                match rng.next() % 5 {
                    0 | 1 => {
                        let from = rng.next() % 1000;
                        let until = from + 1 + rng.next() % 400;
                        let nodes = (rng.next() % 16) as u32 + 1;
                        tl.plan(SimTime(from), SimTime(until), nodes);
                        model.apply(from, until, i64::from(nodes));
                        live.push((from, until, nodes));
                    }
                    2 => {
                        if !live.is_empty() {
                            let i = (rng.next() as usize) % live.len();
                            let (from, until, nodes) = live.swap_remove(i);
                            tl.unplan(SimTime(from), SimTime(until), nodes);
                            model.apply(from, until, -i64::from(nodes));
                        }
                    }
                    3 => {
                        let now = model.horizon + rng.next() % 300;
                        tl.advance(SimTime(now));
                        model.advance(now);
                        // Plans now partially behind the horizon unplan
                        // only their remaining suffix, like running jobs.
                        for e in live.iter_mut() {
                            e.0 = e.0.max(now);
                        }
                        live.retain(|&(from, until, _)| from < until);
                    }
                    _ => {
                        let from = model.horizon + rng.next() % 1200;
                        let cap = (rng.next() % 24) as i64;
                        let dur = rng.next() % 500;
                        assert_eq!(
                            tl.earliest_hole(SimTime(from), cap, Span(dur)),
                            model.earliest_hole(from, cap, dur).map(SimTime),
                            "hole query diverged (round {round})"
                        );
                    }
                }
                tl.validate().unwrap();
                for probe in 0..8 {
                    let at = model.horizon + probe * 173;
                    assert_eq!(
                        tl.occupied_at(SimTime(at)),
                        model.occ(at),
                        "occ diverged at {at} (round {round})"
                    );
                }
            }
        }
    }

    #[test]
    fn max_in_reports_the_window_peak() {
        let mut tl = SlotSet::new(SimTime::ZERO);
        tl.plan(t(10), t(20), 3);
        tl.plan(t(15), t(30), 4);
        assert_eq!(tl.max_in(SimTime::ZERO, t(10)), 0);
        assert_eq!(tl.max_in(SimTime::ZERO, t(16)), 7);
        assert_eq!(tl.max_in(t(12), t(14)), 3);
        assert_eq!(tl.max_in(t(25), t(100)), 4);
        // Empty window: the value at `from`.
        assert_eq!(tl.max_in(t(12), t(12)), 3);
    }

    #[test]
    fn family_labels_are_stable() {
        assert_eq!(BackfillFamily::default(), BackfillFamily::easy(1));
        assert_eq!(BackfillFamily::easy(0), BackfillFamily::easy(1));
        assert_eq!(BackfillFamily::easy(1).label(), "easy1");
        assert_eq!(BackfillFamily::easy(8).label(), "easy8");
        assert_eq!(BackfillFamily::easy(64).label(), "easy64");
        assert_eq!(BackfillFamily::easy(3).label(), "easyk");
        assert_eq!(BackfillFamily::Conservative.label(), "conservative");
        assert_eq!(BackfillFamily::LegacyReference.label(), "legacy");
    }
}
