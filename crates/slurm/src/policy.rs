//! The pluggable reconfiguration-policy layer.
//!
//! The paper describes Algorithm 1 as a *plug-in* to the RMS (§IV): the
//! scheduler owns the mechanism — envelopes, the resizer-job protocol,
//! priority boosts, node accounting — while the decision procedure is
//! swappable. This module realises that split:
//!
//! * [`ResizePolicy`] — the plug-in interface. A policy is a pure decision
//!   function over the scheduler's public state; every side effect (the
//!   §IV-3 priority boost, the §III protocols) stays in the mechanism.
//! * [`PolicyKind`] — a `Copy` selector carried by
//!   [`crate::slurm::SlurmConfig`], so experiment configurations stay
//!   plain data.
//! * [`Algorithm1`] — the paper's decision procedure, bit-for-bit the
//!   behaviour the driver test-suite pins down.
//! * [`UtilizationTarget`] — expand/shrink to hold cluster utilization
//!   inside a band.
//! * [`FairShare`] — aging-weighted: only queued jobs that have waited
//!   long enough trigger shrinks, but then the shrink is sized to the
//!   cumulative demand of every starved job, not just the first.

use dmr_sim::SimTime;

use crate::job::{JobId, JobState, ResizeEnvelope};
use crate::slurm::Slurm;

/// The verdict returned to the runtime through the DMR API.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResizeAction {
    /// Keep the current size.
    NoAction,
    /// Grow to `to` processes (the caller drives the resizer-job
    /// protocol).
    Expand { to: u32 },
    /// Shrink to `to` processes. `beneficiary` is the queued job the
    /// released nodes are destined for; the scheduler boosts it to
    /// maximum priority when the decision is returned.
    Shrink { to: u32, beneficiary: Option<JobId> },
}

impl ResizeAction {
    pub fn is_action(self) -> bool {
        !matches!(self, ResizeAction::NoAction)
    }
}

/// A reconfiguration decision procedure — the paper's RMS plug-in.
///
/// Implementations read the scheduler through `&Slurm` only; the
/// scheduler guarantees that `job` exists, is running, and carries a
/// malleability envelope before the plug-in is consulted, and applies
/// the beneficiary priority boost itself afterwards. Policies therefore
/// never mutate scheduler state.
pub trait ResizePolicy: Send {
    /// Short machine-friendly name (used in sweep CSV output).
    fn name(&self) -> &'static str;

    /// Decide the resize action for running flexible job `job`.
    fn decide(&mut self, slurm: &Slurm, job: JobId, now: SimTime) -> ResizeAction;

    /// How many currently idle nodes the policy wants powered down to
    /// their off state (S5). The driver consults this once per
    /// reconfiguration cycle and applies the verdict through the
    /// cluster's power-management API, charging a wake-up latency
    /// before the nodes serve work again. The default (0) keeps
    /// power-agnostic policies exactly as they were.
    fn idle_power_down(&self, _slurm: &Slurm, _now: SimTime) -> u32 {
        0
    }
}

/// Policy selector carried by scheduler / experiment configurations.
///
/// Keeping the selector `Copy` (parameters embedded) lets
/// [`crate::slurm::SlurmConfig`] and downstream experiment configs remain
/// plain data; [`PolicyKind::build`] instantiates the trait object.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum PolicyKind {
    /// The paper's Algorithm 1 (§IV).
    #[default]
    Algorithm1,
    /// Hold allocated-node utilization inside `[low, high]` (fractions).
    UtilizationTarget { low: f64, high: f64 },
    /// Aging-weighted shrinks: queued jobs older than `age_threshold_s`
    /// seconds trigger demand-sized shrinks.
    FairShare { age_threshold_s: f64 },
    /// Energy-first: consolidate flexible jobs onto the efficient end of
    /// the machine and power idle nodes (beyond `reserve`) down to S5.
    EnergyAware { reserve: u32 },
}

impl PolicyKind {
    /// [`PolicyKind::UtilizationTarget`] with the default band.
    pub fn utilization_target() -> Self {
        PolicyKind::UtilizationTarget {
            low: 0.55,
            high: 0.85,
        }
    }

    /// [`PolicyKind::FairShare`] with the default aging threshold.
    pub fn fair_share() -> Self {
        PolicyKind::FairShare {
            age_threshold_s: 120.0,
        }
    }

    /// [`PolicyKind::EnergyAware`] with the default idle reserve.
    pub fn energy_aware() -> Self {
        PolicyKind::EnergyAware { reserve: 2 }
    }

    /// Stable name (matches [`ResizePolicy::name`] of the built policy).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Algorithm1 => "algorithm1",
            PolicyKind::UtilizationTarget { .. } => "utilization-target",
            PolicyKind::FairShare { .. } => "fair-share",
            PolicyKind::EnergyAware { .. } => "energy-aware",
        }
    }

    /// Name plus parameters — unique per parameterization, so two
    /// differently-tuned instances of the same policy stay
    /// distinguishable in scenario names and sweep CSV keys.
    pub fn label(self) -> String {
        match self {
            PolicyKind::Algorithm1 => "algorithm1".into(),
            PolicyKind::UtilizationTarget { low, high } => {
                format!("utilization-target-{low}-{high}")
            }
            PolicyKind::FairShare { age_threshold_s } => {
                format!("fair-share-{age_threshold_s}")
            }
            PolicyKind::EnergyAware { reserve } => {
                format!("energy-aware-{reserve}")
            }
        }
    }

    /// Instantiates the policy this selector describes.
    pub fn build(self) -> Box<dyn ResizePolicy> {
        match self {
            PolicyKind::Algorithm1 => Box::new(Algorithm1),
            PolicyKind::UtilizationTarget { low, high } => {
                Box::new(UtilizationTarget { low, high })
            }
            PolicyKind::FairShare { age_threshold_s } => Box::new(FairShare { age_threshold_s }),
            PolicyKind::EnergyAware { reserve } => Box::new(EnergyAware { reserve }),
        }
    }
}

/// Envelope of a job the mechanism has already validated.
fn envelope_of(slurm: &Slurm, job: JobId) -> ResizeEnvelope {
    slurm
        .job(job)
        .and_then(|j| j.resize)
        .expect("scheduler consults the policy only for flexible running jobs")
}

// ---------------------------------------------------------------------
// Algorithm 1
// ---------------------------------------------------------------------

/// Algorithm 1 of the paper (§IV). Three scheduling-freedom modes are
/// realised by one decision procedure:
///
/// 1. **Request an action** — a job may "strongly suggest" an action by
///    setting its envelope bounds (e.g. `min > current` forces an expand
///    attempt); the RMS still owns the final verdict.
/// 2. **Preferred number of nodes** — if a preference is given: equal to
///    the current size ⇒ no action; alone in the system ⇒ expand to the
///    maximum; otherwise try to expand/shrink towards the preference.
/// 3. **Wide optimization** — everything else: expand when nothing queued
///    could use the nodes anyway, shrink when that lets a queued job start
///    (the scheduler then boosts it to maximum priority).
#[derive(Clone, Copy, Default, Debug)]
pub struct Algorithm1;

impl ResizePolicy for Algorithm1 {
    fn name(&self) -> &'static str {
        "algorithm1"
    }

    fn decide(&mut self, slurm: &Slurm, job: JobId, now: SimTime) -> ResizeAction {
        let env = envelope_of(slurm, job);
        let current = slurm.nodes_of(job);
        let free = slurm.cluster().free_nodes();
        let pending = slurm.pending_queue(now);

        if let Some(pref) = env.preferred {
            if pending.is_empty() && slurm.running_count() == 1 {
                // Line 2-4: alone in the system — expand to the job max.
                match env.max_procs_to(current, env.max, free) {
                    Some(t) => ResizeAction::Expand { to: t },
                    None => ResizeAction::NoAction,
                }
            } else if pref == current {
                // §IV-2: "If the desired size corresponds to the current
                // size, the RMS will return no action."
                ResizeAction::NoAction
            } else if pref > current {
                // Line 6-8: try to expand towards the preference.
                match env.max_procs_to(current, pref, free) {
                    Some(t) => ResizeAction::Expand { to: t },
                    None => wide_optimization(slurm, current, free, &pending, env),
                }
            } else if env.can_shrink_to(current, pref) {
                // Line 10-12: shrink exactly to the preference.
                ResizeAction::Shrink {
                    to: pref,
                    beneficiary: None,
                }
            } else {
                wide_optimization(slurm, current, free, &pending, env)
            }
        } else {
            wide_optimization(slurm, current, free, &pending, env)
        }
    }
}

/// Lines 13–24 of Algorithm 1 (shared with [`UtilizationTarget`], which
/// reuses the shrink-for-beneficiary search).
fn wide_optimization(
    slurm: &Slurm,
    current: u32,
    free: u32,
    pending: &[JobId],
    env: ResizeEnvelope,
) -> ResizeAction {
    if !pending.is_empty() {
        // Line 15: can another job run with my resources? Walk the
        // queue in priority order, find the first job a feasible
        // shrink would admit, and shrink as little as necessary
        // (keeping the most processes that still releases enough).
        // Jobs that already fit in the free nodes start on their own
        // at the next scheduling cycle and are skipped here; greedily
        // expanding into "their" nodes afterwards is deliberate — a
        // later check releases the nodes again if someone needs them,
        // and idling them would be worse (this mirrors the paper's
        // observation that the RMS, not the policy, owns final
        // placement).
        if let Some(shrink) = shrink_for_first_blocked(slurm, current, free, pending, env) {
            return shrink;
        }
        // Line 19-21: nothing queued can be helped — expand so this
        // job finishes (and releases everything) sooner.
        match env.max_procs_to(current, env.max, free) {
            Some(t) => ResizeAction::Expand { to: t },
            None => ResizeAction::NoAction,
        }
    } else {
        // Line 22-24: empty queue — expand to the job maximum.
        match env.max_procs_to(current, env.max, free) {
            Some(t) => ResizeAction::Expand { to: t },
            None => ResizeAction::NoAction,
        }
    }
}

/// The minimal shrink admitting the first queued job that is blocked on
/// nodes, if any (Algorithm 1 lines 15–18 without the expand fallback).
fn shrink_for_first_blocked(
    slurm: &Slurm,
    current: u32,
    free: u32,
    pending: &[JobId],
    env: ResizeEnvelope,
) -> Option<ResizeAction> {
    for &cand in pending {
        let req = slurm.job(cand).map(|j| j.requested_nodes).unwrap_or(0);
        let missing = req.saturating_sub(free);
        if missing == 0 {
            continue;
        }
        if let Some(to) = env
            .shrink_chain(current)
            .into_iter()
            .find(|to| current - to >= missing)
        {
            return Some(ResizeAction::Shrink {
                to,
                beneficiary: Some(cand),
            });
        }
    }
    None
}

// ---------------------------------------------------------------------
// UtilizationTarget
// ---------------------------------------------------------------------

/// Hold cluster utilization inside a band.
///
/// * Allocated fraction below `low` — expand towards the envelope
///   maximum (idle nodes are wasted capacity).
/// * Allocated fraction above `high` with jobs queued — shrink minimally
///   so the highest-priority blocked job can start (pressure relief).
/// * Inside the band — no action; reconfigurations are not free, so a
///   healthy cluster is left alone. This is the main behavioural contrast
///   with [`Algorithm1`], which reconfigures opportunistically.
#[derive(Clone, Copy, Debug)]
pub struct UtilizationTarget {
    pub low: f64,
    pub high: f64,
}

impl ResizePolicy for UtilizationTarget {
    fn name(&self) -> &'static str {
        "utilization-target"
    }

    fn decide(&mut self, slurm: &Slurm, job: JobId, now: SimTime) -> ResizeAction {
        let env = envelope_of(slurm, job);
        let current = slurm.nodes_of(job);
        let free = slurm.cluster().free_nodes();
        let total = slurm.cluster().total_nodes().max(1);
        let util = slurm.allocated_nodes() as f64 / total as f64;

        if util < self.low {
            // [`SlurmConfig::hole_guard`]: a grow must not consume the
            // planned backfill hole of the first blocked queued job.
            return match env.max_procs_to(current, env.max, free) {
                Some(t) if !slurm.grow_steals_backfill_hole(job, t, now) => {
                    ResizeAction::Expand { to: t }
                }
                _ => ResizeAction::NoAction,
            };
        }
        if util > self.high {
            let pending = slurm.pending_queue(now);
            if let Some(shrink) = shrink_for_first_blocked(slurm, current, free, &pending, env) {
                return shrink;
            }
        }
        ResizeAction::NoAction
    }
}

// ---------------------------------------------------------------------
// EnergyAware
// ---------------------------------------------------------------------

/// Energy-first decision procedure.
///
/// * Jobs queued — behave like [`Algorithm1`]'s pressure-relief move
///   (the minimal shrink admitting the first blocked job) but never
///   expand: extra width is extra watts while others wait.
/// * Empty queue — consolidate: honour a shrink-side preference, or
///   take the *deepest* envelope step towards the minimum. Released
///   nodes are the highest ids, which under the efficient-first class
///   layout belong to the least efficient classes — exactly the nodes
///   [`ResizePolicy::idle_power_down`] then asks to power down to S5
///   (everything idle beyond the `reserve` warm pool).
/// * The one expand this policy issues (towards an explicit envelope
///   preference, queue empty) is guarded by
///   [`Slurm::grow_steals_backfill_hole`].
#[derive(Clone, Copy, Debug)]
pub struct EnergyAware {
    /// Idle nodes kept up (C-state, not S5) as a warm pool for new
    /// arrivals; everything idle beyond this is a power-down candidate.
    pub reserve: u32,
}

impl ResizePolicy for EnergyAware {
    fn name(&self) -> &'static str {
        "energy-aware"
    }

    fn decide(&mut self, slurm: &Slurm, job: JobId, now: SimTime) -> ResizeAction {
        let env = envelope_of(slurm, job);
        let current = slurm.nodes_of(job);
        let free = slurm.cluster().free_nodes();
        let pending = slurm.pending_queue(now);

        if !pending.is_empty() {
            if let Some(shrink) = shrink_for_first_blocked(slurm, current, free, &pending, env) {
                return shrink;
            }
            return ResizeAction::NoAction;
        }
        if let Some(pref) = env.preferred {
            if pref > current {
                return match env.max_procs_to(current, pref, free) {
                    Some(t) if !slurm.grow_steals_backfill_hole(job, t, now) => {
                        ResizeAction::Expand { to: t }
                    }
                    _ => ResizeAction::NoAction,
                };
            }
            if pref < current && env.can_shrink_to(current, pref) {
                return ResizeAction::Shrink {
                    to: pref,
                    beneficiary: None,
                };
            }
            return ResizeAction::NoAction;
        }
        match env.shrink_chain(current).last().copied() {
            Some(to) => ResizeAction::Shrink {
                to,
                beneficiary: None,
            },
            None => ResizeAction::NoAction,
        }
    }

    fn idle_power_down(&self, slurm: &Slurm, now: SimTime) -> u32 {
        if !slurm.pending_queue(now).is_empty() {
            return 0;
        }
        slurm.cluster().free_nodes().saturating_sub(self.reserve)
    }
}

// ---------------------------------------------------------------------
// FairShare
// ---------------------------------------------------------------------

/// Aging-weighted decision procedure.
///
/// Queued jobs accrue age from submission; only jobs whose wait exceeds
/// `age_threshold_s` ("starved" jobs) may trigger a shrink — fresh
/// arrivals wait their fair share while running jobs keep their
/// allocation. When starved jobs exist the shrink is sized to their
/// *cumulative* node demand (deepest feasible step on the factor chain),
/// so a long queue drains faster than under [`Algorithm1`]'s minimal
/// one-beneficiary shrinks. With an empty queue it expands like
/// Algorithm 1; with a fresh (non-starved) queue it holds steady instead
/// of greedily expanding into nodes the aging queue will soon claim.
#[derive(Clone, Copy, Debug)]
pub struct FairShare {
    pub age_threshold_s: f64,
}

impl ResizePolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair-share"
    }

    fn decide(&mut self, slurm: &Slurm, job: JobId, now: SimTime) -> ResizeAction {
        let env = envelope_of(slurm, job);
        let current = slurm.nodes_of(job);
        let free = slurm.cluster().free_nodes();
        let pending = slurm.pending_queue(now);

        if pending.is_empty() {
            return match env.max_procs_to(current, env.max, free) {
                Some(t) => ResizeAction::Expand { to: t },
                None => ResizeAction::NoAction,
            };
        }

        // Longest-waiting first; ties broken by id for determinism.
        let mut aged: Vec<(JobId, f64, u32)> = pending
            .iter()
            .filter_map(|&id| {
                let j = slurm.job(id)?;
                let waited = now.since(j.submit_time).as_secs_f64();
                Some((id, waited, j.requested_nodes))
            })
            .collect();
        aged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let starved: Vec<&(JobId, f64, u32)> = aged
            .iter()
            .filter(|(_, waited, _)| *waited >= self.age_threshold_s)
            .collect();
        if starved.is_empty() {
            // Fresh queue: hold steady, let the scheduler place them.
            return ResizeAction::NoAction;
        }

        // The oldest starved job blocked on nodes is the beneficiary; the
        // shrink depth covers the cumulative starved demand if the factor
        // chain allows it.
        let demand: u32 = starved.iter().map(|(_, _, req)| req).sum();
        let cumulative_missing = demand.saturating_sub(free);
        let beneficiary = starved
            .iter()
            .find(|(_, _, req)| req.saturating_sub(free) > 0);
        let Some(&&(bene, _, req)) = beneficiary else {
            // Everything starved already fits in the free nodes.
            return ResizeAction::NoAction;
        };
        let first_missing = req.saturating_sub(free);
        let chain = env.shrink_chain(current);
        // Deepest step still bounded below by what the beneficiary needs:
        // prefer covering the full starved demand, fall back to the
        // minimal admitting step.
        let deep = chain
            .iter()
            .copied()
            .filter(|to| current - to >= first_missing)
            .min_by_key(|to| {
                let released = current - to;
                if released >= cumulative_missing {
                    // Covers everything: prefer the *largest* remaining
                    // size among full-coverage steps.
                    (0u32, u32::MAX - to)
                } else {
                    // Partial coverage: prefer deeper (more released).
                    (1u32, u32::MAX - released)
                }
            });
        match deep {
            Some(to) => ResizeAction::Shrink {
                to,
                beneficiary: Some(bene),
            },
            None => ResizeAction::NoAction,
        }
    }
}

// ---------------------------------------------------------------------
// The mechanism half: Slurm consults its installed policy.
// ---------------------------------------------------------------------

impl Slurm {
    /// Consults the installed [`ResizePolicy`] for running job `id`.
    ///
    /// The mechanism half of the split lives here: validity guards (the
    /// policy only ever sees running flexible jobs — rigid jobs never
    /// move, the framework being "compatible with unmodified non-malleable
    /// applications", §II) and the §IV-3 side effect of a
    /// wide-optimization shrink — the triggering queued job gets maximum
    /// priority (Algorithm 1 line 18) unless the ablation knob disables
    /// it.
    pub fn decide_resize(&mut self, id: JobId, now: SimTime) -> ResizeAction {
        let Some(job) = self.job(id) else {
            return ResizeAction::NoAction;
        };
        if job.state != JobState::Running {
            return ResizeAction::NoAction;
        }
        if job.resize.is_none() {
            return ResizeAction::NoAction;
        }
        let mut policy = self.take_policy();
        let decision = policy.decide(self, id, now);
        self.restore_policy(policy);

        if let ResizeAction::Shrink {
            beneficiary: Some(b),
            ..
        } = decision
        {
            if self.config.shrink_boost {
                self.boost(b);
            }
        }
        decision
    }

    /// Consults the installed policy's power verdict
    /// ([`ResizePolicy::idle_power_down`]): how many idle nodes to power
    /// down to S5 right now. 0 for power-agnostic policies.
    pub fn decide_power_down(&mut self, now: SimTime) -> u32 {
        let policy = self.take_policy();
        let verdict = policy.idle_power_down(self, now);
        self.restore_policy(policy);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRequest, ResizeEnvelope};
    use crate::slurm::SlurmConfig;
    use dmr_cluster::Cluster;
    use dmr_sim::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn env(min: u32, max: u32, pref: Option<u32>) -> ResizeEnvelope {
        ResizeEnvelope {
            min,
            max,
            preferred: pref,
            factor: 2,
        }
    }

    fn slurm(nodes: u32) -> Slurm {
        Slurm::with_cluster(Cluster::new(nodes, 16))
    }

    fn slurm_with_policy(nodes: u32, policy: PolicyKind) -> Slurm {
        let mut cfg = SlurmConfig::for_cluster(nodes);
        cfg.policy = policy;
        Slurm::new(Cluster::new(nodes, 16), cfg)
    }

    #[test]
    fn rigid_job_gets_no_action() {
        let mut s = slurm(16);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn alone_with_preference_expands_to_max() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 8, env(2, 32, Some(8))), t(0));
        s.schedule(t(0));
        // Only job in the system: expand to the envelope max even though
        // the preference is satisfied (Algorithm 1 line 2).
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 32 });
    }

    #[test]
    fn preference_equal_and_not_alone_is_no_action() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 8, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn shrinks_exactly_to_preference() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 32, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        assert_eq!(
            s.decide_resize(a, t(1)),
            ResizeAction::Shrink {
                to: 8,
                beneficiary: None
            }
        );
    }

    #[test]
    fn expands_towards_preference_when_possible() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 2, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 8 });
    }

    #[test]
    fn wide_expands_when_queue_empty() {
        let mut s = slurm(20);
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        s.schedule(t(0));
        // 16 free, chain 8, 16 both reachable: best is 16.
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 16 });
    }

    #[test]
    fn wide_expand_bounded_by_free_nodes() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        let _b = s.submit(JobRequest::rigid("b", 2), t(0));
        s.schedule(t(0));
        // 4 free: 8 reachable (delta 4), 16 not.
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 8 });
    }

    #[test]
    fn wide_shrinks_minimally_for_queued_job_and_boosts_it() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        s.schedule(t(0));
        let q = s.submit(JobRequest::rigid("q", 5), t(1));
        s.schedule(t(1)); // q cannot start: needs 5, 2 free
        let action = s.decide_resize(a, t(2));
        // Shrink chain from 8: [4, 2, 1]; need to release >= 3 → to=4.
        assert_eq!(
            action,
            ResizeAction::Shrink {
                to: 4,
                beneficiary: Some(q)
            }
        );
        assert!(s.job(q).unwrap().boosted, "beneficiary must be boosted");
    }

    #[test]
    fn wide_expands_when_queued_job_cannot_be_helped() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 4, env(4, 16, None)), t(0));
        s.schedule(t(0));
        // Queued job needs 10; even shrinking to min=4 releases 0 extra.
        let _q = s.submit(JobRequest::rigid("q", 10), t(1));
        s.schedule(t(1));
        // 6 free: expand to 8 (delta 4 <= 6); 16 unreachable.
        assert_eq!(s.decide_resize(a, t(2)), ResizeAction::Expand { to: 8 });
    }

    #[test]
    fn startable_pending_job_is_not_a_shrink_trigger() {
        let mut s = slurm(20);
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        s.schedule(t(0));
        // This job fits in the 12 free nodes; policy must skip it and
        // expand instead (it will start on its own).
        let _q = s.submit(JobRequest::rigid("q", 2), t(1));
        match s.decide_resize(a, t(2)) {
            ResizeAction::Expand { .. } => {}
            other => panic!("expected expand, got {other:?}"),
        }
    }

    #[test]
    fn saturated_job_gets_no_action() {
        let mut s = slurm(40);
        let a = s.submit(JobRequest::flexible("a", 16, env(1, 16, None)), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn pending_job_itself_gets_no_action() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let p = s.submit(JobRequest::flexible("p", 2, env(1, 4, None)), t(1));
        assert_eq!(s.decide_resize(p, t(2)), ResizeAction::NoAction);
        let _ = hog;
    }

    #[test]
    fn preferred_job_blocked_from_preference_falls_to_wide() {
        // Preference is 8 but only 2 nodes free → cannot expand to
        // preferred; wide optimization finds a queued job to help.
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 4, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let q = s.submit(JobRequest::rigid("q", 4), t(1));
        s.schedule(t(1));
        // a holds 4, b holds 4, 2 free. q needs 4, missing 2. Shrink chain
        // from 4: [2]; 4-2=2 >= 2 → shrink to 2 for q.
        assert_eq!(
            s.decide_resize(a, t(2)),
            ResizeAction::Shrink {
                to: 2,
                beneficiary: Some(q)
            }
        );
    }

    // -----------------------------------------------------------------
    // PolicyKind plumbing
    // -----------------------------------------------------------------

    #[test]
    fn policy_kind_names_are_stable() {
        assert_eq!(PolicyKind::Algorithm1.name(), "algorithm1");
        assert_eq!(
            PolicyKind::utilization_target().name(),
            "utilization-target"
        );
        assert_eq!(PolicyKind::fair_share().name(), "fair-share");
        for kind in [
            PolicyKind::Algorithm1,
            PolicyKind::utilization_target(),
            PolicyKind::fair_share(),
        ] {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn policy_labels_distinguish_parameterizations() {
        let a = PolicyKind::UtilizationTarget {
            low: 0.4,
            high: 0.7,
        };
        let b = PolicyKind::utilization_target();
        assert_eq!(a.name(), b.name());
        assert_ne!(a.label(), b.label());
        assert_eq!(
            PolicyKind::fair_share().label(),
            "fair-share-120".to_string()
        );
    }

    #[test]
    fn installed_policy_is_swappable() {
        let mut s = slurm(64);
        assert_eq!(s.policy_name(), "algorithm1");
        s.set_policy(PolicyKind::fair_share().build());
        assert_eq!(s.policy_name(), "fair-share");
    }

    // -----------------------------------------------------------------
    // UtilizationTarget
    // -----------------------------------------------------------------

    #[test]
    fn utilization_below_band_expands() {
        let mut s = slurm_with_policy(20, PolicyKind::utilization_target());
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        s.schedule(t(0));
        // 4/20 allocated = 0.2 < 0.55 → expand to the envelope max.
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 16 });
    }

    #[test]
    fn utilization_inside_band_holds_steady() {
        let mut s = slurm_with_policy(10, PolicyKind::utilization_target());
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        let _b = s.submit(JobRequest::rigid("b", 3), t(0));
        s.schedule(t(0));
        // 7/10 = 0.7 inside [0.55, 0.85] → no action, even though
        // Algorithm 1 would expand into the 3 free nodes.
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn utilization_above_band_shrinks_for_blocked_job() {
        let mut s = slurm_with_policy(10, PolicyKind::utilization_target());
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        let _b = s.submit(JobRequest::rigid("b", 1), t(0));
        s.schedule(t(0));
        let q = s.submit(JobRequest::rigid("q", 4), t(1));
        s.schedule(t(1)); // q blocked: needs 4, 1 free
                          // 9/10 = 0.9 > 0.85 → shrink minimally: chain [4, 2, 1], missing
                          // 3 → to=4 releases 4 ≥ 3.
        assert_eq!(
            s.decide_resize(a, t(2)),
            ResizeAction::Shrink {
                to: 4,
                beneficiary: Some(q)
            }
        );
        assert!(s.job(q).unwrap().boosted, "mechanism still boosts");
    }

    // -----------------------------------------------------------------
    // FairShare
    // -----------------------------------------------------------------

    #[test]
    fn fair_share_ignores_fresh_queue() {
        let mut s = slurm_with_policy(10, PolicyKind::fair_share());
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        s.schedule(t(0));
        let _q = s.submit(JobRequest::rigid("q", 5), t(1));
        s.schedule(t(1));
        // q has waited 1 s < 120 s: no shrink yet (Algorithm 1 would
        // shrink immediately).
        assert_eq!(s.decide_resize(a, t(2)), ResizeAction::NoAction);
    }

    #[test]
    fn fair_share_helps_starved_job() {
        let mut s = slurm_with_policy(10, PolicyKind::fair_share());
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        s.schedule(t(0));
        let q = s.submit(JobRequest::rigid("q", 5), t(1));
        s.schedule(t(1));
        // After 200 s the queued job is starved; shrink chain from 8 is
        // [4, 2, 1]; missing 3, cumulative demand also 3 → to=4.
        assert_eq!(
            s.decide_resize(a, t(201)),
            ResizeAction::Shrink {
                to: 4,
                beneficiary: Some(q)
            }
        );
        assert!(s.job(q).unwrap().boosted);
    }

    #[test]
    fn fair_share_sizes_shrink_to_cumulative_demand() {
        let mut s = slurm_with_policy(18, PolicyKind::fair_share());
        let a = s.submit(JobRequest::flexible("a", 16, env(1, 16, None)), t(0));
        s.schedule(t(0));
        let q1 = s.submit(JobRequest::rigid("q1", 6), t(1));
        let _q2 = s.submit(JobRequest::rigid("q2", 6), t(2));
        s.schedule(t(2));
        // 2 free; both starved at t=300: demand 12, cumulative missing 10.
        // Chain from 16: [8, 4, 2, 1]. to=4 releases 12 ≥ 10 (full
        // coverage); to=8 releases only 8. FairShare digs to 4 where
        // Algorithm 1 would stop at 8.
        assert_eq!(
            s.decide_resize(a, t(300)),
            ResizeAction::Shrink {
                to: 4,
                beneficiary: Some(q1)
            }
        );
    }

    #[test]
    fn fair_share_expands_on_empty_queue() {
        let mut s = slurm_with_policy(20, PolicyKind::fair_share());
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 16 });
    }
}
