//! The reconfiguration policy plug-in — Algorithm 1 of the paper (§IV).
//!
//! Three scheduling-freedom modes are realised by one decision procedure:
//!
//! 1. **Request an action** — a job may "strongly suggest" an action by
//!    setting its envelope bounds (e.g. `min > current` forces an expand
//!    attempt); the RMS still owns the final verdict.
//! 2. **Preferred number of nodes** — if a preference is given: equal to
//!    the current size ⇒ no action; alone in the system ⇒ expand to the
//!    maximum; otherwise try to expand/shrink towards the preference.
//! 3. **Wide optimization** — everything else: expand when nothing queued
//!    could use the nodes anyway, shrink when that lets a queued job start
//!    (boosting it to maximum priority).

use dmr_sim::SimTime;

use crate::job::{JobId, JobState};
use crate::slurm::Slurm;

/// The verdict returned to the runtime through the DMR API.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResizeAction {
    /// Keep the current size.
    NoAction,
    /// Grow to `to` processes (the caller drives the resizer-job
    /// protocol).
    Expand { to: u32 },
    /// Shrink to `to` processes. `beneficiary` is the queued job the
    /// released nodes are destined for; the policy has already boosted it.
    Shrink { to: u32, beneficiary: Option<JobId> },
}

impl ResizeAction {
    pub fn is_action(self) -> bool {
        !matches!(self, ResizeAction::NoAction)
    }
}

impl Slurm {
    /// Algorithm 1: decide the resize action for running job `id`.
    ///
    /// Mutable because a shrink decision boosts the beneficiary's priority
    /// as a side effect (§IV-3) — exactly as the paper's plug-in does.
    pub fn decide_resize(&mut self, id: JobId, now: SimTime) -> ResizeAction {
        let Some(job) = self.job(id) else {
            return ResizeAction::NoAction;
        };
        if job.state != JobState::Running {
            return ResizeAction::NoAction;
        }
        let Some(env) = job.resize else {
            // Rigid jobs never move — the framework is "compatible with
            // unmodified non-malleable applications" (§II).
            return ResizeAction::NoAction;
        };
        let current = self.nodes_of(id);
        let free = self.cluster().free_nodes();
        let pending = self.pending_queue(now);

        let decision = if let Some(pref) = env.preferred {
            if pending.is_empty() && self.running_count() == 1 {
                // Line 2-4: alone in the system — expand to the job max.
                match env.max_procs_to(current, env.max, free) {
                    Some(t) => ResizeAction::Expand { to: t },
                    None => ResizeAction::NoAction,
                }
            } else if pref == current {
                // §IV-2: "If the desired size corresponds to the current
                // size, the RMS will return no action."
                ResizeAction::NoAction
            } else if pref > current {
                // Line 6-8: try to expand towards the preference.
                match env.max_procs_to(current, pref, free) {
                    Some(t) => ResizeAction::Expand { to: t },
                    None => self.wide_optimization(id, current, free, &pending, env),
                }
            } else if env.can_shrink_to(current, pref) {
                // Line 10-12: shrink exactly to the preference.
                ResizeAction::Shrink {
                    to: pref,
                    beneficiary: None,
                }
            } else {
                self.wide_optimization(id, current, free, &pending, env)
            }
        } else {
            self.wide_optimization(id, current, free, &pending, env)
        };

        // Side effect of a wide-optimization shrink: the triggering queued
        // job gets maximum priority (Algorithm 1 line 18), unless the
        // ablation knob disables it.
        if let ResizeAction::Shrink {
            beneficiary: Some(b),
            ..
        } = decision
        {
            if self.config.shrink_boost {
                self.boost(b);
            }
        }
        decision
    }

    /// Lines 13–24 of Algorithm 1.
    fn wide_optimization(
        &self,
        _id: JobId,
        current: u32,
        free: u32,
        pending: &[JobId],
        env: crate::job::ResizeEnvelope,
    ) -> ResizeAction {
        if !pending.is_empty() {
            // Line 15: can another job run with my resources? Walk the
            // queue in priority order, find the first job a feasible
            // shrink would admit, and shrink as little as necessary
            // (keeping the most processes that still releases enough).
            // Jobs that already fit in the free nodes start on their own
            // at the next scheduling cycle and are skipped here; greedily
            // expanding into "their" nodes afterwards is deliberate — a
            // later check releases the nodes again if someone needs them,
            // and idling them would be worse (this mirrors the paper's
            // observation that the RMS, not the policy, owns final
            // placement).
            for &cand in pending {
                let req = self.job(cand).map(|j| j.requested_nodes).unwrap_or(0);
                let missing = req.saturating_sub(free);
                if missing == 0 {
                    continue;
                }
                if let Some(to) = env
                    .shrink_chain(current)
                    .into_iter()
                    .find(|to| current - to >= missing)
                {
                    return ResizeAction::Shrink {
                        to,
                        beneficiary: Some(cand),
                    };
                }
            }
            // Line 19-21: nothing queued can be helped — expand so this
            // job finishes (and releases everything) sooner.
            match env.max_procs_to(current, env.max, free) {
                Some(t) => ResizeAction::Expand { to: t },
                None => ResizeAction::NoAction,
            }
        } else {
            // Line 22-24: empty queue — expand to the job maximum.
            match env.max_procs_to(current, env.max, free) {
                Some(t) => ResizeAction::Expand { to: t },
                None => ResizeAction::NoAction,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRequest, ResizeEnvelope};
    use dmr_cluster::Cluster;
    use dmr_sim::SimTime;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn env(min: u32, max: u32, pref: Option<u32>) -> ResizeEnvelope {
        ResizeEnvelope {
            min,
            max,
            preferred: pref,
            factor: 2,
        }
    }

    fn slurm(nodes: u32) -> Slurm {
        Slurm::with_cluster(Cluster::new(nodes, 16))
    }

    #[test]
    fn rigid_job_gets_no_action() {
        let mut s = slurm(16);
        let a = s.submit(JobRequest::rigid("a", 4), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn alone_with_preference_expands_to_max() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 8, env(2, 32, Some(8))), t(0));
        s.schedule(t(0));
        // Only job in the system: expand to the envelope max even though
        // the preference is satisfied (Algorithm 1 line 2).
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 32 });
    }

    #[test]
    fn preference_equal_and_not_alone_is_no_action() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 8, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn shrinks_exactly_to_preference() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 32, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        assert_eq!(
            s.decide_resize(a, t(1)),
            ResizeAction::Shrink {
                to: 8,
                beneficiary: None
            }
        );
    }

    #[test]
    fn expands_towards_preference_when_possible() {
        let mut s = slurm(64);
        let a = s.submit(JobRequest::flexible("a", 2, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 8 });
    }

    #[test]
    fn wide_expands_when_queue_empty() {
        let mut s = slurm(20);
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        s.schedule(t(0));
        // 16 free, chain 8, 16 both reachable: best is 16.
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 16 });
    }

    #[test]
    fn wide_expand_bounded_by_free_nodes() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 4, env(1, 16, None)), t(0));
        let _b = s.submit(JobRequest::rigid("b", 2), t(0));
        s.schedule(t(0));
        // 4 free: 8 reachable (delta 4), 16 not.
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::Expand { to: 8 });
    }

    #[test]
    fn wide_shrinks_minimally_for_queued_job_and_boosts_it() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        s.schedule(t(0));
        let q = s.submit(JobRequest::rigid("q", 5), t(1));
        s.schedule(t(1)); // q cannot start: needs 5, 2 free
        let action = s.decide_resize(a, t(2));
        // Shrink chain from 8: [4, 2, 1]; need to release >= 3 → to=4.
        assert_eq!(
            action,
            ResizeAction::Shrink {
                to: 4,
                beneficiary: Some(q)
            }
        );
        assert!(s.job(q).unwrap().boosted, "beneficiary must be boosted");
    }

    #[test]
    fn wide_expands_when_queued_job_cannot_be_helped() {
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 4, env(4, 16, None)), t(0));
        s.schedule(t(0));
        // Queued job needs 10; even shrinking to min=4 releases 0 extra.
        let _q = s.submit(JobRequest::rigid("q", 10), t(1));
        s.schedule(t(1));
        // 6 free: expand to 8 (delta 4 <= 6); 16 unreachable.
        assert_eq!(s.decide_resize(a, t(2)), ResizeAction::Expand { to: 8 });
    }

    #[test]
    fn startable_pending_job_is_not_a_shrink_trigger() {
        let mut s = slurm(20);
        let a = s.submit(JobRequest::flexible("a", 8, env(1, 16, None)), t(0));
        s.schedule(t(0));
        // This job fits in the 12 free nodes; policy must skip it and
        // expand instead (it will start on its own).
        let _q = s.submit(JobRequest::rigid("q", 2), t(1));
        match s.decide_resize(a, t(2)) {
            ResizeAction::Expand { .. } => {}
            other => panic!("expected expand, got {other:?}"),
        }
    }

    #[test]
    fn saturated_job_gets_no_action() {
        let mut s = slurm(40);
        let a = s.submit(JobRequest::flexible("a", 16, env(1, 16, None)), t(0));
        s.schedule(t(0));
        assert_eq!(s.decide_resize(a, t(1)), ResizeAction::NoAction);
    }

    #[test]
    fn pending_job_itself_gets_no_action() {
        let mut s = slurm(4);
        let hog = s.submit(JobRequest::rigid("hog", 4), t(0));
        s.schedule(t(0));
        let p = s.submit(JobRequest::flexible("p", 2, env(1, 4, None)), t(1));
        assert_eq!(s.decide_resize(p, t(2)), ResizeAction::NoAction);
        let _ = hog;
    }

    #[test]
    fn preferred_job_blocked_from_preference_falls_to_wide() {
        // Preference is 8 but only 2 nodes free → cannot expand to
        // preferred; wide optimization finds a queued job to help.
        let mut s = slurm(10);
        let a = s.submit(JobRequest::flexible("a", 4, env(2, 32, Some(8))), t(0));
        let _b = s.submit(JobRequest::rigid("b", 4), t(0));
        s.schedule(t(0));
        let q = s.submit(JobRequest::rigid("q", 4), t(1));
        s.schedule(t(1));
        // a holds 4, b holds 4, 2 free. q needs 4, missing 2. Shrink chain
        // from 4: [2]; 4-2=2 >= 2 → shrink to 2 for q.
        assert_eq!(
            s.decide_resize(a, t(2)),
            ResizeAction::Shrink {
                to: 2,
                beneficiary: Some(q)
            }
        );
    }
}
