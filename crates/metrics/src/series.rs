//! Event-driven step functions over virtual time.

use dmr_sim::SimTime;
use serde::Serialize;

/// A right-continuous step function sampled at change points: the value is
/// `points[i].1` from `points[i].0` until the next point. Used for
/// allocated-node counts and running/completed job counts over a workload
/// execution.
#[derive(Clone, Debug, Default, Serialize)]
pub struct StepSeries {
    points: Vec<(u64, f64)>, // (micros, value)
}

impl StepSeries {
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Records `value` from instant `t` on. Recording an identical value
    /// is a no-op; recording at an existing timestamp overwrites (the last
    /// write at an instant wins, matching event processing order), and an
    /// overwrite that lands back on the preceding point's value *removes*
    /// the point. That last rule makes the series canonical: it depends
    /// only on the final value at each instant, never on how many
    /// intermediate same-instant writes a feeder produced — so an
    /// event-batching driver and an event-at-a-time driver that agree on
    /// end-of-instant state record bit-identical series (a redundant
    /// plateau point would otherwise split one integral segment in two
    /// and shift the sum by an ulp).
    pub fn record(&mut self, t: SimTime, value: f64) {
        let n = self.points.len();
        if n > 0 {
            let last = self.points[n - 1];
            debug_assert!(t.as_micros() >= last.0, "series must advance in time");
            if last.0 == t.as_micros() {
                if n >= 2 && self.points[n - 2].1 == value {
                    self.points.pop();
                } else {
                    self.points[n - 1].1 = value;
                }
                return;
            }
            if last.1 == value {
                return;
            }
        }
        self.points.push((t.as_micros(), value));
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Value at instant `t` (0 before the first point).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self
            .points
            .binary_search_by_key(&t.as_micros(), |&(m, _)| m)
        {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Exact integral of the step function over `[from, to]`, in
    /// value·seconds.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cur_t = from;
        let mut cur_v = self.value_at(from);
        for &(m, v) in &self.points {
            let pt = SimTime(m);
            if pt <= from {
                continue;
            }
            if pt >= to {
                break;
            }
            acc += cur_v * pt.since(cur_t).as_secs_f64();
            cur_t = pt;
            cur_v = v;
        }
        acc + cur_v * to.since(cur_t).as_secs_f64()
    }

    /// Mean value over `[from, to]`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral(from, to) / span
        }
    }

    /// Maximum recorded value.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// The change points as `(seconds, value)` for plotting.
    pub fn points_secs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points
            .iter()
            .map(|&(m, v)| (SimTime(m).as_secs_f64(), v))
    }

    /// Resamples onto a uniform grid of `n` buckets over `[0, end]`
    /// (bucket mean), for compact terminal plots.
    ///
    /// Bucket edges are computed in integer microseconds (`i · end / n`),
    /// so they stay exact for end times beyond 2^53 µs where an f64
    /// round-trip would drift, and the last bucket always ends exactly at
    /// `end`.
    pub fn resample(&self, end: SimTime, n: usize) -> Vec<f64> {
        if n == 0 || end == SimTime::ZERO {
            return Vec::new();
        }
        let e = end.as_micros() as u128;
        let edge = |i: usize| SimTime((i as u128 * e / n as u128) as u64);
        (0..n).map(|i| self.mean(edge(i), edge(i + 1))).collect()
    }
}

/// The O(1)-memory counterpart of [`StepSeries`]: same `record` contract
/// (monotone time, same-instant overwrite, identical-value coalescing)
/// but instead of buffering change points it maintains the running
/// integral, the maximum, and the change count online.
///
/// The accumulation replays the exact floating-point operation sequence
/// of [`StepSeries::integral`] from `t = 0`, so for any record sequence
/// [`OnlineSeries::integral_to`] / [`OnlineSeries::mean_to`] /
/// [`OnlineSeries::max_value`] are **bit-for-bit equal** to the buffered
/// series' `integral` / `mean` / `max_value` (pinned by proptests in
/// `tests/metrics_properties.rs`). This is what lets the streaming
/// telemetry path report the same utilization figures as the buffered
/// one.
#[derive(Clone, Debug, Default)]
pub struct OnlineSeries {
    /// Integral of the step function over `[0, tail[0].0]`: every change
    /// point *before* the uncommitted tail has its segment folded in.
    acc: f64,
    /// The last one or two retained change points `(micros, value)`, not
    /// yet folded into `acc`. Two are kept because the most recent point
    /// can still be *popped* — a same-instant overwrite back to its
    /// predecessor's value removes it (see [`StepSeries::record`]) — and
    /// the predecessor's segment must then stay unbroken: committing it
    /// early and extending with a second product would split one buffered
    /// multiply into two and lose bit-equality.
    tail: [(u64, f64); 2],
    tail_len: u8,
    /// Max over committed change points (the tail is folded in on query).
    committed_max: f64,
    changes: usize,
}

impl OnlineSeries {
    pub fn new() -> Self {
        OnlineSeries::default()
    }

    /// Records `value` from instant `t` on; same semantics as
    /// [`StepSeries::record`], including the canonicalising pop on a
    /// same-instant overwrite back to the preceding value.
    pub fn record(&mut self, t: SimTime, value: f64) {
        if self.tail_len == 0 {
            self.tail[0] = (t.as_micros(), value);
            self.tail_len = 1;
            self.changes = 1;
            return;
        }
        let li = usize::from(self.tail_len - 1);
        debug_assert!(
            t.as_micros() >= self.tail[li].0,
            "series must advance in time"
        );
        if self.tail[li].0 == t.as_micros() {
            if li == 1 && self.tail[0].1 == value {
                self.tail_len = 1;
                self.changes -= 1;
            } else {
                self.tail[li].1 = value;
            }
            return;
        }
        if self.tail[li].1 == value {
            return;
        }
        if self.tail_len == 2 {
            // A third point finalises the oldest tail segment: the middle
            // point survived same-instant overwrites, so its start time is
            // fixed and the segment can be committed.
            let (t0, v0) = self.tail[0];
            self.acc += v0 * SimTime(self.tail[1].0).since(SimTime(t0)).as_secs_f64();
            self.committed_max = self.committed_max.max(v0);
            self.tail[0] = self.tail[1];
        }
        self.tail[1] = (t.as_micros(), value);
        self.tail_len = 2;
        self.changes += 1;
    }

    /// Exact integral over `[0, to]`, value·seconds. `to` must not
    /// precede the last recorded change (the buffered equivalent of
    /// integrating past the end of the series).
    pub fn integral_to(&self, to: SimTime) -> f64 {
        if self.tail_len == 0 {
            return 0.0;
        }
        let (lt, lv) = self.tail[usize::from(self.tail_len - 1)];
        debug_assert!(to.as_micros() >= lt, "integral_to before last change");
        let mut acc = self.acc;
        if self.tail_len == 2 {
            let (t0, v0) = self.tail[0];
            acc += v0 * SimTime(self.tail[1].0).since(SimTime(t0)).as_secs_f64();
        }
        acc + lv * to.since(SimTime(lt)).as_secs_f64()
    }

    /// Mean value over `[0, to]`.
    pub fn mean_to(&self, to: SimTime) -> f64 {
        let span = to.since(SimTime::ZERO).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral_to(to) / span
        }
    }

    /// Maximum recorded value (0 when empty), matching
    /// [`StepSeries::max_value`].
    pub fn max_value(&self) -> f64 {
        let mut m = self.committed_max;
        for i in 0..usize::from(self.tail_len) {
            m = m.max(self.tail[i].1);
        }
        m
    }

    /// Number of retained change points, matching [`StepSeries::len`].
    pub fn changes(&self) -> usize {
        self.changes
    }

    /// Value currently in effect (0 before the first record).
    pub fn value(&self) -> f64 {
        if self.tail_len == 0 {
            0.0
        } else {
            self.tail[usize::from(self.tail_len - 1)].1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_follows_steps() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(10), 3.0);
        s.record(t(20), 0.0);
        assert_eq!(s.value_at(t(0)), 1.0);
        assert_eq!(s.value_at(t(5)), 1.0);
        assert_eq!(s.value_at(t(10)), 3.0);
        assert_eq!(s.value_at(t(19)), 3.0);
        assert_eq!(s.value_at(t(25)), 0.0);
    }

    #[test]
    fn integral_is_exact() {
        let mut s = StepSeries::new();
        s.record(t(0), 2.0);
        s.record(t(10), 4.0);
        s.record(t(20), 0.0);
        // 10s at 2 + 10s at 4 = 60
        assert_eq!(s.integral(t(0), t(20)), 60.0);
        // Partial windows.
        assert_eq!(s.integral(t(5), t(15)), 2.0 * 5.0 + 4.0 * 5.0);
        assert_eq!(s.integral(t(0), t(40)), 60.0);
        assert_eq!(s.integral(t(15), t(15)), 0.0);
    }

    #[test]
    fn mean_over_window() {
        let mut s = StepSeries::new();
        s.record(t(0), 10.0);
        s.record(t(50), 0.0);
        assert_eq!(s.mean(t(0), t(100)), 5.0);
    }

    #[test]
    fn duplicate_values_collapse() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(5), 1.0);
        s.record(t(9), 1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(5), 2.0);
        s.record(t(5), 7.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(t(5)), 7.0);
    }

    #[test]
    fn same_instant_revert_drops_redundant_point() {
        let mut s = StepSeries::new();
        let mut o = OnlineSeries::new();
        for (ts, v) in [(0, 2.0), (5, 6.0), (5, 2.0)] {
            s.record(t(ts), v);
            o.record(t(ts), v);
        }
        // The instant-5 point reverted to the running value: no trace, and
        // the integral stays one unbroken segment (bit-exact).
        assert_eq!(s.len(), 1);
        assert_eq!(o.changes(), 1);
        let whole: f64 = 2.0 * 10.0;
        assert_eq!(s.integral(t(0), t(10)).to_bits(), whole.to_bits());
        assert_eq!(o.integral_to(t(10)).to_bits(), whole.to_bits());
        assert_eq!(s.max_value(), 2.0);
        assert_eq!(o.max_value(), 2.0);
        // A later differing write at the same instant re-creates the point.
        s.record(t(5), 9.0);
        o.record(t(5), 9.0);
        assert_eq!(s.len(), 2);
        assert_eq!(o.changes(), 2);
        assert_eq!(s.value_at(t(7)), 9.0);
        assert_eq!(o.value(), 9.0);
    }

    #[test]
    fn before_first_point_is_zero() {
        let mut s = StepSeries::new();
        s.record(t(10), 5.0);
        assert_eq!(s.value_at(t(3)), 0.0);
        assert_eq!(s.integral(t(0), t(10)), 0.0);
    }

    #[test]
    fn resample_buckets() {
        let mut s = StepSeries::new();
        s.record(t(0), 4.0);
        s.record(t(50), 8.0);
        let r = s.resample(t(100), 4);
        assert_eq!(r, vec![4.0, 4.0, 8.0, 8.0]);
        assert!(s.resample(SimTime::ZERO, 4).is_empty());
        assert!(s.resample(t(100), 0).is_empty());
    }

    #[test]
    fn max_value() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(1), 9.0);
        s.record(t(2), 3.0);
        assert_eq!(s.max_value(), 9.0);
    }

    #[test]
    fn resample_edges_are_exact_beyond_f64_precision() {
        // end = 3e18 + 3 µs: the old `u64 → f64 → u64` edge computation
        // rounded the first bucket edge to 1_000_000_000_000_000_128
        // instead of the exact 1_000_000_000_000_000_001, leaking 127 µs
        // of the second step into the first bucket's mean.
        let end = SimTime(3_000_000_000_000_000_003);
        let edge = SimTime(1_000_000_000_000_000_001); // = end / 3 exactly
        let mut s = StepSeries::new();
        s.record(SimTime(0), 0.0);
        s.record(edge, 6.0);
        let r = s.resample(end, 3);
        assert_eq!(r[0], 0.0, "first bucket must end exactly at end/3");
        assert_eq!(r[1], 6.0);
        assert_eq!(r[2], 6.0);
    }

    #[test]
    fn online_series_mirrors_buffered_semantics() {
        let mut buffered = StepSeries::new();
        let mut online = OnlineSeries::new();
        // Exercise coalescing, same-instant overwrite and plateaus.
        for (ts, v) in [(0, 2.0), (5, 2.0), (10, 7.0), (10, 4.0), (30, 0.0)] {
            buffered.record(t(ts), v);
            online.record(t(ts), v);
        }
        let end = t(50);
        assert_eq!(
            buffered.integral(SimTime::ZERO, end),
            online.integral_to(end)
        );
        assert_eq!(buffered.mean(SimTime::ZERO, end), online.mean_to(end));
        assert_eq!(buffered.max_value(), online.max_value());
        assert_eq!(buffered.len(), online.changes());
        assert_eq!(online.value(), 0.0);
        assert_eq!(OnlineSeries::new().integral_to(end), 0.0);
        assert_eq!(OnlineSeries::new().max_value(), 0.0);
    }
}
