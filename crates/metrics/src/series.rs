//! Event-driven step functions over virtual time.

use dmr_sim::SimTime;
use serde::Serialize;

/// A right-continuous step function sampled at change points: the value is
/// `points[i].1` from `points[i].0` until the next point. Used for
/// allocated-node counts and running/completed job counts over a workload
/// execution.
#[derive(Clone, Debug, Default, Serialize)]
pub struct StepSeries {
    points: Vec<(u64, f64)>, // (micros, value)
}

impl StepSeries {
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Records `value` from instant `t` on. Recording an identical value
    /// is a no-op; recording at an existing timestamp overwrites (the last
    /// write at an instant wins, matching event processing order).
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(last) = self.points.last_mut() {
            debug_assert!(t.as_micros() >= last.0, "series must advance in time");
            if last.0 == t.as_micros() {
                last.1 = value;
                return;
            }
            if last.1 == value {
                return;
            }
        }
        self.points.push((t.as_micros(), value));
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Value at instant `t` (0 before the first point).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self
            .points
            .binary_search_by_key(&t.as_micros(), |&(m, _)| m)
        {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Exact integral of the step function over `[from, to]`, in
    /// value·seconds.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cur_t = from;
        let mut cur_v = self.value_at(from);
        for &(m, v) in &self.points {
            let pt = SimTime(m);
            if pt <= from {
                continue;
            }
            if pt >= to {
                break;
            }
            acc += cur_v * pt.since(cur_t).as_secs_f64();
            cur_t = pt;
            cur_v = v;
        }
        acc + cur_v * to.since(cur_t).as_secs_f64()
    }

    /// Mean value over `[from, to]`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.since(from).as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.integral(from, to) / span
        }
    }

    /// Maximum recorded value.
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// The change points as `(seconds, value)` for plotting.
    pub fn points_secs(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.points
            .iter()
            .map(|&(m, v)| (SimTime(m).as_secs_f64(), v))
    }

    /// Resamples onto a uniform grid of `n` buckets over `[0, end]`
    /// (bucket mean), for compact terminal plots.
    pub fn resample(&self, end: SimTime, n: usize) -> Vec<f64> {
        if n == 0 || end == SimTime::ZERO {
            return Vec::new();
        }
        let step = end.as_micros() as f64 / n as f64;
        (0..n)
            .map(|i| {
                let a = SimTime((i as f64 * step) as u64);
                let b = SimTime(((i + 1) as f64 * step) as u64);
                self.mean(a, b)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn value_at_follows_steps() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(10), 3.0);
        s.record(t(20), 0.0);
        assert_eq!(s.value_at(t(0)), 1.0);
        assert_eq!(s.value_at(t(5)), 1.0);
        assert_eq!(s.value_at(t(10)), 3.0);
        assert_eq!(s.value_at(t(19)), 3.0);
        assert_eq!(s.value_at(t(25)), 0.0);
    }

    #[test]
    fn integral_is_exact() {
        let mut s = StepSeries::new();
        s.record(t(0), 2.0);
        s.record(t(10), 4.0);
        s.record(t(20), 0.0);
        // 10s at 2 + 10s at 4 = 60
        assert_eq!(s.integral(t(0), t(20)), 60.0);
        // Partial windows.
        assert_eq!(s.integral(t(5), t(15)), 2.0 * 5.0 + 4.0 * 5.0);
        assert_eq!(s.integral(t(0), t(40)), 60.0);
        assert_eq!(s.integral(t(15), t(15)), 0.0);
    }

    #[test]
    fn mean_over_window() {
        let mut s = StepSeries::new();
        s.record(t(0), 10.0);
        s.record(t(50), 0.0);
        assert_eq!(s.mean(t(0), t(100)), 5.0);
    }

    #[test]
    fn duplicate_values_collapse() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(5), 1.0);
        s.record(t(9), 1.0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(5), 2.0);
        s.record(t(5), 7.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(t(5)), 7.0);
    }

    #[test]
    fn before_first_point_is_zero() {
        let mut s = StepSeries::new();
        s.record(t(10), 5.0);
        assert_eq!(s.value_at(t(3)), 0.0);
        assert_eq!(s.integral(t(0), t(10)), 0.0);
    }

    #[test]
    fn resample_buckets() {
        let mut s = StepSeries::new();
        s.record(t(0), 4.0);
        s.record(t(50), 8.0);
        let r = s.resample(t(100), 4);
        assert_eq!(r, vec![4.0, 4.0, 8.0, 8.0]);
        assert!(s.resample(SimTime::ZERO, 4).is_empty());
        assert!(s.resample(t(100), 0).is_empty());
    }

    #[test]
    fn max_value() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(1), 9.0);
        s.record(t(2), 3.0);
        assert_eq!(s.max_value(), 9.0);
    }
}
