//! Minimal CSV/plot output helpers (buffered, no external deps).

use std::borrow::Cow;
use std::io::{self, Write};

use crate::series::StepSeries;
use crate::summary::WorkloadSummary;

/// Escapes one CSV field per RFC 4180: fields containing a comma, a
/// double quote, or a line break are wrapped in double quotes with inner
/// quotes doubled; everything else passes through unchanged (borrowed).
///
/// Free-form labels — scenario × workload names, policy labels — flow
/// into CSV rows; an unescaped comma would silently shift every column
/// after it.
pub fn escape_field(field: &str) -> Cow<'_, str> {
    if field.contains(['"', ',', '\n', '\r']) {
        Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        Cow::Borrowed(field)
    }
}

/// Writes a step series as `seconds,value` rows.
pub fn write_series(w: &mut impl Write, header: &str, s: &StepSeries) -> io::Result<()> {
    writeln!(w, "seconds,{header}")?;
    for (t, v) in s.points_secs() {
        writeln!(w, "{t:.3},{v}")?;
    }
    Ok(())
}

/// Writes summaries as one CSV row per label, including the P50/P95/P99
/// tail columns of the waiting and completion distributions.
pub fn write_summaries(w: &mut impl Write, rows: &[(&str, &WorkloadSummary)]) -> io::Result<()> {
    writeln!(
        w,
        "label,jobs,makespan_s,utilization,avg_wait_s,avg_exec_s,avg_completion_s,\
         p50_wait_s,p95_wait_s,p99_wait_s,p50_compl_s,p95_compl_s,p99_compl_s,reconfigurations"
    )?;
    for (label, s) in rows {
        writeln!(
            w,
            "{},{},{:.1},{:.4},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{}",
            escape_field(label),
            s.jobs,
            s.makespan_s,
            s.utilization,
            s.avg_waiting_s,
            s.avg_execution_s,
            s.avg_completion_s,
            s.waiting_q.p50_s,
            s.waiting_q.p95_s,
            s.waiting_q.p99_s,
            s.completion_q.p50_s,
            s.completion_q.p95_s,
            s.completion_q.p99_s,
            s.reconfigurations
        )?;
    }
    Ok(())
}

/// Renders a series as a crude ASCII sparkline (for terminal reports).
pub fn sparkline(s: &StepSeries, end: dmr_sim::SimTime, width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let samples = s.resample(end, width);
    let max = samples.iter().copied().fold(f64::MIN_POSITIVE, f64::max);
    samples
        .iter()
        .map(|&v| {
            let idx = ((v / max) * (BARS.len() - 1) as f64).round() as usize;
            BARS[idx.min(BARS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_sim::SimTime;

    #[test]
    fn series_csv_round_trip() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(0), 2.0);
        s.record(SimTime::from_secs(10), 5.0);
        let mut buf = Vec::new();
        write_series(&mut buf, "nodes", &s).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "seconds,nodes");
        assert_eq!(lines[1], "0.000,2");
        assert_eq!(lines[2], "10.000,5");
    }

    fn summary(
        makespan_s: f64,
        utilization: f64,
        avg_waiting_s: f64,
        avg_execution_s: f64,
        avg_completion_s: f64,
        jobs: usize,
        reconfigurations: u32,
    ) -> WorkloadSummary {
        WorkloadSummary {
            makespan_s,
            utilization,
            avg_waiting_s,
            avg_execution_s,
            avg_completion_s,
            waiting_q: crate::Quantiles::ZERO,
            execution_q: crate::Quantiles::ZERO,
            completion_q: crate::Quantiles::ZERO,
            jobs,
            reconfigurations,
            energy_to_solution_j: 0.0,
            avg_watts: 0.0,
            class_utilization: Vec::new(),
            failures: 0,
            requeues: 0,
            lost_work_s: 0.0,
            goodput_ratio: 1.0,
            restart_p95_s: 0.0,
        }
    }

    #[test]
    fn summary_csv_has_all_columns() {
        let s = summary(100.0, 0.5, 10.0, 20.0, 30.0, 7, 3);
        let mut buf = Vec::new();
        write_summaries(&mut buf, &[("fixed", &s)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("fixed,7,100.0,0.5000,10.0,20.0,30.0,0.0,0.0,0.0,0.0,0.0,0.0,3"),
            "row missing from:\n{text}"
        );
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("p95_wait_s") && lines[0].contains("p99_compl_s"));
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
    }

    #[test]
    fn labels_with_commas_and_quotes_are_escaped() {
        let s = summary(1.0, 1.0, 0.0, 1.0, 1.0, 1, 0);
        let mut buf = Vec::new();
        write_summaries(&mut buf, &[("fs50,n20 \"smoke\"", &s), ("plain", &s)]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let rows: Vec<&str> = text.lines().collect();
        // The quoted field counts as one column: every row keeps the
        // header's column count.
        assert!(rows[1].starts_with("\"fs50,n20 \"\"smoke\"\"\","));
        assert!(rows[2].starts_with("plain,"));
        assert_eq!(rows[2].split(',').count(), rows[0].split(',').count());
    }

    #[test]
    fn escape_field_round_trips_plain_fields_borrowed() {
        assert!(matches!(
            escape_field("fs50-n20-sync"),
            std::borrow::Cow::Borrowed(_)
        ));
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn sparkline_has_requested_width() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(0), 1.0);
        s.record(SimTime::from_secs(50), 8.0);
        let line = sparkline(&s, SimTime::from_secs(100), 20);
        assert_eq!(line.chars().count(), 20);
    }
}
