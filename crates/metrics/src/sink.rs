//! Streaming metric sinks: where the driver's telemetry goes.
//!
//! The `dmr-core` driver publishes two event families while a workload
//! runs — one *sample* of the evolution quantities after every simulation
//! event, and one *job outcome* as each job completes. A [`MetricsSink`]
//! consumes both. Two implementations ship:
//!
//! * [`SeriesRecorder`] — the buffered recorder: full [`StepSeries`] for
//!   the paper's timeline figures plus the complete `Vec<JobOutcome>`.
//!   Memory grows with trace length; right for the figure pipeline.
//! * [`OnlineAccumulator`] — the bounded-memory recorder: running
//!   integrals ([`OnlineSeries`]) and log-bucketed histograms
//!   ([`LogHistogram`]), O(1) in both event and job count, producing a
//!   [`WorkloadSummary`] bit-identical to the buffered path. The default
//!   for sweeps and long-trace replays.
//!
//! Custom sinks (live dashboards, protocol exporters) implement the trait
//! and run through `dmr_core::run_experiment_with_sink`.

use dmr_sim::SimTime;

use crate::hist::{LogHistogram, Quantiles};
use crate::series::{OnlineSeries, StepSeries};
use crate::summary::{JobOutcome, SummaryInputs, WorkloadSummary};

/// Consumer of per-event telemetry from a workload run.
pub trait MetricsSink {
    /// One sample of the evolution quantities, taken after every handled
    /// simulation event at instant `now`.
    fn on_sample(&mut self, now: SimTime, allocated: f64, running: f64, completed: f64);

    /// One finished job's accounting, delivered at its completion
    /// instant. `seq` is the job's submission sequence number (0-based
    /// arrival index) — jobs complete out of submission order, so sinks
    /// that need submission order key on it.
    fn on_job(&mut self, seq: u64, outcome: JobOutcome);
}

/// The buffered sink: full evolution series + every job outcome.
#[derive(Clone, Debug, Default)]
pub struct SeriesRecorder {
    allocation: StepSeries,
    running: StepSeries,
    completed: StepSeries,
    outcomes: Vec<(u64, JobOutcome)>,
}

impl SeriesRecorder {
    pub fn new() -> Self {
        SeriesRecorder::default()
    }

    /// Consumes the recorder: `(allocation, running, completed,
    /// outcomes)`, with outcomes restored to submission order.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(mut self) -> (StepSeries, StepSeries, StepSeries, Vec<JobOutcome>) {
        self.outcomes.sort_by_key(|&(seq, _)| seq);
        (
            self.allocation,
            self.running,
            self.completed,
            self.outcomes.into_iter().map(|(_, o)| o).collect(),
        )
    }
}

impl MetricsSink for SeriesRecorder {
    fn on_sample(&mut self, now: SimTime, allocated: f64, running: f64, completed: f64) {
        self.allocation.record(now, allocated);
        self.running.record(now, running);
        self.completed.record(now, completed);
    }

    fn on_job(&mut self, seq: u64, outcome: JobOutcome) {
        self.outcomes.push((seq, outcome));
    }
}

/// The bounded-memory sink: exact online integrals plus log-bucketed
/// duration histograms. Never retains a per-job or per-event record, so a
/// million-job replay runs in constant telemetry memory, and
/// [`OnlineAccumulator::summary`] is bit-identical to what
/// [`WorkloadSummary::compute`] produces from the equivalent buffered run
/// (pinned by `tests/streaming_equivalence.rs`).
#[derive(Clone, Debug)]
pub struct OnlineAccumulator {
    allocation: OnlineSeries,
    running: OnlineSeries,
    completed: OnlineSeries,
    waiting: LogHistogram,
    execution: LogHistogram,
    completion: LogHistogram,
    inputs: SummaryInputs,
}

impl Default for OnlineAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineAccumulator {
    pub fn new() -> Self {
        OnlineAccumulator {
            allocation: OnlineSeries::new(),
            running: OnlineSeries::new(),
            completed: OnlineSeries::new(),
            waiting: LogHistogram::new(),
            execution: LogHistogram::new(),
            completion: LogHistogram::new(),
            inputs: SummaryInputs::new(),
        }
    }

    /// The summary of everything accumulated so far.
    ///
    /// Bit-identity with [`WorkloadSummary::compute`] rests on two
    /// invariants the `dmr-core` driver guarantees and custom feeders
    /// must uphold: the allocation sample is **zero before the first
    /// completed job's submission** (the buffered path integrates over
    /// `[first_submit, last_end]`, the online integral from 0 — equal
    /// only while the prefix contributes nothing), and **no allocation
    /// change lands after the last completion** (the online integral
    /// cannot rewind past its last retained change point). In a
    /// scheduler-driven run both hold by construction: nothing can be
    /// allocated before the first job exists, and every node is free
    /// after the last one completes.
    pub fn summary(&self, total_nodes: u32) -> WorkloadSummary {
        let mut inputs = self.inputs.clone();
        if inputs.jobs > 0 {
            inputs.node_seconds = self
                .allocation
                .integral_to(SimTime::from_secs_f64(inputs.last_end_s));
        }
        inputs.waiting_q = Quantiles::from_histogram(&self.waiting);
        inputs.execution_q = Quantiles::from_histogram(&self.execution);
        inputs.completion_q = Quantiles::from_histogram(&self.completion);
        inputs.assemble(total_nodes)
    }

    /// The online allocation series (integral / max / change count).
    pub fn allocation(&self) -> &OnlineSeries {
        &self.allocation
    }

    /// The online running-job-count series (e.g. `max_value()` is the
    /// peak number of concurrently running jobs).
    pub fn running(&self) -> &OnlineSeries {
        &self.running
    }

    /// The online completed-job-count series (monotone; `value()` is the
    /// current completion count).
    pub fn completed(&self) -> &OnlineSeries {
        &self.completed
    }

    /// The waiting-time histogram.
    pub fn waiting(&self) -> &LogHistogram {
        &self.waiting
    }

    /// The execution-time histogram.
    pub fn execution(&self) -> &LogHistogram {
        &self.execution
    }

    /// The completion-time histogram.
    pub fn completion(&self) -> &LogHistogram {
        &self.completion
    }

    /// Jobs folded in so far.
    pub fn jobs(&self) -> u64 {
        self.inputs.jobs
    }
}

impl MetricsSink for OnlineAccumulator {
    fn on_sample(&mut self, now: SimTime, allocated: f64, running: f64, completed: f64) {
        self.allocation.record(now, allocated);
        self.running.record(now, running);
        self.completed.record(now, completed);
    }

    fn on_job(&mut self, _seq: u64, outcome: JobOutcome) {
        self.inputs.fold_job(
            &outcome,
            &mut self.waiting,
            &mut self.execution,
            &mut self.completion,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn outcome(submit: u64, start: u64, end: u64) -> JobOutcome {
        JobOutcome::new(t(submit), t(start), t(end), 0)
    }

    #[test]
    fn recorder_restores_submission_order() {
        let mut rec = SeriesRecorder::new();
        // Jobs complete out of submission order.
        rec.on_job(2, outcome(20, 21, 30));
        rec.on_job(0, outcome(0, 1, 90));
        rec.on_job(1, outcome(10, 11, 50));
        let (_, _, _, outcomes) = rec.into_parts();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes[0].submit, 0.0);
        assert_eq!(outcomes[1].submit, 10.0);
        assert_eq!(outcomes[2].submit, 20.0);
    }

    #[test]
    fn online_summary_matches_buffered_compute() {
        // No allocation before the first submission (t = 5), exactly as
        // the driver produces: nothing can be allocated before a job
        // exists.
        let samples = [(5u64, 3.0), (10, 7.0), (40, 2.0), (90, 0.0)];
        let mut rec = SeriesRecorder::new();
        let mut acc = OnlineAccumulator::new();
        for &(ts, v) in &samples {
            rec.on_sample(t(ts), v, 0.0, 0.0);
            acc.on_sample(t(ts), v, 0.0, 0.0);
        }
        let jobs = [outcome(5, 6, 40), outcome(7, 30, 90), outcome(12, 12, 60)];
        for (i, o) in jobs.iter().enumerate() {
            rec.on_job(i as u64, *o);
        }
        // Online sees them in completion order.
        acc.on_job(0, jobs[0]);
        acc.on_job(2, jobs[2]);
        acc.on_job(1, jobs[1]);
        let (alloc, _, _, outcomes) = rec.into_parts();
        let buffered = WorkloadSummary::compute(&outcomes, &alloc, 10);
        let online = acc.summary(10);
        assert_eq!(buffered.makespan_s, online.makespan_s);
        assert_eq!(buffered.utilization, online.utilization);
        assert_eq!(buffered.avg_waiting_s, online.avg_waiting_s);
        assert_eq!(buffered.avg_completion_s, online.avg_completion_s);
        assert_eq!(buffered.completion_q, online.completion_q);
        assert_eq!(buffered.jobs, online.jobs);
    }

    #[test]
    fn accumulator_is_constant_size() {
        // No per-job state: folding many jobs leaves the struct size
        // untouched (histogram bins + a handful of scalars).
        let mut acc = OnlineAccumulator::new();
        for i in 0..10_000u64 {
            acc.on_sample(t(i), (i % 20) as f64, 1.0, i as f64);
            acc.on_job(i, outcome(i, i + 1, i + 10));
        }
        assert_eq!(acc.jobs(), 10_000);
        assert_eq!(acc.waiting().count(), 10_000);
        let s = acc.summary(20);
        assert_eq!(s.jobs, 10_000);
        assert!(s.makespan_s > 0.0);
    }
}
