//! Workload-level summary statistics (the rows of Table II).

use dmr_sim::{SimTime, Span};
use serde::Serialize;

use crate::series::StepSeries;

/// Accounting for one finished job.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct JobOutcome {
    pub submit: SimTimeSecs,
    pub start: SimTimeSecs,
    pub end: SimTimeSecs,
    /// Completed reconfigurations.
    pub reconfigurations: u32,
}

/// Seconds wrapper so outcomes serialize naturally.
pub type SimTimeSecs = f64;

impl JobOutcome {
    pub fn new(submit: SimTime, start: SimTime, end: SimTime, reconfigurations: u32) -> Self {
        JobOutcome {
            submit: submit.as_secs_f64(),
            start: start.as_secs_f64(),
            end: end.as_secs_f64(),
            reconfigurations,
        }
    }

    pub fn waiting_s(&self) -> f64 {
        (self.start - self.submit).max(0.0)
    }

    pub fn execution_s(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    pub fn completion_s(&self) -> f64 {
        (self.end - self.submit).max(0.0)
    }
}

/// The aggregate measures the paper reports per workload (Table II plus the
/// bar-chart quantities of Figures 3, 7–11).
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadSummary {
    /// Total workload execution time (first submission to last completion),
    /// seconds.
    pub makespan_s: f64,
    /// Average resource-utilization rate in `[0, 1]`: node-seconds
    /// allocated over `total_nodes * makespan`.
    pub utilization: f64,
    /// Average job waiting time, seconds.
    pub avg_waiting_s: f64,
    /// Average job execution time, seconds.
    pub avg_execution_s: f64,
    /// Average job completion (waiting + execution) time, seconds.
    pub avg_completion_s: f64,
    /// Jobs in the workload.
    pub jobs: usize,
    /// Total reconfigurations across all jobs.
    pub reconfigurations: u32,
}

impl WorkloadSummary {
    /// Builds the summary from per-job outcomes and the allocation series.
    ///
    /// `allocation` must be the step series of *allocated node count* over
    /// time; `total_nodes` the cluster size.
    pub fn compute(outcomes: &[JobOutcome], allocation: &StepSeries, total_nodes: u32) -> Self {
        let jobs = outcomes.len();
        let makespan_s = outcomes.iter().map(|o| o.end).fold(0.0, f64::max);
        let n = jobs.max(1) as f64;
        let avg_waiting_s = outcomes.iter().map(|o| o.waiting_s()).sum::<f64>() / n;
        let avg_execution_s = outcomes.iter().map(|o| o.execution_s()).sum::<f64>() / n;
        let avg_completion_s = outcomes.iter().map(|o| o.completion_s()).sum::<f64>() / n;
        let end = SimTime::from_secs_f64(makespan_s);
        let node_seconds = allocation.integral(SimTime::ZERO, end);
        let capacity = total_nodes as f64 * makespan_s;
        let utilization = if capacity > 0.0 {
            node_seconds / capacity
        } else {
            0.0
        };
        WorkloadSummary {
            makespan_s,
            utilization,
            avg_waiting_s,
            avg_execution_s,
            avg_completion_s,
            jobs,
            reconfigurations: outcomes.iter().map(|o| o.reconfigurations).sum(),
        }
    }

    /// Makespan as a [`Span`] for callers still in virtual time.
    pub fn makespan(&self) -> Span {
        Span::from_secs_f64(self.makespan_s)
    }
}

/// The "Gain" the paper annotates its charts with: percentage reduction of
/// `flexible` relative to `fixed`. Positive = flexible is better (smaller).
pub fn gain_pct(fixed: f64, flexible: f64) -> f64 {
    if fixed == 0.0 {
        return 0.0;
    }
    (fixed - flexible) / fixed * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn outcome_spans() {
        let o = JobOutcome::new(t(10), t(30), t(90), 2);
        assert_eq!(o.waiting_s(), 20.0);
        assert_eq!(o.execution_s(), 60.0);
        assert_eq!(o.completion_s(), 80.0);
    }

    #[test]
    fn summary_averages() {
        let outcomes = vec![
            JobOutcome::new(t(0), t(0), t(100), 0),
            JobOutcome::new(t(0), t(100), t(200), 1),
        ];
        let mut alloc = StepSeries::new();
        alloc.record(t(0), 10.0);
        alloc.record(t(200), 0.0);
        let s = WorkloadSummary::compute(&outcomes, &alloc, 10);
        assert_eq!(s.makespan_s, 200.0);
        assert_eq!(s.avg_waiting_s, 50.0);
        assert_eq!(s.avg_execution_s, 100.0);
        assert_eq!(s.avg_completion_s, 150.0);
        assert!((s.utilization - 1.0).abs() < 1e-9);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.reconfigurations, 1);
    }

    #[test]
    fn utilization_half() {
        let outcomes = vec![JobOutcome::new(t(0), t(0), t(100), 0)];
        let mut alloc = StepSeries::new();
        alloc.record(t(0), 5.0);
        let s = WorkloadSummary::compute(&outcomes, &alloc, 10);
        assert!((s.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_workload_is_zeroes() {
        let s = WorkloadSummary::compute(&[], &StepSeries::new(), 10);
        assert_eq!(s.makespan_s, 0.0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.jobs, 0);
    }

    #[test]
    fn gain_matches_paper_convention() {
        // Figure 10 style: fixed 100, flexible 58 → 42 % gain.
        assert!((gain_pct(100.0, 58.0) - 42.0).abs() < 1e-9);
        // Negative gain when flexible is worse (Figure 7 small loads).
        assert!(gain_pct(100.0, 107.0) < 0.0);
        assert_eq!(gain_pct(0.0, 5.0), 0.0);
    }
}
