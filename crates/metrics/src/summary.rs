//! Workload-level summary statistics (the rows of Table II).

use dmr_sim::{SimTime, Span};
use serde::Serialize;

use crate::hist::{mean_secs, LogHistogram, Quantiles};
use crate::series::StepSeries;

/// Accounting for one finished job.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct JobOutcome {
    pub submit: SimTimeSecs,
    pub start: SimTimeSecs,
    pub end: SimTimeSecs,
    /// Completed reconfigurations.
    pub reconfigurations: u32,
}

/// Seconds wrapper so outcomes serialize naturally.
pub type SimTimeSecs = f64;

impl JobOutcome {
    pub fn new(submit: SimTime, start: SimTime, end: SimTime, reconfigurations: u32) -> Self {
        JobOutcome {
            submit: submit.as_secs_f64(),
            start: start.as_secs_f64(),
            end: end.as_secs_f64(),
            reconfigurations,
        }
    }

    pub fn waiting_s(&self) -> f64 {
        (self.start - self.submit).max(0.0)
    }

    pub fn execution_s(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    pub fn completion_s(&self) -> f64 {
        (self.end - self.submit).max(0.0)
    }
}

/// The aggregate measures the paper reports per workload (Table II plus the
/// bar-chart quantities of Figures 3, 7–11), extended with the tail
/// percentiles multi-thousand-job campaigns report.
#[derive(Clone, Debug, Serialize)]
pub struct WorkloadSummary {
    /// Total workload execution time (first submission to last completion),
    /// seconds.
    pub makespan_s: f64,
    /// Average resource-utilization rate in `[0, 1]`: node-seconds
    /// allocated over `total_nodes * makespan`, with the integral running
    /// over `[first_submit, last_end]`.
    pub utilization: f64,
    /// Average job waiting time, seconds.
    pub avg_waiting_s: f64,
    /// Average job execution time, seconds.
    pub avg_execution_s: f64,
    /// Average job completion (waiting + execution) time, seconds.
    pub avg_completion_s: f64,
    /// P50/P95/P99 of the per-job waiting time, seconds.
    pub waiting_q: Quantiles,
    /// P50/P95/P99 of the per-job execution time, seconds.
    pub execution_q: Quantiles,
    /// P50/P95/P99 of the per-job completion time, seconds.
    pub completion_q: Quantiles,
    /// Jobs in the workload.
    pub jobs: usize,
    /// Total reconfigurations across all jobs.
    pub reconfigurations: u32,
    /// Total cluster energy over the run, joules — the
    /// `dmr_cluster::PowerMeter` integral the driver patches in after the
    /// run (zero when no meter ran, e.g. summaries parsed from CSV).
    pub energy_to_solution_j: f64,
    /// Mean cluster power over the metered window, watts (zero when no
    /// meter ran).
    pub avg_watts: f64,
    /// Per-machine-class busy fraction over the metered window, in class
    /// table order (empty when no meter ran; one entry on uniform
    /// clusters).
    pub class_utilization: Vec<f64>,
    /// Injected fault events that hit an `Up` node — patched in by the
    /// driver, zero under the zero-fault load (or when parsed from a
    /// pre-fault CSV).
    pub failures: u64,
    /// Running jobs killed by a node failure and resubmitted.
    pub requeues: u64,
    /// Compute time destroyed by failures (work since the last
    /// checkpoint image, summed over kills), seconds.
    pub lost_work_s: f64,
    /// Useful compute over useful-plus-lost compute: an exact `1.0`
    /// whenever nothing was lost (including every zero-fault run).
    pub goodput_ratio: f64,
    /// P95 failure-to-restart latency across requeued jobs, seconds.
    pub restart_p95_s: f64,
}

/// The order-independent ingredients of a [`WorkloadSummary`].
///
/// Both metric paths reduce to this struct — the buffered path by folding
/// a `Vec<JobOutcome>`, the streaming path by accumulating per job as it
/// completes — and both call [`SummaryInputs::assemble`], so the two
/// produce bit-identical summaries: sums are exact integer microseconds,
/// extremes are min/max folds, and the allocation integral replays the
/// same operation sequence (see [`crate::series::OnlineSeries`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct SummaryInputs {
    pub jobs: u64,
    pub reconfigurations: u32,
    /// Min over completed jobs' submit instants (`f64::INFINITY` when no
    /// job completed).
    pub first_submit_s: f64,
    /// Max over completed jobs' end instants.
    pub last_end_s: f64,
    pub wait_sum_us: u128,
    pub exec_sum_us: u128,
    pub compl_sum_us: u128,
    /// Allocation integral over `[first_submit, last_end]`, node-seconds.
    pub node_seconds: f64,
    pub waiting_q: Quantiles,
    pub execution_q: Quantiles,
    pub completion_q: Quantiles,
}

impl SummaryInputs {
    pub(crate) fn new() -> Self {
        SummaryInputs {
            first_submit_s: f64::INFINITY,
            ..SummaryInputs::default()
        }
    }

    /// Folds one job's accounting in (everything except the allocation
    /// integral, which the caller owns).
    pub(crate) fn fold_job(
        &mut self,
        outcome: &JobOutcome,
        waiting: &mut LogHistogram,
        execution: &mut LogHistogram,
        completion: &mut LogHistogram,
    ) {
        self.jobs += 1;
        self.reconfigurations += outcome.reconfigurations;
        self.first_submit_s = self.first_submit_s.min(outcome.submit);
        self.last_end_s = self.last_end_s.max(outcome.end);
        let w = Span::from_secs_f64(outcome.waiting_s());
        let e = Span::from_secs_f64(outcome.execution_s());
        let c = Span::from_secs_f64(outcome.completion_s());
        waiting.record(w);
        execution.record(e);
        completion.record(c);
        self.wait_sum_us += w.as_micros() as u128;
        self.exec_sum_us += e.as_micros() as u128;
        self.compl_sum_us += c.as_micros() as u128;
    }

    pub(crate) fn assemble(self, total_nodes: u32) -> WorkloadSummary {
        if self.jobs == 0 {
            return WorkloadSummary {
                makespan_s: 0.0,
                utilization: 0.0,
                avg_waiting_s: 0.0,
                avg_execution_s: 0.0,
                avg_completion_s: 0.0,
                waiting_q: Quantiles::ZERO,
                execution_q: Quantiles::ZERO,
                completion_q: Quantiles::ZERO,
                jobs: 0,
                reconfigurations: self.reconfigurations,
                energy_to_solution_j: 0.0,
                avg_watts: 0.0,
                class_utilization: Vec::new(),
                failures: 0,
                requeues: 0,
                lost_work_s: 0.0,
                goodput_ratio: 1.0,
                restart_p95_s: 0.0,
            };
        }
        // "First submission to last completion" — not `last_end - 0`,
        // which deflated both the makespan and the utilization for any
        // trace whose first job arrives after t = 0 (SWF replays, diurnal
        // sources).
        let makespan_s = (self.last_end_s - self.first_submit_s).max(0.0);
        let capacity = total_nodes as f64 * makespan_s;
        let utilization = if capacity > 0.0 {
            self.node_seconds / capacity
        } else {
            0.0
        };
        WorkloadSummary {
            makespan_s,
            utilization,
            avg_waiting_s: mean_secs(self.wait_sum_us, self.jobs),
            avg_execution_s: mean_secs(self.exec_sum_us, self.jobs),
            avg_completion_s: mean_secs(self.compl_sum_us, self.jobs),
            waiting_q: self.waiting_q,
            execution_q: self.execution_q,
            completion_q: self.completion_q,
            jobs: self.jobs as usize,
            reconfigurations: self.reconfigurations,
            energy_to_solution_j: 0.0,
            avg_watts: 0.0,
            class_utilization: Vec::new(),
            failures: 0,
            requeues: 0,
            lost_work_s: 0.0,
            goodput_ratio: 1.0,
            restart_p95_s: 0.0,
        }
    }
}

impl WorkloadSummary {
    /// Builds the summary from per-job outcomes and the allocation series.
    ///
    /// `allocation` must be the step series of *allocated node count* over
    /// time; `total_nodes` the cluster size. The utilization integral runs
    /// over `[first_submit, last_end]` — the same window the makespan
    /// measures.
    pub fn compute(outcomes: &[JobOutcome], allocation: &StepSeries, total_nodes: u32) -> Self {
        let mut inputs = SummaryInputs::new();
        let mut waiting = LogHistogram::new();
        let mut execution = LogHistogram::new();
        let mut completion = LogHistogram::new();
        for o in outcomes {
            inputs.fold_job(o, &mut waiting, &mut execution, &mut completion);
        }
        if inputs.jobs > 0 {
            inputs.node_seconds = allocation.integral(
                SimTime::from_secs_f64(inputs.first_submit_s),
                SimTime::from_secs_f64(inputs.last_end_s),
            );
        }
        inputs.waiting_q = Quantiles::from_histogram(&waiting);
        inputs.execution_q = Quantiles::from_histogram(&execution);
        inputs.completion_q = Quantiles::from_histogram(&completion);
        inputs.assemble(total_nodes)
    }

    /// Makespan as a [`Span`] for callers still in virtual time.
    pub fn makespan(&self) -> Span {
        Span::from_secs_f64(self.makespan_s)
    }
}

/// The "Gain" the paper annotates its charts with: percentage reduction of
/// `flexible` relative to `fixed`. Positive = flexible is better (smaller).
pub fn gain_pct(fixed: f64, flexible: f64) -> f64 {
    if fixed == 0.0 {
        return 0.0;
    }
    (fixed - flexible) / fixed * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn outcome_spans() {
        let o = JobOutcome::new(t(10), t(30), t(90), 2);
        assert_eq!(o.waiting_s(), 20.0);
        assert_eq!(o.execution_s(), 60.0);
        assert_eq!(o.completion_s(), 80.0);
    }

    #[test]
    fn summary_averages() {
        let outcomes = vec![
            JobOutcome::new(t(0), t(0), t(100), 0),
            JobOutcome::new(t(0), t(100), t(200), 1),
        ];
        let mut alloc = StepSeries::new();
        alloc.record(t(0), 10.0);
        alloc.record(t(200), 0.0);
        let s = WorkloadSummary::compute(&outcomes, &alloc, 10);
        assert_eq!(s.makespan_s, 200.0);
        assert_eq!(s.avg_waiting_s, 50.0);
        assert_eq!(s.avg_execution_s, 100.0);
        assert_eq!(s.avg_completion_s, 150.0);
        assert!((s.utilization - 1.0).abs() < 1e-9);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.reconfigurations, 1);
        // The percentile columns bound the per-job values.
        assert!(s.completion_q.p50_s >= 100.0);
        assert!(s.completion_q.p99_s >= 200.0 && s.completion_q.p99_s <= 207.0);
    }

    #[test]
    fn utilization_half() {
        let outcomes = vec![JobOutcome::new(t(0), t(0), t(100), 0)];
        let mut alloc = StepSeries::new();
        alloc.record(t(0), 5.0);
        let s = WorkloadSummary::compute(&outcomes, &alloc, 10);
        assert!((s.utilization - 0.5).abs() < 1e-9);
    }

    #[test]
    fn offset_trace_is_not_deflated() {
        // Regression for the makespan/utilization accounting bug: the
        // same one-job workload, shifted to start at t = 1000 s, must
        // report the same makespan and utilization as the t = 0 version.
        let at_zero = vec![JobOutcome::new(t(0), t(0), t(100), 0)];
        let mut alloc0 = StepSeries::new();
        alloc0.record(t(0), 5.0);
        alloc0.record(t(100), 0.0);
        let s0 = WorkloadSummary::compute(&at_zero, &alloc0, 10);

        let offset = vec![JobOutcome::new(t(1000), t(1000), t(1100), 0)];
        let mut alloc1 = StepSeries::new();
        alloc1.record(t(1000), 5.0);
        alloc1.record(t(1100), 0.0);
        let s1 = WorkloadSummary::compute(&offset, &alloc1, 10);

        assert_eq!(s1.makespan_s, 100.0, "makespan must ignore the offset");
        assert_eq!(s0.makespan_s, s1.makespan_s);
        assert!(
            (s1.utilization - 0.5).abs() < 1e-9,
            "utilization deflated to {} by the t=1000 offset",
            s1.utilization
        );
        assert_eq!(s0.utilization, s1.utilization);
    }

    #[test]
    fn empty_workload_is_zeroes() {
        let s = WorkloadSummary::compute(&[], &StepSeries::new(), 10);
        assert_eq!(s.makespan_s, 0.0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.waiting_q, Quantiles::ZERO);
    }

    #[test]
    fn gain_matches_paper_convention() {
        // Figure 10 style: fixed 100, flexible 58 → 42 % gain.
        assert!((gain_pct(100.0, 58.0) - 42.0).abs() < 1e-9);
        // Negative gain when flexible is worse (Figure 7 small loads).
        assert!(gain_pct(100.0, 107.0) < 0.0);
        assert_eq!(gain_pct(0.0, 5.0), 0.0);
    }
}
