//! Streaming log-bucketed histograms (HDR-style fixed bins).
//!
//! Long-trace replays produce one waiting / execution / completion time
//! per job; buffering them for an exact percentile sort makes telemetry
//! O(n) in job count. [`LogHistogram`] instead accumulates each duration
//! into one of a fixed set of logarithmically spaced bins, so percentile
//! queries cost O(bins) and memory stays constant no matter how many jobs
//! stream through — the property the tail-latency reporting of
//! multi-thousand-job campaigns needs.

use dmr_sim::Span;
use serde::Serialize;

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BITS` equal bins, bounding the relative quantization error of a
/// percentile at `2^-SUB_BITS` (≈ 3.1 %).
const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS; // 32 sub-buckets per octave
/// Values below `SUB` microseconds get exact unit-width bins; above, the
/// remaining 59 octaves of the `u64` microsecond range get `SUB` bins
/// each: `2 * SUB + (63 - SUB_BITS) * SUB`.
const BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// A streaming histogram of durations with fixed log-spaced bins.
///
/// Recording is O(1); percentile, mean, min and max queries are exact in
/// count and integral quantities (count, sum, min, max are tracked
/// exactly) and bounded within one bin width for percentiles. Memory is a
/// constant ~15 KiB regardless of how many values are recorded.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Box<[u64]>,
    total: u64,
    /// Exact sum of all recorded values, microseconds.
    sum_us: u128,
    /// Exact extremes, microseconds.
    min_us: u64,
    max_us: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Mean of an exact microsecond sum over `n` samples, in seconds. Shared
/// by the histogram and the summary assembly so the buffered and online
/// paths produce bit-identical averages regardless of accumulation order.
pub(crate) fn mean_secs(sum_us: u128, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        (sum_us as f64 / n as f64) / 1e6
    }
}

/// Bucket index for a value in microseconds.
fn bucket_of(us: u64) -> usize {
    if us < SUB as u64 {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros(); // >= SUB_BITS
    let shift = octave - SUB_BITS;
    let sub = (us >> shift) as usize - SUB;
    SUB * (octave - SUB_BITS + 1) as usize + sub
}

/// `[low, high)` bounds of bucket `i`, microseconds.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 2 * SUB {
        return (i as u64, i as u64 + 1);
    }
    let group = (i / SUB) as u32; // >= 2
    let sub = (i % SUB) as u64;
    let shift = group - 1;
    let low = (SUB as u64 + sub) << shift;
    // The very last bin's upper edge is 2^64; saturate it to u64::MAX.
    (low, low.saturating_add(1u64 << shift))
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS].into_boxed_slice(),
            total: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, v: Span) {
        let us = v.as_micros();
        self.counts[bucket_of(us)] += 1;
        self.total += 1;
        self.sum_us += us as u128;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Records one duration given in (non-negative) seconds, rounded to
    /// the nearest microsecond exactly like [`Span::from_secs_f64`].
    pub fn record_secs(&mut self, s: f64) {
        self.record(Span::from_secs_f64(s));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded values, seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        mean_secs(self.sum_us, self.total)
    }

    /// Exact minimum, seconds (0 when empty).
    pub fn min_s(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min_us as f64 / 1e6
        }
    }

    /// Exact maximum, seconds (0 when empty).
    pub fn max_s(&self) -> f64 {
        self.max_us as f64 / 1e6
    }

    /// The `q`-th percentile (`q` in `[0, 100]`), seconds.
    ///
    /// Returns an *upper bound* of the exact rank-`⌈q/100·n⌉` order
    /// statistic: the upper edge of its bin, clamped to the exact
    /// maximum. The result therefore never undershoots the true
    /// percentile and overshoots it by at most one bin width
    /// (relative error ≤ 2^-5 above 32 µs; ≤ 1 µs below).
    pub fn percentile_s(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i == 0 {
                    // Bin 0 holds only exact zeros.
                    return 0.0;
                }
                let (_, high) = bucket_bounds(i);
                return high.min(self.max_us) as f64 / 1e6;
            }
        }
        self.max_s()
    }

    /// The non-empty bins as `(low_s, high_s, count)`, ascending — the
    /// rows of an ASCII histogram rendering.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo as f64 / 1e6, hi as f64 / 1e6, c)
            })
            .collect()
    }

    /// Width in microseconds of the bin that would hold `us` (test
    /// support for the one-bin-width percentile guarantee).
    pub fn bin_width_us(us: u64) -> u64 {
        let (lo, hi) = bucket_bounds(bucket_of(us));
        hi - lo
    }

    /// Folds another histogram into this one (bins are position-aligned
    /// by construction).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

/// P50/P95/P99 of one duration distribution, seconds — the tail columns
/// the summary tables and sweep CSV report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Quantiles {
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
}

impl Quantiles {
    /// All-zero quantiles (empty distribution).
    pub const ZERO: Quantiles = Quantiles {
        p50_s: 0.0,
        p95_s: 0.0,
        p99_s: 0.0,
    };

    /// Reads the three tail points off a histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        Quantiles {
            p50_s: h.percentile_s(50.0),
            p95_s: h.percentile_s(95.0),
            p99_s: h.percentile_s(99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_s(s: f64) -> Span {
        Span::from_secs_f64(s)
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut prev_hi = 0;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, prev_hi, "bucket {i} not contiguous");
            assert!(hi > lo);
            prev_hi = hi;
        }
        // Every microsecond value lands in the bucket whose bounds hold it.
        for us in [
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            999_999,
            1 << 40,
            u64::MAX,
        ] {
            let i = bucket_of(us);
            let (lo, hi) = bucket_bounds(i);
            assert!(
                (lo..hi).contains(&us) || (us == u64::MAX && us >= lo),
                "{us} not in [{lo},{hi})"
            );
        }
    }

    #[test]
    fn exact_quantities() {
        let mut h = LogHistogram::new();
        for s in [1.0, 2.0, 3.0, 10.0] {
            h.record(span_s(s));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean_s(), 4.0);
        assert_eq!(h.min_s(), 1.0);
        assert_eq!(h.max_s(), 10.0);
    }

    #[test]
    fn percentiles_bound_the_order_statistics() {
        let mut h = LogHistogram::new();
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        for &v in &values {
            h.record(span_s(v));
        }
        // p50 covers the 50th smallest (50.0) within one bin (~3.1 %).
        let p50 = h.percentile_s(50.0);
        assert!((50.0..=52.0).contains(&p50), "p50 = {p50}");
        let p99 = h.percentile_s(99.0);
        assert!((99.0..=104.0).contains(&p99), "p99 = {p99}");
        // p100 is clamped to the exact max.
        assert_eq!(h.percentile_s(100.0), 100.0);
    }

    #[test]
    fn empty_and_zero_values() {
        let h = LogHistogram::new();
        assert_eq!(h.percentile_s(99.0), 0.0);
        assert_eq!(h.mean_s(), 0.0);
        let mut h = LogHistogram::new();
        h.record(Span::ZERO);
        h.record(Span::ZERO);
        assert_eq!(h.percentile_s(50.0), 0.0, "zero bin is exact");
        assert_eq!(h.max_s(), 0.0);
    }

    #[test]
    fn merge_adds_distributions() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(span_s(1.0));
        b.record(span_s(100.0));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_s(), 100.0);
        assert_eq!(a.min_s(), 1.0);
    }

    #[test]
    fn quantiles_from_histogram() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(span_s(i as f64 / 10.0));
        }
        let q = Quantiles::from_histogram(&h);
        assert!(q.p50_s <= q.p95_s && q.p95_s <= q.p99_s);
        assert!(q.p99_s >= 99.0);
        assert_eq!(Quantiles::ZERO.p95_s, 0.0);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LogHistogram::new();
        h.record(Span(u64::MAX));
        h.record(Span(u64::MAX - 1));
        assert_eq!(h.count(), 2);
        assert!(h.percentile_s(99.0) >= h.max_s() * 0.96);
    }
}
