//! # dmr-metrics — measurement and reporting
//!
//! Computes the quantities the paper's evaluation reports:
//!
//! * [`series::StepSeries`] — event-driven step functions over virtual time
//!   (allocated nodes, running jobs, completed jobs) with exact integrals;
//!   these regenerate the evolution charts (Figures 4, 5, 6, 12).
//!   [`series::OnlineSeries`] is its O(1)-memory streaming twin (running
//!   integral / max / change count, bit-identical results).
//! * [`hist::LogHistogram`] — streaming log-bucketed duration histograms
//!   (HDR-style fixed bins) behind the P50/P95/P99 tail columns
//!   ([`hist::Quantiles`]).
//! * [`summary::WorkloadSummary`] — makespan, average *and percentile*
//!   waiting / execution / completion times and the resource-utilization
//!   rate (Table II, Figures 3, 7, 8, 9, 10, 11).
//! * [`sink::MetricsSink`] — the trait the `dmr-core` driver feeds
//!   per-event, with the buffered [`sink::SeriesRecorder`] and the
//!   bounded-memory [`sink::OnlineAccumulator`] implementations.
//! * [`summary::gain_pct`] — the "Gain" percentage printed on the paper's
//!   bar charts.
//! * [`csv`] — plain CSV writers for external plotting.

pub mod csv;
pub mod hist;
pub mod series;
pub mod sink;
pub mod summary;

pub use hist::{LogHistogram, Quantiles};
pub use series::{OnlineSeries, StepSeries};
pub use sink::{MetricsSink, OnlineAccumulator, SeriesRecorder};
pub use summary::{gain_pct, JobOutcome, WorkloadSummary};
