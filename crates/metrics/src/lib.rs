//! # dmr-metrics — measurement and reporting
//!
//! Computes the quantities the paper's evaluation reports:
//!
//! * [`series::StepSeries`] — event-driven step functions over virtual time
//!   (allocated nodes, running jobs, completed jobs) with exact integrals;
//!   these regenerate the evolution charts (Figures 4, 5, 6, 12).
//! * [`summary::WorkloadSummary`] — makespan, average waiting / execution /
//!   completion times and the resource-utilization rate (Table II,
//!   Figures 3, 7, 8, 9, 10, 11).
//! * [`summary::gain_pct`] — the "Gain" percentage printed on the paper's
//!   bar charts.
//! * [`csv`] — plain CSV writers for external plotting.

pub mod csv;
pub mod series;
pub mod summary;

pub use series::StepSeries;
pub use summary::{gain_pct, JobOutcome, WorkloadSummary};
