//! # dmr-apps — the paper's applications
//!
//! §VII-B describes one synthetic and three real applications; this crate
//! implements each twice:
//!
//! 1. **As a real malleable kernel** over `dmr-mpi` + `dmr-runtime`:
//!    Flexible Sleep ([`fs`]), Conjugate Gradient ([`cg`]), Jacobi
//!    ([`jacobi`]) and N-body ([`nbody`]) all implement
//!    [`malleable::MalleableApp`] and run under
//!    [`malleable::run_malleable`], which executes the full Listing-2/3
//!    loop: compute steps, reconfiguring points, `MPI_Comm_spawn` of the
//!    new process set, block redistribution of every data dependency,
//!    offload ACKs, and termination of the old ranks.
//! 2. **As a calibrated simulation model** for the workload experiments —
//!    the speedup curves live in `dmr-core` ([`dmr_core::curve_for`]); the
//!    Table I envelopes in `dmr-workload`.
//!
//! The real kernels are verified against sequential references: resizing
//! mid-solve must not change the numerics (same iteration count, same
//! result up to exact FP equality where the reduction order is preserved).

pub mod cg;
pub mod fs;
pub mod jacobi;
pub mod malleable;
pub mod nbody;

pub use cg::CgApp;
pub use fs::FsApp;
pub use jacobi::JacobiApp;
pub use malleable::{
    run_malleable, run_malleable_faulty, run_malleable_with, run_malleable_with_faults,
    MalleableApp, MalleableOutcome,
};
pub use nbody::NbodyApp;
