//! Conjugate Gradient (§VII-B2).
//!
//! "An iterative algorithm for the numerical solution of sparse systems
//! of linear equations... each MPI process works on a block of rows of
//! the matrix and the corresponding elements from the vectors. The five
//! data structures in CG conform the data-dependencies between iterations
//! ... and they are redistributed when a rescaling is necessary."
//!
//! The system is the 1-D Laplacian-like SPD tridiagonal matrix
//! `A = tridiag(-1, 2+eps, -1)`; rows are analytic, so the matrix itself
//! needs no storage — each generation regenerates its row block while the
//! vector state (x, r, p) is redistributed, matching the paper's
//! five-structure dependency set (matrix + four vectors) with the matrix
//! dependency satisfied by reconstruction.
//!
//! The iteration avoids cross-iteration scalars (beta is computed from
//! the residual before/after within one step), so the *entire* inter-step
//! state is the three distributed vectors — resizing at any boundary is
//! numerically transparent.

use dmr_mpi::Comm;
use dmr_runtime::dist::BlockDist;

use crate::malleable::MalleableApp;

/// Diagonal shift making the tridiagonal system strictly SPD.
pub const DIAG: f64 = 2.001;

/// Matrix-free row application: `(A v)[i]` for the tridiagonal operator.
#[inline]
pub fn apply_row(v: &[f64], i: usize) -> f64 {
    let n = v.len();
    let mut acc = DIAG * v[i];
    if i > 0 {
        acc -= v[i - 1];
    }
    if i + 1 < n {
        acc -= v[i + 1];
    }
    acc
}

/// Right-hand side chosen so the exact solution is all-ones.
pub fn rhs(n: usize, i: usize) -> f64 {
    let ones = vec![1.0; n];
    apply_row(&ones, i)
}

/// Sequential reference CG; returns `(x, final_residual_norm2)`.
pub fn cg_sequential(n: usize, iters: u32) -> (Vec<f64>, f64) {
    let mut x = vec![0.0; n];
    let mut r: Vec<f64> = (0..n).map(|i| rhs(n, i)).collect();
    let mut p = r.clone();
    for _ in 0..iters {
        let rho: f64 = r.iter().map(|v| v * v).sum();
        if rho == 0.0 {
            break;
        }
        let ap: Vec<f64> = (0..n).map(|i| apply_row(&p, i)).collect();
        let pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let alpha = rho / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rho_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rho_new / rho;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    let res = r.iter().map(|v| v * v).sum();
    (x, res)
}

/// The malleable CG kernel.
pub struct CgApp {
    pub n: usize,
    pub iters: u32,
}

impl CgApp {
    pub fn new(n: usize, iters: u32) -> Self {
        CgApp { n, iters }
    }
}

impl MalleableApp for CgApp {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn n(&self) -> usize {
        self.n
    }

    /// x, r, p — the vector data dependencies carried across resizes.
    fn vectors(&self) -> usize {
        3
    }

    fn steps(&self) -> u32 {
        self.iters
    }

    fn init(&self, dist: &BlockDist, rank: usize) -> Vec<Vec<f64>> {
        let x = vec![0.0; dist.len(rank)];
        let r: Vec<f64> = dist.range(rank).map(|i| rhs(self.n, i)).collect();
        let p = r.clone();
        vec![x, r, p]
    }

    fn step(&self, comm: &mut Comm, dist: &BlockDist, state: &mut [Vec<f64>], _iter: u32) {
        let me = comm.rank();
        let lo = dist.start(me);
        // Split borrows: state = [x, r, p].
        let (x, rest) = state.split_at_mut(1);
        let (r, p) = rest.split_at_mut(1);
        let (x, r, p) = (&mut x[0], &mut r[0], &mut p[0]);

        // rho = <r, r> (global).
        let local_rho: f64 = r.iter().map(|v| v * v).sum();
        // Full p for the matvec (flat-stored vector, as in the paper).
        let p_full = comm.allgather(p.as_slice()).expect("allgather p");
        let ap: Vec<f64> = (0..p.len()).map(|k| apply_row(&p_full, lo + k)).collect();
        let local_pap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        let sums = comm
            .allreduce_sum(&[local_rho, local_pap])
            .expect("allreduce");
        let (rho, pap) = (sums[0], sums[1]);
        if rho == 0.0 || pap == 0.0 {
            return; // converged exactly; remaining steps are no-ops
        }
        let alpha = rho / pap;
        for k in 0..x.len() {
            x[k] += alpha * p[k];
            r[k] -= alpha * ap[k];
        }
        let local_rho_new: f64 = r.iter().map(|v| v * v).sum();
        let rho_new = comm.allreduce_sum(&[local_rho_new]).expect("allreduce")[0];
        let beta = rho_new / rho;
        for k in 0..p.len() {
            p[k] = r[k] + beta * p[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::malleable::run_malleable;
    use dmr_runtime::dmr::{DmrAction, DmrSpec};
    use std::sync::Arc;

    #[test]
    fn sequential_cg_converges_to_ones() {
        let (x, res) = cg_sequential(64, 200);
        assert!(res < 1e-18, "residual {res}");
        for v in x {
            assert!((v - 1.0).abs() < 1e-8, "component {v}");
        }
    }

    #[test]
    fn residual_decreases_monotonically_enough() {
        let (_, res_short) = cg_sequential(64, 5);
        let (_, res_long) = cg_sequential(64, 50);
        assert!(res_long < res_short);
    }

    fn distributed_matches_reference(procs: usize, script: Vec<DmrAction>) {
        let n = 48;
        let iters = 30;
        let out = run_malleable(
            Arc::new(CgApp::new(n, iters)),
            procs,
            DmrSpec::new(1, 8),
            script,
        );
        let (x_ref, _) = cg_sequential(n, iters);
        let x = &out.final_state[0];
        for (a, b) in x.iter().zip(&x_ref) {
            assert!(
                (a - b).abs() < 1e-9,
                "distributed {a} vs sequential {b} (|Δ|={})",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn distributed_cg_matches_sequential() {
        distributed_matches_reference(4, vec![]);
    }

    #[test]
    fn cg_survives_expand_mid_solve() {
        distributed_matches_reference(
            2,
            vec![
                DmrAction::NoAction,
                DmrAction::NoAction,
                DmrAction::Expand { to: 4 },
            ],
        );
    }

    #[test]
    fn cg_survives_shrink_mid_solve() {
        distributed_matches_reference(4, vec![DmrAction::NoAction, DmrAction::Shrink { to: 2 }]);
    }

    #[test]
    fn cg_survives_resize_chain() {
        distributed_matches_reference(
            2,
            vec![
                DmrAction::Expand { to: 8 },
                DmrAction::Shrink { to: 4 },
                DmrAction::Shrink { to: 1 },
                DmrAction::Expand { to: 2 },
            ],
        );
    }
}
