//! N-body (§VII-B4).
//!
//! "Each process stores a subset of particles... Apart from computing the
//! position and forces of its own particles, each process exchanges its
//! local subset of particles with the other processes. At the end of the
//! iteration, all the processes have worked with the whole set of
//! particles. The data-dependency is dictated by an array of particles
//! with information about position, velocity, mass..."
//!
//! All-pairs gravity with softening, leapfrog-free simple Euler updates.
//! State is seven block-distributed vectors (px, py, pz, vx, vy, vz, m),
//! split or merged on every rescale.

use dmr_mpi::Comm;
use dmr_runtime::dist::BlockDist;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::malleable::MalleableApp;

/// Gravitational constant (natural units) and softening length.
pub const G: f64 = 1.0;
pub const SOFTENING: f64 = 1e-3;

/// Deterministic initial conditions: particle `i` of `n`.
pub fn particle(seed: u64, n: usize, i: usize) -> [f64; 7] {
    // Derive per-particle values from a seeded stream so every rank can
    // regenerate identical initial conditions for its block.
    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let _ = n;
    [
        rng.random::<f64>() * 2.0 - 1.0,
        rng.random::<f64>() * 2.0 - 1.0,
        rng.random::<f64>() * 2.0 - 1.0,
        0.0,
        0.0,
        0.0,
        0.5 + rng.random::<f64>(),
    ]
}

/// Acceleration on particle `i` given all positions/masses, summed in
/// index order (so any layout reproduces identical floating-point
/// results).
fn acceleration(i: usize, px: &[f64], py: &[f64], pz: &[f64], m: &[f64]) -> (f64, f64, f64) {
    let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
    for j in 0..px.len() {
        if j == i {
            continue;
        }
        let dx = px[j] - px[i];
        let dy = py[j] - py[i];
        let dz = pz[j] - pz[i];
        let d2 = dx * dx + dy * dy + dz * dz + SOFTENING;
        let inv = 1.0 / (d2 * d2.sqrt());
        let s = G * m[j] * inv;
        ax += s * dx;
        ay += s * dy;
        az += s * dz;
    }
    (ax, ay, az)
}

/// Sequential reference simulation; returns the 7 state vectors.
pub fn nbody_sequential(seed: u64, n: usize, steps: u32, dt: f64) -> Vec<Vec<f64>> {
    let mut state: Vec<Vec<f64>> = (0..7).map(|_| vec![0.0; n]).collect();
    for i in 0..n {
        let p = particle(seed, n, i);
        for (v, val) in state.iter_mut().zip(p) {
            v[i] = val;
        }
    }
    for _ in 0..steps {
        let (px, py, pz, m) = (
            state[0].clone(),
            state[1].clone(),
            state[2].clone(),
            state[6].clone(),
        );
        #[allow(clippy::needless_range_loop)] // i indexes four parallel state vectors
        for i in 0..n {
            let (ax, ay, az) = acceleration(i, &px, &py, &pz, &m);
            state[3][i] += dt * ax;
            state[4][i] += dt * ay;
            state[5][i] += dt * az;
        }
        #[allow(clippy::needless_range_loop)] // positions and velocities alias `state`
        for i in 0..n {
            state[0][i] += dt * state[3][i];
            state[1][i] += dt * state[4][i];
            state[2][i] += dt * state[5][i];
        }
    }
    state
}

/// The malleable N-body kernel.
pub struct NbodyApp {
    pub seed: u64,
    pub n: usize,
    pub steps: u32,
    pub dt: f64,
}

impl NbodyApp {
    pub fn new(seed: u64, n: usize, steps: u32, dt: f64) -> Self {
        NbodyApp { seed, n, steps, dt }
    }
}

impl MalleableApp for NbodyApp {
    fn name(&self) -> &'static str {
        "N-body"
    }

    fn n(&self) -> usize {
        self.n
    }

    /// px, py, pz, vx, vy, vz, m.
    fn vectors(&self) -> usize {
        7
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn init(&self, dist: &BlockDist, rank: usize) -> Vec<Vec<f64>> {
        let mut state: Vec<Vec<f64>> = (0..7).map(|_| Vec::with_capacity(dist.len(rank))).collect();
        for i in dist.range(rank) {
            let p = particle(self.seed, self.n, i);
            for (v, val) in state.iter_mut().zip(p) {
                v.push(val);
            }
        }
        state
    }

    fn step(&self, comm: &mut Comm, dist: &BlockDist, state: &mut [Vec<f64>], _iter: u32) {
        let me = comm.rank();
        let lo = dist.start(me);
        // "Each process exchanges its local subset of particles with the
        // other processes": gather the full position/mass arrays.
        let px = comm.allgather(state[0].as_slice()).expect("gather px");
        let py = comm.allgather(state[1].as_slice()).expect("gather py");
        let pz = comm.allgather(state[2].as_slice()).expect("gather pz");
        let m = comm.allgather(state[6].as_slice()).expect("gather m");
        let dt = self.dt;
        for k in 0..state[0].len() {
            let (ax, ay, az) = acceleration(lo + k, &px, &py, &pz, &m);
            state[3][k] += dt * ax;
            state[4][k] += dt * ay;
            state[5][k] += dt * az;
        }
        for k in 0..state[0].len() {
            state[0][k] += dt * state[3][k];
            state[1][k] += dt * state[4][k];
            state[2][k] += dt * state[5][k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::malleable::run_malleable;
    use dmr_runtime::dmr::{DmrAction, DmrSpec};
    use std::sync::Arc;

    #[test]
    fn initial_conditions_are_deterministic() {
        let a = particle(7, 16, 3);
        let b = particle(7, 16, 3);
        assert_eq!(a, b);
        let c = particle(8, 16, 3);
        assert_ne!(a, c, "different seed, different particle");
    }

    #[test]
    fn momentum_is_roughly_conserved_sequentially() {
        let n = 24;
        let state = nbody_sequential(42, n, 20, 1e-3);
        // Total momentum starts at zero (velocities all zero) and should
        // stay near zero (pairwise forces are antisymmetric up to FP).
        for d in 3..6 {
            let p: f64 = state[d].iter().zip(&state[6]).map(|(v, m)| v * m).sum();
            assert!(p.abs() < 1e-9, "momentum drift {p}");
        }
    }

    fn distributed_matches_reference(procs: usize, script: Vec<DmrAction>) {
        let (seed, n, steps, dt) = (42u64, 20usize, 8u32, 1e-3);
        let out = run_malleable(
            Arc::new(NbodyApp::new(seed, n, steps, dt)),
            procs,
            DmrSpec::new(1, 8),
            script,
        );
        let reference = nbody_sequential(seed, n, steps, dt);
        // The acceleration sums run in global index order on any layout,
        // so distributed results are bit-identical to sequential.
        assert_eq!(out.final_state, reference);
    }

    #[test]
    fn distributed_nbody_is_bit_identical() {
        distributed_matches_reference(4, vec![]);
    }

    #[test]
    fn nbody_survives_expand() {
        distributed_matches_reference(2, vec![DmrAction::Expand { to: 4 }]);
    }

    #[test]
    fn nbody_survives_shrink_to_one() {
        distributed_matches_reference(4, vec![DmrAction::NoAction, DmrAction::Shrink { to: 1 }]);
    }

    #[test]
    fn nbody_survives_resize_chain() {
        distributed_matches_reference(
            1,
            vec![
                DmrAction::Expand { to: 2 },
                DmrAction::Expand { to: 4 },
                DmrAction::Shrink { to: 2 },
            ],
        );
    }
}
