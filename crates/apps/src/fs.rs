//! Flexible Sleep (§VII-B1).
//!
//! "This iterative synthetic application performs a sleep in each step.
//! The time of the step depends on the number of processes deployed in
//! that iteration — assuming perfect linear scalability. Apart from the
//! sleep that simulates the computation time, the application also
//! manages an array of doubles, distributed among the ranks", which is
//! the data dependency redistributed on every reconfiguration.

use std::time::Duration;

use dmr_mpi::Comm;
use dmr_runtime::dist::BlockDist;

use crate::malleable::MalleableApp;

/// The synthetic flexible-sleep application.
pub struct FsApp {
    /// Length of the distributed array of doubles.
    pub n: usize,
    /// Iterations.
    pub steps: u32,
    /// Sleep per step *per process set of one* — a step at `p` processes
    /// sleeps `base_sleep / p` (perfect linear scalability).
    pub base_sleep: Duration,
}

impl FsApp {
    pub fn new(n: usize, steps: u32, base_sleep: Duration) -> Self {
        FsApp {
            n,
            steps,
            base_sleep,
        }
    }

    /// Sleep charged to one step at `p` processes.
    pub fn step_sleep(&self, p: usize) -> Duration {
        self.base_sleep / p.max(1) as u32
    }
}

impl MalleableApp for FsApp {
    fn name(&self) -> &'static str {
        "FS"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn vectors(&self) -> usize {
        1
    }

    fn steps(&self) -> u32 {
        self.steps
    }

    fn init(&self, dist: &BlockDist, rank: usize) -> Vec<Vec<f64>> {
        // The array contents are the global indices, so any loss or
        // misplacement during redistribution is detectable.
        vec![dist.range(rank).map(|i| i as f64).collect()]
    }

    fn step(&self, _comm: &mut Comm, _dist: &BlockDist, state: &mut [Vec<f64>], _iter: u32) {
        std::thread::sleep(self.step_sleep(_dist.parts));
        // Touch the data so the dependency is genuine: a cheap rolling
        // update whose final value is checkable.
        for v in state[0].iter_mut() {
            *v += 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::malleable::run_malleable;
    use dmr_runtime::dmr::{DmrAction, DmrSpec};
    use std::sync::Arc;

    #[test]
    fn sleep_scales_linearly() {
        let app = FsApp::new(8, 1, Duration::from_millis(80));
        assert_eq!(app.step_sleep(1), Duration::from_millis(80));
        assert_eq!(app.step_sleep(4), Duration::from_millis(20));
        assert_eq!(app.step_sleep(0), Duration::from_millis(80), "clamped");
    }

    #[test]
    fn data_survives_expand_and_shrink() {
        let app = Arc::new(FsApp::new(20, 4, Duration::from_millis(1)));
        let out = run_malleable(
            app,
            2,
            DmrSpec::new(1, 8),
            vec![DmrAction::Expand { to: 4 }, DmrAction::Shrink { to: 1 }],
        );
        let expect: Vec<f64> = (0..20).map(|i| i as f64 + 4.0).collect();
        assert_eq!(out.final_state[0], expect);
        assert_eq!(out.resizes, 2);
        assert_eq!(out.final_procs, 1);
    }

    #[test]
    fn bigger_process_set_finishes_a_step_faster() {
        // Wall-clock check with margins generous enough to survive a
        // loaded CI machine: the 1-rank run sleeps 400 ms, the 4-rank run
        // 100 ms, leaving ~300 ms of headroom for scheduling noise.
        let base = Duration::from_millis(400);
        let t0 = std::time::Instant::now();
        run_malleable(
            Arc::new(FsApp::new(4, 1, base)),
            1,
            DmrSpec::new(1, 4),
            vec![],
        );
        let serial = t0.elapsed();
        let t0 = std::time::Instant::now();
        run_malleable(
            Arc::new(FsApp::new(4, 1, base)),
            4,
            DmrSpec::new(1, 4),
            vec![],
        );
        let parallel = t0.elapsed();
        assert!(serial >= base, "1-rank run must sleep the full base");
        assert!(
            parallel < serial,
            "4-rank step ({parallel:?}) should beat 1-rank ({serial:?})"
        );
    }
}
