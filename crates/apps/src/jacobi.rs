//! Jacobi (§VII-B3).
//!
//! "An iterative and embarrassingly-parallel algorithm for the solution
//! of a system of linear equations... we also have a flat matrix, but
//! only two vectors. These three structures conform the data-dependencies
//! for OmpSs and they are all distributed among the processes."
//!
//! Same analytic tridiagonal system as the CG kernel (strictly diagonally
//! dominant, so Jacobi converges); the two vector dependencies are the
//! iterate `x` and the right-hand side `b`; the matrix rows are
//! regenerated per generation.

use dmr_mpi::Comm;
use dmr_runtime::dist::BlockDist;

use crate::cg::{rhs, DIAG};
use crate::malleable::MalleableApp;

/// Sequential reference: `iters` Jacobi sweeps, returns the iterate.
pub fn jacobi_sequential(n: usize, iters: u32) -> Vec<f64> {
    let b: Vec<f64> = (0..n).map(|i| rhs(n, i)).collect();
    let mut x = vec![0.0; n];
    for _ in 0..iters {
        let mut next = vec![0.0; n];
        for i in 0..n {
            let mut off = 0.0;
            if i > 0 {
                off -= x[i - 1];
            }
            if i + 1 < n {
                off -= x[i + 1];
            }
            next[i] = (b[i] - off) / DIAG;
        }
        x = next;
    }
    x
}

/// The malleable Jacobi kernel.
pub struct JacobiApp {
    pub n: usize,
    pub iters: u32,
}

impl JacobiApp {
    pub fn new(n: usize, iters: u32) -> Self {
        JacobiApp { n, iters }
    }
}

impl MalleableApp for JacobiApp {
    fn name(&self) -> &'static str {
        "Jacobi"
    }

    fn n(&self) -> usize {
        self.n
    }

    /// x and b — "only two vectors".
    fn vectors(&self) -> usize {
        2
    }

    fn steps(&self) -> u32 {
        self.iters
    }

    fn init(&self, dist: &BlockDist, rank: usize) -> Vec<Vec<f64>> {
        let x = vec![0.0; dist.len(rank)];
        let b: Vec<f64> = dist.range(rank).map(|i| rhs(self.n, i)).collect();
        vec![x, b]
    }

    fn step(&self, comm: &mut Comm, dist: &BlockDist, state: &mut [Vec<f64>], _iter: u32) {
        let me = comm.rank();
        let lo = dist.start(me);
        let x_full = comm.allgather(state[0].as_slice()).expect("allgather x");
        let (x, b) = state.split_at_mut(1);
        let (x, b) = (&mut x[0], &b[0]);
        let n = self.n;
        for k in 0..x.len() {
            let i = lo + k;
            let mut off = 0.0;
            if i > 0 {
                off -= x_full[i - 1];
            }
            if i + 1 < n {
                off -= x_full[i + 1];
            }
            x[k] = (b[k] - off) / DIAG;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::malleable::run_malleable;
    use dmr_runtime::dmr::{DmrAction, DmrSpec};
    use std::sync::Arc;

    #[test]
    fn sequential_jacobi_converges_towards_ones() {
        let x = jacobi_sequential(32, 2000);
        for v in &x {
            // Jacobi's spectral radius here is ~0.997: convergence is
            // slow; 2000 sweeps land around 5e-6.
            assert!((v - 1.0).abs() < 1e-4, "component {v}");
        }
    }

    fn distributed_matches_reference(procs: usize, script: Vec<DmrAction>) {
        let (n, iters) = (40, 25);
        let out = run_malleable(
            Arc::new(JacobiApp::new(n, iters)),
            procs,
            DmrSpec::new(1, 8),
            script,
        );
        let x_ref = jacobi_sequential(n, iters);
        // Jacobi sweeps are element-wise independent: the distributed run
        // performs bit-identical arithmetic regardless of the layout.
        assert_eq!(out.final_state[0], x_ref);
    }

    #[test]
    fn distributed_jacobi_is_bit_identical() {
        distributed_matches_reference(4, vec![]);
    }

    #[test]
    fn jacobi_survives_expand() {
        distributed_matches_reference(2, vec![DmrAction::Expand { to: 5 }]);
    }

    #[test]
    fn jacobi_survives_shrink() {
        distributed_matches_reference(5, vec![DmrAction::NoAction, DmrAction::Shrink { to: 2 }]);
    }

    #[test]
    fn jacobi_survives_resize_chain() {
        distributed_matches_reference(
            1,
            vec![
                DmrAction::Expand { to: 4 },
                DmrAction::Expand { to: 8 },
                DmrAction::Shrink { to: 3 },
            ],
        );
    }
}
