//! The malleable execution driver — Listing 2 and Listing 3 in Rust.
//!
//! An application exposes block-distributed state vectors and a step
//! function; the driver runs the iterative loop, calls the DMR API at
//! every reconfiguring point, and on an expand/shrink verdict:
//!
//! 1. spawns the new process set (`MPI_Comm_spawn`, §V-B1),
//! 2. redistributes every state vector from the old block distribution to
//!    the new one (the `inout` data dependencies of the offload pragma),
//! 3. waits for the new set's ACKs (the `taskwait` / shrink-ACK workflow,
//!    §V-B2), and
//! 4. lets the old processes terminate while the new set continues from
//!    the same iteration (the time-step travels with the data, Listing 1).

use std::sync::Arc;

use parking_lot::Mutex;

use dmr_mpi::{Comm, MpiError, SpawnFaults, Universe};
use dmr_runtime::dist::BlockDist;
use dmr_runtime::dmr::{DmrAction, DmrSpec};
use dmr_runtime::offload;
use dmr_runtime::redistribute::{recv_blocks, send_blocks};
use dmr_runtime::rms::{RmsClient, ScriptedRms};

/// An iterative application with block-distributed `f64` state.
pub trait MalleableApp: Send + Sync + 'static {
    fn name(&self) -> &'static str;
    /// Global length of each state vector.
    fn n(&self) -> usize;
    /// Number of state vectors (the data dependencies of the offload).
    fn vectors(&self) -> usize;
    /// Total iterations.
    fn steps(&self) -> u32;
    /// Initial local blocks for `rank` under `dist`.
    fn init(&self, dist: &BlockDist, rank: usize) -> Vec<Vec<f64>>;
    /// One iteration: may communicate through `comm`; must keep each
    /// vector's block length consistent with `dist`.
    fn step(&self, comm: &mut Comm, dist: &BlockDist, state: &mut [Vec<f64>], iter: u32);
}

/// What a malleable run produces.
#[derive(Clone, Debug)]
pub struct MalleableOutcome {
    /// Full (gathered) state vectors at completion.
    pub final_state: Vec<Vec<f64>>,
    /// Process count at completion.
    pub final_procs: usize,
    /// Number of reconfigurations performed.
    pub resizes: u32,
}

/// A shared, thread-safe RMS connection (rank 0 of each generation is
/// the only caller, but generations live on different threads).
pub type SharedRms = Arc<Mutex<dyn RmsClient + Send>>;
type ResultSlot = Arc<Mutex<Option<MalleableOutcome>>>;

/// Runs `app` starting on `initial` ranks, consulting a scripted RMS at
/// every reconfiguring point. Returns the gathered final state.
///
/// The script stands in for the live Slurm negotiation so kernels are
/// testable hermetically; [`run_malleable_with`] accepts any
/// [`RmsClient`] — the umbrella crate (`dmr`) wires it to the real
/// `dmr-slurm` policy.
pub fn run_malleable(
    app: Arc<dyn MalleableApp>,
    initial: usize,
    spec: DmrSpec,
    script: Vec<DmrAction>,
) -> MalleableOutcome {
    run_malleable_with(
        app,
        initial,
        spec,
        Arc::new(Mutex::new(ScriptedRms::new(script))),
    )
}

/// [`run_malleable`] with a caller-provided RMS connection.
pub fn run_malleable_with(
    app: Arc<dyn MalleableApp>,
    initial: usize,
    spec: DmrSpec,
    rms: SharedRms,
) -> MalleableOutcome {
    run_malleable_with_faults(app, initial, spec, rms, None)
}

/// [`run_malleable`] under spawn-fault injection: every resize's
/// `MPI_Comm_spawn` leg consults `faults`, and an injected failure makes
/// the generation abandon that resize and continue at its current size —
/// data and progress are never at risk because the verdict lands before
/// any redistribution starts.
pub fn run_malleable_faulty(
    app: Arc<dyn MalleableApp>,
    initial: usize,
    spec: DmrSpec,
    script: Vec<DmrAction>,
    faults: Arc<SpawnFaults>,
) -> MalleableOutcome {
    run_malleable_with_faults(
        app,
        initial,
        spec,
        Arc::new(Mutex::new(ScriptedRms::new(script))),
        Some(faults),
    )
}

/// The fully general entry point: caller-provided RMS and optional
/// spawn-fault injector.
pub fn run_malleable_with_faults(
    app: Arc<dyn MalleableApp>,
    initial: usize,
    spec: DmrSpec,
    rms: SharedRms,
    faults: Option<Arc<SpawnFaults>>,
) -> MalleableOutcome {
    assert!(initial > 0);
    let slot: ResultSlot = Arc::new(Mutex::new(None));
    {
        let app = Arc::clone(&app);
        let rms = Arc::clone(&rms);
        let slot = Arc::clone(&slot);
        Universe::run(initial, move |comm| {
            worker(
                comm,
                Arc::clone(&app),
                0,
                Arc::clone(&rms),
                Arc::clone(&slot),
                spec,
                0,
                faults.clone(),
            );
        });
    }
    let out = slot
        .lock()
        .take()
        .expect("final process set stored a result");
    out
}

/// The SPMD body: every rank of every process generation runs this.
#[allow(clippy::too_many_arguments)]
fn worker(
    mut comm: Comm,
    app: Arc<dyn MalleableApp>,
    t0: u32,
    rms: SharedRms,
    slot: ResultSlot,
    spec: DmrSpec,
    resizes: u32,
    faults: Option<Arc<SpawnFaults>>,
) {
    let me = comm.rank();
    let size = comm.size();
    let dist = BlockDist::new(app.n(), size);

    // Children of a reconfiguration receive their blocks from the old
    // process set; the first generation initialises from scratch
    // (Listing 1's `MPI_Comm_get_parent` branch).
    let spawned = comm.parent().is_some();
    let mut state: Vec<Vec<f64>> = if let Some(parent) = comm.parent() {
        let from = BlockDist::new(app.n(), parent.remote_size());
        let vectors = app.vectors();
        let mut state = Vec::with_capacity(vectors);
        for round in 0..vectors {
            state
                .push(recv_blocks::<f64>(parent, me, &from, &dist, round).expect("redistribution"));
        }
        // ACK: this rank adopted its offloaded task (releases taskwait).
        offload::ack(parent, 0).expect("ack");
        state
    } else {
        app.init(&dist, me)
    };

    for t in t0..app.steps() {
        // Reconfiguring point. A generation created by a resize resumes
        // compute first — its arrival boundary was already negotiated by
        // the old set. Rank 0 negotiates with the RMS and broadcasts the
        // verdict (the runtime acts as one client per job).
        if spawned && t == t0 {
            app.step(&mut comm, &dist, &mut state, t);
            continue;
        }
        let mut verdict: Vec<f64> = if me == 0 {
            match rms.lock().negotiate(size as u32, &spec) {
                DmrAction::NoAction => vec![0.0, 0.0],
                DmrAction::Expand { to } => vec![1.0, to as f64],
                DmrAction::Shrink { to } => vec![1.0, to as f64],
            }
        } else {
            vec![]
        };
        comm.bcast(&mut verdict, 0).expect("verdict bcast");
        let new_n = verdict[1] as usize;
        if verdict[0] != 0.0 && new_n != size {
            // Spawn the new process set; the continuation carries the
            // current time-step (Listing 1 ships `t` with the data).
            let entry = {
                let app = Arc::clone(&app);
                let rms = Arc::clone(&rms);
                let slot = Arc::clone(&slot);
                let faults = faults.clone();
                Arc::new(move |child: Comm| {
                    worker(
                        child,
                        Arc::clone(&app),
                        t,
                        Arc::clone(&rms),
                        Arc::clone(&slot),
                        spec,
                        resizes + 1,
                        faults.clone(),
                    );
                })
            };
            let mut inter = match comm.spawn_faulty(new_n, entry, faults.as_deref()) {
                Ok(inter) => inter,
                Err(MpiError::SpawnInjected { .. }) => {
                    // Graceful degrade (§V-B1 failure leg): the negotiated
                    // resize is abandoned before any data moved, so this
                    // generation keeps computing at its current size.
                    app.step(&mut comm, &dist, &mut state, t);
                    continue;
                }
                Err(e) => panic!("spawn new set: {e}"),
            };
            let to = BlockDist::new(app.n(), new_n);
            for (round, vector) in state.iter().enumerate() {
                send_blocks(&mut inter, me, vector, &dist, &to, round).expect("redistribution");
            }
            // taskwait: collect one ACK per offloaded task target, then
            // the old processes terminate (Listing 2 line 15, §V-B2).
            if me == 0 {
                offload::taskwait(&mut inter, new_n).expect("taskwait");
            }
            return;
        }
        app.step(&mut comm, &dist, &mut state, t);
    }

    // Completed: gather the full state on every rank; rank 0 publishes.
    let mut full = Vec::with_capacity(app.vectors());
    for vector in &state {
        full.push(comm.allgather(vector).expect("final gather"));
    }
    if me == 0 {
        *slot.lock() = Some(MalleableOutcome {
            final_state: full,
            final_procs: size,
            resizes,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivially verifiable app: each step adds 1 to every element of a
    /// single distributed vector.
    struct CountingApp {
        n: usize,
        steps: u32,
    }

    impl MalleableApp for CountingApp {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn n(&self) -> usize {
            self.n
        }
        fn vectors(&self) -> usize {
            1
        }
        fn steps(&self) -> u32 {
            self.steps
        }
        fn init(&self, dist: &BlockDist, rank: usize) -> Vec<Vec<f64>> {
            vec![dist.range(rank).map(|i| i as f64).collect()]
        }
        fn step(&self, _comm: &mut Comm, _dist: &BlockDist, state: &mut [Vec<f64>], _iter: u32) {
            for v in state[0].iter_mut() {
                *v += 1.0;
            }
        }
    }

    fn expected(n: usize, steps: u32) -> Vec<f64> {
        (0..n).map(|i| i as f64 + steps as f64).collect()
    }

    #[test]
    fn no_resize_matches_reference() {
        let app = Arc::new(CountingApp { n: 20, steps: 5 });
        let out = run_malleable(app, 4, DmrSpec::new(1, 8), vec![]);
        assert_eq!(out.final_state[0], expected(20, 5));
        assert_eq!(out.final_procs, 4);
        assert_eq!(out.resizes, 0);
    }

    #[test]
    fn expand_preserves_data_and_progress() {
        let app = Arc::new(CountingApp { n: 24, steps: 6 });
        let out = run_malleable(
            app,
            2,
            DmrSpec::new(1, 8),
            vec![
                DmrAction::NoAction,
                DmrAction::NoAction,
                DmrAction::Expand { to: 4 },
            ],
        );
        assert_eq!(out.final_state[0], expected(24, 6));
        assert_eq!(out.final_procs, 4);
        assert_eq!(out.resizes, 1);
    }

    #[test]
    fn shrink_preserves_data_and_progress() {
        let app = Arc::new(CountingApp { n: 24, steps: 6 });
        let out = run_malleable(
            app,
            4,
            DmrSpec::new(1, 8),
            vec![DmrAction::NoAction, DmrAction::Shrink { to: 2 }],
        );
        assert_eq!(out.final_state[0], expected(24, 6));
        assert_eq!(out.final_procs, 2);
        assert_eq!(out.resizes, 1);
    }

    #[test]
    fn chained_resizes() {
        let app = Arc::new(CountingApp { n: 30, steps: 8 });
        let out = run_malleable(
            app,
            2,
            DmrSpec::new(1, 8),
            vec![
                DmrAction::Expand { to: 4 },
                DmrAction::Expand { to: 8 },
                DmrAction::NoAction,
                DmrAction::Shrink { to: 2 },
                DmrAction::Expand { to: 4 },
            ],
        );
        assert_eq!(out.final_state[0], expected(30, 8));
        assert_eq!(out.final_procs, 4);
        assert_eq!(out.resizes, 4, "all four feasible script actions apply");
    }

    #[test]
    fn uneven_block_sizes_survive_resize() {
        // 17 elements over 3 -> 5 ranks: remainders on both sides.
        let app = Arc::new(CountingApp { n: 17, steps: 4 });
        let out = run_malleable(
            app,
            3,
            DmrSpec::new(1, 8),
            vec![DmrAction::Expand { to: 5 }],
        );
        assert_eq!(out.final_state[0], expected(17, 4));
        assert_eq!(out.final_procs, 5);
    }

    #[test]
    fn injected_spawn_degrades_to_current_size() {
        // Every spawn is killed: both scripted expands are abandoned and
        // the run completes at its initial size with nothing lost.
        let app = Arc::new(CountingApp { n: 24, steps: 6 });
        let out = run_malleable_faulty(
            app,
            2,
            DmrSpec::new(1, 8),
            vec![
                DmrAction::Expand { to: 4 },
                DmrAction::NoAction,
                DmrAction::Expand { to: 6 },
            ],
            Arc::new(SpawnFaults::always()),
        );
        assert_eq!(out.final_state[0], expected(24, 6));
        assert_eq!(out.final_procs, 2);
        assert_eq!(out.resizes, 0);
    }

    #[test]
    fn quiet_injector_matches_faultless_run() {
        let script = vec![
            DmrAction::NoAction,
            DmrAction::NoAction,
            DmrAction::Expand { to: 4 },
        ];
        let app = Arc::new(CountingApp { n: 24, steps: 6 });
        let out = run_malleable_faulty(
            app,
            2,
            DmrSpec::new(1, 8),
            script,
            Arc::new(SpawnFaults::never()),
        );
        assert_eq!(out.final_state[0], expected(24, 6));
        assert_eq!(out.final_procs, 4);
        assert_eq!(out.resizes, 1);
    }

    #[test]
    fn resize_to_single_rank() {
        let app = Arc::new(CountingApp { n: 12, steps: 3 });
        let out = run_malleable(
            app,
            4,
            DmrSpec::new(1, 8),
            vec![DmrAction::Shrink { to: 1 }],
        );
        assert_eq!(out.final_state[0], expected(12, 3));
        assert_eq!(out.final_procs, 1);
    }
}
