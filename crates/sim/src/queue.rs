//! Cancellable priority queue of timestamped events.
//!
//! Ordering is `(time, class, sequence)` where the sequence number is
//! assigned at insertion, so events scheduled for the same instant pop in
//! FIFO order within their class; the class lets a family of events
//! outrank same-instant events of the default class regardless of
//! insertion order. Cancellation tombstones the entry; dead entries are
//! skipped on pop, and the backing store is compacted whenever tombstones
//! outnumber live entries, so cancelled-event memory stays bounded at
//! twice the live set no matter how many timers a long run abandons.
//!
//! Two interchangeable backends implement the store ([`QueueKind`]):
//!
//! * [`QueueKind::BinaryHeap`] — the reference `BinaryHeap` of
//!   `(time, class, seq)` entries. O(log n) push/pop with pointer-free
//!   sift traffic proportional to the whole pending set.
//! * [`QueueKind::TimerWheel`] — a hierarchical timer wheel (6 bits per
//!   level, 11 levels covering the full `u64` microsecond clock). A push
//!   drops the entry into the bucket addressed by the highest bit-block
//!   in which its deadline differs from the wheel cursor — O(1), no
//!   comparisons. Pops cascade the lowest occupied bucket down one level
//!   at a time until a bucket resolves to an exact instant, whose entries
//!   move to a small `due` set ordered by `(time, class, seq)`. Work per
//!   event is bounded by the number of levels (11), independent of how
//!   many events are pending, and entries pushed at-or-before the cursor
//!   (same-instant follow-ups, the driver's hottest case) bypass the
//!   wheel entirely.
//!
//! Both backends pop in exactly the same `(time, class, seq)` order —
//! `tests/event_queue_invariants.rs` replays random interleavings through
//! both and requires identical traces.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use crate::time::SimTime;

/// Tie-break class popping *before* [`CLASS_NORMAL`] at the same instant.
///
/// Exists for event families that must win every same-instant tie no
/// matter when they were inserted — e.g. workload arrivals, which were
/// historically all scheduled before the simulation began (and therefore
/// always carried the smallest sequence numbers) and keep that ordering
/// guarantee now that they are scheduled one at a time, mid-run.
pub const CLASS_EARLY: u8 = 0;

/// Default tie-break class used by [`EventQueue::push`].
pub const CLASS_NORMAL: u8 = 1;

/// Backing store selector for [`EventQueue`] — the `SchedIndex`-style
/// knob of the event layer. Both kinds are observationally identical;
/// the wheel trades the heap's O(log n) comparison churn for O(levels)
/// bucket hops and is the backend the arena scheduling path runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Reference binary-heap backend (the original implementation).
    #[default]
    BinaryHeap,
    /// Hierarchical timer-wheel backend.
    TimerWheel,
}

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    time: SimTime,
    class: u8,
    seq: u64,
}

/// Bits consumed per wheel level: 64 buckets each.
const WHEEL_BITS: u32 = 6;
/// Buckets per level.
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
/// Levels needed to cover a full `u64` clock (11 × 6 = 66 ≥ 64 bits).
const WHEEL_LEVELS: usize = 11;

/// Hierarchical timer wheel over `(time, class, seq)` triples.
///
/// Invariants (checked in debug builds by construction):
/// * every entry in `due` has `time <= cursor`;
/// * every entry in a bucket has `time > cursor`, lives at the level of
///   the highest bit-block where its time differs from `cursor`, and its
///   bucket index at that level is strictly greater than the cursor's —
///   so the earliest pending instant is always the lowest occupied
///   bucket of the lowest occupied level, found with two
///   `trailing_zeros` and no wrap-around handling;
/// * `cursor` never moves backwards, so late pushes (engine-clamped
///   same-instant follow-ups) land in `due` where `(time, class, seq)`
///   order still resolves them correctly.
struct Wheel {
    cursor: u64,
    /// Occupancy bitmap per level: bit `i` set iff bucket `i` is
    /// non-empty (tombstones included — emptiness is structural).
    occupied: [u64; WHEEL_LEVELS],
    /// `WHEEL_LEVELS * WHEEL_SLOTS` buckets, flattened.
    buckets: Vec<Vec<(SimTime, u8, u64)>>,
    /// Entries at or before the cursor, ready to pop in key order.
    due: BTreeSet<(SimTime, u8, u64)>,
    /// Total entries stored (buckets + due), tombstones included.
    stored: usize,
}

impl Wheel {
    fn new() -> Self {
        Wheel {
            cursor: 0,
            occupied: [0; WHEEL_LEVELS],
            buckets: (0..WHEEL_LEVELS * WHEEL_SLOTS)
                .map(|_| Vec::new())
                .collect(),
            due: BTreeSet::new(),
            stored: 0,
        }
    }

    /// Stores an entry, routing past-or-present deadlines straight to
    /// `due` and future ones to their bucket.
    fn insert(&mut self, time: SimTime, class: u8, seq: u64) {
        self.stored += 1;
        if time.0 <= self.cursor {
            self.due.insert((time, class, seq));
        } else {
            self.place(time, class, seq);
        }
    }

    /// Buckets a strictly-future entry at the level of the highest
    /// bit-block differing from the cursor.
    fn place(&mut self, time: SimTime, class: u8, seq: u64) {
        debug_assert!(time.0 > self.cursor);
        let diff = time.0 ^ self.cursor;
        let level = ((63 - diff.leading_zeros()) / WHEEL_BITS) as usize;
        let slot = ((time.0 >> (WHEEL_BITS * level as u32)) & (WHEEL_SLOTS as u64 - 1)) as usize;
        self.buckets[level * WHEEL_SLOTS + slot].push((time, class, seq));
        self.occupied[level] |= 1 << slot;
    }

    fn buckets_empty(&self) -> bool {
        self.occupied.iter().all(|&o| o == 0)
    }

    /// Advances the cursor to the next occupied bucket, draining it:
    /// level-0 buckets resolve to a single exact instant and move to
    /// `due`; higher buckets redistribute into lower levels. Dead
    /// entries (cancelled seqs, per `live`) are dropped on the way.
    /// Returns the number of tombstones it discarded.
    fn cascade_once<E>(&mut self, live: &HashMap<u64, E>) -> usize {
        let level = self
            .occupied
            .iter()
            .position(|&o| o != 0)
            .expect("cascade_once requires an occupied bucket");
        let slot = self.occupied[level].trailing_zeros() as usize;
        let entries = std::mem::take(&mut self.buckets[level * WHEEL_SLOTS + slot]);
        self.occupied[level] &= !(1 << slot);
        // The bucket's start instant: cursor bits above this level, the
        // bucket index at this level, zeros below. For level 0 this is
        // the exact deadline every entry in the bucket shares.
        let width = WHEEL_BITS * level as u32;
        let above = if level + 1 == WHEEL_LEVELS {
            0
        } else {
            self.cursor >> (width + WHEEL_BITS) << (width + WHEEL_BITS)
        };
        let start = above | ((slot as u64) << width);
        debug_assert!(start >= self.cursor);
        self.cursor = start;
        let mut dropped = 0;
        for (time, class, seq) in entries {
            if !live.contains_key(&seq) {
                dropped += 1;
                continue;
            }
            if time.0 <= self.cursor {
                debug_assert!(time.0 == self.cursor);
                self.due.insert((time, class, seq));
            } else {
                self.place(time, class, seq);
            }
        }
        self.stored -= dropped;
        dropped
    }

    /// Rebuilds the wheel from its live entries (compaction).
    fn rebuild<E>(&mut self, live: &HashMap<u64, E>) {
        let mut entries: Vec<(SimTime, u8, u64)> = Vec::with_capacity(live.len());
        entries.extend(self.due.iter().filter(|(_, _, s)| live.contains_key(s)));
        for bucket in &mut self.buckets {
            entries.extend(bucket.drain(..).filter(|(_, _, s)| live.contains_key(s)));
        }
        self.due.clear();
        self.occupied = [0; WHEEL_LEVELS];
        self.stored = 0;
        for (time, class, seq) in entries {
            self.insert(time, class, seq);
        }
    }
}

enum Backend {
    Heap(BinaryHeap<Reverse<Entry>>),
    Wheel(Box<Wheel>),
}

/// A time-ordered queue of events of type `E` supporting O(log n) push/pop
/// and O(1) cancellation (amortised: tombstones are drained lazily).
pub struct EventQueue<E> {
    backend: Backend,
    live: HashMap<u64, E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::with_kind(QueueKind::BinaryHeap)
    }

    /// A queue on the given backend; both kinds pop identically.
    pub fn with_kind(kind: QueueKind) -> Self {
        EventQueue {
            backend: match kind {
                QueueKind::BinaryHeap => Backend::Heap(BinaryHeap::new()),
                QueueKind::TimerWheel => Backend::Wheel(Box::new(Wheel::new())),
            },
            live: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules `event` at `time` in [`CLASS_NORMAL`], returning a key
    /// usable with [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        self.push_with_class(time, CLASS_NORMAL, event)
    }

    /// Schedules `event` at `time` in an explicit tie-break `class`
    /// (lower classes pop first at equal instants; FIFO within a class).
    pub fn push_with_class(&mut self, time: SimTime, class: u8, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(heap) => heap.push(Reverse(Entry { time, class, seq })),
            Backend::Wheel(wheel) => wheel.insert(time, class, seq),
        }
        self.live.insert(seq, event);
        EventKey(seq)
    }

    /// Number of store slots currently backing the queue — live entries
    /// plus tombstones. Compaction keeps this at ≤ 2 × [`EventQueue::len`]
    /// after every operation; exposed so tests (and capacity telemetry)
    /// can observe the bound.
    pub fn heap_len(&self) -> usize {
        match &self.backend {
            Backend::Heap(heap) => heap.len(),
            Backend::Wheel(wheel) => wheel.stored,
        }
    }

    /// Cancels a previously scheduled event. Returns the payload if the
    /// event was still pending.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let payload = self.live.remove(&key.0);
        if payload.is_some() {
            self.maybe_compact();
        }
        payload
    }

    /// Time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_head().map(|(t, _)| t)
    }

    /// `(time, class)` of the earliest live event, if any — lets callers
    /// distinguish same-instant [`CLASS_EARLY`] arrivals from ordinary
    /// events without consuming anything (the driver's batch window
    /// test).
    pub fn peek_head(&mut self) -> Option<(SimTime, u8)> {
        self.settle_head();
        match &self.backend {
            Backend::Heap(heap) => heap.peek().map(|Reverse(e)| (e.time, e.class)),
            Backend::Wheel(wheel) => wheel.due.first().map(|&(t, c, _)| (t, c)),
        }
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.settle_head();
        let (time, seq) = match &mut self.backend {
            Backend::Heap(heap) => {
                let Reverse(entry) = heap.pop()?;
                (entry.time, entry.seq)
            }
            Backend::Wheel(wheel) => {
                let (time, _, seq) = wheel.due.pop_first()?;
                wheel.stored -= 1;
                (time, seq)
            }
        };
        let event = self
            .live
            .remove(&seq)
            .expect("settle_head guarantees the head entry is live");
        self.maybe_compact();
        Some((time, event))
    }

    /// Brings the earliest *live* entry to the head of the store: skips
    /// heap tombstones, or (wheel) drops dead due-heads and cascades
    /// buckets until the due set leads with a live entry.
    fn settle_head(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => {
                while let Some(Reverse(entry)) = heap.peek() {
                    if self.live.contains_key(&entry.seq) {
                        return;
                    }
                    heap.pop();
                }
            }
            Backend::Wheel(wheel) => loop {
                while let Some(&(_, _, seq)) = wheel.due.first() {
                    if self.live.contains_key(&seq) {
                        return;
                    }
                    wheel.due.pop_first();
                    wheel.stored -= 1;
                }
                if wheel.buckets_empty() {
                    return;
                }
                wheel.cascade_once(&self.live);
            },
        }
    }

    /// Rebuilds the store from its live entries once tombstones outnumber
    /// them. Amortised O(1) per cancellation: a compaction touching `h`
    /// entries only happens after ≥ h/2 cancellations or pops, and the
    /// rebuilt store pops in exactly the same `(time, class, seq)` order.
    fn maybe_compact(&mut self) {
        match &mut self.backend {
            Backend::Heap(heap) => {
                if heap.len() > 2 * self.live.len() {
                    let mut entries = std::mem::take(heap).into_vec();
                    entries.retain(|Reverse(e)| self.live.contains_key(&e.seq));
                    *heap = BinaryHeap::from(entries);
                }
            }
            Backend::Wheel(wheel) => {
                if wheel.stored > 2 * self.live.len() {
                    wheel.rebuild(&self.live);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every unit test runs against both backends — the wheel must be
    /// observationally identical to the heap.
    fn both(check: impl Fn(QueueKind)) {
        check(QueueKind::BinaryHeap);
        check(QueueKind::TimerWheel);
    }

    #[test]
    fn pops_in_time_order() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(30), "c");
            q.push(SimTime(10), "a");
            q.push(SimTime(20), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"]);
        });
    }

    #[test]
    fn ties_pop_fifo() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..100 {
                q.push(SimTime(5), i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn early_class_beats_normal_at_same_instant() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(5), "normal-1");
            q.push_with_class(SimTime(5), CLASS_EARLY, "early-1");
            q.push(SimTime(5), "normal-2");
            q.push_with_class(SimTime(5), CLASS_EARLY, "early-2");
            // Earlier *times* still dominate any class.
            q.push(SimTime(1), "first");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(
                order,
                vec!["first", "early-1", "early-2", "normal-1", "normal-2"]
            );
        });
    }

    #[test]
    fn cancel_removes_event() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let k1 = q.push(SimTime(1), "x");
            q.push(SimTime(2), "y");
            assert_eq!(q.cancel(k1), Some("x"));
            assert_eq!(q.cancel(k1), None, "double cancel is a no-op");
            assert_eq!(q.len(), 1);
            assert_eq!(q.pop(), Some((SimTime(2), "y")));
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn peek_skips_cancelled_head() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let k = q.push(SimTime(1), 1);
            q.push(SimTime(9), 9);
            q.cancel(k);
            assert_eq!(q.peek_time(), Some(SimTime(9)));
        });
    }

    #[test]
    fn peek_head_exposes_the_class() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime(5), "normal");
            assert_eq!(q.peek_head(), Some((SimTime(5), CLASS_NORMAL)));
            q.push_with_class(SimTime(5), CLASS_EARLY, "early");
            assert_eq!(q.peek_head(), Some((SimTime(5), CLASS_EARLY)));
            q.pop();
            assert_eq!(q.peek_head(), Some((SimTime(5), CLASS_NORMAL)));
        });
    }

    #[test]
    fn len_tracks_live_only() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let keys: Vec<_> = (0..10).map(|i| q.push(SimTime(i), i)).collect();
            for k in &keys[..4] {
                q.cancel(*k);
            }
            assert_eq!(q.len(), 6);
            assert!(!q.is_empty());
        });
    }

    #[test]
    fn compaction_bounds_tombstones() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let keys: Vec<_> = (0..1000).map(|i| q.push(SimTime(i), i)).collect();
            // Cancel almost everything: the store must shrink with the
            // live set instead of retaining a tombstone per cancellation.
            for k in &keys[..990] {
                q.cancel(*k);
            }
            assert_eq!(q.len(), 10);
            assert!(
                q.heap_len() <= 2 * q.len(),
                "store {} vs live {}",
                q.heap_len(),
                q.len()
            );
            // Pop order is unaffected by the rebuild.
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (990..1000).collect::<Vec<_>>());
            assert_eq!(q.heap_len(), 0, "empty queue keeps no tombstones");
        });
    }

    #[test]
    fn cancel_everything_releases_the_heap() {
        both(|kind| {
            let mut q = EventQueue::with_kind(kind);
            let keys: Vec<_> = (0..64).map(|i| q.push(SimTime(1), i)).collect();
            for k in keys {
                q.cancel(k);
            }
            assert!(q.is_empty());
            assert_eq!(q.heap_len(), 0);
            assert_eq!(q.pop(), None::<(SimTime, i32)>);
        });
    }

    #[test]
    fn wheel_handles_pushes_below_the_cursor() {
        // Popping at t=1000 advances the wheel cursor; a later push at
        // t=900 (the engine clamps, but the queue contract is general)
        // must still pop before a pending t=2000 event.
        let mut q = EventQueue::with_kind(QueueKind::TimerWheel);
        q.push(SimTime(1000), "a");
        q.push(SimTime(2000), "c");
        assert_eq!(q.pop(), Some((SimTime(1000), "a")));
        q.push(SimTime(900), "b");
        assert_eq!(q.pop(), Some((SimTime(900), "b")));
        assert_eq!(q.pop(), Some((SimTime(2000), "c")));
    }

    #[test]
    fn wheel_cascades_across_levels() {
        // Deadlines spread over many bit-blocks force multi-level
        // cascades; order must still be exact.
        let mut q = EventQueue::with_kind(QueueKind::TimerWheel);
        let times = [
            1u64,
            63,
            64,
            65,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 1,
            1 << 40,
            u64::MAX / 2,
            u64::MAX - 1,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let mut want: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (SimTime(t), i))
            .collect();
        want.sort();
        assert_eq!(order, want);
    }
}
