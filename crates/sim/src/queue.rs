//! Cancellable priority queue of timestamped events.
//!
//! Ordering is `(time, class, sequence)` where the sequence number is
//! assigned at insertion, so events scheduled for the same instant pop in
//! FIFO order within their class; the class lets a family of events
//! outrank same-instant events of the default class regardless of
//! insertion order. Cancellation tombstones the entry; dead entries are
//! skipped on pop, and the heap is compacted whenever tombstones
//! outnumber live entries, so cancelled-event memory stays bounded at
//! twice the live set no matter how many timers a long run abandons.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::time::SimTime;

/// Tie-break class popping *before* [`CLASS_NORMAL`] at the same instant.
///
/// Exists for event families that must win every same-instant tie no
/// matter when they were inserted — e.g. workload arrivals, which were
/// historically all scheduled before the simulation began (and therefore
/// always carried the smallest sequence numbers) and keep that ordering
/// guarantee now that they are scheduled one at a time, mid-run.
pub const CLASS_EARLY: u8 = 0;

/// Default tie-break class used by [`EventQueue::push`].
pub const CLASS_NORMAL: u8 = 1;

/// Opaque handle identifying a scheduled event, used for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    time: SimTime,
    class: u8,
    seq: u64,
}

/// A time-ordered queue of events of type `E` supporting O(log n) push/pop
/// and O(1) cancellation (amortised: tombstones are drained lazily).
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    live: HashMap<u64, E>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Schedules `event` at `time` in [`CLASS_NORMAL`], returning a key
    /// usable with [`EventQueue::cancel`].
    pub fn push(&mut self, time: SimTime, event: E) -> EventKey {
        self.push_with_class(time, CLASS_NORMAL, event)
    }

    /// Schedules `event` at `time` in an explicit tie-break `class`
    /// (lower classes pop first at equal instants; FIFO within a class).
    pub fn push_with_class(&mut self, time: SimTime, class: u8, event: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, class, seq }));
        self.live.insert(seq, event);
        EventKey(seq)
    }

    /// Number of heap slots currently backing the queue — live entries
    /// plus tombstones. Compaction keeps this at ≤ 2 × [`EventQueue::len`]
    /// after every operation; exposed so tests (and capacity telemetry)
    /// can observe the bound.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Cancels a previously scheduled event. Returns the payload if the
    /// event was still pending.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let payload = self.live.remove(&key.0);
        if payload.is_some() {
            self.maybe_compact();
        }
        payload
    }

    /// Time of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Removes and returns the earliest live event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_dead();
        let Reverse(entry) = self.heap.pop()?;
        let event = self
            .live
            .remove(&entry.seq)
            .expect("skip_dead guarantees the head entry is live");
        self.maybe_compact();
        Some((entry.time, event))
    }

    fn skip_dead(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.live.contains_key(&entry.seq) {
                return;
            }
            self.heap.pop();
        }
    }

    /// Rebuilds the heap from its live entries once tombstones outnumber
    /// them. Amortised O(1) per cancellation: a compaction touching `h`
    /// entries only happens after ≥ h/2 cancellations or pops, and the
    /// rebuilt heap pops in exactly the same `(time, class, seq)` order.
    fn maybe_compact(&mut self) {
        if self.heap.len() > 2 * self.live.len() {
            let mut entries = std::mem::take(&mut self.heap).into_vec();
            entries.retain(|Reverse(e)| self.live.contains_key(&e.seq));
            self.heap = BinaryHeap::from(entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn early_class_beats_normal_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), "normal-1");
        q.push_with_class(SimTime(5), CLASS_EARLY, "early-1");
        q.push(SimTime(5), "normal-2");
        q.push_with_class(SimTime(5), CLASS_EARLY, "early-2");
        // Earlier *times* still dominate any class.
        q.push(SimTime(1), "first");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["first", "early-1", "early-2", "normal-1", "normal-2"]
        );
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let k1 = q.push(SimTime(1), "x");
        q.push(SimTime(2), "y");
        assert_eq!(q.cancel(k1), Some("x"));
        assert_eq!(q.cancel(k1), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime(2), "y")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let k = q.push(SimTime(1), 1);
        q.push(SimTime(9), 9);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }

    #[test]
    fn len_tracks_live_only() {
        let mut q = EventQueue::new();
        let keys: Vec<_> = (0..10).map(|i| q.push(SimTime(i), i)).collect();
        for k in &keys[..4] {
            q.cancel(*k);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }

    #[test]
    fn compaction_bounds_tombstones() {
        let mut q = EventQueue::new();
        let keys: Vec<_> = (0..1000).map(|i| q.push(SimTime(i), i)).collect();
        // Cancel almost everything: the heap must shrink with the live
        // set instead of retaining a tombstone per cancellation.
        for k in &keys[..990] {
            q.cancel(*k);
        }
        assert_eq!(q.len(), 10);
        assert!(
            q.heap_len() <= 2 * q.len(),
            "heap {} vs live {}",
            q.heap_len(),
            q.len()
        );
        // Pop order is unaffected by the rebuild.
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (990..1000).collect::<Vec<_>>());
        assert_eq!(q.heap_len(), 0, "empty queue keeps no tombstones");
    }

    #[test]
    fn cancel_everything_releases_the_heap() {
        let mut q = EventQueue::new();
        let keys: Vec<_> = (0..64).map(|i| q.push(SimTime(1), i)).collect();
        for k in keys {
            q.cancel(k);
        }
        assert!(q.is_empty());
        assert_eq!(q.heap_len(), 0);
        assert_eq!(q.pop(), None::<(SimTime, i32)>);
    }
}
