//! The simulation engine: a clock plus an event queue, with a driver loop.

use crate::queue::{EventKey, EventQueue, QueueKind, CLASS_EARLY, CLASS_NORMAL};
use crate::time::{SimTime, Span};

/// Handle for a scheduled event (re-exported key type).
pub type EventId = EventKey;

/// A virtual clock bound to a cancellable event queue.
///
/// `Engine` is deliberately passive: it owns time and pending events, and the
/// simulation *world* (e.g. the workload driver in `dmr-core`) pulls events
/// and dispatches them. This inversion keeps every domain rule out of the
/// engine and makes the engine reusable and independently testable.
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    past_schedules: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Self::with_queue_kind(QueueKind::BinaryHeap)
    }

    /// An engine whose event queue runs on the given backend. Backends
    /// are observationally identical (`(time, class, seq)` pop order);
    /// the timer wheel is the one the arena scheduling path selects.
    pub fn with_queue_kind(kind: QueueKind) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::with_kind(kind),
            processed: 0,
            past_schedules: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of [`Engine::schedule_at`] calls that targeted an instant in
    /// the past and were clamped to `now`. Always observable (debug *and*
    /// release), so callers — e.g. scenario sweeps, which run in release
    /// where the debug panic is compiled out — can assert
    /// no-past-scheduling.
    pub fn past_schedules(&self) -> u64 {
        self.past_schedules
    }

    /// Schedules an event at an absolute instant. Scheduling in the past is
    /// a logic error: debug builds panic at the first occurrence; release
    /// builds clamp the instant to `now` (the event fires immediately next)
    /// and count the clamp in [`Engine::past_schedules`], which is also
    /// maintained in debug builds so sweeps can assert on it uniformly.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_class(at, CLASS_NORMAL, event)
    }

    /// Like [`Engine::schedule_at`], but the event wins every tie against
    /// same-instant [`Engine::schedule_at`] events regardless of insertion
    /// order (FIFO among early events). Used for event families that must
    /// keep front-of-queue semantics — e.g. streamed workload arrivals,
    /// which historically were all scheduled before the run began and
    /// therefore always popped first at their instant.
    pub fn schedule_at_early(&mut self, at: SimTime, event: E) -> EventId {
        self.schedule_class(at, CLASS_EARLY, event)
    }

    fn schedule_class(&mut self, at: SimTime, class: u8, event: E) -> EventId {
        if at < self.now {
            self.past_schedules += 1;
            debug_assert!(
                false,
                "scheduled event in the past: at={:?} now={:?}",
                at, self.now
            );
        }
        let at = at.max(self.now);
        self.queue.push_with_class(at, class, event)
    }

    /// Schedules an event `delay` after the current instant. Routed through
    /// [`Engine::schedule_at`] so both entry points share the
    /// past-scheduling clamp and [`Engine::past_schedules`] accounting (a
    /// non-negative `delay` can never trip it, but the invariant lives in
    /// exactly one place).
    pub fn schedule_in(&mut self, delay: Span, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a pending event, returning its payload if it had not fired.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        self.queue.cancel(id)
    }

    /// Time of the next pending event without consuming it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// `(time, class)` of the next pending event without consuming it.
    /// The class is [`CLASS_EARLY`] for events scheduled through
    /// [`Engine::schedule_at_early`]; drivers use it to tell whether the
    /// head of the queue is a same-instant arrival (extend the batch
    /// window) or an ordinary event (flush deferred scheduling work).
    pub fn peek_head(&mut self) -> Option<(SimTime, u8)> {
        self.queue.peek_head()
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue went backwards");
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// Runs the event loop to exhaustion, dispatching each event to
    /// `handler`. The handler receives the engine so it can schedule further
    /// events; this is the standard DES pattern.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Engine<E>, SimTime, E)) {
        while let Some((t, e)) = self.next_event() {
            handler(self, t, e);
        }
    }

    /// Like [`Engine::run`] but stops (leaving the queue intact) once the
    /// clock would pass `deadline`. Events at exactly `deadline` still run.
    pub fn run_until(
        &mut self,
        deadline: SimTime,
        mut handler: impl FnMut(&mut Engine<E>, SimTime, E),
    ) {
        while self.peek_time().is_some_and(|t| t <= deadline) {
            let Some((t, e)) = self.next_event() else {
                break;
            };
            handler(self, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
        Spawn,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        eng.schedule_at(SimTime::from_secs(2), Ev::Tick(0));
        let (t, e) = eng.next_event().unwrap();
        assert_eq!((t, e), (SimTime::from_secs(2), Ev::Tick(0)));
        assert_eq!(eng.now(), SimTime::from_secs(2));
        let (t, _) = eng.next_event().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
        assert!(eng.next_event().is_none());
        assert_eq!(eng.processed(), 2);
    }

    #[test]
    fn handler_can_schedule_more_events() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), Ev::Spawn);
        let mut ticks = Vec::new();
        eng.run(|eng, t, e| match e {
            Ev::Spawn => {
                for i in 0..3 {
                    eng.schedule_in(Span::from_secs(i + 1), Ev::Tick(i as u32));
                }
            }
            Ev::Tick(i) => ticks.push((t, i)),
        });
        assert_eq!(
            ticks,
            vec![
                (SimTime::from_secs(2), 0),
                (SimTime::from_secs(3), 1),
                (SimTime::from_secs(4), 2)
            ]
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 1..=10u64 {
            eng.schedule_at(SimTime::from_secs(i), i as u32);
        }
        let mut seen = Vec::new();
        eng.run_until(SimTime::from_secs(4), |_, _, e| seen.push(e));
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(eng.pending(), 6);
        assert_eq!(eng.now(), SimTime::from_secs(4));
    }

    #[test]
    fn past_scheduling_clamps_and_counts() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_secs(10), 1);
        eng.next_event();
        assert_eq!(eng.past_schedules(), 0);
        // now = 10; scheduling at 3 panics in debug builds and clamps to
        // `now` in release builds — the counter records it either way.
        if cfg!(debug_assertions) {
            let poked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eng.schedule_at(SimTime::from_secs(3), 2);
            }));
            assert!(poked.is_err(), "debug builds must panic");
        } else {
            eng.schedule_at(SimTime::from_secs(3), 2);
            let (t, e) = eng.next_event().unwrap();
            assert_eq!((t, e), (SimTime::from_secs(10), 2), "clamped to now");
        }
        assert_eq!(eng.past_schedules(), 1);
        // Scheduling exactly at `now` is fine.
        eng.schedule_at(SimTime::from_secs(10), 3);
        assert_eq!(eng.past_schedules(), 1);
    }

    #[test]
    fn early_events_outrank_same_instant_normal_events() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule_at(SimTime::from_secs(5), "normal");
        eng.schedule_at_early(SimTime::from_secs(5), "early");
        let mut seen = Vec::new();
        eng.run(|_, _, e| seen.push(e));
        assert_eq!(seen, vec!["early", "normal"]);
    }

    #[test]
    fn schedule_in_shares_the_schedule_at_invariant() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_secs(4), 1);
        eng.next_event();
        // Zero and positive delays from `now` are never "in the past".
        eng.schedule_in(Span::ZERO, 2);
        eng.schedule_in(Span::from_secs(1), 3);
        assert_eq!(eng.past_schedules(), 0);
        let (t2, e2) = eng.next_event().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(4), 2));
        let (t3, e3) = eng.next_event().unwrap();
        assert_eq!((t3, e3), (SimTime::from_secs(5), 3));
    }

    #[test]
    fn run_until_survives_concurrent_cancellation() {
        // A handler that cancels the next pending event must not trip
        // run_until: the loop re-peeks instead of trusting a stale peek.
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime::from_secs(1), 1);
        let doomed = eng.schedule_at(SimTime::from_secs(2), 2);
        eng.schedule_at(SimTime::from_secs(3), 3);
        let mut seen = Vec::new();
        eng.run_until(SimTime::from_secs(10), |eng, _, e| {
            if e == 1 {
                eng.cancel(doomed);
            }
            seen.push(e);
        });
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut eng: Engine<u32> = Engine::new();
        let id = eng.schedule_at(SimTime::from_secs(1), 1);
        eng.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(eng.cancel(id), Some(1));
        let mut seen = Vec::new();
        eng.run(|_, _, e| seen.push(e));
        assert_eq!(seen, vec![2]);
    }

    #[test]
    fn same_time_events_fifo() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..5 {
            eng.schedule_at(SimTime::from_secs(7), i);
        }
        let mut seen = Vec::new();
        eng.run(|_, _, e| seen.push(e));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
