//! # dmr-sim — deterministic discrete-event simulation engine
//!
//! This crate provides the virtual-time substrate on which the whole
//! reproduction runs. The paper evaluated its malleability framework on the
//! MareNostrum supercomputer; we replace the physical machine with a
//! discrete-event simulation (DES) whose clock is a `u64` count of
//! microseconds. Everything above this crate (cluster, Slurm, the DMR
//! negotiation) *is the real algorithm* — only wall-clock waiting is
//! virtualised.
//!
//! Design constraints:
//!
//! * **Determinism.** Events are ordered by `(time, class, sequence-number)`;
//!   ties are broken by an explicit tie-break class (see
//!   [`queue::CLASS_EARLY`]) and then by insertion order, never by heap
//!   internals. Two runs with the same inputs produce identical event
//!   sequences (asserted by tests).
//! * **Cancellation.** Schedulers routinely abandon timers (e.g. the resizer
//!   job timeout in the expansion protocol). [`Engine::cancel`] removes an
//!   event in O(1) amortised by tombstoning.
//! * **No floating-point clock.** `f64` seconds are accepted at the API edge
//!   ([`SimTime::from_secs_f64`]) but the clock itself is integral, so event
//!   ordering can never be perturbed by rounding.

pub mod engine;
pub mod queue;
pub mod time;

pub use engine::{Engine, EventId};
pub use queue::{EventQueue, QueueKind, CLASS_EARLY, CLASS_NORMAL};
pub use time::{SimTime, Span};
