//! Virtual time: instants ([`SimTime`]) and durations ([`Span`]) with
//! microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time, counted in microseconds since simulation
/// start.
///
/// The representation is integral so that event ordering is exact; helper
/// constructors convert from seconds expressed as `f64` (the natural unit of
/// the paper's parameters: arrival times, step lengths, inhibitor periods).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A length of virtual time in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span(pub u64);

pub const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_micros(s))
    }

    /// The instant as fractional seconds (for reporting only; never feed the
    /// result back into ordering decisions).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Span from an earlier instant to this one; saturates at zero if
    /// `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> Span {
        Span(self.0.saturating_sub(earlier.0))
    }
}

impl Span {
    pub const ZERO: Span = Span(0);

    /// Builds a span from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Span(s * MICROS_PER_SEC)
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// microsecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Span(secs_to_micros(s))
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scales the span by a non-negative factor (used by cost models).
    pub fn mul_f64(self, k: f64) -> Span {
        Span(secs_to_micros(self.as_secs_f64() * k))
    }
}

fn secs_to_micros(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    let micros = s * MICROS_PER_SEC as f64;
    if micros >= u64::MAX as f64 {
        u64::MAX
    } else {
        micros.round() as u64
    }
}

impl Add<Span> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Span) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Span> for SimTime {
    fn add_assign(&mut self, rhs: Span) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Span;
    fn sub(self, rhs: SimTime) -> Span {
        self.since(rhs)
    }
}

impl Add for Span {
    type Output = Span;
    fn add(self, rhs: Span) -> Span {
        Span(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Span {
    fn add_assign(&mut self, rhs: Span) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Span {
    type Output = Span;
    fn sub(self, rhs: Span) -> Span {
        Span(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(Span::from_secs_f64(f64::NAN), Span::ZERO);
        assert_eq!(Span::from_secs_f64(f64::NEG_INFINITY), Span::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime(u64::MAX - 1);
        assert_eq!((t + Span(10)).0, u64::MAX);
        assert_eq!(SimTime(5).since(SimTime(9)), Span::ZERO);
        assert_eq!(Span(3) - Span(8), Span::ZERO);
    }

    #[test]
    fn ordering_is_integral() {
        // 0.1 + 0.2 != 0.3 in f64, but micro counts compare exactly.
        let a = SimTime::from_secs_f64(0.1) + Span::from_secs_f64(0.2);
        let b = SimTime::from_secs_f64(0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn span_scaling() {
        let s = Span::from_secs(10).mul_f64(0.5);
        assert_eq!(s, Span::from_secs(5));
        assert_eq!(Span::from_secs(1).mul_f64(-2.0), Span::ZERO);
    }

    #[test]
    fn since_measures_elapsed() {
        let start = SimTime::from_secs(100);
        let end = SimTime::from_secs(160);
        assert_eq!(end.since(start), Span::from_secs(60));
        assert_eq!(end - start, Span::from_secs(60));
    }
}
