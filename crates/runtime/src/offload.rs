//! OmpSs offload semantics (§VI).
//!
//! The paper reconfigures by offloading the application's own compute
//! task onto the *new* communicator:
//!
//! ```c
//! #pragma omp task inout(data) onto(handler, rank)
//! compute(data, t);
//! #pragma omp taskwait
//! ```
//!
//! `inout(data)` ships the task's data dependency to the target; the
//! `taskwait` lets the original processes terminate only once the
//! offloaded tasks are delivered. In Rust (and across thread-ranks that
//! share no memory) the moving parts become explicit: an [`OffloadTask`]
//! carries the serialized `inout` data plus the resume point (the
//! time-step `t` of Listing 1), and the acknowledgement protocol mirrors
//! the shrink ACK workflow of §V-B2 (nodes are released only after every
//! process signalled completion of its offloading tasks).

use dmr_mpi::{InterComm, MpiData, MpiError};

const TASK_TAG: i32 = 0xFF10;
const ACK_TAG: i32 = 0xFF11;

/// A task shipped to one rank of the new process set.
#[derive(Clone, Debug, PartialEq)]
pub struct OffloadTask<T> {
    /// The `inout` dependency: the block of application state this target
    /// rank will own.
    pub data: Vec<T>,
    /// The resume point — Listing 1 sends the time-step `t` alongside the
    /// data.
    pub step: u64,
}

/// Offloads a task with `inout` data onto rank `dest` of the remote group
/// (the `onto(handler, dest)` clause).
pub fn offload<T: MpiData>(
    inter: &mut InterComm,
    dest: usize,
    task: &OffloadTask<T>,
) -> Result<(), MpiError> {
    inter.send(&[task.step], dest, TASK_TAG)?;
    inter.send(&task.data, dest, TASK_TAG + 1)
}

/// Target side: accepts the task offloaded to this rank.
pub fn accept<T: MpiData>(parent: &mut InterComm) -> Result<OffloadTask<T>, MpiError> {
    let (step, st) = parent.recv::<u64>(None, Some(TASK_TAG))?;
    let (data, _) = parent.recv::<T>(Some(st.source), Some(TASK_TAG + 1))?;
    Ok(OffloadTask {
        data,
        step: step[0],
    })
}

/// Target side: signals that the offloaded task was received and adopted
/// (releases the source's `taskwait`).
pub fn ack(parent: &mut InterComm, to: usize) -> Result<(), MpiError> {
    parent.send(&[1u8], to, ACK_TAG)
}

/// Source side: the `taskwait` — blocks until `count` ACKs arrive. In the
/// shrink workflow this is what guarantees "they finished their offloading
/// tasks and the node is ready to be released" (§V-B2).
pub fn taskwait(inter: &mut InterComm, count: usize) -> Result<(), MpiError> {
    for _ in 0..count {
        inter.recv::<u8>(None, Some(ACK_TAG))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_mpi::{Comm, Universe};
    use std::sync::Arc;

    #[test]
    fn offload_round_trip_with_taskwait() {
        let got = Universe::run(1, |mut comm| {
            let entry = Arc::new(|mut child: Comm| {
                let parent = child.parent().unwrap();
                let task = accept::<f64>(parent).unwrap();
                assert_eq!(task.step, 7);
                assert_eq!(task.data, vec![1.0, 2.0, 3.0]);
                ack(parent, 0).unwrap();
            });
            let mut inter = comm.spawn(1, entry).unwrap();
            offload(
                &mut inter,
                0,
                &OffloadTask {
                    data: vec![1.0f64, 2.0, 3.0],
                    step: 7,
                },
            )
            .unwrap();
            taskwait(&mut inter, 1).unwrap();
            true
        });
        assert_eq!(got, vec![true]);
    }

    #[test]
    fn one_parent_fans_out_to_many_targets() {
        // Listing 3's expand loop: rank 0 partitions its block across
        // `factor` children.
        let got = Universe::run(1, |mut comm| {
            let entry = Arc::new(|mut child: Comm| {
                let me = child.rank();
                let parent = child.parent().unwrap();
                let task = accept::<u64>(parent).unwrap();
                assert_eq!(task.data, vec![me as u64 * 10, me as u64 * 10 + 1]);
                ack(parent, 0).unwrap();
            });
            let mut inter = comm.spawn(3, entry).unwrap();
            for dest in 0..3u64 {
                offload(
                    &mut inter,
                    dest as usize,
                    &OffloadTask {
                        data: vec![dest * 10, dest * 10 + 1],
                        step: 0,
                    },
                )
                .unwrap();
            }
            taskwait(&mut inter, 3).unwrap();
            true
        });
        assert_eq!(got, vec![true]);
    }
}
