//! The Dynamic Management of Resources (DMR) API (§V-A).

use crate::inhibitor::Inhibitor;
use crate::rms::RmsClient;

/// The resize envelope an application passes to `dmr_check_status`: the
/// four input arguments the paper lists (§V-A).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DmrSpec {
    /// Minimum number of processes to resize to.
    pub min: u32,
    /// Maximum number of processes ("prevents the application from
    /// growing beyond its scalability capabilities").
    pub max: u32,
    /// Resizing factor: targets are multiples/divisors by this factor.
    pub factor: u32,
    /// Preferred number of processes.
    pub preferred: Option<u32>,
}

impl DmrSpec {
    pub fn new(min: u32, max: u32) -> Self {
        DmrSpec {
            min,
            max,
            factor: 2,
            preferred: None,
        }
    }

    pub fn with_preferred(mut self, p: u32) -> Self {
        self.preferred = Some(p);
        self
    }
}

/// The verdict of a reconfiguring point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmrAction {
    NoAction,
    /// Grow to this many processes; the handler (new inter-communicator)
    /// is produced by the caller's spawn.
    Expand {
        to: u32,
    },
    /// Shrink to this many processes.
    Shrink {
        to: u32,
    },
}

impl DmrAction {
    pub fn is_action(self) -> bool {
        !matches!(self, DmrAction::NoAction)
    }
}

/// Runtime-side state of the DMR API for one application instance.
///
/// Owns the RMS connection, the checking inhibitor and (for the
/// asynchronous variant) the action negotiated at the previous step.
pub struct DmrRuntime<C: RmsClient> {
    rms: C,
    inhibitor: Option<Inhibitor>,
    pending: Option<DmrAction>,
    checks: u64,
    inhibited: u64,
}

impl<C: RmsClient> DmrRuntime<C> {
    pub fn new(rms: C) -> Self {
        DmrRuntime {
            rms,
            inhibitor: Inhibitor::from_env(),
            pending: None,
            checks: 0,
            inhibited: 0,
        }
    }

    /// Overrides the environment-configured inhibitor.
    pub fn with_inhibitor(mut self, inhibitor: Option<Inhibitor>) -> Self {
        self.inhibitor = inhibitor;
        self
    }

    /// Number of checks that actually reached the RMS.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of calls swallowed by the inhibitor.
    pub fn inhibited(&self) -> u64 {
        self.inhibited
    }

    fn gate(&mut self, now_s: f64) -> bool {
        if let Some(i) = &mut self.inhibitor {
            if !i.allow(now_s) {
                self.inhibited += 1;
                return false;
            }
        }
        true
    }

    /// `dmr_check_status`: synchronously negotiate with the RMS and return
    /// the action to apply *now*. `current` is the current process count.
    pub fn check_status(&mut self, now_s: f64, current: u32, spec: &DmrSpec) -> DmrAction {
        if !self.gate(now_s) {
            return DmrAction::NoAction;
        }
        self.checks += 1;
        self.rms.negotiate(current, spec)
    }

    /// `dmr_icheck_status`: returns the action negotiated at the previous
    /// reconfiguring point and schedules a new negotiation for the next
    /// one ("schedules the next action for the next execution step",
    /// §V-A). The first call therefore always returns
    /// [`DmrAction::NoAction`].
    pub fn icheck_status(&mut self, now_s: f64, current: u32, spec: &DmrSpec) -> DmrAction {
        if !self.gate(now_s) {
            return DmrAction::NoAction;
        }
        self.checks += 1;
        let planned = self.pending.take().unwrap_or(DmrAction::NoAction);
        self.pending = Some(self.rms.negotiate(current, spec));
        planned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rms::ScriptedRms;

    #[test]
    fn sync_check_returns_rms_verdict() {
        let rms = ScriptedRms::new(vec![
            DmrAction::Expand { to: 8 },
            DmrAction::NoAction,
            DmrAction::Shrink { to: 2 },
        ]);
        let mut rt = DmrRuntime::new(rms).with_inhibitor(None);
        assert_eq!(
            rt.check_status(0.0, 4, &DmrSpec::new(1, 16)),
            DmrAction::Expand { to: 8 }
        );
        assert_eq!(
            rt.check_status(1.0, 8, &DmrSpec::new(1, 16)),
            DmrAction::NoAction
        );
        assert_eq!(
            rt.check_status(2.0, 8, &DmrSpec::new(1, 16)),
            DmrAction::Shrink { to: 2 }
        );
        assert_eq!(rt.checks(), 3);
    }

    #[test]
    fn async_check_lags_one_step() {
        let rms = ScriptedRms::new(vec![
            DmrAction::Expand { to: 8 },
            DmrAction::Shrink { to: 2 },
        ]);
        let mut rt = DmrRuntime::new(rms).with_inhibitor(None);
        let spec = DmrSpec::new(1, 16);
        // First call: nothing planned yet.
        assert_eq!(rt.icheck_status(0.0, 4, &spec), DmrAction::NoAction);
        // Second call returns the action negotiated at the first.
        assert_eq!(rt.icheck_status(1.0, 4, &spec), DmrAction::Expand { to: 8 });
        assert_eq!(rt.icheck_status(2.0, 8, &spec), DmrAction::Shrink { to: 2 });
    }

    #[test]
    fn inhibitor_swallows_calls() {
        let rms = ScriptedRms::new(vec![DmrAction::Expand { to: 8 }]);
        let mut rt = DmrRuntime::new(rms).with_inhibitor(Some(Inhibitor::new(10.0)));
        let spec = DmrSpec::new(1, 16);
        // First call allowed (fresh inhibitor), consumes the script.
        assert!(rt.check_status(0.0, 4, &spec).is_action());
        // Within the period: swallowed without contacting the RMS.
        assert_eq!(rt.check_status(3.0, 8, &spec), DmrAction::NoAction);
        assert_eq!(rt.check_status(9.9, 8, &spec), DmrAction::NoAction);
        assert_eq!(rt.inhibited(), 2);
        assert_eq!(rt.checks(), 1);
        // After the period: reaches the (now empty) RMS script.
        assert_eq!(rt.check_status(10.1, 8, &spec), DmrAction::NoAction);
        assert_eq!(rt.checks(), 2);
    }

    #[test]
    fn spec_builder() {
        let s = DmrSpec::new(2, 32).with_preferred(8);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 32);
        assert_eq!(s.factor, 2);
        assert_eq!(s.preferred, Some(8));
    }
}
