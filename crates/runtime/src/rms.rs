//! The runtime↔RMS contract.
//!
//! The paper's Nanos++ talks to Slurm through its external API; here the
//! contract is a trait so the real kernels can run against a scripted
//! double (unit tests, examples) or against the full `dmr-slurm`
//! scheduler (wired up in the umbrella crate, where both sides are in
//! scope).

use std::collections::VecDeque;

use crate::dmr::{DmrAction, DmrSpec};

/// Whatever answers reconfiguration requests.
pub trait RmsClient {
    /// One negotiation: the application currently runs `current`
    /// processes and exposes `spec`; the RMS answers with the action.
    fn negotiate(&mut self, current: u32, spec: &DmrSpec) -> DmrAction;
}

/// A scripted RMS: returns a fixed sequence of actions, then
/// [`DmrAction::NoAction`] forever. Sanitises verdicts against the spec
/// (never expands past `max` nor shrinks below `min`).
pub struct ScriptedRms {
    script: VecDeque<DmrAction>,
}

impl ScriptedRms {
    pub fn new(script: Vec<DmrAction>) -> Self {
        ScriptedRms {
            script: script.into(),
        }
    }

    /// An RMS that never reconfigures.
    pub fn quiescent() -> Self {
        ScriptedRms::new(Vec::new())
    }
}

impl RmsClient for ScriptedRms {
    fn negotiate(&mut self, current: u32, spec: &DmrSpec) -> DmrAction {
        match self.script.pop_front() {
            Some(DmrAction::Expand { to }) if to > current && to <= spec.max => {
                DmrAction::Expand { to }
            }
            Some(DmrAction::Shrink { to }) if to < current && to >= spec.min => {
                DmrAction::Shrink { to }
            }
            _ => DmrAction::NoAction,
        }
    }
}

/// Closure-backed client, handy for tests that need full control.
pub struct FnRms<F: FnMut(u32, &DmrSpec) -> DmrAction>(pub F);

impl<F: FnMut(u32, &DmrSpec) -> DmrAction> RmsClient for FnRms<F> {
    fn negotiate(&mut self, current: u32, spec: &DmrSpec) -> DmrAction {
        (self.0)(current, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_plays_in_order_then_noaction() {
        let mut rms = ScriptedRms::new(vec![
            DmrAction::Expand { to: 8 },
            DmrAction::Shrink { to: 4 },
        ]);
        let spec = DmrSpec::new(1, 16);
        assert_eq!(rms.negotiate(4, &spec), DmrAction::Expand { to: 8 });
        assert_eq!(rms.negotiate(8, &spec), DmrAction::Shrink { to: 4 });
        assert_eq!(rms.negotiate(4, &spec), DmrAction::NoAction);
    }

    #[test]
    fn script_is_sanitised_against_spec() {
        let spec = DmrSpec::new(4, 8);
        let mut rms = ScriptedRms::new(vec![
            DmrAction::Expand { to: 16 }, // beyond max
            DmrAction::Shrink { to: 2 },  // below min
            DmrAction::Expand { to: 4 },  // not a growth from 4
        ]);
        assert_eq!(rms.negotiate(4, &spec), DmrAction::NoAction);
        assert_eq!(rms.negotiate(4, &spec), DmrAction::NoAction);
        assert_eq!(rms.negotiate(4, &spec), DmrAction::NoAction);
    }

    #[test]
    fn fn_rms_delegates() {
        let mut rms = FnRms(|current, _spec: &DmrSpec| {
            if current < 4 {
                DmrAction::Expand { to: 4 }
            } else {
                DmrAction::NoAction
            }
        });
        assert_eq!(
            rms.negotiate(2, &DmrSpec::new(1, 8)),
            DmrAction::Expand { to: 4 }
        );
        assert_eq!(rms.negotiate(4, &DmrSpec::new(1, 8)), DmrAction::NoAction);
    }
}
