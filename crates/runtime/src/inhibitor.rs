//! The checking inhibitor (§V-A).
//!
//! "An additional mechanism implemented to reach a fair balance between
//! performance and throughput is the checking inhibitor. This introduces
//! a timeout during which the calls to the DMR API are ignored." The knob
//! is the `NANOX_SCHED_PERIOD` environment variable.

/// Environment variable carrying the inhibition period in seconds.
pub const ENV_SCHED_PERIOD: &str = "NANOX_SCHED_PERIOD";

/// Rate limiter for DMR API calls.
#[derive(Clone, Copy, Debug)]
pub struct Inhibitor {
    period_s: f64,
    last_allowed_s: Option<f64>,
}

impl Inhibitor {
    /// Inhibits calls for `period_s` seconds after each allowed call.
    pub fn new(period_s: f64) -> Self {
        assert!(period_s >= 0.0 && period_s.is_finite());
        Inhibitor {
            period_s,
            last_allowed_s: None,
        }
    }

    /// Reads `NANOX_SCHED_PERIOD`; absent or unparsable disables
    /// inhibition.
    pub fn from_env() -> Option<Self> {
        std::env::var(ENV_SCHED_PERIOD)
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|p| p.is_finite() && *p > 0.0)
            .map(Inhibitor::new)
    }

    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Whether a call at `now_s` may proceed; an allowed call re-arms the
    /// period.
    pub fn allow(&mut self, now_s: f64) -> bool {
        match self.last_allowed_s {
            Some(last) if now_s - last < self.period_s => false,
            _ => {
                self.last_allowed_s = Some(now_s);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_call_always_allowed() {
        let mut i = Inhibitor::new(10.0);
        assert!(i.allow(0.0));
    }

    #[test]
    fn calls_within_period_blocked() {
        let mut i = Inhibitor::new(10.0);
        assert!(i.allow(0.0));
        assert!(!i.allow(5.0));
        assert!(!i.allow(9.999));
        assert!(i.allow(10.0));
        // Period re-arms from the last allowed call.
        assert!(!i.allow(15.0));
        assert!(i.allow(20.5));
    }

    #[test]
    fn zero_period_allows_everything() {
        let mut i = Inhibitor::new(0.0);
        assert!(i.allow(0.0));
        assert!(i.allow(0.0));
        assert!(i.allow(0.1));
    }

    #[test]
    fn env_parsing() {
        // Set/clear are process-global; use a unique value and restore.
        std::env::set_var(ENV_SCHED_PERIOD, "15");
        let i = Inhibitor::from_env().expect("period set");
        assert_eq!(i.period_s(), 15.0);
        std::env::set_var(ENV_SCHED_PERIOD, "bogus");
        assert!(Inhibitor::from_env().is_none());
        std::env::remove_var(ENV_SCHED_PERIOD);
        assert!(Inhibitor::from_env().is_none());
    }
}
