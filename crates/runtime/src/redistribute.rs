//! Executing redistribution plans over inter-communicators.
//!
//! Expansion and shrink both end with the *new* process set holding the
//! block distribution of the dataset; the old set sends its overlaps
//! through the parent↔child inter-communicator created by
//! `MPI_Comm_spawn`. For homogeneous shrinks the paper first regroups
//! data *inside* the old communicator (Listing 3's sender/receiver
//! pattern); that helper is here too.

use dmr_mpi::{Comm, InterComm, MpiData};

use crate::dist::BlockDist;

/// Tag space reserved for redistribution traffic.
const REDIST_TAG: i32 = 0x0D_15_70;

/// Tag of the intra-communicator shrink pre-shuffle ([`shrink_gather`]).
const SHRINK_TAG: i32 = 0x0D_15_6F;

/// Header/payload tags of redistribution round `round`.
///
/// Each state vector (data dependency) travels in its own round: with a
/// shared tag, a receiver's wildcard-source header match could pair one
/// parent's round-1 header with the bookkeeping of another parent's
/// round-0 traffic (MPI only orders messages per (source, tag)).
fn round_tags(round: usize) -> (i32, i32) {
    let base = REDIST_TAG + 2 * (round as i32);
    (base, base + 1)
}

/// Old-set side: sends this rank's overlaps of `data` (distributed as
/// `from`) towards the new set distributed as `to`. `round` must be the
/// same on both sides and unique per concurrently redistributed vector.
pub fn send_blocks<T: MpiData>(
    inter: &mut InterComm,
    my_rank: usize,
    data: &[T],
    from: &BlockDist,
    to: &BlockDist,
    round: usize,
) -> Result<(), dmr_mpi::MpiError> {
    debug_assert_eq!(data.len(), from.len(my_rank), "local block size mismatch");
    let (htag, ptag) = round_tags(round);
    for t in from.plan_to(to) {
        if t.src_rank != my_rank {
            continue;
        }
        let slice = &data[t.src_offset..t.src_offset + t.len];
        // Two messages: a header carrying (dst_offset, len) so the
        // receiver can place out-of-order arrivals, then the typed slice.
        inter.send(&[t.dst_offset as u64, t.len as u64], t.dst_rank, htag)?;
        inter.send(slice, t.dst_rank, ptag)?;
    }
    Ok(())
}

/// New-set side: receives this rank's block of the dataset distributed as
/// `to`, produced by old ranks distributed as `from`.
pub fn recv_blocks<T: MpiData + Default>(
    parent: &mut InterComm,
    my_rank: usize,
    from: &BlockDist,
    to: &BlockDist,
    round: usize,
) -> Result<Vec<T>, dmr_mpi::MpiError> {
    let mut out = vec![T::default(); to.len(my_rank)];
    let (htag, ptag) = round_tags(round);
    let incoming = from
        .plan_to(to)
        .into_iter()
        .filter(|t| t.dst_rank == my_rank)
        .count();
    for _ in 0..incoming {
        let (header, st) = parent.recv::<u64>(None, Some(htag))?;
        let (dst_offset, len) = (header[0] as usize, header[1] as usize);
        let (slice, _) = parent.recv::<T>(Some(st.source), Some(ptag))?;
        debug_assert_eq!(slice.len(), len);
        out[dst_offset..dst_offset + len].copy_from_slice(&slice);
    }
    Ok(out)
}

/// Listing 3's homogeneous shrink pre-shuffle, executed *inside* the old
/// communicator: ranks are grouped in runs of `factor`; the last rank of
/// each run (the "receiver") collects the others' blocks, concatenated in
/// rank order. Returns `Some(merged)` on receivers, `None` on senders.
///
/// ```text
/// sender   = (rank % factor) < factor - 1
/// receiver = factor * (rank / factor + 1) - 1
/// ```
pub fn shrink_gather<T: MpiData>(
    comm: &mut Comm,
    data: &[T],
    factor: usize,
) -> Result<Option<Vec<T>>, dmr_mpi::MpiError> {
    assert!(factor >= 2, "shrink factor must be at least 2");
    assert_eq!(
        comm.size() % factor,
        0,
        "homogeneous shrink needs size divisible by factor"
    );
    let me = comm.rank();
    let sender = (me % factor) < factor - 1;
    if sender {
        let dst = factor * (me / factor + 1) - 1;
        comm.isend(data, dst, SHRINK_TAG)?;
        Ok(None)
    } else {
        // Receiver: collect the whole run, own block last.
        let run_first = me + 1 - factor;
        let mut merged = Vec::new();
        for src in run_first..me {
            let (block, _) = comm.recv::<T>(Some(src), Some(SHRINK_TAG))?;
            merged.extend(block);
        }
        merged.extend_from_slice(data);
        Ok(Some(merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_mpi::Universe;
    use std::sync::Arc;

    /// Full expand path: 2 parents re-distribute a 16-element vector to 4
    /// children via spawn + send/recv_blocks.
    #[test]
    fn expand_redistributes_blocks() {
        let results = Universe::run(2, |mut comm| {
            let n = 16usize;
            let from = BlockDist::new(n, 2);
            let to = BlockDist::new(n, 4);
            let me = comm.rank();
            // Local block: global index as value.
            let data: Vec<f64> = from.range(me).map(|i| i as f64).collect();
            let entry = Arc::new(move |mut child: Comm| {
                let from = BlockDist::new(16, 2);
                let to = BlockDist::new(16, 4);
                let rank = child.rank();
                let parent = child.parent().unwrap();
                let block = recv_blocks::<f64>(parent, rank, &from, &to, 0).unwrap();
                let expect: Vec<f64> = to.range(rank).map(|i| i as f64).collect();
                assert_eq!(block, expect, "child {rank}");
                // Ack completion (the taskwait).
                parent.send(&[1u8], 0, 99).unwrap();
            });
            let mut inter = comm.spawn(4, entry).unwrap();
            send_blocks(&mut inter, me, &data, &from, &to, 0).unwrap();
            if me == 0 {
                for _ in 0..4 {
                    inter.recv::<u8>(None, Some(99)).unwrap();
                }
            }
            true
        });
        assert!(results.into_iter().all(|b| b));
    }

    /// Shrink path: 4 old ranks regroup with Listing 3's sender/receiver
    /// pattern (factor 2), then the 2 receivers feed 2 children.
    #[test]
    fn shrink_gathers_then_offloads() {
        let results = Universe::run(4, |mut comm| {
            let n = 8usize;
            let from = BlockDist::new(n, 4);
            let me = comm.rank();
            let data: Vec<f64> = from.range(me).map(|i| i as f64).collect();
            let merged = shrink_gather(&mut comm, &data, 2).unwrap();
            // Receivers are ranks 1 and 3; they now hold halves.
            match (me, &merged) {
                (1, Some(m)) => assert_eq!(m, &vec![0.0, 1.0, 2.0, 3.0]),
                (3, Some(m)) => assert_eq!(m, &vec![4.0, 5.0, 6.0, 7.0]),
                (0 | 2, None) => {}
                other => panic!("unexpected grouping {other:?}"),
            }
            // Offload to the shrunken process set: the merged halves are
            // exactly the 2-way distribution.
            let entry = Arc::new(move |mut child: Comm| {
                let old = BlockDist::new(8, 2);
                let new = BlockDist::new(8, 2);
                let rank = child.rank();
                let parent = child.parent().unwrap();
                let block = recv_blocks::<f64>(parent, rank, &old, &new, 0).unwrap();
                let expect: Vec<f64> = new.range(rank).map(|i| i as f64).collect();
                assert_eq!(block, expect, "child {rank}");
            });
            let mut inter = comm.spawn(2, entry).unwrap();
            if let Some(m) = merged {
                let two = BlockDist::new(n, 2);
                // Receiver 1 acts as "old rank 0", receiver 3 as "old rank 1".
                let old_rank = me / 2;
                send_blocks(&mut inter, old_rank, &m, &two, &two, 0).unwrap();
            }
            true
        });
        assert!(results.into_iter().all(|b| b));
    }

    #[test]
    fn sender_receiver_formula_matches_listing3() {
        // factor = 4, ranks 0..8: receivers are 3 and 7.
        for me in 0..8usize {
            let factor = 4;
            let sender = (me % factor) < factor - 1;
            let receiver = factor * (me / factor + 1) - 1;
            if sender {
                assert!(receiver == 3 || receiver == 7);
                assert!(receiver > me || receiver == me + (factor - 1 - me % factor));
            } else {
                assert!(me == 3 || me == 7);
            }
        }
    }
}
