//! Block distributions and redistribution plans.
//!
//! Every application in the paper carries block-distributed state (matrix
//! rows, vector segments, particle ranges). A resize maps the old block
//! decomposition onto the new one; the runtime moves exactly the
//! overlapping intervals. "Our model, however, supports arbitrary
//! distributions" (§VI-B) — the plan below is the general interval
//! intersection, not just the factor-of-two case.

/// A block decomposition of `n` elements over `parts` ranks: the first
/// `n % parts` ranks get one extra element.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockDist {
    pub n: usize,
    pub parts: usize,
}

/// One contiguous transfer of a redistribution plan, in *global* element
/// coordinates plus the local offsets on both ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Transfer {
    pub src_rank: usize,
    pub dst_rank: usize,
    /// Offset inside the source rank's local block.
    pub src_offset: usize,
    /// Offset inside the destination rank's local block.
    pub dst_offset: usize,
    pub len: usize,
}

impl BlockDist {
    pub fn new(n: usize, parts: usize) -> Self {
        assert!(parts > 0, "distribution needs at least one part");
        BlockDist { n, parts }
    }

    /// Global start index of `rank`'s block.
    pub fn start(&self, rank: usize) -> usize {
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        rank * base + rank.min(extra)
    }

    /// Length of `rank`'s block.
    pub fn len(&self, rank: usize) -> usize {
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        base + usize::from(rank < extra)
    }

    /// `true` when the distribution carries no elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Global index range of `rank`.
    pub fn range(&self, rank: usize) -> std::ops::Range<usize> {
        let s = self.start(rank);
        s..s + self.len(rank)
    }

    /// Rank owning global element `i`.
    pub fn owner(&self, i: usize) -> usize {
        assert!(i < self.n, "index {i} out of {n}", n = self.n);
        let base = self.n / self.parts;
        let extra = self.n % self.parts;
        let fat = (base + 1) * extra; // elements in the fat prefix
        if base == 0 || i < fat {
            i / (base + 1)
        } else {
            extra + (i - fat) / base
        }
    }

    /// The exact transfer plan from `self` to `to` (same global size).
    /// Transfers are emitted in (src, dst) order; local-only copies (src
    /// rank == dst rank at identical offsets) are included so a caller can
    /// also use the plan to relocate data in place.
    pub fn plan_to(&self, to: &BlockDist) -> Vec<Transfer> {
        assert_eq!(self.n, to.n, "redistribution cannot change global size");
        let mut plan = Vec::new();
        for src in 0..self.parts {
            let sr = self.range(src);
            if sr.is_empty() {
                continue;
            }
            for dst in 0..to.parts {
                let dr = to.range(dst);
                let lo = sr.start.max(dr.start);
                let hi = sr.end.min(dr.end);
                if lo < hi {
                    plan.push(Transfer {
                        src_rank: src,
                        dst_rank: dst,
                        src_offset: lo - sr.start,
                        dst_offset: lo - dr.start,
                        len: hi - lo,
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let d = BlockDist::new(12, 4);
        assert_eq!(
            (0..4).map(|r| d.range(r)).collect::<Vec<_>>(),
            vec![0..3, 3..6, 6..9, 9..12]
        );
    }

    #[test]
    fn remainder_goes_to_leading_ranks() {
        let d = BlockDist::new(10, 4);
        assert_eq!(d.len(0), 3);
        assert_eq!(d.len(1), 3);
        assert_eq!(d.len(2), 2);
        assert_eq!(d.len(3), 2);
        assert_eq!(d.start(3) + d.len(3), 10, "blocks tile the whole range");
    }

    #[test]
    fn owner_inverts_range() {
        for (n, p) in [(10usize, 4usize), (7, 3), (16, 5), (5, 8)] {
            let d = BlockDist::new(n, p);
            for i in 0..n {
                let r = d.owner(i);
                assert!(d.range(r).contains(&i), "n={n} p={p} i={i} r={r}");
            }
        }
    }

    #[test]
    fn more_parts_than_elements() {
        let d = BlockDist::new(3, 5);
        assert_eq!(d.len(0), 1);
        assert_eq!(d.len(2), 1);
        assert_eq!(d.len(3), 0);
        assert_eq!(d.len(4), 0);
        assert!(d.range(4).is_empty());
    }

    #[test]
    fn plan_expand_covers_everything_exactly_once() {
        let from = BlockDist::new(16, 2);
        let to = BlockDist::new(16, 4);
        let plan = from.plan_to(&to);
        // Coverage check: every global element moves exactly once.
        let mut seen = vec![0u32; 16];
        for t in &plan {
            let g0 = from.start(t.src_rank) + t.src_offset;
            let d0 = to.start(t.dst_rank) + t.dst_offset;
            assert_eq!(g0, d0, "transfer must preserve global position");
            for c in &mut seen[g0..g0 + t.len] {
                *c += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn plan_shrink_mirror_of_expand() {
        let a = BlockDist::new(10, 4);
        let b = BlockDist::new(10, 2);
        let forward = a.plan_to(&b);
        let backward = b.plan_to(&a);
        // Mirrored: same total volume.
        let vol_f: usize = forward.iter().map(|t| t.len).sum();
        let vol_b: usize = backward.iter().map(|t| t.len).sum();
        assert_eq!(vol_f, 10);
        assert_eq!(vol_b, 10);
    }

    #[test]
    fn identity_plan_is_local() {
        let d = BlockDist::new(9, 3);
        let plan = d.plan_to(&d);
        assert!(plan.iter().all(|t| t.src_rank == t.dst_rank));
        assert_eq!(plan.len(), 3);
    }

    #[test]
    #[should_panic(expected = "global size")]
    fn size_mismatch_panics() {
        BlockDist::new(4, 2).plan_to(&BlockDist::new(5, 2));
    }
}
