//! # dmr-runtime — the programming-model runtime (Nanos++ analogue)
//!
//! The paper extends the Nanos++ OmpSs runtime with a Dynamic Management
//! of Resources API (§V). This crate is that layer for the thread-backed
//! MPI substrate:
//!
//! * [`dmr`] — the DMR API itself: [`dmr::DmrSpec`] (minimum / maximum /
//!   factor / preferred), [`dmr::DmrAction`], and [`dmr::DmrRuntime`] with
//!   `check_status` (synchronous) and `icheck_status` (asynchronous — the
//!   decision returned was negotiated at the *previous* reconfiguring
//!   point).
//! * [`rms`] — the runtime↔RMS communication contract
//!   ([`rms::RmsClient`]) plus a scriptable test double.
//! * [`inhibitor`] — the checking inhibitor (`NANOX_SCHED_PERIOD`, §V-A).
//! * [`dist`] — block distributions and exact transfer plans between an
//!   old and a new process set.
//! * [`redistribute`] — executes those plans over `dmr-mpi`
//!   inter-communicators, including Listing 3's sender/receiver grouping
//!   for homogeneous shrinks.
//! * [`offload`] — the OmpSs offload semantics (`#pragma omp task
//!   inout(data) onto(comm, rank)` + `taskwait`) as a message protocol:
//!   ship the task's `inout` data to the new process set, then wait for
//!   completion ACKs.

pub mod dist;
pub mod dmr;
pub mod inhibitor;
pub mod offload;
pub mod redistribute;
pub mod rms;

pub use dist::BlockDist;
pub use dmr::{DmrAction, DmrRuntime, DmrSpec};
pub use inhibitor::Inhibitor;
pub use rms::{RmsClient, ScriptedRms};
