//! Checkpoint image format.
//!
//! One image holds one rank's share of the application state plus the
//! restart metadata (iteration counter, generation layout). Encoding is
//! raw little-endian — checkpointing exists to be fast, not portable
//! across architectures (same trade-off real C/R libraries like SCR
//! make for node-local stages).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A serialized block of application state.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointImage {
    /// Iteration to resume from.
    pub step: u32,
    /// Process count of the generation that wrote the image.
    pub procs: u32,
    /// This rank's block of every state vector.
    pub vectors: Vec<Vec<f64>>,
}

impl CheckpointImage {
    /// Serializes the image.
    pub fn encode(&self) -> Bytes {
        let payload: usize = self.vectors.iter().map(|v| 8 + v.len() * 8).sum();
        let mut out = BytesMut::with_capacity(16 + payload);
        out.put_u32_le(self.step);
        out.put_u32_le(self.procs);
        out.put_u64_le(self.vectors.len() as u64);
        for v in &self.vectors {
            out.put_u64_le(v.len() as u64);
            for &x in v {
                out.put_f64_le(x);
            }
        }
        out.freeze()
    }

    /// Deserializes an image; `None` on malformed input.
    pub fn decode(mut bytes: Bytes) -> Option<Self> {
        if bytes.remaining() < 16 {
            return None;
        }
        let step = bytes.get_u32_le();
        let procs = bytes.get_u32_le();
        let nvec = bytes.get_u64_le() as usize;
        let mut vectors = Vec::with_capacity(nvec);
        for _ in 0..nvec {
            if bytes.remaining() < 8 {
                return None;
            }
            let len = bytes.get_u64_le() as usize;
            if bytes.remaining() < len * 8 {
                return None;
            }
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                v.push(bytes.get_f64_le());
            }
            vectors.push(v);
        }
        Some(CheckpointImage {
            step,
            procs,
            vectors,
        })
    }

    /// Payload size in bytes (what travels to the filesystem).
    pub fn size_bytes(&self) -> usize {
        16 + self.vectors.iter().map(|v| 8 + v.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckpointImage {
        CheckpointImage {
            step: 7,
            procs: 4,
            vectors: vec![vec![1.0, -2.5, 3.25], vec![], vec![f64::MAX, f64::MIN]],
        }
    }

    #[test]
    fn round_trip() {
        let img = sample();
        let decoded = CheckpointImage::decode(img.encode()).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn size_matches_encoding() {
        let img = sample();
        assert_eq!(img.encode().len(), img.size_bytes());
    }

    #[test]
    fn truncated_input_rejected() {
        let img = sample();
        let enc = img.encode();
        for cut in [0, 3, 15, enc.len() - 1] {
            assert!(
                CheckpointImage::decode(enc.slice(0..cut)).is_none(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn empty_state() {
        let img = CheckpointImage {
            step: 0,
            procs: 1,
            vectors: vec![],
        };
        assert_eq!(CheckpointImage::decode(img.encode()).unwrap(), img);
    }
}
