//! Checkpoint-and-reconfigure execution (the baseline the paper cites as El Maghraoui et al., §II).
//!
//! Instead of spawning the new process set in-flight and redistributing
//! over the network, the C/R path: (1) every rank serializes its state
//! blocks and writes a checkpoint image, (2) the whole job tears down,
//! (3) a new job incarnation launches at the new size, (4) every new rank
//! reads *all* old images it overlaps and reassembles its block. The
//! structural overheads — full relaunch and double filesystem traversal —
//! are exactly what Figure 1 charges against C/R.

use std::sync::Arc;

use parking_lot::Mutex;

use bytes::Bytes;
use dmr_apps::malleable::{MalleableApp, MalleableOutcome};
use dmr_mpi::Universe;
use dmr_runtime::dist::BlockDist;

use crate::image::CheckpointImage;
use crate::store::CheckpointStore;

/// A pre-computed resize schedule: run `steps` iterations at `procs`,
/// then reconfigure to the next phase's size (via checkpoint/restart).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrSchedule {
    pub phases: Vec<(usize, u32)>,
}

impl CrSchedule {
    /// A single fixed-size phase covering every step.
    pub fn rigid(procs: usize, steps: u32) -> Self {
        CrSchedule {
            phases: vec![(procs, steps)],
        }
    }

    pub fn total_steps(&self) -> u32 {
        self.phases.iter().map(|(_, s)| s).sum()
    }
}

/// Runs `app` across the schedule using checkpoint/restart between
/// phases. The job name keys the images in `store`.
///
/// Returns the final gathered state, like
/// [`dmr_apps::malleable::run_malleable`] — the two paths must agree
/// numerically (asserted by tests), they only differ in cost.
pub fn run_with_checkpoint_restart(
    app: Arc<dyn MalleableApp>,
    schedule: &CrSchedule,
    store: Arc<dyn CheckpointStore>,
    job: &str,
) -> MalleableOutcome {
    assert!(!schedule.phases.is_empty());
    assert_eq!(
        schedule.total_steps(),
        app.steps(),
        "schedule must cover the app's iterations"
    );
    let mut restarts = 0u32;
    let mut done = 0u32;
    let mut result = None;
    for (phase_idx, &(procs, steps)) in schedule.phases.iter().enumerate() {
        let is_last = phase_idx + 1 == schedule.phases.len();
        let t0 = done;
        let t_end = done + steps;
        // One job incarnation: a fresh universe (the relaunch).
        let slot: Arc<Mutex<Option<MalleableOutcome>>> = Arc::new(Mutex::new(None));
        {
            let app = Arc::clone(&app);
            let store = Arc::clone(&store);
            let slot = Arc::clone(&slot);
            // Images are keyed per generation so a later, smaller
            // generation can never pick up stale images of an earlier,
            // larger one.
            let read_key = format!("{job}#gen{}", phase_idx.wrapping_sub(1));
            let write_key = format!("{job}#gen{phase_idx}");
            let resumed = phase_idx > 0;
            Universe::run(procs, move |mut comm| {
                let me = comm.rank();
                let dist = BlockDist::new(app.n(), comm.size());
                let mut state: Vec<Vec<f64>> = if resumed {
                    restore_block(&*store, &read_key, &dist, me, app.vectors())
                } else {
                    app.init(&dist, me)
                };
                for t in t0..t_end {
                    app.step(&mut comm, &dist, &mut state, t);
                }
                if is_last {
                    // Final phase: gather and publish.
                    let mut full = Vec::with_capacity(app.vectors());
                    for v in &state {
                        full.push(comm.allgather(v).expect("final gather"));
                    }
                    if me == 0 {
                        *slot.lock() = Some(MalleableOutcome {
                            final_state: full,
                            final_procs: comm.size(),
                            resizes: 0,
                        });
                    }
                } else {
                    // Checkpoint this rank's blocks, then the incarnation
                    // dies with the universe.
                    let image = CheckpointImage {
                        step: t_end,
                        procs: comm.size() as u32,
                        vectors: state,
                    };
                    store
                        .save(&write_key, me, image.encode())
                        .expect("checkpoint write");
                }
            });
        }
        if phase_idx > 0 {
            store.clear(&format!("{job}#gen{}", phase_idx - 1));
        }
        if !is_last {
            restarts += 1;
        } else {
            result = slot.lock().take();
        }
        done = t_end;
    }
    let mut out = result.expect("final incarnation stored a result");
    out.resizes = restarts;
    out
}

/// Restart path: rebuild this rank's blocks under `dist` from the old
/// generation's images (reading every image that overlaps). Shared with
/// the failure-driven [`crate::recovery`] path.
pub(crate) fn restore_block(
    store: &dyn CheckpointStore,
    job: &str,
    dist: &BlockDist,
    me: usize,
    vectors: usize,
) -> Vec<Vec<f64>> {
    let old_ranks = store.ranks(job);
    assert!(!old_ranks.is_empty(), "restart requires checkpoint images");
    // Old distribution: image count = old process count.
    let old = BlockDist::new(dist.n, old_ranks.len());
    let my_range = dist.range(me);
    let mut state: Vec<Vec<f64>> = (0..vectors).map(|_| vec![0.0; dist.len(me)]).collect();
    for &src in &old_ranks {
        let sr = old.range(src);
        let lo = sr.start.max(my_range.start);
        let hi = sr.end.min(my_range.end);
        if lo >= hi {
            continue; // no overlap: skip the file (real C/R reads less
                      // only when the format allows seeking; ours does)
        }
        let raw: Bytes = store.load(job, src).expect("checkpoint read");
        let image = CheckpointImage::decode(raw).expect("valid image");
        assert_eq!(image.vectors.len(), vectors);
        for (v, src_vec) in state.iter_mut().zip(&image.vectors) {
            v[lo - my_range.start..hi - my_range.start]
                .copy_from_slice(&src_vec[lo - sr.start..hi - sr.start]);
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use dmr_apps::cg::{cg_sequential, CgApp};
    use dmr_apps::jacobi::{jacobi_sequential, JacobiApp};

    #[test]
    fn rigid_schedule_matches_sequential_cg() {
        let (n, iters) = (48, 30);
        let out = run_with_checkpoint_restart(
            Arc::new(CgApp::new(n, iters)),
            &CrSchedule::rigid(4, iters),
            Arc::new(MemStore::new()),
            "cg-rigid",
        );
        let (x_ref, _) = cg_sequential(n, iters);
        for (a, b) in out.final_state[0].iter().zip(&x_ref) {
            assert!((a - b).abs() < 1e-9);
        }
        assert_eq!(out.resizes, 0);
    }

    #[test]
    fn resize_via_cr_matches_sequential_jacobi() {
        let (n, iters) = (40, 24);
        let out = run_with_checkpoint_restart(
            Arc::new(JacobiApp::new(n, iters)),
            &CrSchedule {
                phases: vec![(4, 8), (2, 8), (5, 8)],
            },
            Arc::new(MemStore::new()),
            "jacobi-cr",
        );
        assert_eq!(out.final_state[0], jacobi_sequential(n, iters));
        assert_eq!(out.resizes, 2);
        assert_eq!(out.final_procs, 5);
    }

    #[test]
    fn cr_and_dmr_paths_agree() {
        use dmr_apps::malleable::run_malleable;
        use dmr_runtime::dmr::{DmrAction, DmrSpec};
        let (n, iters) = (36, 12);
        let cr = run_with_checkpoint_restart(
            Arc::new(CgApp::new(n, iters)),
            &CrSchedule {
                phases: vec![(2, 3), (4, 9)],
            },
            Arc::new(MemStore::new()),
            "agree",
        );
        // DMR path: same effective trajectory — expand 2→4 at t=3. The
        // reconfiguring point at t=3 is the fourth negotiation (t=0,1,2
        // answered NoAction).
        let dmr = run_malleable(
            Arc::new(CgApp::new(n, iters)),
            2,
            DmrSpec::new(1, 8),
            vec![
                DmrAction::NoAction,
                DmrAction::NoAction,
                DmrAction::NoAction,
                DmrAction::Expand { to: 4 },
            ],
        );
        for (a, b) in cr.final_state[0].iter().zip(&dmr.final_state[0]) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "schedule must cover")]
    fn mismatched_schedule_rejected() {
        run_with_checkpoint_restart(
            Arc::new(CgApp::new(16, 10)),
            &CrSchedule::rigid(2, 5),
            Arc::new(MemStore::new()),
            "bad",
        );
    }

    #[test]
    fn images_are_cleared_after_completion() {
        let store = Arc::new(MemStore::new());
        run_with_checkpoint_restart(
            Arc::new(JacobiApp::new(20, 6)),
            &CrSchedule {
                phases: vec![(2, 3), (3, 3)],
            },
            Arc::clone(&store) as Arc<dyn CheckpointStore>,
            "cleanup",
        );
        assert!(store.ranks("cleanup#gen0").is_empty());
        assert!(store.ranks("cleanup#gen1").is_empty());
    }
}
