//! Checkpoint storage backends.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::PathBuf;

use bytes::Bytes;
use parking_lot::Mutex;

/// Where checkpoint images live. Keys are `(job, rank)`.
pub trait CheckpointStore: Send + Sync {
    fn save(&self, job: &str, rank: usize, image: Bytes) -> std::io::Result<()>;
    fn load(&self, job: &str, rank: usize) -> std::io::Result<Bytes>;
    /// Ranks with images for `job` (restart needs to know the old
    /// generation's size).
    fn ranks(&self, job: &str) -> Vec<usize>;
    /// Drops all images of a job (after a successful restart).
    fn clear(&self, job: &str);
}

/// In-memory store for hermetic tests.
#[derive(Default)]
pub struct MemStore {
    map: Mutex<HashMap<(String, usize), Bytes>>,
}

impl MemStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemStore {
    fn save(&self, job: &str, rank: usize, image: Bytes) -> std::io::Result<()> {
        self.map.lock().insert((job.to_string(), rank), image);
        Ok(())
    }

    fn load(&self, job: &str, rank: usize) -> std::io::Result<Bytes> {
        self.map
            .lock()
            .get(&(job.to_string(), rank))
            .cloned()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::NotFound, "no image"))
    }

    fn ranks(&self, job: &str) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .map
            .lock()
            .keys()
            .filter(|(j, _)| j == job)
            .map(|(_, r)| *r)
            .collect();
        out.sort_unstable();
        out
    }

    fn clear(&self, job: &str) {
        self.map.lock().retain(|(j, _), _| j != job);
    }
}

/// Directory-backed store: one file per (job, rank) — the shared-
/// filesystem path a real C/R stack takes, used by the `cr_vs_dmr`
/// benchmark to charge genuine I/O.
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Creates (if needed) and uses `dir`.
    pub fn new(dir: PathBuf) -> std::io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    /// A store under the system temp directory, unique per call.
    pub fn temp() -> std::io::Result<Self> {
        let unique = format!(
            "dmr-ckpt-{}-{:?}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or_default()
        );
        DirStore::new(std::env::temp_dir().join(unique))
    }

    fn path(&self, job: &str, rank: usize) -> PathBuf {
        self.dir.join(format!("{job}.{rank}.ckpt"))
    }
}

impl CheckpointStore for DirStore {
    fn save(&self, job: &str, rank: usize, image: Bytes) -> std::io::Result<()> {
        let mut f = std::fs::File::create(self.path(job, rank))?;
        f.write_all(&image)?;
        f.sync_all()
    }

    fn load(&self, job: &str, rank: usize) -> std::io::Result<Bytes> {
        let mut f = std::fs::File::open(self.path(job, rank))?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn ranks(&self, job: &str) -> Vec<usize> {
        let prefix = format!("{job}.");
        let mut out = Vec::new();
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                if let Some(rest) = name.strip_prefix(&prefix) {
                    if let Some(rank) = rest.strip_suffix(".ckpt") {
                        if let Ok(r) = rank.parse() {
                            out.push(r);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn clear(&self, job: &str) {
        for rank in self.ranks(job) {
            let _ = std::fs::remove_file(self.path(job, rank));
        }
    }
}

impl Drop for DirStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn CheckpointStore) {
        assert!(store.ranks("job").is_empty());
        store.save("job", 0, Bytes::from_static(b"alpha")).unwrap();
        store.save("job", 2, Bytes::from_static(b"gamma")).unwrap();
        store.save("other", 0, Bytes::from_static(b"x")).unwrap();
        assert_eq!(store.ranks("job"), vec![0, 2]);
        assert_eq!(&store.load("job", 2).unwrap()[..], b"gamma");
        assert!(store.load("job", 1).is_err());
        store.clear("job");
        assert!(store.ranks("job").is_empty());
        assert_eq!(store.ranks("other"), vec![0], "other jobs untouched");
    }

    #[test]
    fn mem_store_contract() {
        exercise(&MemStore::new());
    }

    #[test]
    fn dir_store_contract() {
        exercise(&DirStore::temp().unwrap());
    }

    #[test]
    fn dir_store_cleans_up_on_drop() {
        let store = DirStore::temp().unwrap();
        let dir = store.dir.clone();
        store.save("j", 0, Bytes::from_static(b"d")).unwrap();
        assert!(dir.exists());
        drop(store);
        assert!(!dir.exists());
    }
}
