//! # dmr-checkpoint — the Checkpoint/Restart baseline
//!
//! Figure 1 of the paper motivates the DMR API by comparing it against
//! reconfiguration via Checkpoint/Restart: save all application state to
//! the (shared) filesystem, tear the job down, relaunch it at the new
//! size, and reload. "The labels of the spawning bars reveal an important
//! increment in the cost of spawning processes for C/R with respect to
//! the DMR API (e.g., for 48–24 processes by a factor 63.75×), because of
//! the need to save data to disk to be later reloaded."
//!
//! This crate provides:
//!
//! * [`store`] — checkpoint storage backends: in-memory (hermetic tests)
//!   and directory-backed (real file I/O for the `cr_vs_dmr` benchmark);
//! * [`image`] — the checkpoint image format (header + raw little-endian
//!   vector payloads);
//! * [`cr`] — [`cr::run_with_checkpoint_restart`]: executes a
//!   [`dmr_apps::MalleableApp`] across a resize schedule the C/R way,
//!   with a *full universe teardown and relaunch* between phases — the
//!   cost structure the DMR path avoids.

//!
//! The failure-driven counterpart lives in [`recovery`]:
//! [`recovery::run_with_recovery`] kills a job incarnation at scripted
//! iterations and relaunches it from the latest periodic image — the
//! requeue/restart protocol the simulation driver models, run over real
//! rank state.

pub mod cr;
pub mod image;
pub mod recovery;
pub mod store;

pub use cr::{run_with_checkpoint_restart, CrSchedule};
pub use image::CheckpointImage;
pub use recovery::{run_with_recovery, RecoveryOutcome};
pub use store::{CheckpointStore, DirStore, MemStore};
