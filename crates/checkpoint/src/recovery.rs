//! Failure-driven checkpoint/restart: the recovery half of the fault
//! story, exercised against the real image store.
//!
//! [`crate::cr`] reconfigures through *planned* checkpoint/restart; this
//! module handles *unplanned* teardown — a node loss kills the job
//! incarnation mid-step, the scheduler requeues it, and the new
//! incarnation resumes from the most recent periodic image (or from
//! scratch if the failure struck before the first image landed). The
//! work between the last image and the failure instant is lost, which is
//! exactly the `lost_work` the simulation driver charges per failure;
//! here the same protocol runs over real rank state so the numerics can
//! be checked against a failure-free reference.

use std::sync::Arc;

use parking_lot::Mutex;

use dmr_apps::malleable::MalleableApp;
use dmr_mpi::Universe;
use dmr_runtime::dist::BlockDist;

use crate::cr::restore_block;
use crate::image::CheckpointImage;
use crate::store::CheckpointStore;

/// What a failure-recovery run produces.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// Full (gathered) state vectors at completion — must equal the
    /// failure-free reference bit for bit.
    pub final_state: Vec<Vec<f64>>,
    /// Process count at completion.
    pub final_procs: usize,
    /// Number of incarnations killed and relaunched.
    pub restarts: u32,
    /// Iterations recomputed because they ran after the last image.
    pub lost_steps: u32,
}

/// The store key of the periodic image taken at global step `step`.
fn image_key(job: &str, step: u32) -> String {
    format!("{job}#s{step}")
}

/// Runs `app` on `procs` ranks with a periodic image every `ckpt_every`
/// iterations, killing the job at each scripted global step in `fail_at`
/// and relaunching it from the latest image in `store`.
///
/// A failure at step `f` strikes *during* that iteration: every step
/// after the last image boundary is lost and recomputed by the next
/// incarnation. Each scripted failure fires exactly once (the fault
/// process moves on even though the step is re-executed), so the run
/// always terminates — even when `ckpt_every` exceeds the gap between
/// failures. Failures at or beyond `app.steps()` never strike.
pub fn run_with_recovery(
    app: Arc<dyn MalleableApp>,
    procs: usize,
    ckpt_every: u32,
    fail_at: &[u32],
    store: Arc<dyn CheckpointStore>,
    job: &str,
) -> RecoveryOutcome {
    assert!(procs > 0, "need at least one rank");
    assert!(ckpt_every > 0, "checkpoint interval must be positive");
    let total = app.steps();
    let mut fails: Vec<u32> = fail_at.iter().copied().filter(|&f| f < total).collect();
    fails.sort_unstable();
    let mut fails = fails.into_iter();
    let mut next_fail = fails.next();

    let mut resume = 0u32; // the step the current incarnation starts at
    let mut restarts = 0u32;
    let mut lost_steps = 0u32;
    let mut saved: Vec<u32> = Vec::new(); // boundaries with live images
    let outcome: Arc<Mutex<Option<RecoveryOutcome>>> = Arc::new(Mutex::new(None));

    loop {
        let die = next_fail;
        // The incarnation completes steps `resume..run_until`; a doomed
        // one is interrupted during step `die` itself.
        let run_until = die.unwrap_or(total);
        let is_final = die.is_none();
        {
            let app = Arc::clone(&app);
            let store = Arc::clone(&store);
            let outcome = Arc::clone(&outcome);
            let read_key = (resume > 0).then(|| image_key(job, resume));
            let job = job.to_string();
            Universe::run(procs, move |mut comm| {
                let me = comm.rank();
                let dist = BlockDist::new(app.n(), comm.size());
                let mut state: Vec<Vec<f64>> = match &read_key {
                    Some(key) => restore_block(&*store, key, &dist, me, app.vectors()),
                    None => app.init(&dist, me),
                };
                for t in resume..run_until {
                    app.step(&mut comm, &dist, &mut state, t);
                    // Periodic image at the step boundary: rank state is
                    // consistent here, and a boundary at `total` would
                    // image a finished job for nothing.
                    let boundary = t + 1;
                    if boundary % ckpt_every == 0 && boundary < total {
                        let image = CheckpointImage {
                            step: boundary,
                            procs: comm.size() as u32,
                            vectors: state.clone(),
                        };
                        store
                            .save(&image_key(&job, boundary), me, image.encode())
                            .expect("checkpoint write");
                    }
                }
                if is_final {
                    let mut full = Vec::with_capacity(app.vectors());
                    for v in &state {
                        full.push(comm.allgather(v).expect("final gather"));
                    }
                    if me == 0 {
                        *outcome.lock() = Some(RecoveryOutcome {
                            final_state: full,
                            final_procs: comm.size(),
                            restarts: 0,
                            lost_steps: 0,
                        });
                    }
                }
            });
        }
        // Boundaries this incarnation persisted before dying (or
        // finishing): the multiples of `ckpt_every` in (resume, run_until],
        // mirroring the in-closure save condition.
        let mut b = (resume / ckpt_every + 1) * ckpt_every;
        while b <= run_until && b < total {
            saved.push(b);
            b += ckpt_every;
        }
        let Some(f) = die else {
            break;
        };
        // Resume from the newest image at or before the failure; work
        // since then is recomputed.
        let new_resume = saved.iter().copied().filter(|&m| m <= f).max().unwrap_or(0);
        lost_steps += f - new_resume;
        restarts += 1;
        resume = new_resume;
        next_fail = fails.next();
        // Images older than the resume point can never be read again.
        saved.retain(|&m| {
            if m < new_resume {
                store.clear(&image_key(job, m));
                false
            } else {
                true
            }
        });
    }
    // The job is done: every remaining image is stale.
    for m in saved {
        store.clear(&image_key(job, m));
    }
    let mut out = outcome
        .lock()
        .take()
        .expect("final incarnation stored a result");
    out.restarts = restarts;
    out.lost_steps = lost_steps;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use dmr_apps::cg::{cg_sequential, CgApp};
    use dmr_apps::jacobi::{jacobi_sequential, JacobiApp};

    #[test]
    fn no_failures_matches_sequential() {
        let (n, iters) = (40, 24);
        let store = Arc::new(MemStore::new());
        let out = run_with_recovery(
            Arc::new(JacobiApp::new(n, iters)),
            4,
            6,
            &[],
            Arc::clone(&store) as Arc<dyn CheckpointStore>,
            "calm",
        );
        assert_eq!(out.final_state[0], jacobi_sequential(n, iters));
        assert_eq!(out.restarts, 0);
        assert_eq!(out.lost_steps, 0);
        // Periodic images were taken and then cleared at completion.
        assert!(store.ranks(&image_key("calm", 6)).is_empty());
        assert!(store.ranks(&image_key("calm", 12)).is_empty());
    }

    #[test]
    fn failures_restart_from_images_and_match_reference() {
        let (n, iters) = (40, 24);
        let out = run_with_recovery(
            Arc::new(JacobiApp::new(n, iters)),
            3,
            4,
            &[5, 13],
            Arc::new(MemStore::new()),
            "stormy",
        );
        assert_eq!(out.final_state[0], jacobi_sequential(n, iters));
        assert_eq!(out.restarts, 2);
        // Failure at 5 resumes from the image at 4 (1 step lost); failure
        // at 13 resumes from the image at 12 (1 step lost).
        assert_eq!(out.lost_steps, 2);
        assert_eq!(out.final_procs, 3);
    }

    #[test]
    fn early_failure_restarts_from_scratch() {
        let (n, iters) = (48, 30);
        let out = run_with_recovery(
            Arc::new(CgApp::new(n, iters)),
            4,
            10,
            &[2],
            Arc::new(MemStore::new()),
            "scratch",
        );
        let (x_ref, _) = cg_sequential(n, iters);
        for (a, b) in out.final_state[0].iter().zip(&x_ref) {
            assert!((a - b).abs() < 1e-9);
        }
        // No image had landed yet: the whole prefix is recomputed.
        assert_eq!(out.restarts, 1);
        assert_eq!(out.lost_steps, 2);
    }

    #[test]
    fn repeated_failures_inside_one_interval_still_terminate() {
        // Three failures all before the first image boundary: each fires
        // once, so the fourth incarnation finally gets past step 7.
        let (n, iters) = (20, 10);
        let out = run_with_recovery(
            Arc::new(JacobiApp::new(n, iters)),
            2,
            8,
            &[7, 7, 7],
            Arc::new(MemStore::new()),
            "relentless",
        );
        assert_eq!(out.final_state[0], jacobi_sequential(n, iters));
        assert_eq!(out.restarts, 3);
        assert_eq!(out.lost_steps, 21, "three scratch restarts at step 7");
    }

    #[test]
    fn failures_past_the_end_never_strike() {
        let (n, iters) = (20, 8);
        let out = run_with_recovery(
            Arc::new(JacobiApp::new(n, iters)),
            2,
            4,
            &[8, 100],
            Arc::new(MemStore::new()),
            "overshoot",
        );
        assert_eq!(out.final_state[0], jacobi_sequential(n, iters));
        assert_eq!(out.restarts, 0);
        assert_eq!(out.lost_steps, 0);
    }
}
