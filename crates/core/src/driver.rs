//! The discrete-event workload driver.
//!
//! Reproduces the full §III methodology loop: jobs arrive (Feitelson
//! process), Slurm starts them (EASY backfill + multifactor priority), each
//! flexible job exposes reconfiguring points at its step boundaries where
//! the runtime calls the DMR API; the Algorithm-1 policy answers expand /
//! shrink / no-action; expansions run the four-step resizer-job protocol
//! (with queue-wait and timeout in asynchronous mode) followed by an
//! `MPI_Comm_spawn` + data-redistribution charge; shrinks drain data first
//! (the ACK workflow) and then release nodes, boosting the queued job that
//! triggered them.

use std::collections::BTreeMap;

use dmr_cluster::Cluster;
use dmr_metrics::{JobOutcome, StepSeries, WorkloadSummary};
use dmr_sim::{Engine, EventId, SimTime, Span};
use dmr_slurm::{
    ExpandError, JobId, JobRequest, JobState, ResizeAction, ResizeEnvelope, Slurm, SlurmConfig,
};

use crate::config::{EstimateMode, ExperimentConfig, ScheduleMode};
use crate::model::SimJob;
use crate::result::ExperimentResult;

/// Simulation events.
#[derive(Debug)]
enum Ev {
    /// Workload job `index` reaches the system.
    Arrival(usize),
    /// A running job finished a compute segment of `steps` iterations.
    SegmentDone { job: JobId, steps: u32 },
    /// A reconfiguration (or a bare check pause) finished; resume compute.
    ReconfigDone { job: JobId },
    /// A queued resizer job waited too long (§V-B1): abort the expansion.
    RjTimeout { rj: JobId },
    /// Periodic EASY-backfill pass (Slurm's `bf_interval`).
    BackfillTick,
}

/// Per-running-job state the runtime would keep.
#[derive(Debug)]
struct RunState {
    spec_idx: usize,
    /// Current process count (= node count; one rank per node).
    procs: u32,
    steps_done: u32,
    /// Inhibitor gate: checks before this instant are swallowed.
    next_check_at: SimTime,
    /// Asynchronous mode: the action decided at the previous boundary.
    planned: Option<ResizeAction>,
    /// Asynchronous mode: a queued resizer started and its nodes are
    /// already attached; apply (spawn + redistribute) at the next boundary.
    granted_expand: Option<u32>,
    /// Reconfiguration in flight: target process count to adopt at
    /// [`Ev::ReconfigDone`].
    pending_expand: Option<u32>,
    pending_shrink: Option<u32>,
    /// Outstanding queued resizer job and its timeout event.
    waiting_rj: Option<(JobId, EventId)>,
}

impl RunState {
    fn new(spec_idx: usize, procs: u32, now: SimTime) -> Self {
        RunState {
            spec_idx,
            procs,
            steps_done: 0,
            next_check_at: now,
            planned: None,
            granted_expand: None,
            pending_expand: None,
            pending_shrink: None,
            waiting_rj: None,
        }
    }
}

struct Driver {
    cfg: ExperimentConfig,
    jobs: Vec<SimJob>,
    slurm: Slurm,
    engine: Engine<Ev>,
    running: BTreeMap<JobId, RunState>,
    spec_of: BTreeMap<JobId, usize>,
    rj_to_orig: BTreeMap<JobId, JobId>,
    alloc_series: StepSeries,
    running_series: StepSeries,
    completed_series: StepSeries,
    completed: u32,
    arrivals_remaining: usize,
}

/// Runs one workload under one configuration.
pub fn run_experiment(cfg: &ExperimentConfig, jobs: &[SimJob]) -> ExperimentResult {
    Driver::new(*cfg, jobs.to_vec()).run()
}

/// Runs the workload twice — rigid ("fixed") and malleable ("flexible") —
/// and returns `(fixed, flexible)`, the comparison every §VIII/§IX chart
/// is built from.
pub fn compare_fixed_flexible(
    cfg: &ExperimentConfig,
    jobs: &[SimJob],
) -> (ExperimentResult, ExperimentResult) {
    let fixed = run_experiment(&cfg.as_fixed(), jobs);
    let mut flex_cfg = *cfg;
    flex_cfg.malleability = true;
    let flexible = run_experiment(&flex_cfg, jobs);
    (fixed, flexible)
}

impl Driver {
    fn new(cfg: ExperimentConfig, jobs: Vec<SimJob>) -> Self {
        let cluster = Cluster::new(cfg.nodes, cfg.cores_per_node);
        let mut scfg = SlurmConfig::for_cluster(cfg.nodes);
        scfg.backfill = cfg.backfill;
        scfg.resizer_timeout = Span::from_secs_f64(cfg.resizer_timeout_s);
        scfg.shrink_boost = cfg.shrink_boost;
        Driver {
            cfg,
            jobs,
            slurm: Slurm::new(cluster, scfg),
            engine: Engine::new(),
            running: BTreeMap::new(),
            spec_of: BTreeMap::new(),
            rj_to_orig: BTreeMap::new(),
            alloc_series: StepSeries::new(),
            running_series: StepSeries::new(),
            completed_series: StepSeries::new(),
            completed: 0,
            arrivals_remaining: 0,
        }
    }

    fn run(mut self) -> ExperimentResult {
        self.arrivals_remaining = self.jobs.len();
        for (i, job) in self.jobs.iter().enumerate() {
            self.engine
                .schedule_at(SimTime::from_secs_f64(job.spec.arrival_s), Ev::Arrival(i));
        }
        if self.cfg.backfill {
            self.engine.schedule_in(
                Span::from_secs_f64(self.cfg.backfill_interval_s),
                Ev::BackfillTick,
            );
        }
        while let Some((now, ev)) = self.engine.next_event() {
            self.handle(now, ev);
            self.sample(now);
        }
        self.finish()
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival(i) => self.on_arrival(i, now),
            Ev::SegmentDone { job, steps } => self.on_segment_done(job, steps, now),
            Ev::ReconfigDone { job } => self.on_reconfig_done(job, now),
            Ev::RjTimeout { rj } => self.on_rj_timeout(rj, now),
            Ev::BackfillTick => self.on_backfill_tick(now),
        }
    }

    /// The periodic backfill thread: runs a full EASY pass, then re-arms
    /// itself while there is still work in the system.
    fn on_backfill_tick(&mut self, now: SimTime) {
        let starts = self.slurm.backfill_pass(now);
        self.wire_starts(starts, now);
        if self.arrivals_remaining > 0
            || self.slurm.pending_count() > 0
            || !self.running.is_empty()
        {
            self.engine.schedule_in(
                Span::from_secs_f64(self.cfg.backfill_interval_s),
                Ev::BackfillTick,
            );
        }
    }

    fn sample(&mut self, now: SimTime) {
        self.alloc_series
            .record(now, self.slurm.allocated_nodes() as f64);
        self.running_series.record(now, self.running.len() as f64);
        self.completed_series.record(now, self.completed as f64);
    }

    fn is_flexible(&self, idx: usize) -> bool {
        let spec = &self.jobs[idx].spec;
        self.cfg.malleability && spec.flexible && !spec.malleability.is_rigid()
    }

    fn inhibitor_period(&self, idx: usize) -> Option<f64> {
        self.cfg
            .inhibitor_override
            .unwrap_or(self.jobs[idx].spec.malleability.sched_period_s)
    }

    // --------------------------------------------------------------
    // Arrivals and starts
    // --------------------------------------------------------------

    fn on_arrival(&mut self, idx: usize, now: SimTime) {
        let sim = &self.jobs[idx];
        let spec = &sim.spec;
        // Submissions larger than the machine can never start; clamp like
        // a real site's partition limit would.
        let submit_procs = spec.submit_procs.min(self.cfg.nodes);
        let est = match self.cfg.estimate_mode {
            EstimateMode::Walltime => Span::from_secs_f64(spec.walltime_s),
            EstimateMode::Actual => sim
                .remaining_time(submit_procs, 0)
                .mul_f64(self.cfg.estimate_padding),
        };
        let name = format!("{}-{}", spec.app.name(), spec.index);
        let req = if self.is_flexible(idx) {
            JobRequest::flexible(
                name,
                submit_procs,
                ResizeEnvelope {
                    min: spec.malleability.min_procs.min(submit_procs),
                    max: spec.malleability.max_procs.min(self.cfg.nodes),
                    preferred: spec.malleability.preferred,
                    factor: spec.malleability.factor.max(2),
                },
            )
            .with_expected_runtime(est)
        } else {
            JobRequest::rigid(name, submit_procs).with_expected_runtime(est)
        };
        let id = self.slurm.submit(req, now);
        self.spec_of.insert(id, idx);
        self.arrivals_remaining -= 1;
        self.do_schedule(now);
    }

    /// One event-driven scheduling cycle (FIFO pass); wires freshly
    /// started jobs (and resizer jobs) into the simulation.
    fn do_schedule(&mut self, now: SimTime) {
        let starts = self.slurm.schedule(now);
        self.wire_starts(starts, now);
    }

    fn wire_starts(&mut self, starts: Vec<dmr_slurm::JobStart>, now: SimTime) {
        for st in starts {
            match st.resizer_for {
                Some(orig) => self.on_rj_started(st.id, orig, now),
                None => {
                    let idx = self.spec_of[&st.id];
                    let procs = st.nodes.len() as u32;
                    self.running.insert(st.id, RunState::new(idx, procs, now));
                    self.begin_segment(st.id, now);
                }
            }
        }
    }

    /// A queued resizer job finally started (asynchronous path): complete
    /// protocol steps 2–4 now; the application applies the grant (spawn +
    /// redistribution) at its next reconfiguring point.
    fn on_rj_started(&mut self, rj: JobId, orig: JobId, now: SimTime) {
        self.rj_to_orig.remove(&rj);
        match self.slurm.finish_expand(rj, now) {
            Ok((_, nodes)) => {
                let cancel = if let Some(rs) = self.running.get_mut(&orig) {
                    rs.granted_expand = Some(nodes.len() as u32);
                    rs.waiting_rj.take().map(|(_, ev)| ev)
                } else {
                    None
                };
                if let Some(ev) = cancel {
                    self.engine.cancel(ev);
                }
            }
            Err(_) => {
                // Original vanished between scheduling and wiring; the
                // scheduler's dependency hygiene already reclaimed nodes.
            }
        }
    }

    // --------------------------------------------------------------
    // Compute segments
    // --------------------------------------------------------------

    /// Schedules the next compute segment: up to the next reconfiguring
    /// point for flexible jobs (respecting the checking inhibitor by
    /// coalescing inhibited iterations), or the whole remainder for rigid
    /// jobs.
    fn begin_segment(&mut self, job: JobId, now: SimTime) {
        let rs = &self.running[&job];
        let idx = rs.spec_idx;
        let sim = &self.jobs[idx];
        let remaining = sim.spec.steps.saturating_sub(rs.steps_done);
        if remaining == 0 {
            self.complete_job(job, now);
            return;
        }
        // Guard against sub-microsecond steps degenerating into zero-time
        // event loops.
        let step = sim.step_time(rs.procs).max(Span(1));
        let k = if !self.is_flexible(idx) {
            remaining
        } else {
            match self.inhibitor_period(idx) {
                Some(period) if now < rs.next_check_at => {
                    let _ = period;
                    let gap = rs.next_check_at.since(now).as_secs_f64();
                    let per = step.as_secs_f64();
                    ((gap / per).ceil() as u32).clamp(1, remaining)
                }
                _ => 1,
            }
        };
        let duration = Span(step.as_micros().saturating_mul(k as u64));
        self.engine
            .schedule_at(now + duration, Ev::SegmentDone { job, steps: k });
    }

    fn on_segment_done(&mut self, job: JobId, steps: u32, now: SimTime) {
        let Some(rs) = self.running.get_mut(&job) else {
            return;
        };
        rs.steps_done += steps;
        let idx = rs.spec_idx;
        if rs.steps_done >= self.jobs[idx].spec.steps {
            self.complete_job(job, now);
            return;
        }
        if !self.is_flexible(idx) {
            self.begin_segment(job, now);
            return;
        }
        match self.cfg.mode {
            ScheduleMode::Synchronous => self.check_sync(job, now),
            ScheduleMode::Asynchronous => self.check_async(job, now),
        }
    }

    // --------------------------------------------------------------
    // DMR checks
    // --------------------------------------------------------------

    /// `dmr_check_status`: decide and apply at this reconfiguring point.
    /// Every non-inhibited call costs [`ExperimentConfig::check_overhead_s`]
    /// — the runtime↔RMS round trip the inhibitor exists to amortise.
    fn check_sync(&mut self, job: JobId, now: SimTime) {
        let (idx, procs) = {
            let rs = &self.running[&job];
            (rs.spec_idx, rs.procs)
        };
        if let Some(p) = self.inhibitor_period(idx) {
            let rs = self.running.get_mut(&job).expect("running");
            rs.next_check_at = now + Span::from_secs_f64(p);
        }
        let pause = Span::from_secs_f64(self.cfg.check_overhead_s);
        let data = self.jobs[idx].spec.data_bytes;
        let action = self.slurm.decide_resize(job, now);
        match action {
            ResizeAction::NoAction => self.pause_then_continue(job, now, pause),
            ResizeAction::Expand { to } => match self.slurm.expand_protocol(job, to, now) {
                Ok(_nodes) => {
                    let cost = self.cfg.network.spawn_time(to)
                        + self.cfg.network.redistribution_time(data, procs, to);
                    let rs = self.running.get_mut(&job).expect("running");
                    rs.pending_expand = Some(to);
                    self.engine
                        .schedule_at(now + pause + cost, Ev::ReconfigDone { job });
                }
                Err(ExpandError::Queued { resizer }) => {
                    // Synchronous mode saw the nodes a moment ago; if they
                    // are gone the action aborts immediately (the paper's
                    // timeout degenerates to zero here).
                    self.slurm.abort_expand(resizer, now);
                    self.pause_then_continue(job, now, pause);
                }
                Err(_) => self.pause_then_continue(job, now, pause),
            },
            ResizeAction::Shrink { to, .. } => {
                // ACK workflow: redistribute (drain) first, release after.
                let cost = self.cfg.network.redistribution_time(data, procs, to);
                let rs = self.running.get_mut(&job).expect("running");
                rs.pending_shrink = Some(to);
                self.engine
                    .schedule_at(now + pause + cost, Ev::ReconfigDone { job });
            }
        }
    }

    /// `dmr_icheck_status`: apply the action planned at the *previous*
    /// boundary, then plan the next one. The communication overhead hides
    /// behind computation, but decisions can be stale (§VIII-C).
    fn check_async(&mut self, job: JobId, now: SimTime) {
        let (idx, procs, granted, planned, waiting) = {
            let rs = self.running.get_mut(&job).expect("running");
            (
                rs.spec_idx,
                rs.procs,
                rs.granted_expand.take(),
                rs.planned.take(),
                rs.waiting_rj.is_some(),
            )
        };
        if let Some(p) = self.inhibitor_period(idx) {
            let rs = self.running.get_mut(&job).expect("running");
            rs.next_check_at = now + Span::from_secs_f64(p);
        }
        let data = self.jobs[idx].spec.data_bytes;
        let mut applying = false;

        if let Some(newp) = granted {
            // A queued resizer delivered mid-segment; spawn + redistribute
            // now.
            let cost = self.cfg.network.spawn_time(newp)
                + self.cfg.network.redistribution_time(data, procs, newp);
            let rs = self.running.get_mut(&job).expect("running");
            rs.pending_expand = Some(newp);
            self.engine
                .schedule_at(now + cost, Ev::ReconfigDone { job });
            applying = true;
        } else if let Some(plan) = planned {
            match plan {
                ResizeAction::Expand { to } if to > procs => {
                    match self.slurm.expand_protocol(job, to, now) {
                        Ok(_) => {
                            let cost = self.cfg.network.spawn_time(to)
                                + self.cfg.network.redistribution_time(data, procs, to);
                            let rs = self.running.get_mut(&job).expect("running");
                            rs.pending_expand = Some(to);
                            self.engine
                                .schedule_at(now + cost, Ev::ReconfigDone { job });
                            applying = true;
                        }
                        Err(ExpandError::Queued { resizer }) => {
                            // Conditions changed since the decision: wait
                            // for the resizer, bounded by the timeout.
                            let ev = self.engine.schedule_at(
                                now + Span::from_secs_f64(self.cfg.resizer_timeout_s),
                                Ev::RjTimeout { rj: resizer },
                            );
                            let rs = self.running.get_mut(&job).expect("running");
                            rs.waiting_rj = Some((resizer, ev));
                            self.rj_to_orig.insert(resizer, job);
                        }
                        Err(_) => {}
                    }
                }
                ResizeAction::Shrink { to, .. } if to < procs => {
                    let cost = self.cfg.network.redistribution_time(data, procs, to);
                    let rs = self.running.get_mut(&job).expect("running");
                    rs.pending_shrink = Some(to);
                    self.engine
                        .schedule_at(now + cost, Ev::ReconfigDone { job });
                    applying = true;
                }
                _ => {}
            }
        }

        if !applying {
            // Plan the next boundary's action (free of charge: the call
            // overlaps the next compute step). One in-flight negotiation
            // at a time.
            if !waiting && self.running[&job].waiting_rj.is_none() {
                let a = self.slurm.decide_resize(job, now);
                let rs = self.running.get_mut(&job).expect("running");
                rs.planned = a.is_action().then_some(a);
            }
            self.begin_segment(job, now);
        }
    }

    fn pause_then_continue(&mut self, job: JobId, now: SimTime, pause: Span) {
        if pause.is_zero() {
            self.begin_segment(job, now);
        } else {
            self.engine
                .schedule_at(now + pause, Ev::ReconfigDone { job });
        }
    }

    // --------------------------------------------------------------
    // Reconfiguration completion / timeouts / job completion
    // --------------------------------------------------------------

    fn on_reconfig_done(&mut self, job: JobId, now: SimTime) {
        let Some(rs) = self.running.get_mut(&job) else {
            return;
        };
        if let Some(to) = rs.pending_shrink.take() {
            if self.slurm.shrink_protocol(job, to, now).is_ok() {
                let rs = self.running.get_mut(&job).expect("running");
                rs.procs = to;
            }
            self.update_estimate(job, now);
            self.begin_segment(job, now);
            // Released nodes may admit the boosted beneficiary.
            self.do_schedule(now);
        } else if let Some(to) = rs.pending_expand.take() {
            rs.procs = to;
            self.update_estimate(job, now);
            self.begin_segment(job, now);
        } else {
            // Bare check pause.
            self.begin_segment(job, now);
        }
    }

    fn on_rj_timeout(&mut self, rj: JobId, now: SimTime) {
        self.slurm.abort_expand(rj, now);
        if let Some(orig) = self.rj_to_orig.remove(&rj) {
            if let Some(rs) = self.running.get_mut(&orig) {
                rs.waiting_rj = None;
            }
        }
    }

    fn update_estimate(&mut self, job: JobId, now: SimTime) {
        if self.cfg.estimate_mode == EstimateMode::Walltime {
            // Slurm only knows the submitted walltime; nobody updates it
            // after a reconfiguration either.
            return;
        }
        let rs = &self.running[&job];
        let sim = &self.jobs[rs.spec_idx];
        let remaining = sim
            .remaining_time(rs.procs, rs.steps_done)
            .mul_f64(self.cfg.estimate_padding);
        let elapsed = self
            .slurm
            .job(job)
            .and_then(|j| j.start_time)
            .map(|s| now.since(s))
            .unwrap_or(Span::ZERO);
        self.slurm.set_expected_runtime(job, elapsed + remaining);
    }

    fn complete_job(&mut self, job: JobId, now: SimTime) {
        if let Some(mut rs) = self.running.remove(&job) {
            if let Some((rj, ev)) = rs.waiting_rj.take() {
                self.engine.cancel(ev);
                self.slurm.abort_expand(rj, now);
                self.rj_to_orig.remove(&rj);
            }
        }
        self.slurm.complete(job, now);
        self.completed += 1;
        // Freed nodes: run a scheduling cycle.
        self.do_schedule(now);
    }

    fn finish(self) -> ExperimentResult {
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(self.jobs.len());
        for job in self.slurm.jobs() {
            if job.is_resizer() || job.state != JobState::Completed {
                continue;
            }
            let (Some(start), Some(end)) = (job.start_time, job.end_time) else {
                continue;
            };
            outcomes.push(JobOutcome::new(
                job.submit_time,
                start,
                end,
                job.reconfigurations,
            ));
        }
        let summary = WorkloadSummary::compute(&outcomes, &self.alloc_series, self.cfg.nodes);
        let end_time = SimTime::from_secs_f64(summary.makespan_s);
        ExperimentResult {
            summary,
            allocation: self.alloc_series,
            running: self.running_series,
            completed: self.completed_series,
            outcomes,
            end_time,
            events: self.engine.processed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SpeedupCurve;
    use dmr_workload::{AppClass, JobSpec, MalleabilitySpec};

    fn fs_job(index: u32, arrival: f64, procs: u32, steps: u32, step_s: f64) -> SimJob {
        SimJob {
            spec: JobSpec {
                index,
                arrival_s: arrival,
                submit_procs: procs,
                steps,
                step_s,
                walltime_s: steps as f64 * step_s * 2.5,
                data_bytes: 1 << 28,
                app: AppClass::Fs,
                flexible: true,
                malleability: MalleabilitySpec {
                    min_procs: 1,
                    max_procs: 20,
                    preferred: None,
                    factor: 2,
                    sched_period_s: None,
                },
            },
            curve: SpeedupCurve::Linear,
        }
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::preliminary()
    }

    #[test]
    fn rigid_run_completes_all_jobs() {
        let jobs: Vec<SimJob> = (0..5)
            .map(|i| fs_job(i, i as f64 * 5.0, 4, 2, 30.0))
            .collect();
        let r = run_experiment(&cfg().as_fixed(), &jobs);
        assert_eq!(r.summary.jobs, 5);
        assert_eq!(r.summary.reconfigurations, 0);
        assert!(r.summary.makespan_s > 0.0);
    }

    #[test]
    fn lone_flexible_job_expands_and_finishes_faster() {
        let jobs = vec![fs_job(0, 0.0, 2, 8, 30.0)];
        let fixed = run_experiment(&cfg().as_fixed(), &jobs);
        let flex = run_experiment(&cfg(), &jobs);
        // Fixed: 8 steps * 30 s = 240 s. Flexible expands (2→4→8→16) and
        // must finish substantially sooner despite reconfiguration costs.
        assert!((fixed.summary.makespan_s - 240.0).abs() < 1.0);
        assert!(
            flex.summary.makespan_s < fixed.summary.makespan_s * 0.7,
            "flex {} vs fixed {}",
            flex.summary.makespan_s,
            fixed.summary.makespan_s
        );
        assert!(flex.summary.reconfigurations >= 1);
    }

    #[test]
    fn shrink_admits_queued_job_earlier() {
        // One flexible 16-node job hogging a 20-node cluster, then a rigid
        // 8-node job arrives: the policy must shrink the first so the
        // second starts before the first finishes.
        let mut hog = fs_job(0, 0.0, 16, 40, 10.0);
        hog.spec.flexible = true;
        let mut rigid = fs_job(1, 5.0, 8, 2, 10.0);
        rigid.spec.flexible = false;
        let jobs = vec![hog, rigid];
        let (fixed, flex) = compare_fixed_flexible(&cfg(), &jobs);
        let wait_fixed = fixed.outcomes[1].waiting_s();
        let wait_flex = flex.outcomes[1].waiting_s();
        assert!(
            wait_flex < wait_fixed * 0.5,
            "queued job should start much earlier: {wait_flex} vs {wait_fixed}"
        );
        assert!(flex.summary.reconfigurations >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let jobs: Vec<SimJob> = (0..12)
            .map(|i| fs_job(i, i as f64 * 7.0, 1 + i % 6, 3, 20.0))
            .collect();
        let a = run_experiment(&cfg(), &jobs);
        let b = run_experiment(&cfg(), &jobs);
        assert_eq!(a.summary.makespan_s, b.summary.makespan_s);
        assert_eq!(a.summary.reconfigurations, b.summary.reconfigurations);
        assert_eq!(a.events, b.events);
        assert_eq!(a.summary.avg_waiting_s, b.summary.avg_waiting_s);
    }

    #[test]
    fn allocation_never_exceeds_cluster() {
        let jobs: Vec<SimJob> = (0..10)
            .map(|i| fs_job(i, i as f64 * 3.0, 2 + i % 8, 4, 15.0))
            .collect();
        let r = run_experiment(&cfg(), &jobs);
        assert!(r.allocation.max_value() <= 20.0);
        assert_eq!(r.completed.max_value(), 10.0);
    }

    #[test]
    fn async_mode_runs_to_completion() {
        let jobs: Vec<SimJob> = (0..8)
            .map(|i| fs_job(i, i as f64 * 4.0, 2 + i % 5, 5, 12.0))
            .collect();
        let r = run_experiment(&cfg().asynchronous(), &jobs);
        assert_eq!(r.summary.jobs, 8);
    }

    #[test]
    fn inhibitor_reduces_check_overhead_for_micro_steps() {
        // 40 micro-steps of 1 s with 0.3 s check overhead: without the
        // inhibitor ~12 s of pure overhead; with a 5 s period only ~1/5 of
        // the boundaries pay it.
        let mk = |i| fs_job(i, 0.0, 4, 40, 1.0);
        let jobs: Vec<SimJob> = (0..4).map(mk).collect();
        let no_inh = run_experiment(&cfg().with_inhibitor(None), &jobs);
        let inh5 = run_experiment(&cfg().with_inhibitor(Some(5.0)), &jobs);
        assert!(
            inh5.summary.makespan_s < no_inh.summary.makespan_s,
            "inhibitor must reduce makespan: {} vs {}",
            inh5.summary.makespan_s,
            no_inh.summary.makespan_s
        );
    }

    #[test]
    fn preferred_jobs_shrink_to_preference() {
        // A CG-style job submitted at 16 with preference 4 on a busy
        // cluster (a rigid companion keeps it from being "alone").
        let mut j = fs_job(0, 0.0, 16, 30, 5.0);
        j.spec.malleability.preferred = Some(4);
        j.spec.malleability.min_procs = 2;
        // Long-lived rigid companion so the flexible job is never "alone
        // in the system" (which would trigger the Algorithm-1 line-2
        // expand-to-max rule).
        let mut rigid = fs_job(1, 0.0, 2, 200, 5.0);
        rigid.spec.flexible = false;
        let r = run_experiment(&cfg(), &vec![j, rigid]);
        assert!(r.summary.reconfigurations >= 1);
        // After shrinking 16→4 the job runs 4× slower (linear curve): one
        // 5 s step at 16 plus 29 steps of 20 s — far above the fixed 150 s.
        assert!(
            r.outcomes[0].execution_s() > 450.0,
            "exec = {}",
            r.outcomes[0].execution_s()
        );
    }

    #[test]
    fn estimates_do_not_break_backfill() {
        // Mixed sizes under heavy load: just assert global sanity — all
        // complete, waits non-negative, makespan finite.
        let jobs: Vec<SimJob> = (0..30)
            .map(|i| fs_job(i, i as f64 * 2.0, 1 + (i * 7) % 16, 3, 25.0))
            .collect();
        let r = run_experiment(&cfg(), &jobs);
        assert_eq!(r.summary.jobs, 30);
        assert!(r.outcomes.iter().all(|o| o.waiting_s() >= 0.0));
        assert!(r.summary.utilization > 0.0 && r.summary.utilization <= 1.0);
    }
}
