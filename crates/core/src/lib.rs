//! # dmr-core — the DMR framework glued together
//!
//! This crate is the paper's contribution in executable form: the
//! co-operation between a malleable application (through the DMR API), the
//! programming-model runtime, and the Slurm-like resource manager, driven
//! over virtual time by the `dmr-sim` engine.
//!
//! * [`model`] — application scalability models ([`model::SpeedupCurve`])
//!   and the [`model::SimJob`] binding a generated [`dmr_workload::JobSpec`]
//!   to its curve.
//! * [`config`] — experiment configuration: cluster size, synchronous vs
//!   asynchronous scheduling (§VIII-B/C), the checking inhibitor override
//!   (§VIII-E), cost-model knobs.
//! * [`driver`] — the discrete-event driver: job arrivals streamed one at
//!   a time from a [`dmr_workload::WorkloadSource`] (a pre-materialized
//!   list remains the convenience path), backfilled starts, per-step DMR
//!   checks against the Algorithm-1 policy, the resizer-job expansion
//!   protocol with timeout, ACK-style shrinks, spawn + redistribution
//!   costs, and full metric collection.
//! * [`result`] — what an experiment returns: a
//!   [`dmr_metrics::WorkloadSummary`] plus the evolution series behind the
//!   paper's timeline figures.
//! * [`error`] — the unified [`error::DmrError`] wrapping the substrate
//!   layers' error enums (cluster allocation, MPI, the Slurm expansion
//!   protocol) behind one `std::error::Error`.
//!
//! The headline entry points are [`driver::run_experiment`],
//! [`driver::run_experiment_streaming`] and
//! [`driver::compare_fixed_flexible`].

pub mod config;
pub mod driver;
pub mod error;
pub mod model;
pub mod result;

pub use config::{ExperimentConfig, MachineMix, ScheduleMode, Telemetry};
pub use dmr_cluster::{FaultLoad, FaultTrace};
pub use dmr_metrics::MetricsSink;
pub use dmr_slurm::{BackfillFamily, PolicyKind, SchedIndex};
pub use dmr_workload::{WorkloadKind, WorkloadSource};
pub use driver::{
    compare_fixed_flexible, run_experiment, run_experiment_streaming,
    run_experiment_streaming_with_faults, run_experiment_with_faults, run_experiment_with_sink,
};
pub use error::{DmrError, InjectedFault};
pub use model::{curve_for, SimJob, SpeedupCurve};
pub use result::{ExperimentResult, FaultStats, PowerStats, RunStats};
