//! The ACK-style shrink workflow.
//!
//! Shrinking inverts the expansion order: the application first drains its
//! data off the leaving ranks (the redistribution is the "ACK" — only
//! after it completes is the smaller process set viable), then the
//! scheduler releases the nodes and immediately re-runs a scheduling
//! cycle so the queued job the shrink was decided for (boosted to maximum
//! priority by the scheduler mechanism whenever the installed
//! [`dmr_slurm::ResizePolicy`] names a beneficiary — Algorithm-1 line 18
//! in the default policy) can start on them.

use dmr_sim::{SimTime, Span};
use dmr_slurm::JobId;

use super::events::Ev;
use super::Driver;

impl Driver<'_, '_> {
    /// Schedules the drain: charge the redistribution now, release nodes
    /// when it completes ([`Driver::finish_shrink`]).
    pub(crate) fn schedule_shrink(&mut self, job: JobId, to: u32, now: SimTime, pause: Span) {
        let (idx, procs) = {
            let rs = &self.running[job];
            (rs.spec_idx, rs.procs)
        };
        let data = self.jobs[idx].spec.data_bytes;
        let cost = self.cfg.network.redistribution_time(data, procs, to);
        let ev = self
            .engine
            .schedule_at(now + pause + cost, Ev::ReconfigDone { job });
        let rs = self.running.get_mut(job).expect("running");
        rs.pending_shrink = Some(to);
        rs.inflight = Some(ev);
    }

    /// The drain finished: release nodes, adopt the smaller process set,
    /// and let the freed nodes admit the shrink's beneficiary.
    pub(crate) fn finish_shrink(&mut self, job: JobId, to: u32, now: SimTime) {
        if self.slurm.shrink_protocol(job, to, now).is_ok() {
            let rs = self.running.get_mut(job).expect("running");
            rs.procs = to;
        }
        self.update_estimate(job, now);
        self.begin_segment(job, now);
        // Released nodes may admit the boosted beneficiary.
        self.request_schedule(now);
    }
}
