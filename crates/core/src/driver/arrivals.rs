//! Job arrivals, scheduling cycles, compute segments and completion.
//!
//! This is the rigid-job half of the lifecycle — submit, start, compute,
//! finish — which flexible jobs share; they merely punctuate their
//! compute with the reconfiguring points handled in [`super::reconfig`].

use dmr_cluster::ClassConstraint;
use dmr_sim::{SimTime, Span};
use dmr_slurm::{JobId, JobRequest, ResizeEnvelope};

use super::events::Ev;
use super::{Driver, RunState};
use crate::config::EstimateMode;

impl Driver<'_, '_> {
    /// Pulls the next job from the feed (if any) and schedules its
    /// arrival. Exactly one arrival event is in flight at any time, so
    /// arbitrarily long workloads occupy O(1) event-queue space.
    ///
    /// Arrivals are scheduled in the engine's *early* tie-break class:
    /// historically every arrival was scheduled before the run began and
    /// therefore always popped before same-instant run events; streaming
    /// must preserve that order bit-for-bit.
    pub(crate) fn schedule_next_arrival(&mut self) {
        let Some(job) = self.feed.next_job() else {
            self.arrivals_pending = false;
            return;
        };
        // Sources yield arrival-sorted jobs; clamp stragglers so virtual
        // time never runs backwards.
        let at = SimTime::from_secs_f64(job.spec.arrival_s.max(0.0)).max(self.last_arrival);
        self.last_arrival = at;
        let seq = self.arrived as u64;
        self.arrived += 1;
        let idx = self.jobs.insert(seq, job);
        self.engine.schedule_at_early(at, Ev::Arrival(idx));
        self.arrivals_pending = true;
    }

    pub(crate) fn on_arrival(&mut self, idx: usize, now: SimTime) {
        let sim = &self.jobs[idx];
        let spec = &sim.spec;
        // A GPU-demanding job becomes class-constrained — but only when
        // the machine actually has a GPU class; on uniform clusters the
        // tag is ignored (the request would otherwise never start).
        let table = self.slurm.cluster().table();
        let constraint = if spec.gpu && table.has_gpu_class() {
            ClassConstraint::GpuRequired
        } else {
            ClassConstraint::Any
        };
        // Submissions larger than the machine — or, for constrained jobs,
        // larger than their eligible classes — can never start; clamp
        // like a real site's partition limit would.
        let capacity = match constraint {
            ClassConstraint::Any => self.cfg.nodes,
            _ => (0..table.num_classes())
                .filter(|&c| constraint.allows(c, table.class(c)))
                .map(|c| table.class_nodes(c))
                .sum(),
        };
        let submit_procs = spec.submit_procs.min(capacity);
        let est = match self.cfg.estimate_mode {
            EstimateMode::Walltime => Span::from_secs_f64(spec.walltime_s),
            EstimateMode::Actual => sim
                .remaining_time(submit_procs, 0)
                .mul_f64(self.cfg.estimate_padding),
        };
        let name = format!("{}-{}", spec.app.name(), spec.index);
        let req = if self.is_flexible(idx) {
            JobRequest::flexible(
                name,
                submit_procs,
                ResizeEnvelope {
                    min: spec.malleability.min_procs.min(submit_procs),
                    max: spec.malleability.max_procs.min(capacity),
                    preferred: spec.malleability.preferred,
                    factor: spec.malleability.factor.max(2),
                },
            )
            .with_expected_runtime(est)
        } else {
            JobRequest::rigid(name, submit_procs).with_expected_runtime(est)
        };
        let id = self.slurm.submit(req.with_constraint(constraint), now);
        self.spec_of.insert(id, idx);
        // Demand arrived while nodes are suspended: start them waking.
        // Requests coalesce onto one in-flight wake event; capacity is
        // placeable again once [`Ev::NodeWake`] fires.
        if !self.wake_pending && self.slurm.cluster().off_nodes() > 0 {
            self.wake_pending = true;
            self.engine.schedule_at(
                now + Span::from_secs_f64(self.cfg.wake_latency_s),
                Ev::NodeWake,
            );
        }
        // The job is in the system: pull its successor from the feed.
        self.schedule_next_arrival();
        self.request_schedule(now);
    }

    /// One event-driven scheduling cycle (FIFO pass); wires freshly
    /// started jobs (and resizer jobs) into the simulation.
    pub(crate) fn do_schedule(&mut self, now: SimTime) {
        let starts = self.slurm.schedule(now);
        self.wire_starts(starts, now);
        self.maybe_power_down(now);
    }

    pub(crate) fn wire_starts(&mut self, starts: Vec<dmr_slurm::JobStart>, now: SimTime) {
        for st in starts {
            match st.resizer_for {
                Some(orig) => self.on_rj_started(st.id, orig, now),
                None => {
                    let idx = self.spec_of[st.id];
                    let procs = st.nodes.len() as u32;
                    let mut rs = RunState::new(idx, procs, now);
                    // A requeued incarnation resumes from its checkpoint
                    // image (zero steps when restarting from scratch) and
                    // closes the failure-to-restart latency window.
                    if let Some(info) = self.requeued.get(st.id) {
                        rs.steps_done = info.resume_steps;
                        rs.ckpt_steps = info.resume_steps;
                        self.restart_lat.push(now.since(info.failed_at).as_micros());
                    }
                    self.running.insert(st.id, rs);
                    self.begin_segment(st.id, now);
                }
            }
        }
    }

    /// Schedules the next compute segment: up to the next reconfiguring
    /// point for flexible jobs (respecting the checking inhibitor by
    /// coalescing inhibited iterations), or the whole remainder for rigid
    /// jobs.
    pub(crate) fn begin_segment(&mut self, job: JobId, now: SimTime) {
        let rs = &self.running[job];
        let idx = rs.spec_idx;
        let sim = &self.jobs[idx];
        let remaining = sim.spec.steps.saturating_sub(rs.steps_done);
        if remaining == 0 {
            self.complete_job(job, now);
            return;
        }
        // Guard against sub-microsecond steps degenerating into zero-time
        // event loops.
        let step = sim.step_time(rs.procs).max(Span(1));
        let k = if !self.is_flexible(idx) {
            match self.cfg.ckpt_interval_s {
                // Periodic checkpointing cuts the monolithic rigid
                // segment at image instants so `on_segment_done` has
                // boundaries to take images at. The cut only regroups
                // steps — total compute time is the same integer-µs sum —
                // so summaries are unchanged when no failure lands. With
                // no fault source armed there is nothing an image could
                // ever be restored from, so the segment stays monolithic
                // and the interval knob is bit-invisible (`events`
                // included) — the zero-fault oracle.
                Some(interval_s) if self.faults_armed() => {
                    let per = step.as_secs_f64();
                    ((interval_s / per).ceil().max(1.0) as u32).min(remaining)
                }
                _ => remaining,
            }
        } else {
            match self.inhibitor_period(idx) {
                Some(period) if now < rs.next_check_at => {
                    let _ = period;
                    let gap = rs.next_check_at.since(now).as_secs_f64();
                    let per = step.as_secs_f64();
                    ((gap / per).ceil() as u32).clamp(1, remaining)
                }
                _ => 1,
            }
        };
        // Heterogeneous machines: the segment runs at the *slowest* class
        // the job's nodes span, scaled in exact integer microseconds. The
        // neutral 1/1 factor takes the historical expression verbatim, so
        // uniform (and single-class) runs stay bit-identical.
        let (num, den) = self.slurm.cluster().worst_slowdown(job.owner_tag());
        let duration = if num == den {
            Span(step.as_micros().saturating_mul(k as u64))
        } else {
            let us = step.as_micros() as u128 * k as u128 * num as u128 / den as u128;
            Span(us.clamp(1, u64::MAX as u128) as u64)
        };
        let ev = self
            .engine
            .schedule_at(now + duration, Ev::SegmentDone { job, steps: k });
        self.running.get_mut(job).expect("running").inflight = Some(ev);
    }

    pub(crate) fn on_segment_done(&mut self, job: JobId, steps: u32, now: SimTime) {
        let Some(rs) = self.running.get_mut(job) else {
            return;
        };
        rs.inflight = None;
        rs.steps_done += steps;
        // Periodic checkpointing: step boundaries are where rank state is
        // consistent, so images are taken here once the configured
        // interval has elapsed since the last one.
        if let Some(interval_s) = self.cfg.ckpt_interval_s {
            if now.since(rs.last_ckpt_at).as_secs_f64() >= interval_s {
                rs.last_ckpt_at = now;
                rs.ckpt_steps = rs.steps_done;
            }
        }
        let idx = rs.spec_idx;
        if rs.steps_done >= self.jobs[idx].spec.steps {
            self.complete_job(job, now);
            return;
        }
        if !self.is_flexible(idx) {
            self.begin_segment(job, now);
            return;
        }
        self.check_point(job, now);
    }

    pub(crate) fn complete_job(&mut self, job: JobId, now: SimTime) {
        if let Some(mut rs) = self.running.remove(job) {
            if let Some((rj, ev)) = rs.waiting_rj.take() {
                self.engine.cancel(ev);
                self.slurm.abort_expand(rj, now);
                self.rj_to_orig.remove(rj);
            }
        }
        // Fold the job's accounting into the metrics sink while the
        // scheduler record still exists, then let `complete` prune it.
        self.account_completion(job, now);
        self.slurm.complete(job, now);
        self.completed += 1;
        // Freed nodes: run a scheduling cycle.
        self.request_schedule(now);
    }
}
