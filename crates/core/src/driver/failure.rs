//! Fault handling: node failures, kill-and-requeue recovery, and the
//! injected resize-failure retry schedule.
//!
//! The driver pulls one event at a time from its
//! [`dmr_cluster::FaultSource`] (the same one-in-flight discipline as
//! arrivals) and maps it onto [`dmr_slurm::Slurm::fail_node`] /
//! [`dmr_slurm::Slurm::repair_node`]. A failure that lands on a node
//! owned by a running job kills the incarnation: its in-flight segment /
//! reconfiguration event is cancelled (a dead incarnation must never
//! fire a stale completion), any queued resizer it was waiting on is
//! aborted, and the job is resubmitted with a priority boost
//! ([`dmr_slurm::Slurm::requeue_failed`]).
//!
//! Recovery follows the configured policy: with
//! [`crate::ExperimentConfig::ckpt_interval_s`] set, the restart resumes
//! from the last periodic checkpoint image (the step count it covered);
//! otherwise from scratch. Either way the time since the last image is
//! charged as lost work — the quantity behind the summary's
//! `goodput_ratio`. The same scratch-vs-periodic arithmetic is exercised
//! against the real image store by `dmr_checkpoint::recovery`, which
//! re-runs actual rank state through save/restore; the driver only needs
//! the step/time bookkeeping.

use dmr_cluster::{FailOutcome, FaultEvent, FaultSource, NodeId};
use dmr_sim::{SimTime, Span};
use dmr_slurm::JobId;

use super::events::Ev;
use super::{Driver, RequeueInfo};

/// Injected resize-negotiation failures are retried at most this many
/// times per target before the job settles at its current size.
pub(crate) const MAX_RESIZE_RETRIES: u32 = 4;
/// First retry delay; successive retries double it (5, 10, 20, 40 s).
pub(crate) const RESIZE_RETRY_BASE_S: f64 = 5.0;

impl Driver<'_, '_> {
    /// Whether any fault source is installed — a seeded load or a
    /// scripted trace (even one that has run dry: its failures may
    /// already have landed). The zero-fault path must do zero
    /// observable work, so recovery-only machinery (e.g. cutting rigid
    /// segments at checkpoint boundaries) gates on this.
    pub(crate) fn faults_armed(&self) -> bool {
        !matches!(self.faults, FaultSource::None)
    }

    /// Pulls the next faultload event and schedules it, keeping exactly
    /// one in flight. Pulling stops once the workload has drained
    /// (mirroring the backfill-tick re-arm condition), so the event queue
    /// empties and the run terminates; at most one trailing fault event
    /// can land after the last completion.
    pub(crate) fn schedule_next_fault(&mut self, now: SimTime) {
        if self.fault_pending {
            return;
        }
        let live =
            self.arrivals_pending || self.slurm.pending_count() > 0 || !self.running.is_empty();
        if !live {
            return;
        }
        let Some(event) = self.faults.next_event() else {
            return;
        };
        // Sources emit nondecreasing instants; clamp defensively so the
        // engine is never asked to schedule in the past.
        let at = event.at().max(now);
        let ev = match event {
            FaultEvent::Fail { node, .. } => Ev::NodeFail { node },
            FaultEvent::Repair { node, .. } => Ev::NodeRepair { node },
        };
        self.engine.schedule_at(at, ev);
        self.fault_pending = true;
    }

    /// An injected failure lands: take the node down and, if it was
    /// computing for someone, kill and requeue the owner.
    pub(crate) fn on_node_fail(&mut self, node: NodeId, now: SimTime) {
        self.fault_pending = false;
        match self.slurm.fail_node(node) {
            // Already down / powered off: a counted no-op at the cluster
            // layer (victims are drawn state-blind to keep the stream
            // deterministic), invisible here.
            FailOutcome::Skipped => {}
            FailOutcome::Idle => self.failures += 1,
            FailOutcome::Busy(owner) => {
                self.failures += 1;
                self.kill_and_requeue(JobId(owner), now);
            }
        }
        self.schedule_next_fault(now);
    }

    /// An injected repair lands: the node may accept work again, so give
    /// the scheduler a chance to place on it.
    pub(crate) fn on_node_repair(&mut self, node: NodeId, now: SimTime) {
        self.fault_pending = false;
        if self.slurm.repair_node(node) {
            self.request_schedule(now);
        }
        self.schedule_next_fault(now);
    }

    /// Kills the running job that just lost a node and resubmits it with
    /// a boost, carrying recovery bookkeeping to the new incarnation.
    fn kill_and_requeue(&mut self, victim: JobId, now: SimTime) {
        let Some(mut rs) = self.running.remove(victim) else {
            // The owner is not a driver-tracked computation (e.g. a
            // resizer allocation parked mid-protocol); its own lifecycle
            // reclaims the nodes.
            return;
        };
        // Stale-event hygiene: the dead incarnation's pending completion
        // (or reconfiguration) must never fire, and neither must the
        // timeout of a resizer it will no longer consume.
        if let Some(ev) = rs.inflight.take() {
            self.engine.cancel(ev);
        }
        if let Some((rj, ev)) = rs.waiting_rj.take() {
            self.engine.cancel(ev);
            self.slurm.abort_expand(rj, now);
            self.rj_to_orig.remove(rj);
        }
        // Recovery policy: resume from the last periodic image, or from
        // scratch when checkpointing is off. Work since the image is lost.
        let (resume_steps, image_at) = if self.cfg.ckpt_interval_s.is_some() {
            (rs.ckpt_steps, rs.last_ckpt_at)
        } else {
            (0, rs.started_at)
        };
        self.lost_work += now.since(image_at);
        // Accounting spans incarnations: keep the first submission and
        // accumulate reconfigurations across every death.
        let (orig_submit, prior_reconfigs) = {
            let rec = self.slurm.job(victim).expect("failed owner has a record");
            match self.requeued.remove(victim) {
                Some(info) => (
                    info.orig_submit,
                    info.prior_reconfigs + rec.reconfigurations,
                ),
                None => (rec.submit_time, rec.reconfigurations),
            }
        };
        let Some(new) = self.slurm.requeue_failed(victim, now) else {
            // Unreachable while the running map mirrors scheduler state;
            // drop our tracking rather than leak the slab slot.
            debug_assert!(false, "requeue of a tracked running job failed");
            if let Some(idx) = self.spec_of.remove(victim) {
                self.jobs.remove(idx);
            }
            return;
        };
        self.requeues += 1;
        let idx = self.spec_of.remove(victim).expect("victim had a spec");
        self.spec_of.insert(new, idx);
        self.requeued.insert(
            new,
            RequeueInfo {
                orig_submit,
                failed_at: now,
                resume_steps,
                prior_reconfigs,
            },
        );
        // The failure freed the victim's surviving nodes; let the
        // scheduler reuse them (possibly for the requeued job itself).
        self.request_schedule(now);
    }

    /// Rolls the injected-failure dice for one resize negotiation.
    /// Returns `true` when the negotiation is killed by injection — the
    /// caller degrades gracefully (the job continues at its old size)
    /// and a backoff retry is scheduled. Never draws under the
    /// zero-fault load (there is no RNG to draw from).
    pub(crate) fn inject_resize_failure(&mut self, job: JobId, to: u32, now: SimTime) -> bool {
        let Some(rng) = self.proto_rng.as_mut() else {
            return false;
        };
        if rand::RngExt::random::<f64>(rng) >= self.resize_fail_p {
            return false;
        }
        self.resize_faults += 1;
        self.schedule_resize_retry(job, to, now);
        true
    }

    /// Schedules the next bounded-exponential-backoff retry for `job`'s
    /// expansion towards `to`, if attempts remain.
    fn schedule_resize_retry(&mut self, job: JobId, to: u32, now: SimTime) {
        let rs = self.running.get_mut(job).expect("running");
        if rs.retry_attempt >= MAX_RESIZE_RETRIES {
            // Budget exhausted: settle at the current size; the policy
            // may still propose fresh expansions later.
            rs.retry_attempt = 0;
            return;
        }
        rs.retry_attempt += 1;
        let delay_s = RESIZE_RETRY_BASE_S * f64::from(1u32 << (rs.retry_attempt - 1));
        self.engine.schedule_at(
            now + Span::from_secs_f64(delay_s),
            Ev::ResizeRetry { job, to },
        );
        self.resize_retries += 1;
    }

    /// Backoff expired: mark the job eligible to retry at its next
    /// reconfiguring point (resizes only ever apply at step boundaries).
    /// Stale events — the incarnation died or already reached the target
    /// — fall through the generation-checked lookup and do nothing.
    pub(crate) fn on_resize_retry(&mut self, job: JobId, to: u32, _now: SimTime) {
        let Some(rs) = self.running.get_mut(job) else {
            return;
        };
        if rs.procs >= to {
            rs.retry_attempt = 0;
            return;
        }
        rs.retry_expand = Some(to);
    }
}
