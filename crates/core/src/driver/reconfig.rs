//! Reconfiguring points and the expansion protocol.
//!
//! At each step boundary a flexible job calls the DMR API. Synchronous
//! mode (`dmr_check_status`) decides *and applies* on the spot, paying the
//! runtime↔RMS round trip; asynchronous mode (`dmr_icheck_status`) applies
//! the decision negotiated at the previous boundary and plans the next
//! one, hiding the communication cost behind computation (§V-A, §VIII-C).
//! Both variants consult the scheduler through
//! [`dmr_slurm::Slurm::decide_resize`], so the verdict comes from
//! whichever [`dmr_slurm::ResizePolicy`] the experiment installed — the
//! driver is policy-agnostic.
//!
//! Expansion failures flow through [`DmrError`]: the only variant that is
//! protocol control-flow rather than a genuine error is the *deferral*
//! signal ([`DmrError::queued_resizer`]) — synchronous mode aborts the
//! queued resizer immediately (the paper's zero-wait degenerate),
//! asynchronous mode keeps computing under a timeout (§V-B1).

use dmr_sim::{SimTime, Span};
use dmr_slurm::{JobId, ResizeAction};

use super::events::Ev;
use super::Driver;
use crate::config::{EstimateMode, ScheduleMode};
use crate::error::DmrError;

impl Driver<'_, '_> {
    /// One reconfiguring point: dispatch to the configured check variant.
    pub(crate) fn check_point(&mut self, job: JobId, now: SimTime) {
        match self.cfg.mode {
            ScheduleMode::Synchronous => self.check_sync(job, now),
            ScheduleMode::Asynchronous => self.check_async(job, now),
        }
    }

    /// Arms the checking inhibitor: checks before `now + period` are
    /// swallowed (coalesced into one compute segment).
    fn arm_inhibitor(&mut self, job: JobId, idx: usize, now: SimTime) {
        if let Some(p) = self.inhibitor_period(idx) {
            let rs = self.running.get_mut(job).expect("running");
            rs.next_check_at = now + Span::from_secs_f64(p);
        }
    }

    /// Attempts the four-step expansion protocol towards `to` processes.
    /// On success the spawn + redistribution charge is scheduled (after
    /// `pause`) and `true` is returned. On deferral the queued resizer is
    /// either awaited under the §V-B1 timeout (`wait_on_queue`, the
    /// asynchronous path) or aborted on the spot (the synchronous path).
    fn try_expand(
        &mut self,
        job: JobId,
        to: u32,
        now: SimTime,
        pause: Span,
        wait_on_queue: bool,
    ) -> bool {
        let (idx, procs) = {
            let rs = &self.running[job];
            (rs.spec_idx, rs.procs)
        };
        let data = self.jobs[idx].spec.data_bytes;
        // Injected spawn-path failure (faultload): the negotiation dies
        // before the protocol runs; the job degrades gracefully to its
        // old size and a backoff retry is scheduled. Classified as
        // [`DmrError::is_injected`], never as a structural failure.
        if self.inject_resize_failure(job, to, now) {
            return false;
        }
        match self
            .slurm
            .expand_protocol(job, to, now)
            .map_err(DmrError::from)
        {
            Ok(_) => {
                let cost = self.cfg.network.spawn_time(to)
                    + self.cfg.network.redistribution_time(data, procs, to);
                let ev = self
                    .engine
                    .schedule_at(now + pause + cost, Ev::ReconfigDone { job });
                let rs = self.running.get_mut(job).expect("running");
                rs.pending_expand = Some(to);
                rs.inflight = Some(ev);
                true
            }
            Err(e) => {
                if let Some(resizer) = e.queued_resizer() {
                    if wait_on_queue {
                        let ev = self.engine.schedule_at(
                            now + Span::from_secs_f64(self.cfg.resizer_timeout_s),
                            Ev::RjTimeout { rj: resizer },
                        );
                        let rs = self.running.get_mut(job).expect("running");
                        rs.waiting_rj = Some((resizer, ev));
                        self.rj_to_orig.insert(resizer, job);
                    } else {
                        self.slurm.abort_expand(resizer, now);
                    }
                }
                false
            }
        }
    }

    /// `dmr_check_status`: decide and apply at this reconfiguring point.
    /// Every non-inhibited call costs [`crate::ExperimentConfig::check_overhead_s`]
    /// — the runtime↔RMS round trip the inhibitor exists to amortise.
    fn check_sync(&mut self, job: JobId, now: SimTime) {
        let idx = self.running[job].spec_idx;
        self.arm_inhibitor(job, idx, now);
        let pause = Span::from_secs_f64(self.cfg.check_overhead_s);
        // An expansion retry whose backoff expired takes precedence over
        // a fresh policy consultation (the decision was already made; the
        // injected failure merely delayed it).
        let action = match self
            .running
            .get_mut(job)
            .and_then(|rs| rs.retry_expand.take())
        {
            Some(to) => ResizeAction::Expand { to },
            None => self.slurm.decide_resize(job, now),
        };
        match action {
            ResizeAction::NoAction => self.pause_then_continue(job, now, pause),
            ResizeAction::Expand { to } => {
                if !self.try_expand(job, to, now, pause, false) {
                    // Deferred or failed: the action aborts immediately
                    // (the paper's timeout degenerates to zero here).
                    self.pause_then_continue(job, now, pause);
                }
            }
            ResizeAction::Shrink { to, .. } => self.schedule_shrink(job, to, now, pause),
        }
    }

    /// `dmr_icheck_status`: apply the action planned at the *previous*
    /// boundary, then plan the next one. The communication overhead hides
    /// behind computation, but decisions can be stale (§VIII-C).
    fn check_async(&mut self, job: JobId, now: SimTime) {
        let (idx, procs, granted, planned, waiting, retry) = {
            let rs = self.running.get_mut(job).expect("running");
            (
                rs.spec_idx,
                rs.procs,
                rs.granted_expand.take(),
                rs.planned.take(),
                rs.waiting_rj.is_some(),
                rs.retry_expand.take(),
            )
        };
        self.arm_inhibitor(job, idx, now);
        let data = self.jobs[idx].spec.data_bytes;
        let mut applying = false;

        if let Some(newp) = granted {
            // A queued resizer delivered mid-segment; spawn + redistribute
            // now.
            let cost = self.cfg.network.spawn_time(newp)
                + self.cfg.network.redistribution_time(data, procs, newp);
            let ev = self
                .engine
                .schedule_at(now + cost, Ev::ReconfigDone { job });
            let rs = self.running.get_mut(job).expect("running");
            rs.pending_expand = Some(newp);
            rs.inflight = Some(ev);
            applying = true;
        } else if let Some(plan) = planned.or(retry.map(|to| ResizeAction::Expand { to })) {
            match plan {
                ResizeAction::Expand { to } if to > procs => {
                    applying = self.try_expand(job, to, now, Span::ZERO, true);
                }
                ResizeAction::Shrink { to, .. } if to < procs => {
                    self.schedule_shrink(job, to, now, Span::ZERO);
                    applying = true;
                }
                _ => {}
            }
        }

        if !applying {
            // Plan the next boundary's action (free of charge: the call
            // overlaps the next compute step). One in-flight negotiation
            // at a time.
            if !waiting && self.running[job].waiting_rj.is_none() {
                let a = self.slurm.decide_resize(job, now);
                let rs = self.running.get_mut(job).expect("running");
                rs.planned = a.is_action().then_some(a);
            }
            self.begin_segment(job, now);
        }
    }

    pub(crate) fn pause_then_continue(&mut self, job: JobId, now: SimTime, pause: Span) {
        if pause.is_zero() {
            self.begin_segment(job, now);
        } else {
            let ev = self
                .engine
                .schedule_at(now + pause, Ev::ReconfigDone { job });
            self.running.get_mut(job).expect("running").inflight = Some(ev);
        }
    }

    /// A reconfiguration (or bare check pause) completed: adopt the new
    /// process set and resume compute.
    pub(crate) fn on_reconfig_done(&mut self, job: JobId, now: SimTime) {
        let Some(rs) = self.running.get_mut(job) else {
            return;
        };
        rs.inflight = None;
        if let Some(to) = rs.pending_shrink.take() {
            self.finish_shrink(job, to, now);
        } else if let Some(to) = rs.pending_expand.take() {
            rs.procs = to;
            // A completed expansion refills the injected-failure retry
            // budget for any future target.
            rs.retry_attempt = 0;
            self.update_estimate(job, now);
            self.begin_segment(job, now);
        } else {
            // Bare check pause.
            self.begin_segment(job, now);
        }
    }

    /// A queued resizer job finally started (asynchronous path): complete
    /// protocol steps 2–4 now; the application applies the grant (spawn +
    /// redistribution) at its next reconfiguring point.
    pub(crate) fn on_rj_started(&mut self, rj: JobId, orig: JobId, now: SimTime) {
        self.rj_to_orig.remove(rj);
        match self.slurm.finish_expand(rj, now) {
            Ok((_, nodes)) => {
                let cancel = if let Some(rs) = self.running.get_mut(orig) {
                    rs.granted_expand = Some(nodes.len() as u32);
                    rs.waiting_rj.take().map(|(_, ev)| ev)
                } else {
                    None
                };
                if let Some(ev) = cancel {
                    self.engine.cancel(ev);
                }
            }
            Err(_) => {
                // Original vanished between scheduling and wiring; the
                // scheduler's dependency hygiene already reclaimed nodes.
            }
        }
    }

    pub(crate) fn on_rj_timeout(&mut self, rj: JobId, now: SimTime) {
        self.slurm.abort_expand(rj, now);
        if let Some(orig) = self.rj_to_orig.remove(rj) {
            if let Some(rs) = self.running.get_mut(orig) {
                rs.waiting_rj = None;
            }
        }
    }

    /// Refreshes the runtime estimate the backfill scheduler plans with
    /// after a reconfiguration changed this job's speed.
    pub(crate) fn update_estimate(&mut self, job: JobId, now: SimTime) {
        if self.cfg.estimate_mode == EstimateMode::Walltime {
            // Slurm only knows the submitted walltime; nobody updates it
            // after a reconfiguration either.
            return;
        }
        let rs = &self.running[job];
        let sim = &self.jobs[rs.spec_idx];
        let remaining = sim
            .remaining_time(rs.procs, rs.steps_done)
            .mul_f64(self.cfg.estimate_padding);
        let elapsed = self
            .slurm
            .job(job)
            .and_then(|j| j.start_time)
            .map(|s| now.since(s))
            .unwrap_or(Span::ZERO);
        self.slurm.set_expected_runtime(job, elapsed + remaining);
    }
}
