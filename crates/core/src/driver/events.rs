//! The event vocabulary and central dispatch.
//!
//! Everything that happens in an experiment is one of the [`Ev`]
//! variants; [`Driver::handle`] fans each out to the submodule that owns
//! the corresponding phase of the job lifecycle.

use dmr_cluster::NodeId;
use dmr_sim::{SimTime, Span};
use dmr_slurm::JobId;

use super::Driver;

/// Simulation events.
#[derive(Debug)]
pub(crate) enum Ev {
    /// Workload job `index` reaches the system.
    Arrival(usize),
    /// A running job finished a compute segment of `steps` iterations.
    SegmentDone { job: JobId, steps: u32 },
    /// A reconfiguration (or a bare check pause) finished; resume compute.
    ReconfigDone { job: JobId },
    /// A queued resizer job waited too long (§V-B1): abort the expansion.
    RjTimeout { rj: JobId },
    /// Periodic EASY-backfill pass (Slurm's `bf_interval`).
    BackfillTick,
    /// Powered-down (S5) nodes finish waking: capacity returns. Scheduled
    /// one wake-up latency after demand arrived while nodes were off.
    NodeWake,
    /// An injected fault takes `node` down (faultload; see
    /// [`dmr_cluster::FaultSource`]). A running owner is killed and
    /// requeued.
    NodeFail { node: NodeId },
    /// An injected repair brings `node` back; it may accept work again.
    NodeRepair { node: NodeId },
    /// Backoff expired after an injected resize-negotiation failure:
    /// mark `job` eligible to retry expanding to `to` at its next
    /// reconfiguring point.
    ResizeRetry { job: JobId, to: u32 },
}

impl Driver<'_, '_> {
    pub(crate) fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrival(i) => self.on_arrival(i, now),
            Ev::SegmentDone { job, steps } => self.on_segment_done(job, steps, now),
            Ev::ReconfigDone { job } => self.on_reconfig_done(job, now),
            Ev::RjTimeout { rj } => self.on_rj_timeout(rj, now),
            Ev::BackfillTick => self.on_backfill_tick(now),
            Ev::NodeWake => self.on_node_wake(now),
            Ev::NodeFail { node } => self.on_node_fail(node, now),
            Ev::NodeRepair { node } => self.on_node_repair(node, now),
            Ev::ResizeRetry { job, to } => self.on_resize_retry(job, to, now),
        }
    }

    /// Wakes every suspended node and reschedules — the capacity that
    /// left at power-down is placeable again.
    pub(crate) fn on_node_wake(&mut self, now: SimTime) {
        self.wake_pending = false;
        if self.slurm.wake_all() > 0 {
            self.request_schedule(now);
        }
    }

    /// Asks the installed resize policy whether idle nodes should be
    /// suspended (S5) and applies the verdict. Runs after scheduling
    /// passes; the default policy verdict is 0, so non-energy policies
    /// leave runs bit-identical. While a wake is already in flight the
    /// system is in demand — don't suspend what is about to be needed.
    pub(crate) fn maybe_power_down(&mut self, now: SimTime) {
        if self.wake_pending {
            return;
        }
        let n = self.slurm.decide_power_down(now);
        if n > 0 {
            self.slurm.power_down_idle(n);
        }
    }

    /// The periodic backfill thread: runs a full EASY pass, then re-arms
    /// itself while there is still work in the system.
    ///
    /// A pending queue alone does not justify re-arming: if nothing is
    /// running, no arrival is in flight, and no other event is pending
    /// (no repair, wake, or resize retry), the feasible set can never
    /// change again — the pass that just ran started everything that can
    /// ever start. Ticking on would spin virtual time forever; this
    /// arises under fault scripts that down nodes without repairing
    /// them, leaving a requeued job larger than the surviving cluster.
    pub(crate) fn on_backfill_tick(&mut self, now: SimTime) {
        let starts = self.slurm.backfill_pass(now);
        self.wire_starts(starts, now);
        self.maybe_power_down(now);
        let work_left =
            self.arrivals_pending || self.slurm.pending_count() > 0 || !self.running.is_empty();
        let progress_possible =
            self.arrivals_pending || !self.running.is_empty() || self.engine.pending() > 0;
        if work_left && progress_possible {
            self.engine.schedule_in(
                Span::from_secs_f64(self.cfg.backfill_interval_s),
                Ev::BackfillTick,
            );
        }
    }
}
