//! Metric hooks: per-event sampling and per-completion accounting.
//!
//! After every handled event the driver samples the three evolution
//! quantities behind the paper's timeline figures (allocated nodes,
//! running jobs, completed jobs — Figures 4, 5, 6, 12) into the installed
//! [`dmr_metrics::MetricsSink`]; as each job completes, its accounting is
//! copied out of the scheduler record and folded into the sink *before*
//! the record is pruned. The driver itself therefore retains no per-job
//! or per-event telemetry — what a run keeps is entirely the sink's
//! choice (buffered series vs. streaming histograms).

use dmr_metrics::JobOutcome;
use dmr_sim::SimTime;
use dmr_slurm::JobId;

use super::Driver;
use crate::result::RunStats;

impl Driver<'_, '_> {
    /// Records one sample of every evolution series at `now`, and charges
    /// the power meter for the interval just ended — at the per-class
    /// counts that were in force *during* it (cached at the previous
    /// sample; this runs after the event's state change, so the current
    /// cluster counts describe the next interval, not this one).
    pub(crate) fn sample(&mut self, now: SimTime) {
        self.power.sample(now, &self.prev_busy, &self.prev_off);
        let cluster = self.slurm.cluster();
        self.prev_busy.copy_from_slice(cluster.busy_by_class());
        self.prev_off.copy_from_slice(cluster.off_by_class());
        self.sink.on_sample(
            now,
            self.slurm.allocated_nodes() as f64,
            self.running.len() as f64,
            self.completed as f64,
        );
    }

    /// Copies the completing job's accounting into the sink and releases
    /// every per-job record the driver and scheduler still hold for it.
    /// Must run *before* [`dmr_slurm::Slurm::complete`] prunes the
    /// scheduler record.
    pub(crate) fn account_completion(&mut self, job: JobId, now: SimTime) {
        let Some(idx) = self.spec_of.remove(job) else {
            return;
        };
        // The sink is keyed by the monotonic arrival sequence, not the
        // slab slot — slots recycle as jobs retire.
        let seq = self.jobs.seq(idx);
        if let Some(rec) = self.slurm.job(job) {
            if let Some(start) = rec.start_time {
                // A requeued job reports against its *original*
                // submission — waiting time spans the lost incarnations
                // and the requeue wait — and carries the
                // reconfigurations its dead incarnations performed.
                let (submit, prior_reconfigs) = match self.requeued.remove(job) {
                    Some(info) => (info.orig_submit, info.prior_reconfigs),
                    None => (rec.submit_time, 0),
                };
                self.sink.on_job(
                    seq,
                    JobOutcome::new(submit, start, now, rec.reconfigurations + prior_reconfigs),
                );
            }
        }
        self.jobs.remove(idx);
    }

    /// The driver-side scalars of a finished run; everything else already
    /// lives in the sink.
    pub(crate) fn finish(mut self) -> RunStats {
        // Close the metered window at the final clock so the last
        // interval (e.g. trailing housekeeping) is charged too.
        let end = self.engine.now();
        self.power.sample(end, &self.prev_busy, &self.prev_off);
        RunStats {
            // The engine's actual final clock — never an f64 round-trip
            // of the makespan, which both loses microseconds and points
            // at the wrong instant for traces that start after t = 0.
            end_time: end,
            events: self.engine.processed(),
            past_schedules: self.engine.past_schedules(),
            power: crate::result::PowerStats::from_meter(&self.power),
            faults: crate::result::FaultStats::collect(
                self.failures,
                self.requeues,
                self.resize_faults,
                self.resize_retries,
                self.lost_work,
                &mut self.restart_lat,
            ),
        }
    }
}
