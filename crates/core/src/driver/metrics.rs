//! Metric hooks: evolution-series sampling and final summary assembly.
//!
//! After every handled event the driver records the three step series
//! behind the paper's timeline figures (allocated nodes, running jobs,
//! completed jobs — Figures 4, 5, 6, 12); at the end of the run it folds
//! the per-job accounting into the [`WorkloadSummary`] the evaluation
//! tables report.

use dmr_metrics::{JobOutcome, WorkloadSummary};
use dmr_sim::SimTime;
use dmr_slurm::JobState;

use super::Driver;
use crate::result::ExperimentResult;

impl Driver<'_> {
    /// Records one sample of every evolution series at `now`.
    pub(crate) fn sample(&mut self, now: SimTime) {
        self.alloc_series
            .record(now, self.slurm.allocated_nodes() as f64);
        self.running_series.record(now, self.running.len() as f64);
        self.completed_series.record(now, self.completed as f64);
    }

    /// Folds the scheduler's per-job accounting into the experiment
    /// result once the event queue has drained.
    pub(crate) fn finish(self) -> ExperimentResult {
        let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(self.jobs.len());
        for job in self.slurm.jobs() {
            if job.is_resizer() || job.state != JobState::Completed {
                continue;
            }
            let (Some(start), Some(end)) = (job.start_time, job.end_time) else {
                continue;
            };
            outcomes.push(JobOutcome::new(
                job.submit_time,
                start,
                end,
                job.reconfigurations,
            ));
        }
        let summary = WorkloadSummary::compute(&outcomes, &self.alloc_series, self.cfg.nodes);
        let end_time = SimTime::from_secs_f64(summary.makespan_s);
        ExperimentResult {
            summary,
            allocation: self.alloc_series,
            running: self.running_series,
            completed: self.completed_series,
            outcomes,
            end_time,
            events: self.engine.processed(),
            past_schedules: self.engine.past_schedules(),
        }
    }
}
