//! The discrete-event workload driver.
//!
//! Reproduces the full §III methodology loop: jobs arrive (Feitelson
//! process), Slurm starts them (EASY backfill + multifactor priority), each
//! flexible job exposes reconfiguring points at its step boundaries where
//! the runtime calls the DMR API; the installed [`dmr_slurm::ResizePolicy`]
//! (Algorithm 1 by default, selected by
//! [`crate::config::ExperimentConfig::policy`]) answers expand /
//! shrink / no-action; expansions run the four-step resizer-job protocol
//! (with queue-wait and timeout in asynchronous mode) followed by an
//! `MPI_Comm_spawn` + data-redistribution charge; shrinks drain data first
//! (the ACK workflow) and then release nodes, boosting the queued job that
//! triggered them.
//!
//! The driver is split along the lifecycle of a job (private modules):
//!
//! * `events` — the event vocabulary (`Ev`) and dispatch;
//! * `arrivals` — job submission, scheduling cycles, compute segments
//!   and completion;
//! * `reconfig` — the DMR check points and the expansion protocol
//!   (synchronous and asynchronous variants, resizer-job timeout);
//! * `shrink` — the ACK-style shrink workflow (drain, release, boost);
//! * `failure` — injected node failures, kill-and-requeue recovery, and
//!   the resize-retry backoff schedule;
//! * `metrics` — evolution-series sampling and final summary assembly.

pub(crate) mod arrivals;
pub(crate) mod events;
pub(crate) mod failure;
pub(crate) mod metrics;
pub(crate) mod reconfig;
pub(crate) mod shrink;

use dmr_cluster::{Cluster, FaultSource, FaultTrace, PowerMeter};
use dmr_metrics::{MetricsSink, OnlineAccumulator, SeriesRecorder, StepSeries, WorkloadSummary};
use dmr_sim::{Engine, EventId, QueueKind, SimTime, Span, CLASS_EARLY};
use dmr_slurm::{JobId, ResizeAction, SchedIndex, Slurm, SlurmConfig};
use dmr_workload::WorkloadSource;
use rand::{rngs::StdRng, SeedableRng};

use crate::config::{ExperimentConfig, Telemetry};
use crate::model::SimJob;
use crate::result::{ExperimentResult, RunStats};
use events::Ev;

/// Per-running-job state the runtime would keep.
#[derive(Debug)]
pub(crate) struct RunState {
    pub(crate) spec_idx: usize,
    /// Current process count (= node count; one rank per node).
    pub(crate) procs: u32,
    pub(crate) steps_done: u32,
    /// Inhibitor gate: checks before this instant are swallowed.
    pub(crate) next_check_at: SimTime,
    /// Asynchronous mode: the action decided at the previous boundary.
    pub(crate) planned: Option<ResizeAction>,
    /// Asynchronous mode: a queued resizer started and its nodes are
    /// already attached; apply (spawn + redistribute) at the next boundary.
    pub(crate) granted_expand: Option<u32>,
    /// Reconfiguration in flight: target process count to adopt at
    /// [`Ev::ReconfigDone`].
    pub(crate) pending_expand: Option<u32>,
    pub(crate) pending_shrink: Option<u32>,
    /// Outstanding queued resizer job and its timeout event.
    pub(crate) waiting_rj: Option<(JobId, EventId)>,
    /// The in-flight `SegmentDone` / `ReconfigDone` event for this job.
    /// Exactly one is pending whenever the job is computing or
    /// reconfiguring; a node failure cancels it so the dead incarnation
    /// can never fire a stale completion.
    pub(crate) inflight: Option<EventId>,
    /// When this incarnation started computing (scratch-restart baseline
    /// for lost-work accounting).
    pub(crate) started_at: SimTime,
    /// Instant of the last checkpoint image (= `started_at` until the
    /// first image; a requeued incarnation starts "holding" the image it
    /// resumed from).
    pub(crate) last_ckpt_at: SimTime,
    /// Steps covered by the last checkpoint image.
    pub(crate) ckpt_steps: u32,
    /// An expansion retry (after injected-failure backoff) is eligible:
    /// target process count to attempt at the next reconfiguring point.
    pub(crate) retry_expand: Option<u32>,
    /// Injected-failure retry attempts consumed for the current target
    /// (bounds the exponential backoff schedule).
    pub(crate) retry_attempt: u32,
}

impl RunState {
    pub(crate) fn new(spec_idx: usize, procs: u32, now: SimTime) -> Self {
        RunState {
            spec_idx,
            procs,
            steps_done: 0,
            next_check_at: now,
            planned: None,
            granted_expand: None,
            pending_expand: None,
            pending_shrink: None,
            waiting_rj: None,
            inflight: None,
            started_at: now,
            last_ckpt_at: now,
            ckpt_steps: 0,
            retry_expand: None,
            retry_attempt: 0,
        }
    }
}

/// Recovery bookkeeping for a job that was killed by a node failure and
/// resubmitted, keyed by the *new* incarnation's id. Carried until the
/// job completes so accounting spans every incarnation.
#[derive(Clone, Copy, Debug)]
pub(crate) struct RequeueInfo {
    /// Submission instant of the first incarnation — the completion
    /// outcome is reported against it, so waiting time includes the lost
    /// run and the requeue wait.
    pub(crate) orig_submit: SimTime,
    /// When the failure killed the previous incarnation (time-to-restart
    /// is measured from here to the restart).
    pub(crate) failed_at: SimTime,
    /// Steps already safe in the last checkpoint image (zero when
    /// restarting from scratch); the new incarnation resumes here.
    pub(crate) resume_steps: u32,
    /// Reconfigurations accumulated by the dead incarnations.
    pub(crate) prior_reconfigs: u32,
}

/// Slab of the active jobs' specs, addressed by the slot index the
/// [`Ev::Arrival`] payload carries. The driver used to key this table by
/// arrival index in a `BTreeMap`; the slab replaces every tree descent
/// on the segment hot path (two lookups per compute segment) with an
/// indexed load, and recycles slots as jobs retire so the table stays as
/// dense as the active set. Each entry keeps the job's monotonic arrival
/// sequence number — the stable telemetry id `MetricsSink::on_job`
/// reports — precisely *because* slots recycle.
///
/// No generation check is needed: a slot is referenced only between its
/// arrival and its completion (`account_completion` frees it last), so a
/// stale index can never be observed.
#[derive(Default)]
pub(crate) struct SpecSlab {
    slots: Vec<Option<(u64, SimJob)>>,
    free: Vec<usize>,
}

impl SpecSlab {
    pub(crate) fn insert(&mut self, seq: u64, job: SimJob) -> usize {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx].is_none(), "free spec slot occupied");
                self.slots[idx] = Some((seq, job));
                idx
            }
            None => {
                self.slots.push(Some((seq, job)));
                self.slots.len() - 1
            }
        }
    }

    /// The arrival sequence number of the job in `idx`.
    pub(crate) fn seq(&self, idx: usize) -> u64 {
        self.slots[idx].as_ref().expect("spec slot vacant").0
    }

    pub(crate) fn remove(&mut self, idx: usize) {
        let freed = self.slots[idx].take();
        debug_assert!(freed.is_some(), "spec slot double-freed");
        self.free.push(idx);
    }
}

impl std::ops::Index<usize> for SpecSlab {
    type Output = SimJob;

    fn index(&self, idx: usize) -> &SimJob {
        &self.slots[idx].as_ref().expect("spec slot vacant").1
    }
}

/// Per-job driver state addressed directly by the [`JobId`] slot, with
/// the generation validated on every access — the same trick as
/// [`dmr_slurm::JobArena`], applied to the driver's side tables
/// (`running`, `spec_of`, `rj_to_orig`, formerly `BTreeMap<JobId, _>`).
/// A stale id (its job pruned, its slot re-tenanted) misses the
/// generation compare exactly as it missed the tree lookup before.
pub(crate) struct JobMap<T> {
    slots: Vec<Option<(u32, T)>>,
    live: usize,
}

impl<T> Default for JobMap<T> {
    fn default() -> Self {
        JobMap {
            slots: Vec::new(),
            live: 0,
        }
    }
}

impl<T> JobMap<T> {
    pub(crate) fn insert(&mut self, id: JobId, value: T) {
        let idx = id.slot() as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(self.slots[idx].is_none(), "{id:?} slot already mapped");
        self.slots[idx] = Some((id.generation(), value));
        self.live += 1;
    }

    pub(crate) fn get(&self, id: JobId) -> Option<&T> {
        match self.slots.get(id.slot() as usize)? {
            Some((generation, value)) if *generation == id.generation() => Some(value),
            _ => None,
        }
    }

    pub(crate) fn get_mut(&mut self, id: JobId) -> Option<&mut T> {
        match self.slots.get_mut(id.slot() as usize)? {
            Some((generation, value)) if *generation == id.generation() => Some(value),
            _ => None,
        }
    }

    pub(crate) fn remove(&mut self, id: JobId) -> Option<T> {
        let slot = self.slots.get_mut(id.slot() as usize)?;
        match slot {
            Some((generation, _)) if *generation == id.generation() => {
                self.live -= 1;
                slot.take().map(|(_, value)| value)
            }
            _ => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.live
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<T> std::ops::Index<JobId> for JobMap<T> {
    type Output = T;

    fn index(&self, id: JobId) -> &T {
        self.get(id).expect("job id not mapped")
    }
}

/// Where the driver pulls its jobs from: a pre-materialized list (the
/// historical [`run_experiment`] API) or a streaming
/// [`dmr_workload::WorkloadSource`]. Either way the driver consumes
/// demand one job at a time — only the next arrival is ever scheduled.
pub(crate) enum JobFeed<'a> {
    Materialized(std::iter::Cloned<std::slice::Iter<'a, SimJob>>),
    Streaming(&'a mut dyn WorkloadSource),
}

impl JobFeed<'_> {
    fn next_job(&mut self) -> Option<SimJob> {
        match self {
            JobFeed::Materialized(it) => it.next(),
            JobFeed::Streaming(src) => src.next_job().map(SimJob::from_spec),
        }
    }
}

/// The simulation state shared by every driver submodule.
pub(crate) struct Driver<'a, 's> {
    pub(crate) cfg: ExperimentConfig,
    /// Specs of the jobs currently *in* the simulation, keyed by slab
    /// slot (the `Ev::Arrival` payload). An entry is inserted when the
    /// feed yields the job and removed when the job completes, so the
    /// slab holds only the active set — O(active jobs), not O(trace
    /// length).
    pub(crate) jobs: SpecSlab,
    /// Jobs pulled from the feed so far (the next arrival sequence
    /// number, and the telemetry id of the next arrival).
    pub(crate) arrived: usize,
    pub(crate) feed: JobFeed<'a>,
    pub(crate) slurm: Slurm,
    pub(crate) engine: Engine<Ev>,
    pub(crate) running: JobMap<RunState>,
    pub(crate) spec_of: JobMap<usize>,
    pub(crate) rj_to_orig: JobMap<JobId>,
    /// Where telemetry goes: one sample per handled event, one outcome
    /// per completed job.
    pub(crate) sink: &'s mut dyn MetricsSink,
    pub(crate) completed: u32,
    /// An arrival event is in flight (the feed was not exhausted at the
    /// last pull).
    pub(crate) arrivals_pending: bool,
    /// Arrival instant of the last scheduled arrival; sources must be
    /// arrival-sorted, stragglers are clamped here defensively.
    pub(crate) last_arrival: SimTime,
    /// A scheduling pass was requested at the current instant but not run
    /// yet (same-instant batching — see [`Driver::request_schedule`]).
    pub(crate) pass_due: bool,
    /// Integrates cluster watts over virtual time (one sample per event).
    pub(crate) power: PowerMeter,
    /// Per-class busy/off counts in force since the previous sample — the
    /// meter charges each interval at the counts that *were* live during
    /// it, so the driver caches the post-event counts of the last sample.
    pub(crate) prev_busy: Vec<u32>,
    pub(crate) prev_off: Vec<u32>,
    /// An [`Ev::NodeWake`] is already scheduled (wake requests coalesce).
    pub(crate) wake_pending: bool,
    /// Faultload event stream; [`FaultSource::None`] under the zero-fault
    /// configuration (nothing is ever pulled or scheduled).
    pub(crate) faults: FaultSource,
    /// A fault event is already scheduled in the engine (the driver keeps
    /// exactly one in flight, like arrivals).
    pub(crate) fault_pending: bool,
    /// Bernoulli source for injected resize-negotiation failures. `None`
    /// under [`dmr_cluster::FaultLoad::None`], so zero-fault runs never
    /// construct or draw from it.
    pub(crate) proto_rng: Option<StdRng>,
    /// Per-negotiation injected-failure probability (0.0 when inactive).
    pub(crate) resize_fail_p: f64,
    /// Recovery bookkeeping for requeued jobs, keyed by the live
    /// incarnation's id.
    pub(crate) requeued: JobMap<RequeueInfo>,
    /// Fault events that hit the cluster (idle or busy nodes).
    pub(crate) failures: u64,
    /// Running jobs killed and resubmitted after losing a node.
    pub(crate) requeues: u64,
    /// Resize negotiations failed by injection.
    pub(crate) resize_faults: u64,
    /// Backoff retries scheduled after injected negotiation failures.
    pub(crate) resize_retries: u64,
    /// Compute time destroyed by failures (work since the last image).
    pub(crate) lost_work: Span,
    /// Failure-to-restart latencies (µs), one per successful restart.
    pub(crate) restart_lat: Vec<u64>,
}

/// Runs one workload under one configuration.
pub fn run_experiment(cfg: &ExperimentConfig, jobs: &[SimJob]) -> ExperimentResult {
    run_feed(cfg, JobFeed::Materialized(jobs.iter().cloned()), None)
}

/// Runs one workload with a *scripted* faultload: `trace` replaces
/// whatever [`ExperimentConfig::faults`] preset the configuration names
/// (the injected resize-failure probability still follows the preset).
/// Deterministic by construction — the trace is replayed verbatim — so
/// regression tests can pin an exact incident.
pub fn run_experiment_with_faults(
    cfg: &ExperimentConfig,
    jobs: &[SimJob],
    trace: FaultTrace,
) -> ExperimentResult {
    run_feed(
        cfg,
        JobFeed::Materialized(jobs.iter().cloned()),
        Some(trace),
    )
}

/// Runs one streamed workload under one configuration.
///
/// Unlike [`run_experiment`], the job list is never materialized: the
/// driver pulls one job at a time from `source` and keeps a single
/// arrival event in flight, so a million-job trace replays in O(1)
/// arrival memory. Per-job accounting is copied into the metrics sink at
/// each completion, after which the driver prunes the job from the
/// scheduler and its own spec table (in every telemetry mode — the sink
/// owns all accounting). With [`Telemetry::Online`] the run is therefore
/// O(1) in job count end to end: the sink folds outcomes into streaming
/// histograms and no `Vec<JobOutcome>` is ever built.
/// Streaming the [`dmr_workload::Feitelson`] source is result-identical
/// to running [`run_experiment`] on the materialized generator output
/// (pinned by `tests/source_equivalence.rs`), and `Online` summaries are
/// bit-identical to `Full` ones (pinned by
/// `tests/streaming_equivalence.rs`).
pub fn run_experiment_streaming(
    cfg: &ExperimentConfig,
    source: &mut dyn WorkloadSource,
) -> ExperimentResult {
    run_feed(cfg, JobFeed::Streaming(source), None)
}

/// [`run_experiment_streaming`] with a *scripted* faultload — the
/// streaming counterpart of [`run_experiment_with_faults`], so `repro
/// --trace --faults trace:incident.txt` can replay an exact recorded
/// incident over an SWF trace in O(1) arrival memory.
pub fn run_experiment_streaming_with_faults(
    cfg: &ExperimentConfig,
    source: &mut dyn WorkloadSource,
    trace: FaultTrace,
) -> ExperimentResult {
    run_feed(cfg, JobFeed::Streaming(source), Some(trace))
}

/// Runs one streamed workload, feeding telemetry to a caller-supplied
/// [`MetricsSink`] — the extension point for custom recorders (live
/// dashboards, exporters). The driver itself retains nothing; everything
/// except the [`RunStats`] scalars flows through `sink`.
pub fn run_experiment_with_sink(
    cfg: &ExperimentConfig,
    source: &mut dyn WorkloadSource,
    sink: &mut dyn MetricsSink,
) -> RunStats {
    Driver::new(*cfg, JobFeed::Streaming(source), sink).run()
}

/// Drives `feed` under the telemetry mode `cfg` selects and assembles
/// the [`ExperimentResult`].
fn run_feed(
    cfg: &ExperimentConfig,
    feed: JobFeed<'_>,
    trace: Option<FaultTrace>,
) -> ExperimentResult {
    // Both telemetry branches patch the driver-side scalars into the
    // summary identically, so `Online` stays bit-identical to `Full`.
    let patch = |summary: &mut WorkloadSummary, stats: &RunStats| {
        summary.energy_to_solution_j = stats.power.energy_j;
        summary.avg_watts = stats.power.avg_watts;
        summary.class_utilization = stats.power.class_utilization().to_vec();
        summary.failures = stats.faults.failures;
        summary.requeues = stats.faults.requeues;
        summary.lost_work_s = stats.faults.lost_work_s;
        summary.restart_p95_s = stats.faults.restart_p95_s;
        // Useful compute over total compute destroyed-or-delivered; an
        // exact 1.0 whenever nothing was lost.
        let exec = summary.avg_execution_s * summary.jobs as f64;
        summary.goodput_ratio = if exec > 0.0 {
            exec / (exec + stats.faults.lost_work_s)
        } else {
            1.0
        };
    };
    match cfg.telemetry {
        Telemetry::Full => {
            let mut recorder = SeriesRecorder::new();
            let mut driver = Driver::new(*cfg, feed, &mut recorder);
            if let Some(t) = trace {
                driver = driver.with_fault_trace(t);
            }
            let stats = driver.run();
            let (allocation, running, completed, outcomes) = recorder.into_parts();
            let mut summary = WorkloadSummary::compute(&outcomes, &allocation, cfg.nodes);
            patch(&mut summary, &stats);
            ExperimentResult {
                summary,
                allocation,
                running,
                completed,
                outcomes,
                end_time: stats.end_time,
                events: stats.events,
                past_schedules: stats.past_schedules,
            }
        }
        Telemetry::Online => {
            let mut acc = OnlineAccumulator::new();
            let mut driver = Driver::new(*cfg, feed, &mut acc);
            if let Some(t) = trace {
                driver = driver.with_fault_trace(t);
            }
            let stats = driver.run();
            let mut summary = acc.summary(cfg.nodes);
            patch(&mut summary, &stats);
            ExperimentResult {
                summary,
                allocation: StepSeries::new(),
                running: StepSeries::new(),
                completed: StepSeries::new(),
                outcomes: Vec::new(),
                end_time: stats.end_time,
                events: stats.events,
                past_schedules: stats.past_schedules,
            }
        }
    }
}

/// Runs the workload twice — rigid ("fixed") and malleable ("flexible") —
/// and returns `(fixed, flexible)`, the comparison every §VIII/§IX chart
/// is built from.
pub fn compare_fixed_flexible(
    cfg: &ExperimentConfig,
    jobs: &[SimJob],
) -> (ExperimentResult, ExperimentResult) {
    let fixed = run_experiment(&cfg.as_fixed(), jobs);
    let mut flex_cfg = *cfg;
    flex_cfg.malleability = true;
    let flexible = run_experiment(&flex_cfg, jobs);
    (fixed, flexible)
}

impl<'a, 's> Driver<'a, 's> {
    fn new(cfg: ExperimentConfig, feed: JobFeed<'a>, sink: &'s mut dyn MetricsSink) -> Self {
        let cluster = Cluster::with_classes(cfg.machine_mix.table(cfg.nodes, cfg.cores_per_node));
        let power = PowerMeter::new(cluster.table());
        let classes = cluster.table().num_classes();
        let mut scfg = SlurmConfig::for_cluster(cfg.nodes);
        scfg.backfill = cfg.backfill;
        scfg.backfill_family = cfg.backfill_family;
        scfg.resizer_timeout = Span::from_secs_f64(cfg.resizer_timeout_s);
        scfg.shrink_boost = cfg.shrink_boost;
        scfg.policy = cfg.policy;
        scfg.sched_index = cfg.sched_index;
        scfg.sched_incremental = cfg.sched_incremental;
        scfg.hole_guard = cfg.hole_guard;
        // The driver copies each job's accounting into the sink at
        // completion, so the scheduler never needs to keep terminal
        // records — the active set is all that stays resident.
        scfg.retain_completed = false;
        // The arena path runs on the timer-wheel queue backend; the other
        // paths keep the reference binary heap, so the three-way
        // equivalence suite exercises both backends end to end.
        let queue_kind = match cfg.sched_index {
            SchedIndex::Arena => QueueKind::TimerWheel,
            _ => QueueKind::BinaryHeap,
        };
        // Faultload plumbing: under `FaultLoad::None` the source is inert
        // and the protocol RNG is never even constructed — the zero-fault
        // path performs zero RNG work, keeping it bit-identical to a
        // build without fault injection.
        let faults = FaultSource::from_load(cfg.faults, cluster.table(), cfg.fault_seed);
        let proto_rng =
            (!cfg.faults.is_none()).then(|| StdRng::seed_from_u64(cfg.fault_seed ^ 0x5EED_F417));
        let resize_fail_p = cfg.faults.resize_fail_p();
        Driver {
            cfg,
            jobs: SpecSlab::default(),
            arrived: 0,
            feed,
            slurm: Slurm::new(cluster, scfg),
            engine: Engine::with_queue_kind(queue_kind),
            running: JobMap::default(),
            spec_of: JobMap::default(),
            rj_to_orig: JobMap::default(),
            sink,
            completed: 0,
            arrivals_pending: false,
            last_arrival: SimTime::ZERO,
            pass_due: false,
            power,
            prev_busy: vec![0; classes],
            prev_off: vec![0; classes],
            wake_pending: false,
            faults,
            fault_pending: false,
            proto_rng,
            resize_fail_p,
            requeued: JobMap::default(),
            failures: 0,
            requeues: 0,
            resize_faults: 0,
            resize_retries: 0,
            lost_work: Span::ZERO,
            restart_lat: Vec::new(),
        }
    }

    /// Replaces the configured faultload with a scripted trace (the
    /// regression-test / incident-replay path).
    fn with_fault_trace(mut self, trace: FaultTrace) -> Self {
        self.faults = FaultSource::from_trace(trace);
        self
    }

    fn run(mut self) -> RunStats {
        // Pull only the first job; each arrival pulls its successor, so
        // the event queue carries one arrival at a time.
        self.schedule_next_arrival();
        if self.cfg.backfill {
            self.engine.schedule_in(
                Span::from_secs_f64(self.cfg.backfill_interval_s),
                Ev::BackfillTick,
            );
        }
        // Faults follow the same one-in-flight discipline as arrivals.
        self.schedule_next_fault(SimTime::ZERO);
        let mut last_now = SimTime::ZERO;
        loop {
            // Flush any deferred scheduling pass — unless the very next
            // event is a same-instant arrival about to extend the current
            // submission batch, in which case one combined pass after the
            // batch replaces a pass per submission. A pass can complete
            // zero-remaining jobs, which re-request a pass; loop until
            // quiescent so virtual time never advances over a due pass.
            while self.pass_due {
                if self.engine.peek_head() == Some((last_now, CLASS_EARLY)) {
                    break;
                }
                self.pass_due = false;
                self.do_schedule(last_now);
                // Re-sample so the last sample at this instant reflects
                // the post-pass state, exactly as the unbatched path's
                // does; the deferred samples above it are zero-width.
                self.sample(last_now);
            }
            let Some((now, ev)) = self.engine.next_event() else {
                break;
            };
            last_now = now;
            self.handle(now, ev);
            self.sample(now);
        }
        self.finish()
    }

    /// Runs a scheduling cycle now — or, on the arena and indexed paths,
    /// marks one due and lets the run loop flush it once the current
    /// instant's arrival batch is fully submitted (the scan reference
    /// keeps the unbatched pass-per-submission cadence as the oracle).
    /// Batching is sound precisely when the
    /// pending order is the static `(boosted, submit, seq)` key order
    /// ([`Slurm::pending_order_is_static`]): a new submission then sorts
    /// strictly after every job already pending, so the combined pass
    /// walks the queue through the same decisions the per-submission
    /// passes would have made.
    pub(crate) fn request_schedule(&mut self, now: SimTime) {
        if matches!(
            self.cfg.sched_index,
            SchedIndex::Arena | SchedIndex::Indexed
        ) && self.slurm.pending_order_is_static()
        {
            self.pass_due = true;
        } else {
            self.do_schedule(now);
        }
    }

    pub(crate) fn is_flexible(&self, idx: usize) -> bool {
        let spec = &self.jobs[idx].spec;
        self.cfg.malleability && spec.flexible && !spec.malleability.is_rigid()
    }

    pub(crate) fn inhibitor_period(&self, idx: usize) -> Option<f64> {
        self.cfg
            .inhibitor_override
            .unwrap_or(self.jobs[idx].spec.malleability.sched_period_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SpeedupCurve;
    use dmr_workload::{AppClass, JobSpec, MalleabilitySpec};

    fn fs_job(index: u32, arrival: f64, procs: u32, steps: u32, step_s: f64) -> SimJob {
        SimJob {
            spec: JobSpec {
                index,
                arrival_s: arrival,
                submit_procs: procs,
                steps,
                step_s,
                walltime_s: steps as f64 * step_s * 2.5,
                data_bytes: 1 << 28,
                app: AppClass::Fs,
                flexible: true,
                gpu: false,
                malleability: MalleabilitySpec {
                    min_procs: 1,
                    max_procs: 20,
                    preferred: None,
                    factor: 2,
                    sched_period_s: None,
                },
            },
            curve: SpeedupCurve::Linear,
        }
    }

    fn cfg() -> ExperimentConfig {
        ExperimentConfig::preliminary()
    }

    #[test]
    fn rigid_run_completes_all_jobs() {
        let jobs: Vec<SimJob> = (0..5)
            .map(|i| fs_job(i, i as f64 * 5.0, 4, 2, 30.0))
            .collect();
        let r = run_experiment(&cfg().as_fixed(), &jobs);
        assert_eq!(r.summary.jobs, 5);
        assert_eq!(r.summary.reconfigurations, 0);
        assert!(r.summary.makespan_s > 0.0);
    }

    #[test]
    fn lone_flexible_job_expands_and_finishes_faster() {
        let jobs = vec![fs_job(0, 0.0, 2, 8, 30.0)];
        let fixed = run_experiment(&cfg().as_fixed(), &jobs);
        let flex = run_experiment(&cfg(), &jobs);
        // Fixed: 8 steps * 30 s = 240 s. Flexible expands (2→4→8→16) and
        // must finish substantially sooner despite reconfiguration costs.
        assert!((fixed.summary.makespan_s - 240.0).abs() < 1.0);
        assert!(
            flex.summary.makespan_s < fixed.summary.makespan_s * 0.7,
            "flex {} vs fixed {}",
            flex.summary.makespan_s,
            fixed.summary.makespan_s
        );
        assert!(flex.summary.reconfigurations >= 1);
    }

    #[test]
    fn shrink_admits_queued_job_earlier() {
        // One flexible 16-node job hogging a 20-node cluster, then a rigid
        // 8-node job arrives: the policy must shrink the first so the
        // second starts before the first finishes.
        let mut hog = fs_job(0, 0.0, 16, 40, 10.0);
        hog.spec.flexible = true;
        let mut rigid = fs_job(1, 5.0, 8, 2, 10.0);
        rigid.spec.flexible = false;
        let jobs = vec![hog, rigid];
        let (fixed, flex) = compare_fixed_flexible(&cfg(), &jobs);
        let wait_fixed = fixed.outcomes[1].waiting_s();
        let wait_flex = flex.outcomes[1].waiting_s();
        assert!(
            wait_flex < wait_fixed * 0.5,
            "queued job should start much earlier: {wait_flex} vs {wait_fixed}"
        );
        assert!(flex.summary.reconfigurations >= 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let jobs: Vec<SimJob> = (0..12)
            .map(|i| fs_job(i, i as f64 * 7.0, 1 + i % 6, 3, 20.0))
            .collect();
        let a = run_experiment(&cfg(), &jobs);
        let b = run_experiment(&cfg(), &jobs);
        assert_eq!(a.summary.makespan_s, b.summary.makespan_s);
        assert_eq!(a.summary.reconfigurations, b.summary.reconfigurations);
        assert_eq!(a.events, b.events);
        assert_eq!(a.summary.avg_waiting_s, b.summary.avg_waiting_s);
    }

    #[test]
    fn allocation_never_exceeds_cluster() {
        let jobs: Vec<SimJob> = (0..10)
            .map(|i| fs_job(i, i as f64 * 3.0, 2 + i % 8, 4, 15.0))
            .collect();
        let r = run_experiment(&cfg(), &jobs);
        assert!(r.allocation.max_value() <= 20.0);
        assert_eq!(r.completed.max_value(), 10.0);
    }

    #[test]
    fn async_mode_runs_to_completion() {
        let jobs: Vec<SimJob> = (0..8)
            .map(|i| fs_job(i, i as f64 * 4.0, 2 + i % 5, 5, 12.0))
            .collect();
        let r = run_experiment(&cfg().asynchronous(), &jobs);
        assert_eq!(r.summary.jobs, 8);
    }

    #[test]
    fn inhibitor_reduces_check_overhead_for_micro_steps() {
        // 40 micro-steps of 1 s with 0.3 s check overhead: without the
        // inhibitor ~12 s of pure overhead; with a 5 s period only ~1/5 of
        // the boundaries pay it.
        let mk = |i| fs_job(i, 0.0, 4, 40, 1.0);
        let jobs: Vec<SimJob> = (0..4).map(mk).collect();
        let no_inh = run_experiment(&cfg().with_inhibitor(None), &jobs);
        let inh5 = run_experiment(&cfg().with_inhibitor(Some(5.0)), &jobs);
        assert!(
            inh5.summary.makespan_s < no_inh.summary.makespan_s,
            "inhibitor must reduce makespan: {} vs {}",
            inh5.summary.makespan_s,
            no_inh.summary.makespan_s
        );
    }

    #[test]
    fn preferred_jobs_shrink_to_preference() {
        // A CG-style job submitted at 16 with preference 4 on a busy
        // cluster (a rigid companion keeps it from being "alone").
        let mut j = fs_job(0, 0.0, 16, 30, 5.0);
        j.spec.malleability.preferred = Some(4);
        j.spec.malleability.min_procs = 2;
        // Long-lived rigid companion so the flexible job is never "alone
        // in the system" (which would trigger the Algorithm-1 line-2
        // expand-to-max rule).
        let mut rigid = fs_job(1, 0.0, 2, 200, 5.0);
        rigid.spec.flexible = false;
        let r = run_experiment(&cfg(), &[j, rigid]);
        assert!(r.summary.reconfigurations >= 1);
        // After shrinking 16→4 the job runs 4× slower (linear curve): one
        // 5 s step at 16 plus 29 steps of 20 s — far above the fixed 150 s.
        assert!(
            r.outcomes[0].execution_s() > 450.0,
            "exec = {}",
            r.outcomes[0].execution_s()
        );
    }

    #[test]
    fn driver_never_schedules_in_the_past() {
        for cfg in [cfg(), cfg().asynchronous(), cfg().as_fixed()] {
            let jobs: Vec<SimJob> = (0..15)
                .map(|i| fs_job(i, i as f64 * 4.0, 1 + i % 8, 4, 18.0))
                .collect();
            let r = run_experiment(&cfg, &jobs);
            assert_eq!(r.past_schedules, 0, "past-scheduled events in {cfg:?}");
        }
    }

    #[test]
    fn policy_selection_reaches_the_scheduler() {
        use dmr_slurm::PolicyKind;
        let jobs: Vec<SimJob> = (0..10)
            .map(|i| fs_job(i, i as f64 * 6.0, 2 + i % 6, 6, 20.0))
            .collect();
        let alg1 = run_experiment(&cfg(), &jobs);
        let fair = run_experiment(&cfg().with_policy(PolicyKind::fair_share()), &jobs);
        let util = run_experiment(
            &cfg().with_policy(PolicyKind::UtilizationTarget {
                low: 0.05,
                high: 0.95,
            }),
            &jobs,
        );
        // All complete under every policy.
        for r in [&alg1, &fair, &util] {
            assert_eq!(r.summary.jobs, 10);
        }
        // A near-inert utilization band reconfigures less than the
        // opportunistic Algorithm 1.
        assert!(
            util.summary.reconfigurations < alg1.summary.reconfigurations,
            "util {} vs alg1 {}",
            util.summary.reconfigurations,
            alg1.summary.reconfigurations
        );
    }

    #[test]
    fn end_time_is_the_engine_clock_not_a_makespan_round_trip() {
        // A lone rigid job submitted at t = 1000.25 s with micro-odd step
        // times: the run ends at submit + 3 * 472913 µs. The old
        // `SimTime::from_secs_f64(makespan_s)` derivation pointed at
        // 1418739 µs — the makespan length, not the end instant — as soon
        // as the first submission left t = 0.
        let mut cfg = cfg().as_fixed();
        cfg.backfill = false; // no trailing backfill tick after the last completion
        let mut job = fs_job(0, 1000.25, 4, 3, 0.472913);
        job.spec.flexible = false;
        let r = run_experiment(&cfg, &[job]);
        let expected = SimTime::from_secs_f64(1000.25) + Span(3 * 472_913);
        assert_eq!(r.end_time, expected, "end_time must be the engine clock");
        assert!((r.summary.makespan_s - 1.418739).abs() < 1e-9);
    }

    #[test]
    fn offset_arrivals_do_not_deflate_makespan_or_utilization() {
        // The same workload shifted to start at t = 2000 s must report
        // identical makespan and utilization ("first submission to last
        // completion"), not quantities diluted by the idle prefix.
        let base: Vec<SimJob> = (0..6)
            .map(|i| fs_job(i, i as f64 * 5.0, 4, 2, 30.0))
            .collect();
        let shifted: Vec<SimJob> = (0..6)
            .map(|i| fs_job(i, 2000.0 + i as f64 * 5.0, 4, 2, 30.0))
            .collect();
        let a = run_experiment(&cfg(), &base);
        let b = run_experiment(&cfg(), &shifted);
        // Equal up to f64 cancellation in `last_end - first_submit` (the
        // offset run subtracts two ~2000 s instants).
        assert!(
            (a.summary.makespan_s - b.summary.makespan_s).abs() < 1e-6,
            "makespan deflated by the offset: {} vs {}",
            a.summary.makespan_s,
            b.summary.makespan_s
        );
        assert!((a.summary.utilization - b.summary.utilization).abs() < 1e-6);
        assert_eq!(a.summary.avg_waiting_s, b.summary.avg_waiting_s);
    }

    #[test]
    fn online_telemetry_is_bit_identical_and_buffer_free() {
        use dmr_workload::WorkloadKind;
        for base in [cfg(), cfg().asynchronous()] {
            let mut src = WorkloadKind::burst().build(40, 11);
            let full = run_experiment_streaming(&base, src.as_mut());
            let mut src = WorkloadKind::burst().build(40, 11);
            let online = run_experiment_streaming(&base.online(), src.as_mut());
            assert_eq!(full.summary.makespan_s, online.summary.makespan_s);
            assert_eq!(full.summary.utilization, online.summary.utilization);
            assert_eq!(full.summary.avg_waiting_s, online.summary.avg_waiting_s);
            assert_eq!(full.summary.completion_q, online.summary.completion_q);
            assert_eq!(full.events, online.events);
            assert_eq!(full.end_time, online.end_time);
            // The streaming path buffers nothing.
            assert!(online.outcomes.is_empty());
            assert!(online.allocation.is_empty());
        }
    }

    #[test]
    fn streaming_source_is_result_identical_to_materialized_path() {
        use dmr_workload::{Feitelson, WorkloadConfig, WorkloadGenerator};
        let wcfg = WorkloadConfig::fs_preliminary(30);
        let specs = WorkloadGenerator::new(wcfg.clone(), 9).generate();
        let materialized = run_experiment(&cfg(), &SimJob::from_specs(specs));
        let mut src = Feitelson::new(wcfg, 9);
        let streamed = run_experiment_streaming(&cfg(), &mut src);
        assert_eq!(materialized.summary.makespan_s, streamed.summary.makespan_s);
        assert_eq!(
            materialized.summary.avg_waiting_s,
            streamed.summary.avg_waiting_s
        );
        assert_eq!(
            materialized.summary.reconfigurations,
            streamed.summary.reconfigurations
        );
        assert_eq!(materialized.events, streamed.events);
        assert_eq!(materialized.outcomes.len(), streamed.outcomes.len());
        for (a, b) in materialized.outcomes.iter().zip(&streamed.outcomes) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
        }
    }

    #[test]
    fn adversarial_sources_run_to_completion() {
        use dmr_workload::WorkloadKind;
        for kind in [WorkloadKind::burst(), WorkloadKind::diurnal()] {
            let mut src = kind.build(20, 5);
            let r = run_experiment_streaming(&cfg(), src.as_mut());
            assert_eq!(r.summary.jobs, 20, "{kind:?}");
            assert_eq!(r.past_schedules, 0, "{kind:?}");
        }
    }

    #[test]
    fn scripted_node_failure_requeues_and_completes() {
        use dmr_cluster::FaultTrace;
        // One rigid 4-node job, 2 steps of 30 s. Failing one of its nodes
        // at t = 25 s kills the incarnation; the requeued job restarts
        // from scratch and still completes.
        let mut job = fs_job(0, 0.0, 4, 2, 30.0);
        job.spec.flexible = false;
        let trace = FaultTrace::parse("25 fail 0\n200 repair 0\n").unwrap();
        let clean = run_experiment(&cfg().as_fixed(), &[job.clone()]);
        let faulty = run_experiment_with_faults(&cfg().as_fixed(), &[job], trace);
        assert_eq!(faulty.summary.jobs, 1, "the requeued job completes");
        assert_eq!(faulty.summary.failures, 1);
        assert_eq!(faulty.summary.requeues, 1);
        // 25 s of scratch-restart work destroyed.
        assert!((faulty.summary.lost_work_s - 25.0).abs() < 1e-6);
        assert!(faulty.summary.goodput_ratio < 1.0);
        // The cluster had spare capacity and the requeue is boosted, so
        // the restart is immediate — zero failure-to-restart latency.
        assert_eq!(faulty.summary.restart_p95_s, 0.0);
        assert!(
            faulty.summary.makespan_s > clean.summary.makespan_s,
            "the failure must cost wall-clock time: {} vs {}",
            faulty.summary.makespan_s,
            clean.summary.makespan_s
        );
        // Outcome accounting spans incarnations: waiting is measured from
        // the original submission.
        assert!(faulty.outcomes[0].waiting_s() >= 25.0);
    }

    #[test]
    fn checkpoint_interval_bounds_lost_work() {
        use dmr_cluster::FaultTrace;
        // 12 steps of 10 s; the failure lands at t = 115 s. From scratch
        // the whole 115 s is lost; with a 30 s checkpoint interval the
        // last image is at most ~40 s old.
        let mut job = fs_job(0, 0.0, 4, 12, 10.0);
        job.spec.flexible = false;
        let trace = || FaultTrace::parse("115 fail 1\n400 repair 1\n").unwrap();
        let base = cfg().as_fixed();
        let scratch = run_experiment_with_faults(&base, &[job.clone()], trace());
        let ckpt = run_experiment_with_faults(&base.with_ckpt_interval(30.0), &[job], trace());
        assert!((scratch.summary.lost_work_s - 115.0).abs() < 1e-6);
        assert!(
            ckpt.summary.lost_work_s < 50.0,
            "periodic images bound lost work: {}",
            ckpt.summary.lost_work_s
        );
        assert!(ckpt.summary.goodput_ratio > scratch.summary.goodput_ratio);
        assert!(
            ckpt.summary.makespan_s < scratch.summary.makespan_s,
            "resuming from the image finishes earlier: {} vs {}",
            ckpt.summary.makespan_s,
            scratch.summary.makespan_s
        );
    }

    #[test]
    fn zero_fault_knobs_are_inert() {
        use dmr_cluster::FaultLoad;
        // Under FaultLoad::None the seed and checkpoint interval must not
        // perturb a run in any way — the fault machinery does zero work.
        let jobs: Vec<SimJob> = (0..10)
            .map(|i| fs_job(i, i as f64 * 5.0, 2 + i % 5, 4, 15.0))
            .collect();
        let a = run_experiment(&cfg(), &jobs);
        let b = run_experiment(&cfg().with_fault_seed(0xDEAD_BEEF), &jobs);
        let c = run_experiment(&cfg().with_ckpt_interval(60.0), &jobs);
        // The rigid path is the one the interval knob could perturb (it
        // cuts monolithic segments at image boundaries when armed): the
        // cut must not happen — `events` included — with no fault source.
        let fa = run_experiment(&cfg().as_fixed(), &jobs);
        let fc = run_experiment(&cfg().as_fixed().with_ckpt_interval(60.0), &jobs);
        assert_eq!(fa.events, fc.events);
        assert_eq!(fa.end_time, fc.end_time);
        assert_eq!(fa.summary.makespan_s, fc.summary.makespan_s);
        for r in [&b, &c] {
            assert_eq!(a.summary.makespan_s, r.summary.makespan_s);
            assert_eq!(a.summary.avg_waiting_s, r.summary.avg_waiting_s);
            assert_eq!(a.summary.reconfigurations, r.summary.reconfigurations);
            assert_eq!(a.events, r.events);
            assert_eq!(a.end_time, r.end_time);
        }
        assert_eq!(a.summary.failures, 0);
        assert_eq!(a.summary.requeues, 0);
        assert_eq!(a.summary.goodput_ratio, 1.0);
        assert_eq!(a.summary.lost_work_s, 0.0);
        let _ = FaultLoad::None;
    }

    #[test]
    fn harsh_faultload_is_deterministic_and_completes() {
        use dmr_cluster::FaultLoad;
        let jobs: Vec<SimJob> = (0..20)
            .map(|i| fs_job(i, i as f64 * 40.0, 2 + i % 6, 20, 30.0))
            .collect();
        let fcfg = cfg().with_faults(FaultLoad::Harsh);
        let a = run_experiment(&fcfg, &jobs);
        let b = run_experiment(&fcfg, &jobs);
        assert_eq!(a.summary.jobs, 20, "every job survives recovery");
        assert_eq!(a.summary.makespan_s, b.summary.makespan_s);
        assert_eq!(a.summary.failures, b.summary.failures);
        assert_eq!(a.summary.requeues, b.summary.requeues);
        assert_eq!(a.summary.lost_work_s, b.summary.lost_work_s);
        assert_eq!(a.events, b.events);
        assert!(a.summary.failures > 0, "harsh load injects failures");
        // A different seed moves the failures.
        let c = run_experiment(&fcfg.with_fault_seed(99), &jobs);
        assert_eq!(c.summary.jobs, 20);
    }

    #[test]
    fn estimates_do_not_break_backfill() {
        // Mixed sizes under heavy load: just assert global sanity — all
        // complete, waits non-negative, makespan finite.
        let jobs: Vec<SimJob> = (0..30)
            .map(|i| fs_job(i, i as f64 * 2.0, 1 + (i * 7) % 16, 3, 25.0))
            .collect();
        let r = run_experiment(&cfg(), &jobs);
        assert_eq!(r.summary.jobs, 30);
        assert!(r.outcomes.iter().all(|o| o.waiting_s() >= 0.0));
        assert!(r.summary.utilization > 0.0 && r.summary.utilization <= 1.0);
    }
}
