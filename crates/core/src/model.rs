//! Application scalability models.
//!
//! The workload simulations need one thing from an application: *how long
//! one iteration takes at `p` processes*. The paper characterises its four
//! applications in §VII-B and §IX-A; we encode those behaviours as speedup
//! curves and derive step times by work conservation:
//!
//! `T_step(p) = T_step(p0) * S(p0) / S(p)`
//!
//! where `p0` is the submitted size the workload generator calibrated the
//! step time at.

use dmr_sim::Span;
use dmr_workload::{AppClass, JobSpec};

/// Speedup as a function of process count.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SpeedupCurve {
    /// `S(p) = p` — FS's "perfect linear scalability" (§VII-B1).
    Linear,
    /// Amdahl's law, `S(p) = p / (1 + f·(p-1))` — the CG/Jacobi class:
    /// high scalability flattening towards 32 processes (§IX-A), with the
    /// serial fraction calibrated so the preferred-8 vs maximum-32
    /// execution-time ratio lands near Table II's observation.
    Amdahl { serial_fraction: f64 },
    /// Near-constant performance: `S(p) = 1 + gain·log2(min(p,peak))/
    /// log2(peak)` — the N-body class, whose best speedup "does not exceed
    /// 10 % with respect to the sequential run" and peaks at 16 (§IX-A).
    /// Beyond `peak`, speedup degrades (communication dominates).
    LogFlat { gain: f64, peak: u32 },
}

impl SpeedupCurve {
    /// Speedup at `p` processes; `S(1) = 1` for every curve.
    pub fn speedup(&self, p: u32) -> f64 {
        let p = p.max(1);
        match *self {
            SpeedupCurve::Linear => p as f64,
            SpeedupCurve::Amdahl { serial_fraction } => {
                let pf = p as f64;
                pf / (1.0 + serial_fraction * (pf - 1.0))
            }
            SpeedupCurve::LogFlat { gain, peak } => {
                let peak = peak.max(2);
                let eff = p.min(peak) as f64;
                let base = 1.0 + gain * eff.log2() / (peak as f64).log2();
                if p > peak {
                    // Past the peak, extra ranks only add communication.
                    base * (peak as f64 / p as f64).powf(0.1)
                } else {
                    base
                }
            }
        }
    }
}

/// The calibrated curve for each paper application.
pub fn curve_for(app: AppClass) -> SpeedupCurve {
    match app {
        AppClass::Fs => SpeedupCurve::Linear,
        // S(32)/S(8) ≈ 1.58 → mixed-workload execution-time growth close
        // to Table II's ~45 %.
        AppClass::Cg => SpeedupCurve::Amdahl {
            serial_fraction: 0.115,
        },
        AppClass::Jacobi => SpeedupCurve::Amdahl {
            serial_fraction: 0.105,
        },
        AppClass::Nbody => SpeedupCurve::LogFlat {
            gain: 0.10,
            peak: 16,
        },
    }
}

/// A generated job together with its scalability model — the unit the
/// simulation driver consumes.
///
/// Jobs reach the driver either pre-materialized (`&[SimJob]`, the
/// convenience path) or streamed one at a time from a
/// [`dmr_workload::source::WorkloadSource`]; in the streaming case the
/// driver binds each pulled [`JobSpec`] to its class curve via
/// [`SimJob::from_spec`] on arrival.
#[derive(Clone, Debug)]
pub struct SimJob {
    pub spec: JobSpec,
    pub curve: SpeedupCurve,
}

impl SimJob {
    /// Binds the default curve for the job's application class.
    pub fn from_spec(spec: JobSpec) -> Self {
        let curve = curve_for(spec.app);
        SimJob { spec, curve }
    }

    /// Converts a whole workload.
    pub fn from_specs(specs: Vec<JobSpec>) -> Vec<SimJob> {
        specs.into_iter().map(SimJob::from_spec).collect()
    }

    /// Duration of one step at `p` processes (work conservation from the
    /// submitted size).
    pub fn step_time(&self, p: u32) -> Span {
        let s0 = self.curve.speedup(self.spec.submit_procs);
        let sp = self.curve.speedup(p);
        Span::from_secs_f64(self.spec.step_s * s0 / sp)
    }

    /// Remaining runtime estimate at `p` processes with `done` steps
    /// finished.
    pub fn remaining_time(&self, p: u32, done: u32) -> Span {
        let rem = self.spec.steps.saturating_sub(done);
        self.step_time(p).mul_f64(rem as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmr_workload::MalleabilitySpec;

    fn fs_spec(procs: u32, steps: u32, step_s: f64) -> JobSpec {
        JobSpec {
            index: 0,
            arrival_s: 0.0,
            submit_procs: procs,
            steps,
            step_s,
            walltime_s: steps as f64 * step_s * 2.5,
            data_bytes: 1 << 30,
            app: AppClass::Fs,
            flexible: true,
            gpu: false,
            malleability: MalleabilitySpec::rigid(procs),
        }
    }

    #[test]
    fn linear_speedup_is_p() {
        let c = SpeedupCurve::Linear;
        assert_eq!(c.speedup(1), 1.0);
        assert_eq!(c.speedup(8), 8.0);
        assert_eq!(c.speedup(0), 1.0, "p=0 clamps to 1");
    }

    #[test]
    fn amdahl_saturates() {
        let c = curve_for(AppClass::Cg);
        let s8 = c.speedup(8);
        let s16 = c.speedup(16);
        let s32 = c.speedup(32);
        assert!(s8 < s16 && s16 < s32, "monotone up to 32");
        // Calibration target: T(8)/T(32) = S(32)/S(8) ≈ 1.5–1.7.
        let ratio = s32 / s8;
        assert!((1.4..1.8).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn nbody_is_nearly_flat_with_peak_at_16() {
        let c = curve_for(AppClass::Nbody);
        let s16 = c.speedup(16);
        assert!(s16 <= 1.11, "gain must not exceed ~10 %: {s16}");
        assert!(c.speedup(1) == 1.0);
        assert!(c.speedup(8) < s16);
        assert!(c.speedup(32) < s16, "degrades past the peak");
    }

    #[test]
    fn step_time_scales_by_work_conservation() {
        let job = SimJob {
            spec: fs_spec(4, 2, 60.0),
            curve: SpeedupCurve::Linear,
        };
        // Linear: doubling procs halves the step.
        assert_eq!(job.step_time(4), Span::from_secs(60));
        assert_eq!(job.step_time(8), Span::from_secs(30));
        assert_eq!(job.step_time(2), Span::from_secs(120));
    }

    #[test]
    fn remaining_time_counts_steps_left() {
        let job = SimJob {
            spec: fs_spec(4, 10, 6.0),
            curve: SpeedupCurve::Linear,
        };
        assert_eq!(job.remaining_time(4, 0), Span::from_secs(60));
        assert_eq!(job.remaining_time(4, 7), Span::from_secs(18));
        assert_eq!(job.remaining_time(4, 10), Span::ZERO);
        assert_eq!(job.remaining_time(4, 99), Span::ZERO);
    }

    #[test]
    fn from_spec_picks_class_curve() {
        let mut spec = fs_spec(4, 2, 60.0);
        spec.app = AppClass::Nbody;
        let job = SimJob::from_spec(spec);
        assert!(matches!(job.curve, SpeedupCurve::LogFlat { .. }));
    }

    #[test]
    fn total_work_preserved_across_resize_for_linear() {
        let job = SimJob {
            spec: fs_spec(8, 4, 10.0),
            curve: SpeedupCurve::Linear,
        };
        // node-seconds at 8 procs vs at 16 procs must match.
        let w8 = job.step_time(8).as_secs_f64() * 8.0;
        let w16 = job.step_time(16).as_secs_f64() * 16.0;
        assert!((w8 - w16).abs() < 1e-9);
    }
}
