//! Experiment configuration.

use dmr_cluster::NetworkModel;
use dmr_slurm::{BackfillFamily, PolicyKind, SchedIncremental, SchedIndex};

/// When a DMR decision is applied (§V-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleMode {
    /// `dmr_check_status`: decide and apply at the same reconfiguring
    /// point. The application pays the runtime↔RMS communication cost at
    /// every non-inhibited check.
    Synchronous,
    /// `dmr_icheck_status`: the decision made at step *k* is applied at
    /// step *k+1*, hiding the communication cost behind computation — at
    /// the risk of enforcing outdated actions (§VIII-C).
    Asynchronous,
}

/// How much telemetry a run records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Telemetry {
    /// Buffered recording: full evolution [`dmr_metrics::StepSeries`] and
    /// the complete per-job outcome list. Memory grows with the workload;
    /// required by the figure pipeline and per-job assertions.
    Full,
    /// Streaming recording through a [`dmr_metrics::OnlineAccumulator`]:
    /// O(1) memory in both event and job count, summaries (including the
    /// P50/P95/P99 columns) bit-identical to `Full`. The evolution series
    /// and outcome list of the result come back empty. The default for
    /// sweeps and long-trace replays.
    Online,
}

/// What the backfill scheduler believes about job runtimes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EstimateMode {
    /// Plan with the user-requested walltime (what Slurm actually has;
    /// conservative, leaves holes — the realistic default).
    Walltime,
    /// Plan with near-exact runtimes (oracle; ablation knob showing how
    /// much of the malleability gain evaporates under perfect backfill).
    Actual,
}

/// All knobs of one workload experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Compute nodes (20 in §VIII, 65 in §IX).
    pub nodes: u32,
    /// Cores per node (16 on MareNostrum; informational).
    pub cores_per_node: u32,
    /// Synchronous or asynchronous action selection.
    pub mode: ScheduleMode,
    /// Master switch: `false` runs every job rigid (the "fixed" bars).
    pub malleability: bool,
    /// Override of the per-job checking-inhibitor period in seconds.
    /// `None` keeps each job's own (Table I) period; `Some(None)` disables
    /// inhibition; `Some(Some(p))` forces period `p` (the Figure 9 sweep).
    pub inhibitor_override: Option<Option<f64>>,
    /// Cost of one synchronous DMR check (runtime↔RMS round trip plus
    /// scheduling), seconds. This is the overhead the checking inhibitor
    /// exists to amortise (§V-A, §VIII-E).
    pub check_overhead_s: f64,
    /// Interconnect model for spawn/redistribution charges.
    pub network: NetworkModel,
    /// EASY backfill on/off (ablation; the paper always runs with it).
    pub backfill: bool,
    /// Which backfill family the scheduler runs when `backfill` is on:
    /// EASY-k over the slot-set timeline (`k = 1` is the paper's Slurm
    /// configuration and the default), conservative (every blocked job
    /// planned), or the legacy single-reservation walk kept as the
    /// equivalence oracle (see [`BackfillFamily`]).
    pub backfill_family: BackfillFamily,
    /// Period of the backfill pass, seconds (Slurm's `bf_interval`,
    /// default 30). The event-driven pass is FIFO-only, as in Slurm.
    pub backfill_interval_s: f64,
    /// Padding applied to runtime estimates handed to the backfill
    /// scheduler (users over-request walltime).
    pub estimate_padding: f64,
    /// Source of the backfill scheduler's runtime estimates.
    pub estimate_mode: EstimateMode,
    /// Algorithm-1 line 18: boost the shrink beneficiary's priority
    /// (ablation knob; the paper always boosts).
    pub shrink_boost: bool,
    /// How long the runtime waits for a queued resizer job before aborting
    /// an expansion (§V-B1).
    pub resizer_timeout_s: f64,
    /// Which reconfiguration decision procedure the scheduler installs
    /// (the §IV plug-in: Algorithm 1 or an alternative).
    pub policy: PolicyKind,
    /// Buffered ([`Telemetry::Full`]) or streaming bounded-memory
    /// ([`Telemetry::Online`]) metric recording.
    pub telemetry: Telemetry,
    /// Scheduler hot-path implementation: the arena path (the default),
    /// the previous indexed path (benchmark baseline) or the pre-index
    /// scan reference kept as the equivalence oracle (see
    /// [`SchedIndex`]). Also selects the event-queue backend: the arena
    /// path runs on the timer wheel, the others on the reference binary
    /// heap — backends are observationally identical, so the three-way
    /// equivalence suite covers both.
    pub sched_index: SchedIndex,
    /// Incremental scheduling across passes: `On` (the default) keeps
    /// fruitless-pass memos, the persistent pending order and the retained
    /// backfill plans alive between instants and elides passes whose
    /// trigger provably cannot change any decision; `Off` re-derives every
    /// pass from scratch and serves as the costed baseline (see
    /// [`SchedIncremental`]). Decisions are bit-identical either way.
    pub sched_incremental: SchedIncremental,
}

impl ExperimentConfig {
    /// §VIII testbed: 20 nodes, synchronous, malleable.
    pub fn preliminary() -> Self {
        ExperimentConfig {
            nodes: 20,
            cores_per_node: 16,
            mode: ScheduleMode::Synchronous,
            malleability: true,
            inhibitor_override: None,
            check_overhead_s: 0.3,
            network: NetworkModel::fdr10(),
            backfill: true,
            backfill_family: BackfillFamily::default(),
            backfill_interval_s: 30.0,
            estimate_padding: 1.2,
            estimate_mode: EstimateMode::Walltime,
            shrink_boost: true,
            resizer_timeout_s: 30.0,
            policy: PolicyKind::Algorithm1,
            telemetry: Telemetry::Full,
            sched_index: SchedIndex::Arena,
            sched_incremental: SchedIncremental::On,
        }
    }

    /// §IX testbed: the full 65-node machine.
    pub fn production() -> Self {
        ExperimentConfig {
            nodes: 65,
            ..ExperimentConfig::preliminary()
        }
    }

    /// The rigid-workload counterpart of this configuration.
    pub fn as_fixed(mut self) -> Self {
        self.malleability = false;
        self
    }

    /// Resizes the simulated machine (trace replays and scenario grids
    /// pick cluster sizes that match their workload source, not the
    /// paper's testbeds).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Switches to asynchronous action selection.
    pub fn asynchronous(mut self) -> Self {
        self.mode = ScheduleMode::Asynchronous;
        self
    }

    /// Forces the checking-inhibitor period (Figure 9 sweep). Pass `None`
    /// to disable inhibition for all jobs.
    pub fn with_inhibitor(mut self, period_s: Option<f64>) -> Self {
        self.inhibitor_override = Some(period_s);
        self
    }

    /// Selects the reconfiguration policy the scheduler installs.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Switches to streaming bounded-memory telemetry
    /// ([`Telemetry::Online`]): summaries stay bit-identical, the
    /// evolution series and per-job outcome list come back empty, and
    /// memory stays O(1) in job count.
    pub fn online(mut self) -> Self {
        self.telemetry = Telemetry::Online;
        self
    }

    /// Selects the backfill family the scheduler runs (EASY-k depth,
    /// conservative planning, or the legacy oracle). Only consulted while
    /// `backfill` is on.
    pub fn with_backfill_family(mut self, family: BackfillFamily) -> Self {
        self.backfill_family = family;
        self
    }

    /// Switches backfill to the conservative family: every blocked job
    /// gets a planned slot and backfill may not delay any plan.
    pub fn conservative_backfill(mut self) -> Self {
        self.backfill_family = BackfillFamily::Conservative;
        self
    }

    /// Runs backfill on the legacy single-reservation walk
    /// ([`BackfillFamily::LegacyReference`]) — the pre-slot-set oracle the
    /// Easy{1} path is pinned against, mirroring [`Self::scan_reference`].
    pub fn legacy_backfill_reference(mut self) -> Self {
        self.backfill_family = BackfillFamily::LegacyReference;
        self
    }

    /// Disables incremental scheduling ([`SchedIncremental::Off`]): every
    /// pass re-derives its decisions from scratch. This is the costed
    /// baseline the incremental path is benchmarked and equivalence-tested
    /// against; results are bit-identical to the default.
    pub fn incremental_off(mut self) -> Self {
        self.sched_incremental = SchedIncremental::Off;
        self
    }

    /// Runs the scheduler on the pre-index scan reference
    /// ([`SchedIndex::ScanReference`]). Scheduling decisions are
    /// bit-identical to the default indexed path — this exists so
    /// equivalence tests and benchmarks can hold the old hot path up as
    /// an oracle / baseline.
    pub fn scan_reference(mut self) -> Self {
        self.sched_index = SchedIndex::ScanReference;
        self
    }

    /// Runs the scheduler on the previous indexed hot path
    /// ([`SchedIndex::Indexed`]) — the PR-5 baseline the arena path is
    /// benchmarked against. Scheduling decisions are bit-identical to
    /// both the arena default and the scan reference.
    pub fn indexed_reference(mut self) -> Self {
        self.sched_index = SchedIndex::Indexed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_testbeds() {
        assert_eq!(ExperimentConfig::preliminary().nodes, 20);
        assert_eq!(ExperimentConfig::production().nodes, 65);
        assert_eq!(
            ExperimentConfig::preliminary().mode,
            ScheduleMode::Synchronous
        );
        assert!(ExperimentConfig::preliminary().malleability);
    }

    #[test]
    fn builders_flip_the_right_switches() {
        let c = ExperimentConfig::preliminary().as_fixed();
        assert!(!c.malleability);
        let c = ExperimentConfig::preliminary().with_nodes(128);
        assert_eq!(c.nodes, 128);
        let c = ExperimentConfig::preliminary().asynchronous();
        assert_eq!(c.mode, ScheduleMode::Asynchronous);
        let c = ExperimentConfig::preliminary().with_inhibitor(Some(5.0));
        assert_eq!(c.inhibitor_override, Some(Some(5.0)));
        let c = ExperimentConfig::preliminary().with_inhibitor(None);
        assert_eq!(c.inhibitor_override, Some(None));
        let c = ExperimentConfig::preliminary().with_policy(PolicyKind::fair_share());
        assert_eq!(c.policy, PolicyKind::fair_share());
        assert_eq!(
            ExperimentConfig::preliminary().telemetry,
            Telemetry::Full,
            "buffered telemetry is the compatibility default"
        );
        let c = ExperimentConfig::preliminary().online();
        assert_eq!(c.telemetry, Telemetry::Online);
        assert_eq!(
            ExperimentConfig::preliminary().backfill_family,
            BackfillFamily::easy(1),
            "EASY-1 is the paper's Slurm configuration"
        );
        let c = ExperimentConfig::preliminary().with_backfill_family(BackfillFamily::easy(8));
        assert_eq!(c.backfill_family, BackfillFamily::easy(8));
        let c = ExperimentConfig::preliminary().conservative_backfill();
        assert_eq!(c.backfill_family, BackfillFamily::Conservative);
        let c = ExperimentConfig::preliminary().legacy_backfill_reference();
        assert_eq!(c.backfill_family, BackfillFamily::LegacyReference);
        assert_eq!(
            ExperimentConfig::preliminary().sched_incremental,
            SchedIncremental::On,
            "incremental scheduling is the default; Off is the costed baseline"
        );
        let c = ExperimentConfig::preliminary().incremental_off();
        assert_eq!(c.sched_incremental, SchedIncremental::Off);
    }

    #[test]
    fn default_policy_is_algorithm1() {
        assert_eq!(
            ExperimentConfig::preliminary().policy,
            PolicyKind::Algorithm1
        );
        assert_eq!(
            ExperimentConfig::production().policy,
            PolicyKind::Algorithm1
        );
    }
}
