//! Experiment configuration.

use dmr_cluster::{ClassTable, FaultLoad, MachineClass, NetworkModel};
use dmr_slurm::{BackfillFamily, PolicyKind, SchedIncremental, SchedIndex};

/// Machine-class layout of the simulated cluster — a `Copy` selector in
/// the mould of [`PolicyKind`], expanded into a [`ClassTable`] when the
/// driver builds the cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MachineMix {
    /// The paper's uniform machine, built through the legacy
    /// [`ClassTable::uniform`] path. The compatibility default.
    #[default]
    Uniform,
    /// One explicit standard class built through the general
    /// [`ClassTable::new`] path — semantically identical to
    /// [`MachineMix::Uniform`], kept as the bit-equivalence oracle twin
    /// proving the heterogeneous plumbing is inert on one class.
    SingleClass,
    /// Three classes in efficient-first node order: standard (the bulk,
    /// lowest ids — lowest-id-first allocation packs work onto the
    /// cheapest watts), big-memory (one quarter, 5/4 slower, higher base
    /// draw), and GPU (one eighth, 3/4 faster, highest draw,
    /// `GpuRequired`-routable).
    Hetero3,
}

impl MachineMix {
    /// Stable name (scenario ids, sweep CSV `machine_mix` column).
    pub fn name(self) -> &'static str {
        match self {
            MachineMix::Uniform => "uniform",
            MachineMix::SingleClass => "single-class",
            MachineMix::Hetero3 => "hetero3",
        }
    }

    /// The big-memory class of [`MachineMix::Hetero3`]: 64 GiB, 5/4
    /// execution-time multiplier, 200 W machine base.
    pub fn bigmem_class(cores: u32) -> MachineClass {
        MachineClass {
            name: "bigmem",
            memory_gb: 64,
            slow_num: 5,
            slow_den: 4,
            s_states_w: [200, 160, 160, 120, 60, 12, 0],
            ..MachineClass::standard(cores)
        }
    }

    /// The GPU class of [`MachineMix::Hetero3`]: 32 GiB, 3/4
    /// execution-time multiplier (accelerated), 300 W machine base.
    pub fn gpu_class(cores: u32) -> MachineClass {
        MachineClass {
            name: "gpu",
            memory_gb: 32,
            gpu: true,
            slow_num: 3,
            slow_den: 4,
            s_states_w: [300, 220, 220, 160, 80, 15, 0],
            ..MachineClass::standard(cores)
        }
    }

    /// Expands the mix into the class table of a `nodes`-node machine
    /// with `cores` cores per (standard) node.
    ///
    /// # Panics
    /// If `nodes` is too small to give every class of the mix at least
    /// one node (Hetero3 needs ≥ 3).
    pub fn table(self, nodes: u32, cores: u32) -> ClassTable {
        match self {
            MachineMix::Uniform => ClassTable::uniform(nodes, cores),
            MachineMix::SingleClass => ClassTable::new(&[(MachineClass::standard(cores), nodes)]),
            MachineMix::Hetero3 => {
                let gpu = (nodes / 8).max(1);
                let big = (nodes / 4).max(1);
                assert!(
                    nodes > gpu + big,
                    "Hetero3 needs at least 3 nodes, got {nodes}"
                );
                ClassTable::new(&[
                    (MachineClass::standard(cores), nodes - big - gpu),
                    (MachineMix::bigmem_class(cores), big),
                    (MachineMix::gpu_class(cores), gpu),
                ])
            }
        }
    }
}

/// When a DMR decision is applied (§V-A).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScheduleMode {
    /// `dmr_check_status`: decide and apply at the same reconfiguring
    /// point. The application pays the runtime↔RMS communication cost at
    /// every non-inhibited check.
    Synchronous,
    /// `dmr_icheck_status`: the decision made at step *k* is applied at
    /// step *k+1*, hiding the communication cost behind computation — at
    /// the risk of enforcing outdated actions (§VIII-C).
    Asynchronous,
}

/// How much telemetry a run records.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Telemetry {
    /// Buffered recording: full evolution [`dmr_metrics::StepSeries`] and
    /// the complete per-job outcome list. Memory grows with the workload;
    /// required by the figure pipeline and per-job assertions.
    Full,
    /// Streaming recording through a [`dmr_metrics::OnlineAccumulator`]:
    /// O(1) memory in both event and job count, summaries (including the
    /// P50/P95/P99 columns) bit-identical to `Full`. The evolution series
    /// and outcome list of the result come back empty. The default for
    /// sweeps and long-trace replays.
    Online,
}

/// What the backfill scheduler believes about job runtimes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EstimateMode {
    /// Plan with the user-requested walltime (what Slurm actually has;
    /// conservative, leaves holes — the realistic default).
    Walltime,
    /// Plan with near-exact runtimes (oracle; ablation knob showing how
    /// much of the malleability gain evaporates under perfect backfill).
    Actual,
}

/// All knobs of one workload experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExperimentConfig {
    /// Compute nodes (20 in §VIII, 65 in §IX).
    pub nodes: u32,
    /// Cores per node (16 on MareNostrum; informational).
    pub cores_per_node: u32,
    /// Synchronous or asynchronous action selection.
    pub mode: ScheduleMode,
    /// Master switch: `false` runs every job rigid (the "fixed" bars).
    pub malleability: bool,
    /// Override of the per-job checking-inhibitor period in seconds.
    /// `None` keeps each job's own (Table I) period; `Some(None)` disables
    /// inhibition; `Some(Some(p))` forces period `p` (the Figure 9 sweep).
    pub inhibitor_override: Option<Option<f64>>,
    /// Cost of one synchronous DMR check (runtime↔RMS round trip plus
    /// scheduling), seconds. This is the overhead the checking inhibitor
    /// exists to amortise (§V-A, §VIII-E).
    pub check_overhead_s: f64,
    /// Interconnect model for spawn/redistribution charges.
    pub network: NetworkModel,
    /// EASY backfill on/off (ablation; the paper always runs with it).
    pub backfill: bool,
    /// Which backfill family the scheduler runs when `backfill` is on:
    /// EASY-k over the slot-set timeline (`k = 1` is the paper's Slurm
    /// configuration and the default), conservative (every blocked job
    /// planned), or the legacy single-reservation walk kept as the
    /// equivalence oracle (see [`BackfillFamily`]).
    pub backfill_family: BackfillFamily,
    /// Period of the backfill pass, seconds (Slurm's `bf_interval`,
    /// default 30). The event-driven pass is FIFO-only, as in Slurm.
    pub backfill_interval_s: f64,
    /// Padding applied to runtime estimates handed to the backfill
    /// scheduler (users over-request walltime).
    pub estimate_padding: f64,
    /// Source of the backfill scheduler's runtime estimates.
    pub estimate_mode: EstimateMode,
    /// Algorithm-1 line 18: boost the shrink beneficiary's priority
    /// (ablation knob; the paper always boosts).
    pub shrink_boost: bool,
    /// How long the runtime waits for a queued resizer job before aborting
    /// an expansion (§V-B1).
    pub resizer_timeout_s: f64,
    /// Which reconfiguration decision procedure the scheduler installs
    /// (the §IV plug-in: Algorithm 1 or an alternative).
    pub policy: PolicyKind,
    /// Buffered ([`Telemetry::Full`]) or streaming bounded-memory
    /// ([`Telemetry::Online`]) metric recording.
    pub telemetry: Telemetry,
    /// Scheduler hot-path implementation: the arena path (the default),
    /// the previous indexed path (benchmark baseline) or the pre-index
    /// scan reference kept as the equivalence oracle (see
    /// [`SchedIndex`]). Also selects the event-queue backend: the arena
    /// path runs on the timer wheel, the others on the reference binary
    /// heap — backends are observationally identical, so the three-way
    /// equivalence suite covers both.
    pub sched_index: SchedIndex,
    /// Machine-class layout of the simulated cluster. The default
    /// [`MachineMix::Uniform`] reproduces the paper's homogeneous testbed
    /// bit-for-bit; [`MachineMix::Hetero3`] adds big-memory and GPU
    /// classes with distinct speed factors and power ladders.
    pub machine_mix: MachineMix,
    /// Whether resize policies consult the backfill timeline before
    /// expanding a job, refusing grows that would steal a planned
    /// backfill hole from the first blocked job (default on; `false`
    /// restores the timeline-blind behaviour and is equivalence-tested).
    /// [`PolicyKind::Algorithm1`] never consults the guard either way.
    pub hole_guard: bool,
    /// Wake-up latency of a powered-down (S5) node, seconds: demand that
    /// arrives while nodes are suspended waits this long before the
    /// capacity returns. Only consulted when the policy powers nodes
    /// down (see [`dmr_slurm::EnergyAware`]).
    pub wake_latency_s: f64,
    /// Injected faultload preset ([`FaultLoad::None`] — the default — is
    /// the zero-fault oracle, bit-identical to pre-fault-injection
    /// behaviour; `Rare`/`Harsh` run seeded per-class MTBF/MTTR
    /// processes). Scripted [`dmr_cluster::FaultTrace`]s are injected
    /// through `run_experiment_with_faults`, not the config (the config
    /// stays `Copy`).
    pub faults: FaultLoad,
    /// Seed of the fault process (independent of workload seeds so the
    /// same faultload can be replayed over different workloads).
    pub fault_seed: u64,
    /// Checkpoint interval for failure recovery, seconds. `None` restarts
    /// a killed job from scratch; `Some(p)` models periodic images every
    /// `p` seconds of execution — a requeued job loses only the work
    /// since its last image.
    pub ckpt_interval_s: Option<f64>,
    /// Incremental scheduling across passes: `On` (the default) keeps
    /// fruitless-pass memos, the persistent pending order and the retained
    /// backfill plans alive between instants and elides passes whose
    /// trigger provably cannot change any decision; `Off` re-derives every
    /// pass from scratch and serves as the costed baseline (see
    /// [`SchedIncremental`]). Decisions are bit-identical either way.
    pub sched_incremental: SchedIncremental,
}

impl ExperimentConfig {
    /// §VIII testbed: 20 nodes, synchronous, malleable.
    pub fn preliminary() -> Self {
        ExperimentConfig {
            nodes: 20,
            cores_per_node: 16,
            mode: ScheduleMode::Synchronous,
            malleability: true,
            inhibitor_override: None,
            check_overhead_s: 0.3,
            network: NetworkModel::fdr10(),
            backfill: true,
            backfill_family: BackfillFamily::default(),
            backfill_interval_s: 30.0,
            estimate_padding: 1.2,
            estimate_mode: EstimateMode::Walltime,
            shrink_boost: true,
            resizer_timeout_s: 30.0,
            policy: PolicyKind::Algorithm1,
            telemetry: Telemetry::Full,
            machine_mix: MachineMix::Uniform,
            hole_guard: true,
            wake_latency_s: 30.0,
            sched_index: SchedIndex::Arena,
            faults: FaultLoad::None,
            fault_seed: 0xFA17,
            ckpt_interval_s: None,
            sched_incremental: SchedIncremental::On,
        }
    }

    /// §IX testbed: the full 65-node machine.
    pub fn production() -> Self {
        ExperimentConfig {
            nodes: 65,
            ..ExperimentConfig::preliminary()
        }
    }

    /// The rigid-workload counterpart of this configuration.
    pub fn as_fixed(mut self) -> Self {
        self.malleability = false;
        self
    }

    /// Resizes the simulated machine (trace replays and scenario grids
    /// pick cluster sizes that match their workload source, not the
    /// paper's testbeds).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Switches to asynchronous action selection.
    pub fn asynchronous(mut self) -> Self {
        self.mode = ScheduleMode::Asynchronous;
        self
    }

    /// Forces the checking-inhibitor period (Figure 9 sweep). Pass `None`
    /// to disable inhibition for all jobs.
    pub fn with_inhibitor(mut self, period_s: Option<f64>) -> Self {
        self.inhibitor_override = Some(period_s);
        self
    }

    /// Selects the reconfiguration policy the scheduler installs.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Switches to streaming bounded-memory telemetry
    /// ([`Telemetry::Online`]): summaries stay bit-identical, the
    /// evolution series and per-job outcome list come back empty, and
    /// memory stays O(1) in job count.
    pub fn online(mut self) -> Self {
        self.telemetry = Telemetry::Online;
        self
    }

    /// Selects the backfill family the scheduler runs (EASY-k depth,
    /// conservative planning, or the legacy oracle). Only consulted while
    /// `backfill` is on.
    pub fn with_backfill_family(mut self, family: BackfillFamily) -> Self {
        self.backfill_family = family;
        self
    }

    /// Switches backfill to the conservative family: every blocked job
    /// gets a planned slot and backfill may not delay any plan.
    pub fn conservative_backfill(mut self) -> Self {
        self.backfill_family = BackfillFamily::Conservative;
        self
    }

    /// Runs backfill on the legacy single-reservation walk
    /// ([`BackfillFamily::LegacyReference`]) — the pre-slot-set oracle the
    /// Easy{1} path is pinned against, mirroring [`Self::scan_reference`].
    pub fn legacy_backfill_reference(mut self) -> Self {
        self.backfill_family = BackfillFamily::LegacyReference;
        self
    }

    /// Selects the machine-class layout ([`MachineMix`]). The default is
    /// the uniform paper testbed; `Hetero3` turns on the heterogeneous
    /// classes and their power ladders.
    pub fn with_machine_mix(mut self, mix: MachineMix) -> Self {
        self.machine_mix = mix;
        self
    }

    /// Disables the backfill-hole expansion guard: resize policies stop
    /// consulting the timeline before growing, restoring the
    /// timeline-blind behaviour (equivalence knob; Algorithm 1 is
    /// unaffected either way).
    pub fn hole_guard_off(mut self) -> Self {
        self.hole_guard = false;
        self
    }

    /// Sets the wake-up latency of powered-down nodes, seconds.
    pub fn with_wake_latency(mut self, seconds: f64) -> Self {
        self.wake_latency_s = seconds;
        self
    }

    /// Disables incremental scheduling ([`SchedIncremental::Off`]): every
    /// pass re-derives its decisions from scratch. This is the costed
    /// baseline the incremental path is benchmarked and equivalence-tested
    /// against; results are bit-identical to the default.
    pub fn incremental_off(mut self) -> Self {
        self.sched_incremental = SchedIncremental::Off;
        self
    }

    /// Selects the injected faultload preset (`--faults` on the CLI).
    /// [`FaultLoad::None`] keeps the zero-fault oracle behaviour.
    pub fn with_faults(mut self, faults: FaultLoad) -> Self {
        self.faults = faults;
        self
    }

    /// Seeds the fault process independently of the workload.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// Enables periodic checkpoint images every `seconds` of execution:
    /// a job killed by a node failure requeues and repeats only the work
    /// since its last image instead of restarting from scratch.
    pub fn with_ckpt_interval(mut self, seconds: f64) -> Self {
        self.ckpt_interval_s = Some(seconds);
        self
    }

    /// Runs the scheduler on the pre-index scan reference
    /// ([`SchedIndex::ScanReference`]). Scheduling decisions are
    /// bit-identical to the default indexed path — this exists so
    /// equivalence tests and benchmarks can hold the old hot path up as
    /// an oracle / baseline.
    pub fn scan_reference(mut self) -> Self {
        self.sched_index = SchedIndex::ScanReference;
        self
    }

    /// Runs the scheduler on the previous indexed hot path
    /// ([`SchedIndex::Indexed`]) — the PR-5 baseline the arena path is
    /// benchmarked against. Scheduling decisions are bit-identical to
    /// both the arena default and the scan reference.
    pub fn indexed_reference(mut self) -> Self {
        self.sched_index = SchedIndex::Indexed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_testbeds() {
        assert_eq!(ExperimentConfig::preliminary().nodes, 20);
        assert_eq!(ExperimentConfig::production().nodes, 65);
        assert_eq!(
            ExperimentConfig::preliminary().mode,
            ScheduleMode::Synchronous
        );
        assert!(ExperimentConfig::preliminary().malleability);
    }

    #[test]
    fn builders_flip_the_right_switches() {
        let c = ExperimentConfig::preliminary().as_fixed();
        assert!(!c.malleability);
        let c = ExperimentConfig::preliminary().with_nodes(128);
        assert_eq!(c.nodes, 128);
        let c = ExperimentConfig::preliminary().asynchronous();
        assert_eq!(c.mode, ScheduleMode::Asynchronous);
        let c = ExperimentConfig::preliminary().with_inhibitor(Some(5.0));
        assert_eq!(c.inhibitor_override, Some(Some(5.0)));
        let c = ExperimentConfig::preliminary().with_inhibitor(None);
        assert_eq!(c.inhibitor_override, Some(None));
        let c = ExperimentConfig::preliminary().with_policy(PolicyKind::fair_share());
        assert_eq!(c.policy, PolicyKind::fair_share());
        assert_eq!(
            ExperimentConfig::preliminary().telemetry,
            Telemetry::Full,
            "buffered telemetry is the compatibility default"
        );
        let c = ExperimentConfig::preliminary().online();
        assert_eq!(c.telemetry, Telemetry::Online);
        assert_eq!(
            ExperimentConfig::preliminary().backfill_family,
            BackfillFamily::easy(1),
            "EASY-1 is the paper's Slurm configuration"
        );
        let c = ExperimentConfig::preliminary().with_backfill_family(BackfillFamily::easy(8));
        assert_eq!(c.backfill_family, BackfillFamily::easy(8));
        let c = ExperimentConfig::preliminary().conservative_backfill();
        assert_eq!(c.backfill_family, BackfillFamily::Conservative);
        let c = ExperimentConfig::preliminary().legacy_backfill_reference();
        assert_eq!(c.backfill_family, BackfillFamily::LegacyReference);
        assert_eq!(
            ExperimentConfig::preliminary().sched_incremental,
            SchedIncremental::On,
            "incremental scheduling is the default; Off is the costed baseline"
        );
        let c = ExperimentConfig::preliminary().incremental_off();
        assert_eq!(c.sched_incremental, SchedIncremental::Off);
        assert_eq!(
            ExperimentConfig::preliminary().machine_mix,
            MachineMix::Uniform,
            "the uniform paper testbed is the compatibility default"
        );
        let c = ExperimentConfig::preliminary().with_machine_mix(MachineMix::Hetero3);
        assert_eq!(c.machine_mix, MachineMix::Hetero3);
        assert!(ExperimentConfig::preliminary().hole_guard);
        let c = ExperimentConfig::preliminary().hole_guard_off();
        assert!(!c.hole_guard);
        let c = ExperimentConfig::preliminary().with_wake_latency(5.0);
        assert_eq!(c.wake_latency_s, 5.0);
        assert_eq!(
            ExperimentConfig::preliminary().faults,
            FaultLoad::None,
            "zero-fault is the oracle default"
        );
        assert_eq!(ExperimentConfig::preliminary().ckpt_interval_s, None);
        let c = ExperimentConfig::preliminary().with_faults(FaultLoad::Harsh);
        assert_eq!(c.faults, FaultLoad::Harsh);
        let c = ExperimentConfig::preliminary().with_fault_seed(99);
        assert_eq!(c.fault_seed, 99);
        let c = ExperimentConfig::preliminary().with_ckpt_interval(600.0);
        assert_eq!(c.ckpt_interval_s, Some(600.0));
    }

    #[test]
    fn machine_mix_tables_cover_the_node_count() {
        for mix in [
            MachineMix::Uniform,
            MachineMix::SingleClass,
            MachineMix::Hetero3,
        ] {
            let t = mix.table(64, 16);
            assert_eq!(t.total_nodes(), 64, "{mix:?}");
            t.check().unwrap();
        }
        assert!(MachineMix::Uniform.table(64, 16).is_uniform());
        assert!(MachineMix::SingleClass.table(64, 16).is_uniform());
        let h = MachineMix::Hetero3.table(64, 16);
        assert_eq!(h.num_classes(), 3);
        assert!(h.has_gpu_class());
        // Efficient-first: the standard bulk owns the lowest node ids.
        assert_eq!(h.class(0).name, "standard");
        assert_eq!(h.range(0), (0, 64 - 16 - 8));
        assert_eq!(h.class(1).name, "bigmem");
        assert_eq!(h.class(2).name, "gpu");
        assert!(h.class(2).gpu);
        // The GPU class is faster, the big-memory class slower.
        assert!(h.class(2).slow_num < h.class(2).slow_den);
        assert!(h.class(1).slow_num > h.class(1).slow_den);
    }

    #[test]
    fn default_policy_is_algorithm1() {
        assert_eq!(
            ExperimentConfig::preliminary().policy,
            PolicyKind::Algorithm1
        );
        assert_eq!(
            ExperimentConfig::production().policy,
            PolicyKind::Algorithm1
        );
    }
}
