//! Experiment outputs.

use dmr_metrics::{JobOutcome, StepSeries, WorkloadSummary};
use dmr_sim::SimTime;

/// Everything one workload run produces.
///
/// Under [`crate::config::Telemetry::Full`] every field is populated.
/// Under [`crate::config::Telemetry::Online`] the evolution series and
/// [`ExperimentResult::outcomes`] come back empty — the run folded per-job
/// accounting into streaming histograms instead of buffering it — while
/// [`ExperimentResult::summary`] (including its percentile columns) is
/// bit-identical to the buffered run.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Aggregate measures (Table II row set plus P50/P95/P99 tails).
    pub summary: WorkloadSummary,
    /// Allocated nodes over time (top plots of Figures 4, 5, 6, 12).
    pub allocation: StepSeries,
    /// Running-job count over time (the running-job lines of Figure 12).
    pub running: StepSeries,
    /// Completed-job count over time (bottom plots of Figures 4, 5, 12).
    pub completed: StepSeries,
    /// Per-job accounting in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// The engine's final clock when the event queue drained — the actual
    /// end instant of the run (at or after the last completion; trailing
    /// housekeeping events such as a final backfill pass can land later).
    /// Taken directly from the engine, never re-derived through an f64
    /// round-trip of the makespan.
    pub end_time: SimTime,
    /// Total events processed by the engine (diagnostics / determinism
    /// checks).
    pub events: u64,
    /// Engine [`dmr_sim::Engine::past_schedules`] count — events the
    /// driver scheduled in the past (clamped to `now`). Sweeps assert
    /// this stays zero.
    pub past_schedules: u64,
}

impl ExperimentResult {
    /// Convenience: the workload execution time in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.summary.makespan_s
    }
}

/// What the driver itself measures about a run — everything else flows
/// through the installed [`dmr_metrics::MetricsSink`]. Returned by
/// [`crate::driver::run_experiment_with_sink`].
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// The engine's final clock when the event queue drained.
    pub end_time: SimTime,
    /// Total events processed by the engine.
    pub events: u64,
    /// Past-scheduling clamps (see [`dmr_sim::Engine::past_schedules`]).
    pub past_schedules: u64,
    /// Energy accounting from the driver's [`dmr_cluster::PowerMeter`].
    pub power: PowerStats,
}

/// `Copy` snapshot of a finished run's [`dmr_cluster::PowerMeter`]: the
/// scalars the driver patches into the summary, sized by
/// [`MAX_CLASSES`] so sweep workers can pass it by value.
///
/// [`MAX_CLASSES`]: dmr_cluster::MAX_CLASSES
#[derive(Clone, Copy, Debug)]
pub struct PowerStats {
    /// Total cluster energy over the run, joules.
    pub energy_j: f64,
    /// Mean cluster power over the metered window, watts.
    pub avg_watts: f64,
    /// Per-class busy fraction, valid in `[..classes]`.
    pub class_util: [f64; dmr_cluster::MAX_CLASSES],
    /// Number of machine classes the meter tracked.
    pub classes: usize,
}

impl PowerStats {
    /// Snapshots a meter into the `Copy` form.
    pub fn from_meter(meter: &dmr_cluster::PowerMeter) -> Self {
        let util = meter.class_utilization();
        let mut class_util = [0.0; dmr_cluster::MAX_CLASSES];
        class_util[..util.len()].copy_from_slice(&util);
        PowerStats {
            energy_j: meter.energy_j(),
            avg_watts: meter.avg_watts(),
            class_util,
            classes: meter.num_classes(),
        }
    }

    /// The per-class utilization as a slice of the live classes.
    pub fn class_utilization(&self) -> &[f64] {
        &self.class_util[..self.classes]
    }
}
