//! Experiment outputs.

use dmr_metrics::{JobOutcome, StepSeries, WorkloadSummary};
use dmr_sim::SimTime;

/// Everything one workload run produces.
///
/// Under [`crate::config::Telemetry::Full`] every field is populated.
/// Under [`crate::config::Telemetry::Online`] the evolution series and
/// [`ExperimentResult::outcomes`] come back empty — the run folded per-job
/// accounting into streaming histograms instead of buffering it — while
/// [`ExperimentResult::summary`] (including its percentile columns) is
/// bit-identical to the buffered run.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Aggregate measures (Table II row set plus P50/P95/P99 tails).
    pub summary: WorkloadSummary,
    /// Allocated nodes over time (top plots of Figures 4, 5, 6, 12).
    pub allocation: StepSeries,
    /// Running-job count over time (the running-job lines of Figure 12).
    pub running: StepSeries,
    /// Completed-job count over time (bottom plots of Figures 4, 5, 12).
    pub completed: StepSeries,
    /// Per-job accounting in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// The engine's final clock when the event queue drained — the actual
    /// end instant of the run (at or after the last completion; trailing
    /// housekeeping events such as a final backfill pass can land later).
    /// Taken directly from the engine, never re-derived through an f64
    /// round-trip of the makespan.
    pub end_time: SimTime,
    /// Total events processed by the engine (diagnostics / determinism
    /// checks).
    pub events: u64,
    /// Engine [`dmr_sim::Engine::past_schedules`] count — events the
    /// driver scheduled in the past (clamped to `now`). Sweeps assert
    /// this stays zero.
    pub past_schedules: u64,
}

impl ExperimentResult {
    /// Convenience: the workload execution time in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.summary.makespan_s
    }
}

/// What the driver itself measures about a run — everything else flows
/// through the installed [`dmr_metrics::MetricsSink`]. Returned by
/// [`crate::driver::run_experiment_with_sink`].
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// The engine's final clock when the event queue drained.
    pub end_time: SimTime,
    /// Total events processed by the engine.
    pub events: u64,
    /// Past-scheduling clamps (see [`dmr_sim::Engine::past_schedules`]).
    pub past_schedules: u64,
    /// Energy accounting from the driver's [`dmr_cluster::PowerMeter`].
    pub power: PowerStats,
    /// Fault-injection and recovery accounting (all zeros, ratio fields
    /// included, under [`dmr_cluster::FaultLoad::None`]).
    pub faults: FaultStats,
}

/// `Copy` snapshot of a finished run's [`dmr_cluster::PowerMeter`]: the
/// scalars the driver patches into the summary, sized by
/// [`MAX_CLASSES`] so sweep workers can pass it by value.
///
/// [`MAX_CLASSES`]: dmr_cluster::MAX_CLASSES
#[derive(Clone, Copy, Debug)]
pub struct PowerStats {
    /// Total cluster energy over the run, joules.
    pub energy_j: f64,
    /// Mean cluster power over the metered window, watts.
    pub avg_watts: f64,
    /// Per-class busy fraction, valid in `[..classes]`.
    pub class_util: [f64; dmr_cluster::MAX_CLASSES],
    /// Number of machine classes the meter tracked.
    pub classes: usize,
}

impl PowerStats {
    /// Snapshots a meter into the `Copy` form.
    pub fn from_meter(meter: &dmr_cluster::PowerMeter) -> Self {
        let util = meter.class_utilization();
        let mut class_util = [0.0; dmr_cluster::MAX_CLASSES];
        class_util[..util.len()].copy_from_slice(&util);
        PowerStats {
            energy_j: meter.energy_j(),
            avg_watts: meter.avg_watts(),
            class_util,
            classes: meter.num_classes(),
        }
    }

    /// The per-class utilization as a slice of the live classes.
    pub fn class_utilization(&self) -> &[f64] {
        &self.class_util[..self.classes]
    }
}

/// `Copy` snapshot of a run's fault-injection and recovery accounting —
/// the scalars behind the summary's `failures` / `requeues` /
/// `lost_work_s` / `goodput_ratio` / `restart_p95_s` columns.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Injected fault events that hit an `Up` node (idle or busy).
    pub failures: u64,
    /// Running jobs killed by a node failure and resubmitted.
    pub requeues: u64,
    /// Resize negotiations killed by injection.
    pub resize_faults: u64,
    /// Backoff retries scheduled after injected negotiation failures.
    pub resize_retries: u64,
    /// Compute time destroyed by failures (time since the last
    /// checkpoint image, per kill), seconds.
    pub lost_work_s: f64,
    /// P95 of failure-to-restart latency across requeues, seconds
    /// (0 when nothing was requeued).
    pub restart_p95_s: f64,
}

impl FaultStats {
    /// Folds the driver's raw counters into the `Copy` form. `restarts`
    /// holds one failure-to-restart latency (µs) per restarted
    /// incarnation; it is sorted in place to take the P95.
    pub fn collect(
        failures: u64,
        requeues: u64,
        resize_faults: u64,
        resize_retries: u64,
        lost_work: dmr_sim::Span,
        restarts: &mut [u64],
    ) -> Self {
        restarts.sort_unstable();
        let restart_p95_s = match restarts.len() {
            0 => 0.0,
            n => {
                // Nearest-rank on the sorted latencies.
                let rank = ((n as f64) * 0.95).ceil() as usize;
                dmr_sim::Span(restarts[rank.clamp(1, n) - 1]).as_secs_f64()
            }
        };
        FaultStats {
            failures,
            requeues,
            resize_faults,
            resize_retries,
            lost_work_s: lost_work.as_secs_f64(),
            restart_p95_s,
        }
    }
}
