//! Experiment outputs.

use dmr_metrics::{JobOutcome, StepSeries, WorkloadSummary};
use dmr_sim::SimTime;

/// Everything one workload run produces.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Aggregate measures (Table II row set).
    pub summary: WorkloadSummary,
    /// Allocated nodes over time (top plots of Figures 4, 5, 6, 12).
    pub allocation: StepSeries,
    /// Running-job count over time (the running-job lines of Figure 12).
    pub running: StepSeries,
    /// Completed-job count over time (bottom plots of Figures 4, 5, 12).
    pub completed: StepSeries,
    /// Per-job accounting in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Instant the last job completed.
    pub end_time: SimTime,
    /// Total events processed by the engine (diagnostics / determinism
    /// checks).
    pub events: u64,
    /// Engine [`dmr_sim::Engine::past_schedules`] count — events the
    /// driver scheduled in the past (clamped to `now`). Sweeps assert
    /// this stays zero.
    pub past_schedules: u64,
}

impl ExperimentResult {
    /// Convenience: the workload execution time in seconds.
    pub fn makespan_s(&self) -> f64 {
        self.summary.makespan_s
    }
}
