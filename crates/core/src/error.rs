//! The unified error type of the DMR stack.
//!
//! The substrate layers each speak their own dialect —
//! [`AllocError`] from the cluster model, [`MpiError`] from the
//! thread-backed MPI substrate, [`ExpandError`] from the Slurm
//! malleability protocol. Code that drives all three (the workload
//! driver here, the runtime↔RMS bridge in the umbrella crate) previously
//! had to pattern-match each enum separately. [`DmrError`] wraps them
//! behind one `std::error::Error` with intent-revealing queries such as
//! [`DmrError::queued_resizer`], so cross-layer callers branch on what an
//! error *means* for the reconfiguration protocol rather than on which
//! layer produced it.

use dmr_cluster::AllocError;
use dmr_mpi::MpiError;
use dmr_slurm::{ExpandError, JobId};

/// Any failure surfaced by the DMR stack.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DmrError {
    /// The cluster model refused an allocation request.
    Alloc(AllocError),
    /// The MPI substrate failed (peer exited, type mismatch, bad rank).
    Mpi(MpiError),
    /// The Slurm expansion protocol failed or deferred.
    Expand(ExpandError),
    /// A fault-injection layer deliberately killed the operation — not a
    /// structural failure of the protocol or the request. Injected
    /// failures are always worth retrying (with backoff); structural
    /// ones only when [`DmrError::is_transient`] says so.
    Injected(InjectedFault),
}

/// What the fault-injection layer killed (see [`DmrError::Injected`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InjectedFault {
    /// The `MPI_Comm_spawn` leg of a resize negotiation.
    Spawn,
    /// A compute node went down mid-run.
    Node,
}

impl DmrError {
    /// If this error is the expansion protocol's *deferral* signal —
    /// "the resizer job is queued with maximum priority, wait or abort"
    /// (§V-B1) — returns the queued resizer's id.
    ///
    /// This is the one failure the reconfiguration protocol treats as
    /// control flow rather than as an error: synchronous mode aborts the
    /// resizer immediately, asynchronous mode arms a timeout and waits.
    pub fn queued_resizer(&self) -> Option<JobId> {
        match self {
            DmrError::Expand(ExpandError::Queued { resizer }) => Some(*resizer),
            _ => None,
        }
    }

    /// Whether retrying the same operation later could succeed without
    /// any other intervention (resources were busy, not invalid).
    /// Injected failures are transient by definition — the fault, not
    /// the request, was the problem.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            DmrError::Alloc(AllocError::Insufficient { .. })
                | DmrError::Alloc(AllocError::NodeBusy(_))
                | DmrError::Expand(ExpandError::Queued { .. })
                | DmrError::Injected(_)
        )
    }

    /// Whether this failure was manufactured by the fault-injection
    /// layer (as opposed to a structural failure of the request or the
    /// protocol). Recovery code branches here: injected failures retry
    /// under backoff, structural ones surface.
    pub fn is_injected(&self) -> bool {
        matches!(self, DmrError::Injected(_))
    }

    /// Shorthand for the injected spawn-path failure a killed resize
    /// negotiation reports.
    pub fn injected_spawn() -> Self {
        DmrError::Injected(InjectedFault::Spawn)
    }
}

impl std::fmt::Display for DmrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DmrError::Alloc(e) => write!(f, "cluster allocation: {e}"),
            DmrError::Mpi(e) => write!(f, "mpi: {e}"),
            DmrError::Expand(e) => write!(f, "expansion protocol: {e}"),
            DmrError::Injected(InjectedFault::Spawn) => {
                write!(f, "injected fault: spawn path killed")
            }
            DmrError::Injected(InjectedFault::Node) => {
                write!(f, "injected fault: node down")
            }
        }
    }
}

impl std::error::Error for DmrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DmrError::Alloc(e) => Some(e),
            DmrError::Mpi(e) => Some(e),
            DmrError::Expand(e) => Some(e),
            DmrError::Injected(_) => None,
        }
    }
}

impl From<AllocError> for DmrError {
    fn from(e: AllocError) -> Self {
        DmrError::Alloc(e)
    }
}

impl From<MpiError> for DmrError {
    fn from(e: MpiError) -> Self {
        DmrError::Mpi(e)
    }
}

impl From<ExpandError> for DmrError {
    fn from(e: ExpandError) -> Self {
        DmrError::Expand(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn converts_from_every_layer() {
        let a: DmrError = AllocError::Insufficient {
            requested: 8,
            free: 2,
        }
        .into();
        let m: DmrError = MpiError::InvalidRank { rank: 9, size: 4 }.into();
        let x: DmrError = ExpandError::InvalidTarget { current: 4, to: 2 }.into();
        assert!(matches!(a, DmrError::Alloc(_)));
        assert!(matches!(m, DmrError::Mpi(_)));
        assert!(matches!(x, DmrError::Expand(_)));
    }

    #[test]
    fn queued_resizer_is_surfaced() {
        let rj = JobId(7);
        let e: DmrError = ExpandError::Queued { resizer: rj }.into();
        assert_eq!(e.queued_resizer(), Some(rj));
        assert!(e.is_transient());
        let e: DmrError = ExpandError::NotRunning(JobId(1)).into();
        assert_eq!(e.queued_resizer(), None);
        assert!(!e.is_transient());
    }

    #[test]
    fn injected_faults_classify_as_injected_and_transient() {
        let e = DmrError::injected_spawn();
        assert!(e.is_injected());
        assert!(e.is_transient(), "injected failures are retryable");
        assert!(e.to_string().contains("injected"));
        let n = DmrError::Injected(InjectedFault::Node);
        assert!(n.is_injected());
        // Structural failures are never "injected".
        let s: DmrError = ExpandError::InvalidTarget { current: 4, to: 2 }.into();
        assert!(!s.is_injected());
        let q: DmrError = ExpandError::Queued { resizer: JobId(3) }.into();
        assert!(!q.is_injected() && q.is_transient());
    }

    #[test]
    fn display_and_source_chain() {
        let e: DmrError = AllocError::UnknownOwner(3).into();
        assert!(e.to_string().contains("owner 3"));
        assert!(e.source().is_some());
        // Works as a boxed error object.
        let boxed: Box<dyn Error> = Box::new(e);
        assert!(boxed.to_string().starts_with("cluster allocation"));
    }
}
