//! Workload generation: ties the size, runtime, arrival and repeat models
//! together and emits [`JobSpec`]s.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::arrival::ArrivalModel;
use crate::repeat::RepeatModel;
use crate::runtime::RuntimeModel;
use crate::size::SizeModel;
use crate::spec::{AppClass, JobSpec, MalleabilitySpec};

/// Table I of the paper: per-application configuration.
///
/// Returns `(steps, envelope, data_bytes)` for each application class. FS
/// takes its submit size from the Feitelson size model, the real
/// applications are always submitted at their scalability maximum ("the job
/// submission of each application is launched with its maximum value",
/// §IX-A).
pub fn table1(app: AppClass) -> (u32, MalleabilitySpec, u64) {
    const GB: u64 = 1 << 30;
    match app {
        AppClass::Fs => (
            25,
            MalleabilitySpec {
                min_procs: 1,
                max_procs: 20,
                preferred: None,
                factor: 2,
                sched_period_s: None,
            },
            GB,
        ),
        AppClass::Cg => (
            10_000,
            MalleabilitySpec {
                min_procs: 2,
                max_procs: 32,
                preferred: Some(8),
                factor: 2,
                sched_period_s: Some(15.0),
            },
            (1.5 * GB as f64) as u64,
        ),
        AppClass::Jacobi => (
            10_000,
            MalleabilitySpec {
                min_procs: 2,
                max_procs: 32,
                preferred: Some(8),
                factor: 2,
                sched_period_s: Some(15.0),
            },
            GB,
        ),
        AppClass::Nbody => (
            25,
            MalleabilitySpec {
                min_procs: 1,
                max_procs: 16,
                preferred: Some(1),
                factor: 2,
                sched_period_s: None,
            },
            GB / 2,
        ),
    }
}

/// Everything needed to generate one workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of jobs to emit.
    pub jobs: u32,
    /// Cap on FS job sizes (20 in §VIII: "assigning up to 20 nodes to each
    /// job").
    pub max_size: u32,
    /// Mean Poisson inter-arrival gap, seconds (10 in §VIII).
    pub mean_interarrival_s: f64,
    /// Fraction of jobs that are flexible (the §VIII-D sweep variable).
    pub flexible_ratio: f64,
    /// Steps per FS job.
    pub fs_steps: u32,
    /// Distribution of one FS step's duration at the submitted size.
    pub fs_step_model: RuntimeModel,
    /// Bytes redistributed by an FS job on each reconfiguration (1 GB in
    /// §VIII).
    pub fs_data_bytes: u64,
    /// Application mix as `(class, weight)`; weights need not sum to 1.
    pub mix: Vec<(AppClass, f64)>,
    /// Distribution of a real application's *total* runtime at its submit
    /// size; the per-step time is derived from it.
    pub real_runtime_model: RuntimeModel,
    /// Repeated-runs model; `None` disables repeats (every job unique).
    pub repeats: Option<RepeatModel>,
}

impl WorkloadConfig {
    /// The §VIII preliminary-study testbed: FS only, 20 nodes, Table I's
    /// 25 iterations of up to 60 s each, 1 GB redistributed, 10 s mean
    /// arrival gap, all flexible.
    pub fn fs_preliminary(jobs: u32) -> Self {
        WorkloadConfig {
            jobs,
            max_size: 20,
            mean_interarrival_s: 10.0,
            flexible_ratio: 1.0,
            fs_steps: 25,
            fs_step_model: RuntimeModel::fs_steps(20),
            fs_data_bytes: 1 << 30,
            mix: vec![(AppClass::Fs, 1.0)],
            real_runtime_model: RuntimeModel::with_means(200.0, 800.0, 32),
            repeats: None,
        }
    }

    /// The §VIII-E micro-step variant: average step of ~2 s, everything
    /// else as [`WorkloadConfig::fs_preliminary`].
    pub fn fs_micro_steps(jobs: u32) -> Self {
        let mut cfg = WorkloadConfig::fs_preliminary(jobs);
        cfg.fs_steps = 25;
        cfg.fs_step_model = RuntimeModel {
            mean_short_s: 1.5,
            mean_long_s: 3.0,
            p_long_base: 0.2,
            p_long_slope: 0.3,
            max_size: 20,
            cap_s: 6.0,
        };
        cfg
    }

    /// The §IX production use-case: CG, Jacobi and N-body at 33 % each,
    /// submitted at their Table I maxima, Feitelson arrivals.
    pub fn real_mix(jobs: u32) -> Self {
        WorkloadConfig {
            jobs,
            max_size: 32,
            mean_interarrival_s: 10.0,
            flexible_ratio: 1.0,
            fs_steps: 2,
            fs_step_model: RuntimeModel::fs_steps(20),
            fs_data_bytes: 1 << 30,
            mix: vec![
                (AppClass::Cg, 1.0),
                (AppClass::Jacobi, 1.0),
                (AppClass::Nbody, 1.0),
            ],
            real_runtime_model: RuntimeModel::with_means(200.0, 800.0, 32),
            repeats: None,
        }
    }
}

/// Seeded generator producing deterministic workloads.
pub struct WorkloadGenerator {
    cfg: WorkloadConfig,
    rng: StdRng,
    size_model: SizeModel,
    arrival_model: ArrivalModel,
}

impl WorkloadGenerator {
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Self {
        let size_model = SizeModel::new(cfg.max_size);
        let arrival_model = ArrivalModel::new(cfg.mean_interarrival_s);
        WorkloadGenerator {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            size_model,
            arrival_model,
        }
    }

    fn pick_app(&mut self) -> AppClass {
        let total: f64 = self.cfg.mix.iter().map(|(_, w)| w).sum();
        let mut u = self.rng.random::<f64>() * total;
        for (app, w) in &self.cfg.mix {
            if u < *w {
                return *app;
            }
            u -= w;
        }
        self.cfg.mix.last().expect("mix must be non-empty").0
    }

    /// Generates the full workload, sorted by arrival time.
    pub fn generate(mut self) -> Vec<JobSpec> {
        assert!(!self.cfg.mix.is_empty(), "app mix must be non-empty");
        let mut jobs: Vec<JobSpec> = Vec::with_capacity(self.cfg.jobs as usize);
        // Draw job "templates"; repeats clone the previous template.
        let mut remaining_repeats = 0u32;
        let mut template: Option<JobSpec> = None;
        while jobs.len() < self.cfg.jobs as usize {
            if remaining_repeats > 0 {
                // SAFETY of unwrap: remaining_repeats > 0 implies a template
                // was stored on the previous iteration.
                let mut j = template.clone().unwrap();
                j.index = jobs.len() as u32;
                jobs.push(j);
                remaining_repeats -= 1;
                continue;
            }
            let app = self.pick_app();
            let flexible = self.rng.random::<f64>() < self.cfg.flexible_ratio;
            let (steps, malleability, data_bytes) = table1(app);
            let job = match app {
                AppClass::Fs => {
                    let size = self.size_model.sample(&mut self.rng);
                    let step_s = self.cfg.fs_step_model.sample(size, &mut self.rng);
                    // Users request the cap per step, not the drawn value.
                    let cap = self.cfg.fs_step_model.cap_s;
                    let walltime_s = if cap.is_finite() {
                        self.cfg.fs_steps as f64 * cap
                    } else {
                        self.cfg.fs_steps as f64 * step_s * 2.5
                    };
                    JobSpec {
                        index: jobs.len() as u32,
                        arrival_s: 0.0,
                        submit_procs: size,
                        steps: self.cfg.fs_steps,
                        step_s,
                        walltime_s,
                        data_bytes: self.cfg.fs_data_bytes,
                        app,
                        flexible,
                        gpu: false,
                        malleability: MalleabilitySpec {
                            max_procs: malleability.max_procs.min(self.cfg.max_size),
                            ..malleability
                        },
                    }
                }
                AppClass::Cg | AppClass::Jacobi | AppClass::Nbody => {
                    let size = malleability.max_procs;
                    let total_s = self
                        .cfg
                        .real_runtime_model
                        .sample(size, &mut self.rng)
                        .max(steps as f64 * 1e-3);
                    JobSpec {
                        index: jobs.len() as u32,
                        arrival_s: 0.0,
                        submit_procs: size,
                        steps,
                        step_s: total_s / steps as f64,
                        // Generous user walltime request.
                        walltime_s: total_s * 2.5,
                        data_bytes,
                        app,
                        flexible,
                        gpu: false,
                        malleability,
                    }
                }
            };
            if let Some(rm) = &self.cfg.repeats {
                remaining_repeats = rm.sample(&mut self.rng) - 1;
                template = Some(job.clone());
            }
            jobs.push(job);
        }
        // Arrival process is independent of job bodies in Feitelson's model.
        let arrivals = self.arrival_model.arrival_times(jobs.len(), &mut self.rng);
        for (job, t) in jobs.iter_mut().zip(arrivals) {
            job.arrival_s = t;
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(50), 42).generate();
        let b = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(50), 42).generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.submit_procs, y.submit_procs);
            assert_eq!(x.arrival_s, y.arrival_s);
            assert_eq!(x.step_s, y.step_s);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(50), 1).generate();
        let b = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(50), 2).generate();
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.submit_procs == y.submit_procs && x.step_s == y.step_s)
            .count();
        assert!(same < a.len(), "seeds produced identical workloads");
    }

    #[test]
    fn fs_jobs_respect_bounds() {
        let jobs = WorkloadGenerator::new(WorkloadConfig::fs_preliminary(200), 7).generate();
        for j in &jobs {
            assert!(j.submit_procs >= 1 && j.submit_procs <= 20);
            assert!(j.step_s > 0.0 && j.step_s <= 60.0);
            assert_eq!(j.steps, 25);
            assert_eq!(j.app, AppClass::Fs);
            assert!(j.flexible);
        }
    }

    #[test]
    fn real_mix_is_roughly_even_and_submitted_at_max() {
        let jobs = WorkloadGenerator::new(WorkloadConfig::real_mix(300), 11).generate();
        let mut counts = std::collections::HashMap::new();
        for j in &jobs {
            *counts.entry(j.app).or_insert(0u32) += 1;
            let (_, m, _) = table1(j.app);
            assert_eq!(j.submit_procs, m.max_procs, "submitted at maximum");
        }
        for app in [AppClass::Cg, AppClass::Jacobi, AppClass::Nbody] {
            let c = counts[&app];
            assert!((60..=140).contains(&c), "{app:?}: {c} of 300");
        }
    }

    #[test]
    fn flexible_ratio_honoured() {
        let mut cfg = WorkloadConfig::fs_preliminary(400);
        cfg.flexible_ratio = 0.5;
        let jobs = WorkloadGenerator::new(cfg, 3).generate();
        let flex = jobs.iter().filter(|j| j.flexible).count();
        assert!((120..=280).contains(&flex), "flex={flex}/400");

        let mut cfg = WorkloadConfig::fs_preliminary(100);
        cfg.flexible_ratio = 0.0;
        assert!(WorkloadGenerator::new(cfg, 3)
            .generate()
            .iter()
            .all(|j| !j.flexible));
    }

    #[test]
    fn repeats_produce_identical_neighbours() {
        let mut cfg = WorkloadConfig::fs_preliminary(200);
        cfg.repeats = Some(RepeatModel::default());
        let jobs = WorkloadGenerator::new(cfg, 13).generate();
        assert_eq!(jobs.len(), 200);
        // With repeats enabled, at least one adjacent pair shares a body.
        let repeated = jobs
            .windows(2)
            .any(|w| w[0].submit_procs == w[1].submit_procs && w[0].step_s == w[1].step_s);
        assert!(repeated);
        // Indices must still be unique and ordered.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i as u32);
        }
    }

    #[test]
    fn arrivals_sorted() {
        let jobs = WorkloadGenerator::new(WorkloadConfig::real_mix(100), 5).generate();
        for w in jobs.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
    }

    #[test]
    fn micro_steps_are_short() {
        let jobs = WorkloadGenerator::new(WorkloadConfig::fs_micro_steps(100), 17).generate();
        let mean: f64 = jobs.iter().map(|j| j.step_s).sum::<f64>() / jobs.len() as f64;
        assert!(mean > 0.5 && mean < 4.0, "mean step {mean}");
        assert!(jobs.iter().all(|j| j.steps == 25));
    }
}
