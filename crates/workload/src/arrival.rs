//! Poisson arrival process: exponential inter-arrival times.

use rand::Rng;

use crate::runtime::exponential;

/// Poisson arrival process with a configurable mean inter-arrival time
/// (§VIII uses a 10-second average).
#[derive(Clone, Copy, Debug)]
pub struct ArrivalModel {
    pub mean_interarrival_s: f64,
}

impl ArrivalModel {
    pub fn new(mean_interarrival_s: f64) -> Self {
        assert!(
            mean_interarrival_s > 0.0,
            "mean inter-arrival must be positive"
        );
        ArrivalModel {
            mean_interarrival_s,
        }
    }

    /// Draws the gap to the next arrival, seconds.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        exponential(self.mean_interarrival_s, rng)
    }

    /// Generates `n` absolute arrival instants starting at 0 for the first
    /// job (the paper's workloads begin with a submission at t=0).
    pub fn arrival_times<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut t = 0.0;
        for i in 0..n {
            if i > 0 {
                t += self.next_gap(rng);
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn arrivals_are_monotonic_and_start_at_zero() {
        let m = ArrivalModel::new(10.0);
        let mut rng = StdRng::seed_from_u64(5);
        let times = m.arrival_times(200, &mut rng);
        assert_eq!(times[0], 0.0);
        for w in times.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn mean_gap_converges() {
        let m = ArrivalModel::new(10.0);
        let mut rng = StdRng::seed_from_u64(9);
        let times = m.arrival_times(20_001, &mut rng);
        let mean_gap = times.last().unwrap() / 20_000.0;
        assert!((mean_gap - 10.0).abs() < 0.5, "mean_gap={mean_gap}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        ArrivalModel::new(0.0);
    }
}
