//! Generated job descriptions, independent of any scheduler or app
//! implementation.

/// Which application a job instantiates. §VIII uses only [`AppClass::Fs`];
/// §IX mixes the three real applications at 33 % each.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AppClass {
    /// Flexible Sleep: synthetic, perfectly linearly scalable step.
    Fs,
    /// Conjugate Gradient: highly scalable, short iterations.
    Cg,
    /// Jacobi: highly scalable, short iterations.
    Jacobi,
    /// N-body: comm-bound, near-constant performance, long iterations.
    Nbody,
}

impl AppClass {
    pub fn name(self) -> &'static str {
        match self {
            AppClass::Fs => "FS",
            AppClass::Cg => "CG",
            AppClass::Jacobi => "Jacobi",
            AppClass::Nbody => "N-body",
        }
    }
}

/// Malleability envelope a job is submitted with (Table I columns).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MalleabilitySpec {
    /// Minimum number of processes the job can run with.
    pub min_procs: u32,
    /// Maximum number of processes (scalability cap).
    pub max_procs: u32,
    /// Preferred number of processes (`None` leaves the RMS free; §VIII
    /// deliberately omits it for FS).
    pub preferred: Option<u32>,
    /// Resize factor: resizes go to a multiple/divisor of the current size
    /// by powers of this factor. The paper fixes it to 2 for every job.
    pub factor: u32,
    /// Checking-inhibitor period in seconds (`NANOX_SCHED_PERIOD`);
    /// `None` disables inhibition.
    pub sched_period_s: Option<f64>,
}

impl MalleabilitySpec {
    /// A rigid job: pinned to exactly `n` processes.
    pub fn rigid(n: u32) -> Self {
        MalleabilitySpec {
            min_procs: n,
            max_procs: n,
            preferred: None,
            factor: 2,
            sched_period_s: None,
        }
    }

    pub fn is_rigid(&self) -> bool {
        self.min_procs == self.max_procs
    }
}

/// One generated job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Position in the workload (0-based submission order).
    pub index: u32,
    /// Arrival (submission) time in seconds from workload start.
    pub arrival_s: f64,
    /// Number of processes the job is *submitted* with. Fixed jobs keep
    /// this for their whole life; flexible jobs start here and may be
    /// reconfigured within `malleability`.
    pub submit_procs: u32,
    /// Iterative structure: number of steps...
    pub steps: u32,
    /// ...and the duration of one step, in seconds, at `submit_procs`
    /// processes (application models rescale it for other sizes).
    pub step_s: f64,
    /// User-requested wall-clock limit, seconds. Real users request the
    /// cap, not the actual runtime; the backfill scheduler plans with
    /// this, which is what keeps it conservative.
    pub walltime_s: f64,
    /// Bytes of application state carried across reconfigurations.
    pub data_bytes: u64,
    /// Which application the job runs.
    pub app: AppClass,
    /// Whether the job participates in malleability (false = rigid even if
    /// the envelope would allow resizing; used for the §VIII-D mixes).
    pub flexible: bool,
    /// Whether the job demands GPU nodes. On a heterogeneous cluster this
    /// becomes a class constraint (`ClassConstraint::GpuRequired`); uniform
    /// clusters ignore it. Generators default it to `false` so the legacy
    /// workloads are unchanged bit-for-bit.
    pub gpu: bool,
    /// Resize envelope.
    pub malleability: MalleabilitySpec,
}

impl JobSpec {
    /// Total sequential work of the job in process-seconds, the invariant
    /// the simulator preserves across resizes for linearly scaling apps.
    pub fn work_proc_seconds(&self) -> f64 {
        self.steps as f64 * self.step_s * self.submit_procs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_spec_is_rigid() {
        let m = MalleabilitySpec::rigid(8);
        assert!(m.is_rigid());
        assert_eq!(m.min_procs, 8);
        assert_eq!(m.max_procs, 8);
        assert_eq!(m.factor, 2);
    }

    #[test]
    fn work_is_steps_times_step_times_procs() {
        let j = JobSpec {
            index: 0,
            arrival_s: 0.0,
            submit_procs: 4,
            steps: 10,
            step_s: 6.0,
            walltime_s: 100.0,
            data_bytes: 0,
            app: AppClass::Fs,
            flexible: true,
            gpu: false,
            malleability: MalleabilitySpec::rigid(4),
        };
        assert_eq!(j.work_proc_seconds(), 240.0);
    }

    #[test]
    fn app_names() {
        assert_eq!(AppClass::Fs.name(), "FS");
        assert_eq!(AppClass::Nbody.name(), "N-body");
    }
}
