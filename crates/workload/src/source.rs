//! Streaming workload sources.
//!
//! A [`WorkloadSource`] hands out one [`JobSpec`] at a time in
//! non-decreasing arrival order, so consumers (the `dmr-core` driver)
//! never have to materialize a whole workload: a million-job trace replay
//! keeps O(1) jobs in flight on the arrival path. Selection travels as the
//! small `Copy` [`WorkloadKind`] (mirroring `dmr_slurm::PolicyKind`), so
//! experiment and scenario configurations stay plain data; trace replay —
//! which needs a file — enters through [`crate::swf::SwfTrace`] directly.

use crate::generator::{WorkloadConfig, WorkloadGenerator};
use crate::spec::JobSpec;

/// A pull-based stream of jobs, ordered by arrival time.
///
/// Implementations must yield jobs with non-decreasing
/// [`JobSpec::arrival_s`] and unique, dense [`JobSpec::index`] values
/// (0-based emission order); consumers may clamp stragglers defensively
/// but are entitled to assume sorted input.
pub trait WorkloadSource {
    /// Short machine-friendly name of the source family (CSV labelling).
    fn name(&self) -> &'static str;

    /// The next job, or `None` once the workload is exhausted.
    fn next_job(&mut self) -> Option<JobSpec>;
}

/// The Feitelson '96 statistical model as a [`WorkloadSource`].
///
/// This wraps [`WorkloadGenerator`] and is pinned *bit-for-bit* to its
/// output: the model draws every job body first and only then draws the
/// arrival process from the same RNG stream, so the sequence cannot be
/// produced one job at a time without changing the stream. The generator
/// therefore materializes internally and streams from its buffer — the
/// price of seed-stable history. The adversarial synthetics
/// ([`crate::burst::Burst`], [`crate::diurnal::Diurnal`]) and trace replay
/// ([`crate::swf::SwfTrace`]) have no such legacy and generate in O(1)
/// memory.
pub struct Feitelson {
    jobs: std::vec::IntoIter<JobSpec>,
    name: &'static str,
}

impl Feitelson {
    /// Streams the workload `WorkloadGenerator::new(cfg, seed)` generates.
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Self {
        Feitelson {
            jobs: WorkloadGenerator::new(cfg, seed).generate().into_iter(),
            name: "feitelson",
        }
    }

    /// As [`Feitelson::new`] with an explicit source name (scenario CSVs
    /// distinguish the preset configurations by name).
    pub fn named(name: &'static str, cfg: WorkloadConfig, seed: u64) -> Self {
        Feitelson {
            name,
            ..Feitelson::new(cfg, seed)
        }
    }
}

impl WorkloadSource for Feitelson {
    fn name(&self) -> &'static str {
        self.name
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        self.jobs.next()
    }
}

/// Caps any source at `limit` jobs (e.g. replaying only the head of a
/// long trace in a smoke scenario).
pub struct Capped<S> {
    inner: S,
    left: u32,
}

impl<S: WorkloadSource> Capped<S> {
    /// At most `limit` jobs from `inner`.
    pub fn new(inner: S, limit: u32) -> Self {
        Capped { inner, left: limit }
    }
}

impl<S: WorkloadSource> WorkloadSource for Capped<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        self.inner.next_job()
    }
}

/// Tags a deterministic share of an inner source's jobs as GPU-demanding.
///
/// Job `i` (by [`JobSpec::index`]) is tagged iff
/// `(i + 1) * permille / 1000 > i * permille / 1000` — the Bresenham
/// spread, which distributes `permille`-per-thousand tags evenly across
/// the stream with no RNG involved. The inner source's random streams are
/// untouched, so `permille = 0` reproduces the inner workload
/// *bit-for-bit* (the class-demand axis is purely additive).
pub struct GpuShare<S> {
    inner: S,
    permille: u32,
}

impl<S: WorkloadSource> GpuShare<S> {
    /// Tags `permille` jobs per thousand of `inner` (clamped to 1000).
    pub fn new(inner: S, permille: u32) -> Self {
        GpuShare {
            inner,
            permille: permille.min(1000),
        }
    }
}

impl<S: WorkloadSource> WorkloadSource for GpuShare<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        let mut job = self.inner.next_job()?;
        let (i, p) = (job.index as u64, self.permille as u64);
        job.gpu = (i + 1) * p / 1000 > i * p / 1000;
        Some(job)
    }
}

/// Selector for the built-in synthetic sources — plain `Copy` data with
/// parameters embedded, mirroring `dmr_slurm::PolicyKind`, so scenario
/// grids and experiment configs can carry it by value. [`SwfTrace`]
/// replay needs a reader and is constructed directly instead.
///
/// [`SwfTrace`]: crate::swf::SwfTrace
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum WorkloadKind {
    /// §VIII FS-only preliminary mix (20-node testbed scale).
    FsPreliminary,
    /// §VIII-E micro-step FS variant (inhibitor stress).
    FsMicroSteps,
    /// §IX CG/Jacobi/N-body production mix (65-node scale).
    RealMix,
    /// [`WorkloadKind::RealMix`] with a class-demand axis: `permille` jobs
    /// per thousand are tagged GPU-demanding via [`GpuShare`]'s Bresenham
    /// rule. `permille = 0` is bit-identical to `RealMix` (the tag wrapper
    /// never touches the generator's RNG streams).
    RealMixGpu {
        /// GPU-demanding jobs per thousand, evenly spread (0..=1000).
        permille: u32,
    },
    /// Adversarial load spikes: Poisson arrivals whose rate multiplies by
    /// `intensity` during the first `burst_len_s` seconds of every
    /// `period_s`-second window.
    Burst {
        /// Mean inter-arrival gap outside bursts, seconds.
        mean_interarrival_s: f64,
        /// Length of one calm+burst cycle, seconds.
        period_s: f64,
        /// Burst window at the start of each cycle, seconds.
        burst_len_s: f64,
        /// Arrival-rate multiplier inside the burst window (> 1).
        intensity: f64,
    },
    /// Day/night pattern: arrival rate modulated by a sine of period
    /// `period_s` and relative `amplitude` (0 = flat Poisson, towards 1 =
    /// near-silent troughs).
    Diurnal {
        /// Mean inter-arrival gap at the sine midpoint, seconds.
        mean_interarrival_s: f64,
        /// Period of one day/night cycle, seconds.
        period_s: f64,
        /// Relative modulation depth in `[0, 1)`.
        amplitude: f64,
    },
}

impl WorkloadKind {
    /// [`WorkloadKind::Burst`] with default spike parameters: 10 s mean
    /// gap, 10-minute cycles opening with a 60-second 8× spike.
    pub fn burst() -> Self {
        WorkloadKind::Burst {
            mean_interarrival_s: 10.0,
            period_s: 600.0,
            burst_len_s: 60.0,
            intensity: 8.0,
        }
    }

    /// [`WorkloadKind::RealMixGpu`] with the default class-demand mix:
    /// 250 ‰ (one job in four) GPU-demanding.
    pub fn real_gpu() -> Self {
        WorkloadKind::RealMixGpu { permille: 250 }
    }

    /// [`WorkloadKind::Diurnal`] with default parameters: 10 s mean gap
    /// modulated at 90 % depth over a one-hour "day".
    pub fn diurnal() -> Self {
        WorkloadKind::Diurnal {
            mean_interarrival_s: 10.0,
            period_s: 3600.0,
            amplitude: 0.9,
        }
    }

    /// Stable family name (scenario ids, sweep CSV `workload` column).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::FsPreliminary => "fs",
            WorkloadKind::FsMicroSteps => "fs-micro",
            WorkloadKind::RealMix => "real",
            WorkloadKind::RealMixGpu { .. } => "real-gpu",
            WorkloadKind::Burst { .. } => "burst",
            WorkloadKind::Diurnal { .. } => "diurnal",
        }
    }

    /// Name plus parameters — unique per parameterization, so two tunings
    /// of the same adversarial generator stay distinguishable in scenario
    /// names and CSV keys (the scenario registry keys rows by this, the
    /// same way it uses `PolicyKind::label`).
    pub fn label(self) -> String {
        match self {
            WorkloadKind::FsPreliminary | WorkloadKind::FsMicroSteps | WorkloadKind::RealMix => {
                self.name().into()
            }
            WorkloadKind::RealMixGpu { permille } => format!("real-gpu-{permille}"),
            WorkloadKind::Burst {
                mean_interarrival_s,
                period_s,
                burst_len_s,
                intensity,
            } => format!("burst-m{mean_interarrival_s}-p{period_s}-b{burst_len_s}-x{intensity}"),
            WorkloadKind::Diurnal {
                mean_interarrival_s,
                period_s,
                amplitude,
            } => format!("diurnal-m{mean_interarrival_s}-p{period_s}-a{amplitude}"),
        }
    }

    /// Instantiates the source this selector describes: `jobs` jobs,
    /// deterministic in `seed`.
    pub fn build(self, jobs: u32, seed: u64) -> Box<dyn WorkloadSource> {
        match self {
            WorkloadKind::FsPreliminary => Box::new(Feitelson::named(
                "fs",
                WorkloadConfig::fs_preliminary(jobs),
                seed,
            )),
            WorkloadKind::FsMicroSteps => Box::new(Feitelson::named(
                "fs-micro",
                WorkloadConfig::fs_micro_steps(jobs),
                seed,
            )),
            WorkloadKind::RealMix => Box::new(Feitelson::named(
                "real",
                WorkloadConfig::real_mix(jobs),
                seed,
            )),
            WorkloadKind::RealMixGpu { permille } => Box::new(GpuShare::new(
                Feitelson::named("real-gpu", WorkloadConfig::real_mix(jobs), seed),
                permille,
            )),
            WorkloadKind::Burst {
                mean_interarrival_s,
                period_s,
                burst_len_s,
                intensity,
            } => Box::new(crate::burst::Burst::new(
                crate::burst::BurstConfig {
                    jobs,
                    mean_interarrival_s,
                    period_s,
                    burst_len_s,
                    intensity,
                    ..crate::burst::BurstConfig::default()
                },
                seed,
            )),
            WorkloadKind::Diurnal {
                mean_interarrival_s,
                period_s,
                amplitude,
            } => Box::new(crate::diurnal::Diurnal::new(
                crate::diurnal::DiurnalConfig {
                    jobs,
                    mean_interarrival_s,
                    period_s,
                    amplitude,
                    ..crate::diurnal::DiurnalConfig::default()
                },
                seed,
            )),
        }
    }
}

/// Drains a source into a vector (tests and small tools; defeats the
/// purpose of streaming for large workloads).
pub fn collect_jobs(source: &mut dyn WorkloadSource) -> Vec<JobSpec> {
    std::iter::from_fn(|| source.next_job()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feitelson_source_streams_the_generator_output_verbatim() {
        let cfg = WorkloadConfig::fs_preliminary(40);
        let materialized = WorkloadGenerator::new(cfg.clone(), 42).generate();
        let mut src = Feitelson::new(cfg, 42);
        let streamed = collect_jobs(&mut src);
        assert_eq!(streamed.len(), materialized.len());
        for (s, m) in streamed.iter().zip(&materialized) {
            assert_eq!(s.index, m.index);
            assert_eq!(s.arrival_s, m.arrival_s);
            assert_eq!(s.submit_procs, m.submit_procs);
            assert_eq!(s.step_s, m.step_s);
            assert_eq!(s.walltime_s, m.walltime_s);
        }
    }

    #[test]
    fn kind_names_and_labels_are_stable_and_unique() {
        let kinds = [
            WorkloadKind::FsPreliminary,
            WorkloadKind::FsMicroSteps,
            WorkloadKind::RealMix,
            WorkloadKind::real_gpu(),
            WorkloadKind::burst(),
            WorkloadKind::diurnal(),
        ];
        let mut names: Vec<&str> = kinds.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), kinds.len());
        // Parameterizations stay distinguishable.
        let a = WorkloadKind::burst();
        let b = WorkloadKind::Burst {
            mean_interarrival_s: 5.0,
            period_s: 600.0,
            burst_len_s: 60.0,
            intensity: 8.0,
        };
        assert_eq!(a.name(), b.name());
        assert_ne!(a.label(), b.label());
    }

    #[test]
    fn every_kind_builds_a_deterministic_sorted_source() {
        for kind in [
            WorkloadKind::FsPreliminary,
            WorkloadKind::FsMicroSteps,
            WorkloadKind::RealMix,
            WorkloadKind::real_gpu(),
            WorkloadKind::burst(),
            WorkloadKind::diurnal(),
        ] {
            let a = collect_jobs(kind.build(30, 7).as_mut());
            let b = collect_jobs(kind.build(30, 7).as_mut());
            assert_eq!(a.len(), 30, "{kind:?}");
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.index, i as u32, "{kind:?}");
                assert_eq!(x.arrival_s, y.arrival_s, "{kind:?}");
                assert_eq!(x.submit_procs, y.submit_procs, "{kind:?}");
            }
            for w in a.windows(2) {
                assert!(w[1].arrival_s >= w[0].arrival_s, "{kind:?} not sorted");
            }
        }
    }

    #[test]
    fn gpu_share_spreads_tags_evenly_without_touching_the_stream() {
        // permille = 0 is bit-identical to the plain mix.
        let plain = collect_jobs(WorkloadKind::RealMix.build(60, 11).as_mut());
        let zero = collect_jobs(
            WorkloadKind::RealMixGpu { permille: 0 }
                .build(60, 11)
                .as_mut(),
        );
        assert_eq!(plain.len(), zero.len());
        for (p, z) in plain.iter().zip(&zero) {
            assert_eq!(p.arrival_s.to_bits(), z.arrival_s.to_bits());
            assert_eq!(p.step_s.to_bits(), z.step_s.to_bits());
            assert_eq!(p.submit_procs, z.submit_procs);
            assert!(!z.gpu);
        }
        // Non-zero permille only flips the tag, never the bodies.
        let tagged = collect_jobs(
            WorkloadKind::RealMixGpu { permille: 250 }
                .build(60, 11)
                .as_mut(),
        );
        for (p, t) in plain.iter().zip(&tagged) {
            assert_eq!(p.arrival_s.to_bits(), t.arrival_s.to_bits());
            assert_eq!(p.submit_procs, t.submit_procs);
        }
        // Bresenham: exactly floor(n * p / 1000) tags over any prefix.
        let n_gpu = tagged.iter().filter(|j| j.gpu).count();
        assert_eq!(n_gpu, 60 * 250 / 1000);
        for (i, j) in tagged.iter().enumerate() {
            let (i, p) = (i as u64, 250u64);
            assert_eq!(j.gpu, (i + 1) * p / 1000 > i * p / 1000);
        }
    }

    #[test]
    fn capped_source_stops_early() {
        let mut src = Capped::new(Feitelson::new(WorkloadConfig::fs_preliminary(50), 3), 10);
        assert_eq!(collect_jobs(&mut src).len(), 10);
        assert!(src.next_job().is_none());
    }
}
