//! Runtime distribution: two-stage hyper-exponential correlated with size.
//!
//! Feitelson '96 models runtimes as a hyper-exponential whose probability of
//! drawing from the long-mean branch increases linearly with the job's size
//! — this produces the observed correlation between parallelism and runtime
//! without tying them deterministically.

use rand::{Rng, RngExt};

/// Hyper-exponential runtime sampler.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeModel {
    /// Mean of the short-running branch, seconds.
    pub mean_short_s: f64,
    /// Mean of the long-running branch, seconds.
    pub mean_long_s: f64,
    /// Long-branch probability for a serial job.
    pub p_long_base: f64,
    /// Additional long-branch probability at `size == max_size`
    /// (interpolated linearly in between).
    pub p_long_slope: f64,
    /// Size at which the slope tops out.
    pub max_size: u32,
    /// Hard cap applied to samples, seconds (the paper caps FS steps at
    /// 60 s). `f64::INFINITY` disables the cap.
    pub cap_s: f64,
}

impl RuntimeModel {
    /// Model for the §VIII FS experiments: steps capped at 60 s. The
    /// branch means put most mass near the cap, matching the makespans of
    /// Figure 3 (a 400-job fixed workload runs for ~7–8·10^4 s on 20
    /// nodes).
    pub fn fs_steps(max_size: u32) -> Self {
        RuntimeModel {
            mean_short_s: 30.0,
            mean_long_s: 90.0,
            p_long_base: 0.2,
            p_long_slope: 0.5,
            max_size,
            cap_s: 60.0,
        }
    }

    /// Uncapped model with explicit branch means.
    pub fn with_means(mean_short_s: f64, mean_long_s: f64, max_size: u32) -> Self {
        RuntimeModel {
            mean_short_s,
            mean_long_s,
            p_long_base: 0.2,
            p_long_slope: 0.5,
            max_size,
            cap_s: f64::INFINITY,
        }
    }

    /// Probability of sampling from the long branch for a job of `size`.
    pub fn p_long(&self, size: u32) -> f64 {
        let frac = if self.max_size <= 1 {
            1.0
        } else {
            (size.min(self.max_size) - 1) as f64 / (self.max_size - 1) as f64
        };
        (self.p_long_base + self.p_long_slope * frac).clamp(0.0, 1.0)
    }

    /// Expected runtime for a job of `size` (before capping).
    pub fn mean_for(&self, size: u32) -> f64 {
        let p = self.p_long(size);
        (1.0 - p) * self.mean_short_s + p * self.mean_long_s
    }

    /// Draws one runtime for a job of `size`, in seconds.
    pub fn sample<R: Rng + ?Sized>(&self, size: u32, rng: &mut R) -> f64 {
        let p = self.p_long(size);
        let mean = if rng.random::<f64>() < p {
            self.mean_long_s
        } else {
            self.mean_short_s
        };
        let runtime = exponential(mean, rng);
        runtime.min(self.cap_s).max(f64::MIN_POSITIVE)
    }
}

/// Inverse-transform sample of an exponential with the given mean.
pub fn exponential<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    // random::<f64>() is in [0,1); use 1-u in (0,1] so ln never sees 0.
    let u: f64 = rng.random();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(10.0, &mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean={mean}");
    }

    #[test]
    fn p_long_grows_with_size() {
        let m = RuntimeModel::fs_steps(20);
        assert!(m.p_long(1) < m.p_long(10));
        assert!(m.p_long(10) < m.p_long(20));
        assert!(m.p_long(20) <= 1.0);
        assert_eq!(m.p_long(1), m.p_long_base);
    }

    #[test]
    fn bigger_jobs_run_longer_on_average() {
        let m = RuntimeModel::with_means(10.0, 100.0, 32);
        let mut rng = StdRng::seed_from_u64(11);
        let avg = |size: u32, rng: &mut StdRng| -> f64 {
            (0..20_000).map(|_| m.sample(size, rng)).sum::<f64>() / 20_000.0
        };
        let small = avg(1, &mut rng);
        let large = avg(32, &mut rng);
        assert!(
            large > small * 1.3,
            "expected correlation: small={small}, large={large}"
        );
    }

    #[test]
    fn cap_is_enforced() {
        let m = RuntimeModel::fs_steps(20);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let r = m.sample(20, &mut rng);
            assert!(r > 0.0 && r <= 60.0, "r={r}");
        }
    }

    #[test]
    fn serial_only_model_degenerates_gracefully() {
        let m = RuntimeModel::fs_steps(1);
        assert_eq!(m.p_long(1), 1.0_f64.min(m.p_long_base + m.p_long_slope));
    }

    #[test]
    fn mean_for_interpolates() {
        let m = RuntimeModel::with_means(10.0, 50.0, 16);
        assert!(m.mean_for(1) < m.mean_for(16));
        let p1 = m.p_long(1);
        assert!((m.mean_for(1) - ((1.0 - p1) * 10.0 + p1 * 50.0)).abs() < 1e-12);
    }
}
