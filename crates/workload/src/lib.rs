//! # dmr-workload — Feitelson '96 statistical workload model
//!
//! The paper generates its workloads "using the statistical model proposed by
//! Feitelson, which characterizes rigid jobs based on observations from logs
//! of actual cluster workloads" (§VII-C), with four knobs: number of jobs,
//! job size (a "complex discrete distribution"), runtime (hyper-exponential,
//! correlated with size), and Poisson inter-arrival times. This crate
//! implements that model:
//!
//! * [`size::SizeModel`] — discrete job-size distribution with the
//!   characteristic emphasis on powers of two and on small/serial jobs.
//! * [`runtime::RuntimeModel`] — two-stage hyper-exponential runtimes whose
//!   long-branch probability grows with job size (bigger jobs run longer).
//! * [`arrival::ArrivalModel`] — Poisson arrival process.
//! * [`repeat::RepeatModel`] — repeated runs of the same job (Zipf-like),
//!   another feature of the Feitelson model the paper cites.
//! * [`generator::WorkloadGenerator`] — puts it together and emits
//!   [`spec::JobSpec`]s, including the app class mix and flexible-job ratio
//!   used in §VIII-D and §IX.
//!
//! Beyond the paper's model, the crate ships a *streaming* workload layer
//! ([`source::WorkloadSource`]): demand is pulled one job at a time, so
//! consumers never materialize a workload. Four source families exist —
//! the Feitelson model ([`source::Feitelson`], bit-for-bit the generator
//! above), Standard Workload Format trace replay ([`swf::SwfTrace`]), and
//! two adversarial synthetics ([`burst::Burst`] load spikes,
//! [`diurnal::Diurnal`] day/night sine arrivals). The `Copy` selector
//! [`source::WorkloadKind`] carries the synthetic choices through
//! configuration structs.
//!
//! All sampling flows from a caller-provided seed; the same seed yields the
//! same workload (the paper likewise fixes its shuffle seed).

pub mod arrival;
pub mod burst;
pub mod diurnal;
pub mod generator;
pub mod repeat;
pub mod runtime;
pub mod size;
pub mod source;
pub mod spec;
pub mod swf;

pub use arrival::ArrivalModel;
pub use burst::{Burst, BurstConfig};
pub use diurnal::{Diurnal, DiurnalConfig};
pub use generator::{WorkloadConfig, WorkloadGenerator};
pub use repeat::RepeatModel;
pub use runtime::RuntimeModel;
pub use size::SizeModel;
pub use source::{Capped, Feitelson, GpuShare, WorkloadKind, WorkloadSource};
pub use spec::{AppClass, JobSpec, MalleabilitySpec};
pub use swf::{SwfMapping, SwfTrace};
