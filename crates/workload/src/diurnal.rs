//! Day/night (diurnal) arrival generator.
//!
//! Production clusters breathe with their users: submissions peak during
//! working hours and nearly stop at night. [`Diurnal`] models this by
//! modulating the Poisson arrival rate with a sine wave — the rate at
//! instant `t` is `base · (1 + amplitude · sin(2πt/period))`, so a cycle
//! opens at the midpoint, rises to a `(1+amplitude)×` peak and sinks to a
//! `(1-amplitude)×` trough. High amplitudes produce the adversarial
//! pattern the steady Feitelson stream never shows: long stretches of
//! queue growth followed by near-idle drains. Job bodies are FS-class
//! and drawn one at a time — the source streams in O(1) memory.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::burst::{fs_body, ratio_slot, FsShape};
use crate::runtime::{exponential, RuntimeModel};
use crate::size::SizeModel;
use crate::source::WorkloadSource;
use crate::spec::JobSpec;

/// Knobs of the diurnal process.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalConfig {
    /// Number of jobs to emit.
    pub jobs: u32,
    /// Mean inter-arrival gap at the sine midpoint, seconds.
    pub mean_interarrival_s: f64,
    /// Period of one day/night cycle, seconds.
    pub period_s: f64,
    /// Relative modulation depth in `[0, 1)`; 0 degenerates to a plain
    /// Poisson process.
    pub amplitude: f64,
    /// Cap on job sizes (the §VIII partition limit).
    pub max_size: u32,
    /// Fraction of jobs that are flexible.
    pub flexible_ratio: f64,
    /// Steps per job.
    pub steps: u32,
    /// Bytes redistributed on each reconfiguration.
    pub data_bytes: u64,
}

impl Default for DiurnalConfig {
    /// §VIII-style FS bodies under a one-hour "day" at 90 % depth.
    fn default() -> Self {
        DiurnalConfig {
            jobs: 100,
            mean_interarrival_s: 10.0,
            period_s: 3600.0,
            amplitude: 0.9,
            max_size: 20,
            flexible_ratio: 1.0,
            steps: 25,
            data_bytes: 1 << 30,
        }
    }
}

/// Streaming day/night source; see the module docs.
pub struct Diurnal {
    cfg: DiurnalConfig,
    rng: StdRng,
    size_model: SizeModel,
    step_model: RuntimeModel,
    /// Arrival instant of the next job to emit.
    t: f64,
    emitted: u32,
}

impl Diurnal {
    /// A deterministic diurnal workload for `seed`.
    pub fn new(cfg: DiurnalConfig, seed: u64) -> Self {
        assert!(cfg.mean_interarrival_s > 0.0, "mean gap must be positive");
        assert!(cfg.period_s > 0.0, "period must be positive");
        assert!(
            (0.0..1.0).contains(&cfg.amplitude),
            "amplitude must be in [0, 1)"
        );
        Diurnal {
            size_model: SizeModel::new(cfg.max_size),
            step_model: RuntimeModel::fs_steps(cfg.max_size),
            rng: StdRng::seed_from_u64(seed),
            t: 0.0,
            emitted: 0,
            cfg,
        }
    }

    /// Rate multiplier at instant `t` (peaks at `1 + amplitude`).
    fn rate_multiplier(&self, t: f64) -> f64 {
        1.0 + self.cfg.amplitude * (std::f64::consts::TAU * t / self.cfg.period_s).sin()
    }
}

impl WorkloadSource for Diurnal {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        if self.emitted >= self.cfg.jobs {
            return None;
        }
        let arrival_s = self.t;
        let size = self.size_model.sample(&mut self.rng);
        let step_s = self.step_model.sample(size, &mut self.rng);
        let flexible = ratio_slot(self.emitted, self.cfg.flexible_ratio);
        let job = fs_body(
            self.emitted,
            arrival_s,
            size,
            step_s,
            flexible,
            FsShape {
                steps: self.cfg.steps,
                max_size: self.cfg.max_size,
                data_bytes: self.cfg.data_bytes,
                step_cap_s: self.step_model.cap_s,
            },
        );
        // Thin the base process by the local rate (exact while the gap
        // stays within a slowly-varying rate regime).
        let mul = self.rate_multiplier(self.t);
        self.t += exponential(self.cfg.mean_interarrival_s / mul, &mut self.rng);
        self.emitted += 1;
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_jobs;

    #[test]
    fn day_half_outpaces_night_half() {
        let cfg = DiurnalConfig {
            jobs: 600,
            ..DiurnalConfig::default()
        };
        let jobs = collect_jobs(&mut Diurnal::new(cfg, 19));
        assert_eq!(jobs.len(), 600);
        // sin > 0 on the first half of each period ("day"), < 0 on the
        // second ("night"): days must collect substantially more jobs.
        let day = jobs
            .iter()
            .filter(|j| j.arrival_s % cfg.period_s < cfg.period_s / 2.0)
            .count();
        let night = jobs.len() - day;
        assert!(
            day as f64 > night as f64 * 1.5,
            "day {day} vs night {night}"
        );
    }

    #[test]
    fn zero_amplitude_degenerates_to_poisson_mean() {
        let cfg = DiurnalConfig {
            jobs: 5000,
            amplitude: 0.0,
            ..DiurnalConfig::default()
        };
        let jobs = collect_jobs(&mut Diurnal::new(cfg, 23));
        let span = jobs.last().unwrap().arrival_s;
        let mean_gap = span / (jobs.len() - 1) as f64;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean_gap={mean_gap}");
    }

    #[test]
    fn deterministic_and_sorted() {
        let a = collect_jobs(&mut Diurnal::new(DiurnalConfig::default(), 1));
        let b = collect_jobs(&mut Diurnal::new(DiurnalConfig::default(), 1));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_s, y.arrival_s);
            assert_eq!(x.submit_procs, y.submit_procs);
        }
        for w in a.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
    }
}
