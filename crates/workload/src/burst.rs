//! Adversarial load-spike generator.
//!
//! Real clusters do not see smooth Poisson traffic: deadline waves, crons
//! and campaign submissions produce *spikes* that stress the scheduler's
//! reconfiguration machinery far harder than the Feitelson model's steady
//! arrivals (the load-spike scenarios of the related elastic-cloud test
//! suites). [`Burst`] models this with a periodically modulated Poisson
//! process: every [`BurstConfig::period_s`] seconds the arrival rate
//! multiplies by [`BurstConfig::intensity`] for
//! [`BurstConfig::burst_len_s`] seconds, then relaxes to the base rate.
//! Job bodies are FS-class (linearly scalable, Table I envelope), drawn
//! one at a time — the source streams in O(1) memory.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::generator::table1;
use crate::runtime::{exponential, RuntimeModel};
use crate::size::SizeModel;
use crate::source::WorkloadSource;
use crate::spec::{AppClass, JobSpec, MalleabilitySpec};

/// Knobs of the load-spike process.
#[derive(Clone, Copy, Debug)]
pub struct BurstConfig {
    /// Number of jobs to emit.
    pub jobs: u32,
    /// Mean inter-arrival gap outside bursts, seconds.
    pub mean_interarrival_s: f64,
    /// Length of one calm+burst cycle, seconds.
    pub period_s: f64,
    /// Burst window at the start of each cycle, seconds.
    pub burst_len_s: f64,
    /// Arrival-rate multiplier inside the burst window (> 1 spikes).
    pub intensity: f64,
    /// Cap on job sizes (the §VIII partition limit).
    pub max_size: u32,
    /// Fraction of jobs that are flexible.
    pub flexible_ratio: f64,
    /// Steps per job.
    pub steps: u32,
    /// Bytes redistributed on each reconfiguration.
    pub data_bytes: u64,
}

impl Default for BurstConfig {
    /// §VIII-style FS bodies under 10-minute cycles with a 60 s 8× spike.
    fn default() -> Self {
        BurstConfig {
            jobs: 100,
            mean_interarrival_s: 10.0,
            period_s: 600.0,
            burst_len_s: 60.0,
            intensity: 8.0,
            max_size: 20,
            flexible_ratio: 1.0,
            steps: 25,
            data_bytes: 1 << 30,
        }
    }
}

/// Streaming load-spike source; see the module docs.
pub struct Burst {
    cfg: BurstConfig,
    rng: StdRng,
    size_model: SizeModel,
    step_model: RuntimeModel,
    /// Arrival instant of the next job to emit.
    t: f64,
    emitted: u32,
}

impl Burst {
    /// A deterministic spike workload for `seed`.
    pub fn new(cfg: BurstConfig, seed: u64) -> Self {
        assert!(cfg.mean_interarrival_s > 0.0, "mean gap must be positive");
        assert!(cfg.period_s > 0.0, "period must be positive");
        assert!(cfg.intensity > 0.0, "intensity must be positive");
        Burst {
            size_model: SizeModel::new(cfg.max_size),
            step_model: RuntimeModel::fs_steps(cfg.max_size),
            rng: StdRng::seed_from_u64(seed),
            t: 0.0,
            emitted: 0,
            cfg,
        }
    }

    /// Rate multiplier at instant `t` (1 outside bursts).
    fn rate_multiplier(&self, t: f64) -> f64 {
        if t % self.cfg.period_s < self.cfg.burst_len_s {
            self.cfg.intensity
        } else {
            1.0
        }
    }
}

/// Deterministic fraction bookkeeping: job `emitted` is flexible iff the
/// running count of flexible jobs would otherwise fall behind `ratio`.
pub(crate) fn ratio_slot(emitted: u32, ratio: f64) -> bool {
    (((emitted + 1) as f64) * ratio).floor() > ((emitted as f64) * ratio).floor()
}

/// The per-workload (job-independent) part of an FS body.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FsShape {
    pub(crate) steps: u32,
    pub(crate) max_size: u32,
    pub(crate) data_bytes: u64,
    /// The step model's per-step cap (users request the cap as their
    /// walltime, like the Feitelson generator's FS jobs).
    pub(crate) step_cap_s: f64,
}

/// An FS-class job body at `size` procs (Table I envelope, capped).
pub(crate) fn fs_body(
    index: u32,
    arrival_s: f64,
    size: u32,
    step_s: f64,
    flexible: bool,
    shape: FsShape,
) -> JobSpec {
    let (_, malleability, _) = table1(AppClass::Fs);
    let walltime_s = if shape.step_cap_s.is_finite() {
        shape.steps as f64 * shape.step_cap_s
    } else {
        shape.steps as f64 * step_s * 2.5
    };
    JobSpec {
        index,
        arrival_s,
        submit_procs: size,
        steps: shape.steps,
        step_s,
        walltime_s,
        data_bytes: shape.data_bytes,
        app: AppClass::Fs,
        flexible,
        gpu: false,
        malleability: MalleabilitySpec {
            max_procs: malleability.max_procs.min(shape.max_size),
            ..malleability
        },
    }
}

impl WorkloadSource for Burst {
    fn name(&self) -> &'static str {
        "burst"
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        if self.emitted >= self.cfg.jobs {
            return None;
        }
        let arrival_s = self.t;
        let size = self.size_model.sample(&mut self.rng);
        let step_s = self.step_model.sample(size, &mut self.rng);
        let flexible = ratio_slot(self.emitted, self.cfg.flexible_ratio);
        let job = fs_body(
            self.emitted,
            arrival_s,
            size,
            step_s,
            flexible,
            FsShape {
                steps: self.cfg.steps,
                max_size: self.cfg.max_size,
                data_bytes: self.cfg.data_bytes,
                step_cap_s: self.step_model.cap_s,
            },
        );
        // Draw the gap to the *next* arrival at the local rate — an
        // approximation of the inhomogeneous Poisson process that is exact
        // whenever the gap stays within the current rate regime.
        let mul = self.rate_multiplier(self.t);
        self.t += exponential(self.cfg.mean_interarrival_s / mul, &mut self.rng);
        self.emitted += 1;
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_jobs;

    #[test]
    fn bursts_cluster_arrivals() {
        let cfg = BurstConfig {
            jobs: 400,
            ..BurstConfig::default()
        };
        let jobs = collect_jobs(&mut Burst::new(cfg, 11));
        assert_eq!(jobs.len(), 400);
        // Jobs arriving inside burst windows must be over-represented
        // relative to the 10 % duty cycle of the default config.
        let in_burst = jobs
            .iter()
            .filter(|j| j.arrival_s % cfg.period_s < cfg.burst_len_s)
            .count();
        assert!(
            in_burst as f64 > jobs.len() as f64 * 0.3,
            "only {in_burst}/400 jobs inside burst windows"
        );
    }

    #[test]
    fn flexible_ratio_is_exact() {
        let cfg = BurstConfig {
            jobs: 200,
            flexible_ratio: 0.25,
            ..BurstConfig::default()
        };
        let jobs = collect_jobs(&mut Burst::new(cfg, 3));
        let flex = jobs.iter().filter(|j| j.flexible).count();
        assert_eq!(flex, 50, "deterministic 25 % of 200");
    }

    #[test]
    fn bodies_respect_bounds() {
        let jobs = collect_jobs(&mut Burst::new(BurstConfig::default(), 5));
        for j in &jobs {
            assert!(j.submit_procs >= 1 && j.submit_procs <= 20);
            assert!(j.step_s > 0.0);
            assert!(j.walltime_s >= j.step_s);
            assert_eq!(j.app, AppClass::Fs);
        }
        for w in jobs.windows(2) {
            assert!(w[1].arrival_s >= w[0].arrival_s);
        }
    }
}
