//! Standard Workload Format (SWF) trace replay.
//!
//! The SWF is the archive format of the Parallel Workloads Archive: one
//! job per line, 18 whitespace-separated numeric fields, `;` comment
//! lines. Replaying real traces is how elastic-HPC evaluations ground
//! their claims, and the format's fields map directly onto [`JobSpec`]:
//! submit time → arrival, run time → step structure, allocated (or
//! requested) processors → submitted size, requested time → walltime.
//!
//! SWF jobs are rigid — the trace says nothing about malleability — so
//! [`SwfMapping`] decides how replayed jobs enter the flexible world: an
//! app class (scalability model), a deterministic flexible fraction, and
//! a malleability envelope derived from each job's submitted size
//! (`min = procs / min_div`, `max = procs · max_mul`). The parser
//! streams line by line: arbitrarily long traces replay in O(1) memory.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Cursor};
use std::path::Path;

use crate::burst::ratio_slot;
use crate::source::WorkloadSource;
use crate::spec::{AppClass, JobSpec, MalleabilitySpec};

/// How trace jobs are translated into the malleable world.
#[derive(Clone, Copy, Debug)]
pub struct SwfMapping {
    /// Fraction of replayed jobs marked flexible (deterministic
    /// round-robin assignment, not sampled).
    pub flexible_ratio: f64,
    /// Application class (scalability model) assigned to every job.
    pub app: AppClass,
    /// Upper bound on the iterative structure: a job gets
    /// `min(max_steps, ceil(runtime_s))` steps (at least one), so
    /// reconfiguring points never outnumber the job's seconds.
    pub max_steps: u32,
    /// Envelope minimum as a divisor of the submitted size
    /// (`min = max(1, procs / min_div)`).
    pub min_div: u32,
    /// Envelope maximum as a multiple of the submitted size
    /// (`max = procs · max_mul`, clamped to [`SwfMapping::max_procs`]).
    pub max_mul: u32,
    /// Hard cap on job sizes (partition limit); `None` replays sizes
    /// verbatim.
    pub max_procs: Option<u32>,
    /// Bytes redistributed on each reconfiguration.
    pub data_bytes: u64,
    /// Rebase arrivals so the first replayed job arrives at t = 0
    /// (traces often start at a large epoch offset).
    pub normalize_arrivals: bool,
}

impl Default for SwfMapping {
    /// All-flexible FS-class replay: 25-step jobs, envelope `[procs/4,
    /// 2·procs]`, 1 GB redistributed, arrivals rebased to zero.
    fn default() -> Self {
        SwfMapping {
            flexible_ratio: 1.0,
            app: AppClass::Fs,
            max_steps: 25,
            min_div: 4,
            max_mul: 2,
            max_procs: None,
            data_bytes: 1 << 30,
            normalize_arrivals: true,
        }
    }
}

/// Streaming SWF trace replayer; see the module docs.
pub struct SwfTrace<R> {
    lines: io::Lines<R>,
    mapping: SwfMapping,
    emitted: u32,
    /// Submit instant of the first accepted job (normalization base).
    first_submit: Option<f64>,
    /// Arrivals are clamped monotone (SWF traces are submit-sorted, but
    /// the format does not enforce it).
    last_arrival: f64,
    skipped: u64,
}

impl SwfTrace<BufReader<File>> {
    /// Opens a trace file with the default [`SwfMapping`].
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        Self::open_with(path, SwfMapping::default())
    }

    /// Opens a trace file with an explicit mapping.
    pub fn open_with(path: impl AsRef<Path>, mapping: SwfMapping) -> io::Result<Self> {
        Ok(Self::from_reader(
            BufReader::new(File::open(path)?),
            mapping,
        ))
    }
}

impl SwfTrace<Cursor<&'static str>> {
    /// Replays an in-memory trace (embedded fixtures, tests).
    pub fn from_static(trace: &'static str, mapping: SwfMapping) -> Self {
        Self::from_reader(Cursor::new(trace), mapping)
    }
}

impl<R: BufRead> SwfTrace<R> {
    /// Streams SWF records from any buffered reader.
    pub fn from_reader(reader: R, mapping: SwfMapping) -> Self {
        SwfTrace {
            lines: reader.lines(),
            mapping,
            emitted: 0,
            first_submit: None,
            last_arrival: 0.0,
            skipped: 0,
        }
    }

    /// Lines that were neither comments nor parseable job records (and
    /// records rejected for non-positive runtime or size). Read errors
    /// also land here and end the stream.
    pub fn skipped_lines(&self) -> u64 {
        self.skipped
    }

    /// Parses one record line into `(submit_s, runtime_s, procs,
    /// walltime_s)`, or `None` if it is not a usable job.
    fn parse_record(&self, line: &str) -> Option<(f64, f64, u32, f64)> {
        let f: Vec<&str> = line.split_whitespace().collect();
        // Fields (SWF v2.2): 0 job, 1 submit, 2 wait, 3 run, 4 allocated
        // procs, 7 requested procs, 8 requested time. Anything shorter
        // than the requested-time field is malformed.
        if f.len() < 9 {
            return None;
        }
        let submit: f64 = f[1].parse().ok()?;
        let runtime: f64 = f[3].parse().ok()?;
        let allocated: i64 = f[4].parse().ok()?;
        let requested: i64 = f[7].parse().ok()?;
        let req_time: f64 = f[8].parse().ok()?;
        // Unknown values are -1 in SWF; prefer the allocation, fall back
        // to the request.
        let procs = if allocated > 0 { allocated } else { requested };
        if runtime <= 0.0 || procs <= 0 || submit < 0.0 {
            return None;
        }
        let walltime = if req_time > 0.0 {
            req_time
        } else {
            runtime * 2.5
        };
        Some((submit, runtime, procs as u32, walltime))
    }
}

impl<R: BufRead> WorkloadSource for SwfTrace<R> {
    fn name(&self) -> &'static str {
        "swf"
    }

    fn next_job(&mut self) -> Option<JobSpec> {
        loop {
            let line = match self.lines.next()? {
                Ok(line) => line,
                Err(_) => {
                    self.skipped += 1;
                    return None;
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with(';') {
                continue;
            }
            let Some((submit, runtime, raw_procs, walltime)) = self.parse_record(trimmed) else {
                self.skipped += 1;
                continue;
            };
            let m = &self.mapping;
            let cap = m.max_procs.unwrap_or(u32::MAX).max(1);
            let procs = raw_procs.min(cap);
            let base = *self.first_submit.get_or_insert(submit);
            let raw_arrival = if m.normalize_arrivals {
                (submit - base).max(0.0)
            } else {
                submit
            };
            let arrival_s = raw_arrival.max(self.last_arrival);
            self.last_arrival = arrival_s;
            let steps = m.max_steps.min(runtime.ceil() as u32).max(1);
            let job = JobSpec {
                index: self.emitted,
                arrival_s,
                submit_procs: procs,
                steps,
                step_s: runtime / steps as f64,
                walltime_s: walltime.max(runtime),
                data_bytes: m.data_bytes,
                app: m.app,
                flexible: ratio_slot(self.emitted, m.flexible_ratio),
                gpu: false,
                malleability: MalleabilitySpec {
                    min_procs: (procs / m.min_div.max(1)).max(1),
                    max_procs: procs.saturating_mul(m.max_mul.max(1)).min(cap).max(procs),
                    preferred: None,
                    factor: 2,
                    sched_period_s: None,
                },
            };
            self.emitted += 1;
            return Some(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::collect_jobs;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: TestCluster
; UnixStartTime: 1000000000
1 100 5 300 4 -1 -1 4 600 -1 1 1 1 1 1 -1 -1 -1
2 130 0 60 -1 -1 -1 8 120 -1 1 2 1 1 1 -1 -1 -1
this line is garbage
3 130 0 -1 4 -1 -1 4 600 -1 0 3 1 1 1 -1 -1 -1
4 250 2 1 1 -1 -1 1 -1 -1 1 4 1 1 1 -1 -1 -1
";

    #[test]
    fn parses_comments_fallbacks_and_skips_garbage() {
        let mut src = SwfTrace::from_static(SAMPLE, SwfMapping::default());
        let jobs = collect_jobs(&mut src);
        // Job 3 has runtime -1 (killed before start) and the garbage line
        // is unparseable: 2 skips, 3 replayed jobs.
        assert_eq!(jobs.len(), 3);
        assert_eq!(src.skipped_lines(), 2);
        // Normalized arrivals: 100 → 0, 130 → 30, 250 → 150.
        assert_eq!(jobs[0].arrival_s, 0.0);
        assert_eq!(jobs[1].arrival_s, 30.0);
        assert_eq!(jobs[2].arrival_s, 150.0);
        // Job 2: allocated -1 falls back to requested 8 procs.
        assert_eq!(jobs[1].submit_procs, 8);
        // Job 4: requested time -1 falls back to 2.5 × runtime, floored
        // at the runtime itself.
        assert!(jobs[2].walltime_s >= 1.0);
        // Indices are dense emission order.
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(j.index, i as u32);
        }
    }

    #[test]
    fn runtime_is_preserved_through_the_step_structure() {
        let jobs = collect_jobs(&mut SwfTrace::from_static(SAMPLE, SwfMapping::default()));
        // 300 s over min(25, 300) = 25 steps of 12 s.
        assert_eq!(jobs[0].steps, 25);
        assert!((jobs[0].step_s * jobs[0].steps as f64 - 300.0).abs() < 1e-9);
        // A 1 s job cannot have 25 reconfiguring points: steps = 1.
        assert_eq!(jobs[2].steps, 1);
        assert_eq!(jobs[2].step_s, 1.0);
    }

    #[test]
    fn envelope_mapping_follows_the_configured_ratios() {
        let mapping = SwfMapping {
            min_div: 2,
            max_mul: 4,
            max_procs: Some(16),
            ..SwfMapping::default()
        };
        let jobs = collect_jobs(&mut SwfTrace::from_static(SAMPLE, mapping));
        let j = &jobs[0]; // 4 procs
        assert_eq!(j.malleability.min_procs, 2);
        assert_eq!(j.malleability.max_procs, 16);
        let j = &jobs[2]; // 1 proc
        assert_eq!(j.malleability.min_procs, 1);
        assert_eq!(j.malleability.max_procs, 4);
    }

    #[test]
    fn flexible_fraction_is_deterministic() {
        let mapping = SwfMapping {
            flexible_ratio: 0.5,
            ..SwfMapping::default()
        };
        let jobs = collect_jobs(&mut SwfTrace::from_static(SAMPLE, mapping));
        let flex: Vec<bool> = jobs.iter().map(|j| j.flexible).collect();
        assert_eq!(flex, vec![false, true, false]);
    }

    #[test]
    fn max_procs_caps_the_submitted_size() {
        let mapping = SwfMapping {
            max_procs: Some(2),
            ..SwfMapping::default()
        };
        let jobs = collect_jobs(&mut SwfTrace::from_static(SAMPLE, mapping));
        assert!(jobs.iter().all(|j| j.submit_procs <= 2));
        assert!(jobs.iter().all(|j| j.malleability.max_procs <= 2));
    }
}
