//! Job-size distribution.
//!
//! Feitelson's '96 model observes that parallel-job sizes follow a roughly
//! harmonic ("complex discrete") distribution — small jobs are common — with
//! strongly elevated probability at powers of two and a non-trivial fraction
//! of serial jobs. We implement exactly that: weight `1/s^alpha` for size
//! `s`, multiplied by `pow2_boost` when `s` is a power of two, normalised
//! over `1..=max_size`.

use rand::{Rng, RngExt};

/// Discrete job-size sampler over `1..=max_size`.
#[derive(Clone, Debug)]
pub struct SizeModel {
    max_size: u32,
    /// Cumulative distribution, `cdf[i]` = P(size <= i+1).
    cdf: Vec<f64>,
}

/// Harmonic exponent of the base distribution (Feitelson uses values around
/// 0.9–1.0 when fitting traces).
pub const DEFAULT_ALPHA: f64 = 0.95;
/// Multiplier applied to power-of-two sizes.
pub const DEFAULT_POW2_BOOST: f64 = 6.0;

impl SizeModel {
    /// Builds the model with the default Feitelson-like parameters.
    pub fn new(max_size: u32) -> Self {
        SizeModel::with_params(max_size, DEFAULT_ALPHA, DEFAULT_POW2_BOOST)
    }

    /// Builds the model with explicit harmonic exponent and power-of-two
    /// boost. `max_size` must be at least 1.
    pub fn with_params(max_size: u32, alpha: f64, pow2_boost: f64) -> Self {
        assert!(max_size >= 1, "max_size must be >= 1");
        let mut weights: Vec<f64> = (1..=max_size)
            .map(|s| {
                let base = 1.0 / (s as f64).powf(alpha);
                if s.is_power_of_two() {
                    base * pow2_boost
                } else {
                    base
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against FP drift so sampling never falls off the end.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        SizeModel {
            max_size,
            cdf: weights,
        }
    }

    pub fn max_size(&self) -> u32 {
        self.max_size
    }

    /// Probability of drawing exactly `size`.
    pub fn pmf(&self, size: u32) -> f64 {
        if size == 0 || size > self.max_size {
            return 0.0;
        }
        let i = (size - 1) as usize;
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        self.cdf[i] - lo
    }

    /// Draws one job size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        // First index whose cumulative probability covers u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => (i as u32 + 1).min(self.max_size),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let m = SizeModel::new(20);
        let total: f64 = (1..=20).map(|s| m.pmf(s)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(m.pmf(0), 0.0);
        assert_eq!(m.pmf(21), 0.0);
    }

    #[test]
    fn powers_of_two_are_boosted() {
        let m = SizeModel::new(20);
        // p(16) should exceed p(15) and p(17) despite the harmonic decay.
        assert!(m.pmf(16) > m.pmf(15));
        assert!(m.pmf(16) > m.pmf(17));
        assert!(m.pmf(8) > m.pmf(9));
    }

    #[test]
    fn small_jobs_dominate() {
        let m = SizeModel::new(32);
        assert!(m.pmf(1) > m.pmf(3));
        assert!(m.pmf(2) > m.pmf(32));
    }

    #[test]
    fn samples_within_bounds_and_hit_all_masses() {
        let m = SizeModel::new(20);
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = vec![0u32; 21];
        for _ in 0..20_000 {
            let s = m.sample(&mut rng);
            assert!((1..=20).contains(&s));
            seen[s as usize] += 1;
        }
        // Every size has nonzero probability; with 20k draws all should
        // appear.
        assert!(seen[1..].iter().all(|&c| c > 0), "{seen:?}");
        // Empirical boost check at 16.
        assert!(seen[16] > seen[15]);
    }

    #[test]
    fn max_size_one_always_serial() {
        let m = SizeModel::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), 1);
        }
    }
}
