//! Repeated runs.
//!
//! Feitelson's model includes "the number of repeated runs": users tend to
//! resubmit the same job several times. Run lengths follow a Zipf-like
//! distribution — most jobs run once or twice, a few repeat many times.

use rand::{Rng, RngExt};

/// Sampler for how many times a job specification is resubmitted.
#[derive(Clone, Copy, Debug)]
pub struct RepeatModel {
    /// Zipf exponent; larger = fewer repeats.
    pub theta: f64,
    /// Maximum number of runs of one job.
    pub max_repeats: u32,
}

impl Default for RepeatModel {
    fn default() -> Self {
        RepeatModel {
            theta: 2.5,
            max_repeats: 8,
        }
    }
}

impl RepeatModel {
    /// Probability that a job is run exactly `k` times (1-based).
    pub fn pmf(&self, k: u32) -> f64 {
        if k == 0 || k > self.max_repeats {
            return 0.0;
        }
        let norm: f64 = (1..=self.max_repeats)
            .map(|i| 1.0 / (i as f64).powf(self.theta))
            .sum();
        (1.0 / (k as f64).powf(self.theta)) / norm
    }

    /// Draws a run count in `1..=max_repeats`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.random();
        let mut acc = 0.0;
        for k in 1..=self.max_repeats {
            acc += self.pmf(k);
            if u < acc {
                return k;
            }
        }
        self.max_repeats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let m = RepeatModel::default();
        let total: f64 = (1..=m.max_repeats).map(|k| m.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_runs_most_likely() {
        let m = RepeatModel::default();
        assert!(m.pmf(1) > m.pmf(2));
        assert!(m.pmf(2) > m.pmf(4));
    }

    #[test]
    fn samples_in_range() {
        let m = RepeatModel::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0;
        for _ in 0..5_000 {
            let k = m.sample(&mut rng);
            assert!((1..=m.max_repeats).contains(&k));
            if k == 1 {
                ones += 1;
            }
        }
        assert!(ones > 2_500, "most jobs should run once, got {ones}/5000");
    }
}
