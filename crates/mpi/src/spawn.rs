//! Dynamic process management: `MPI_Comm_spawn`.
//!
//! This is the MPI feature the whole reconfiguration scheme hangs on
//! (§V-B1: "the updated list of nodes is gathered and used in a call to
//! `MPI_Comm_spawn` in order to create a new set of processes"). The call
//! is collective over the parent communicator; every parent rank receives
//! an [`InterComm`] to the children, and each child's [`Comm::parent`]
//! returns the mirror image.

use std::sync::Arc;

use crate::comm::{Comm, InterComm};

/// The child entry point: receives the child-world communicator (whose
/// [`Comm::parent`] is connected to the spawning group).
pub type SpawnEntry = Arc<dyn Fn(Comm) + Send + Sync>;

impl Comm {
    /// Collectively spawns `n` new ranks running `entry` and returns the
    /// inter-communicator to them.
    ///
    /// Rank 0 performs the launch (like `MPI_Comm_spawn`'s `root`); all
    /// ranks must call with the same `n`. The spawned threads are joined
    /// by the [`crate::universe::Universe`] at teardown.
    pub fn spawn(&mut self, n: usize, entry: SpawnEntry) -> Result<InterComm, crate::MpiError> {
        assert!(n > 0, "cannot spawn an empty process set");
        // Root allocates three communicator id spaces: the child world,
        // and the two directional sides of the inter-communicator.
        let mut ids: Vec<u64> = if self.rank == 0 {
            let child_world = self.registry.alloc_comm_id();
            let parent_side = self.registry.alloc_comm_id();
            let child_side = self.registry.alloc_comm_id();
            self.registry.create_endpoints(child_world, n);
            self.registry.create_endpoints(parent_side, self.size());
            self.registry.create_endpoints(child_side, n);
            vec![child_world, parent_side, child_side]
        } else {
            Vec::new()
        };
        self.bcast(&mut ids, 0)?;
        let (child_world, parent_side, child_side) = (ids[0], ids[1], ids[2]);

        if self.rank == 0 {
            let parent_size = self.size();
            for child_rank in 0..n {
                let registry = Arc::clone(&self.registry);
                let entry = Arc::clone(&entry);
                let handle = std::thread::Builder::new()
                    .name(format!("rank{child_rank}.c{child_world}"))
                    .spawn(move || {
                        let parent = InterComm::new(
                            &registry,
                            child_side,
                            parent_side,
                            child_rank,
                            n,
                            parent_size,
                        );
                        let comm = Comm::new(
                            Arc::clone(&registry),
                            child_world,
                            child_rank,
                            n,
                            Some(parent),
                        );
                        entry(comm);
                    })
                    .expect("spawn rank thread");
                self.registry.track_child(handle);
            }
        }
        Ok(InterComm::new(
            &self.registry,
            parent_side,
            child_side,
            self.rank,
            self.size(),
            n,
        ))
    }
}
